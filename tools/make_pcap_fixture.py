#!/usr/bin/env python3
"""Deterministic pcap fixture generator for the datapath test suite.

Writes a classic little-endian microsecond pcap (< 95 KB) with a Zipf-skewed
flow mix over IPv4 TCP/UDP, VLAN-tagged frames, IPv6, ICMP, and a sprinkle of
non-IP (ARP) frames that the parser must count as typed failures. The output
is byte-for-byte reproducible: fixed seed, fixed iteration order, no
timestamps from the host. Regenerate with

    python3 tools/make_pcap_fixture.py tests/data/fixture.pcap

and re-record the golden bands in tests/test_golden_metrics.cpp if the
traffic mix changes.
"""

import random
import struct
import sys

SEED = 0xF1B2E
PACKETS = 1150
UNIVERSE = 240          # distinct flows
ZIPF_ALPHA = 1.2
ARP_EVERY = 101         # deliberate parse failures, prime stride
VLAN_EVERY = 7
IPV6_EVERY = 13
ICMP_EVERY = 29
SNAPLEN = 65535


def eth(payload: bytes, ether_type: int, vlan: bool) -> bytes:
    header = bytes(range(12))  # fixed MACs
    if vlan:
        header += struct.pack(">HH", 0x8100, 100)
    return header + struct.pack(">H", ether_type) + payload


def ipv4(src: int, dst: int, proto: int, payload: bytes) -> bytes:
    total = 20 + len(payload)
    return (
        struct.pack(">BBHHHBBH", 0x45, 0, total, 0x1234, 0, 64, proto, 0)
        + struct.pack(">II", src, dst)
        + payload
    )


def ipv6(src_low: int, dst_low: int, nxt: int, payload: bytes) -> bytes:
    src = bytes([0x20] * 15) + bytes([src_low & 0xFF])
    dst = bytes([0x20] * 15) + bytes([dst_low & 0xFF])
    return (
        struct.pack(">IHBB", 0x60000000, len(payload), nxt, 64)
        + src
        + dst
        + payload
    )


def tcp(sport: int, dport: int) -> bytes:
    return struct.pack(">HHIIBBHHH", sport, dport, 0, 0, 5 << 4, 0x10, 0xFFFF, 0, 0)


def udp(sport: int, dport: int) -> bytes:
    return struct.pack(">HHHH", sport, dport, 8, 0)


def icmp() -> bytes:
    return struct.pack(">BBH", 8, 0, 0)


def zipf_weights(n: int, alpha: float) -> list:
    return [1.0 / (rank ** alpha) for rank in range(1, n + 1)]


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "tests/data/fixture.pcap"
    rng = random.Random(SEED)
    weights = zipf_weights(UNIVERSE, ZIPF_ALPHA)

    out = bytearray()
    # Global header: LE micro magic, v2.4, snaplen, LINKTYPE_ETHERNET.
    out += struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, SNAPLEN, 1)

    for index in range(PACKETS):
        flow = rng.choices(range(UNIVERSE), weights=weights)[0]
        src = 0x0A000000 + flow
        dst = 0xC0A80000 + (flow % 16)
        sport = 1024 + flow
        dport = 80 if flow % 2 == 0 else 443

        if index % ARP_EVERY == 0:
            frame = eth(bytes(28), 0x0806, vlan=False)
        elif index % IPV6_EVERY == 0:
            frame = eth(ipv6(flow, flow % 16, 17, udp(sport, dport)), 0x86DD, False)
        elif index % ICMP_EVERY == 0:
            frame = eth(ipv4(src, dst, 1, icmp()), 0x0800, False)
        else:
            transport = tcp(sport, dport) if flow % 3 else udp(sport, dport)
            proto = 6 if flow % 3 else 17
            frame = eth(ipv4(src, dst, proto, transport), 0x0800,
                        vlan=(index % VLAN_EVERY == 0))

        seconds = 1_600_000_000 + index // 250
        micros = (index * 4003) % 1_000_000
        out += struct.pack("<IIII", seconds, micros, len(frame), len(frame))
        out += frame

    assert len(out) < 95 * 1024, f"fixture too large: {len(out)} bytes"
    with open(path, "wb") as handle:
        handle.write(out)
    print(f"wrote {path}: {PACKETS} packets, {len(out)} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
