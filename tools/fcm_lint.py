#!/usr/bin/env python3
"""fcm_lint: repo-specific static analysis the compiler can't do.

Two engines share one rule set (DESIGN.md §10):

  regex   Always available. Works on comment-stripped text with
          balanced-paren/brace extraction for function bodies and call
          argument lists.
  ast     libclang-backed (python3 `clang` bindings). Refines the regex
          facts — it drops atomic-rule findings whose receiver is provably
          not a std::atomic, and adds findings regex cannot see (implicit
          seq-cst through `operator=`/`operator++` on atomics). When
          libclang is unavailable the analyzer silently degrades to the
          regex engine (`--engine=ast` makes that an error instead).

Rules:

  narrowing-cast   No bare narrowing ``static_cast`` onto counter types
                   (``uint8_t``/``uint16_t``/``uint32_t`` and signed
                   variants) inside ``src/fcm``, ``src/pisa`` and
                   ``src/runtime``. Counter narrowing must go through
                   ``fcm::common::checked_narrow``, which asserts value
                   preservation. (Bit-exact counter semantics are exactly
                   what breaks silently under optimization — FCM-sketch
                   §6-§8.)

  rand-seeding     No ``std::rand``/``rand()``/``srand``/``random()`` and no
                   seeding from ``time(0)``/``time(NULL)``/``std::time``.
                   All randomness goes through the deterministic
                   ``fcm::common::Xoshiro256`` so experiments reproduce.

  pragma-once      Every header carries ``#pragma once``.

  register-access  Every ``RegisterArray`` cell access goes through the
                   bounds-checked ``.at(...)`` accessor; direct
                   ``.cells[...]`` indexing is banned.

  thread-join      No plain ``std::thread`` inside ``src/``: a joinable
                   ``std::thread`` whose destructor runs calls
                   ``std::terminate``. Use ``std::jthread`` (joins on
                   destruction). ``std::this_thread``, ``std::jthread`` and
                   nested names like ``std::thread::id`` do not match.

  raw-atomic       No ``std::atomic`` inside ``src/`` outside
                   ``src/common/`` and ``src/obs/``. Cross-thread telemetry
                   belongs in ``obs::MetricsRegistry``; genuine control
                   state (e.g. a stop flag) carries an explicit ``allow``
                   marker with a justification.

  atomic-order     Inside ``src/common``, ``src/obs`` and ``src/runtime``
                   (the only homes of raw atomics), every atomic
                   ``load``/``store``/``exchange``/``fetch_*``/
                   ``compare_exchange_*`` must name an explicit
                   ``std::memory_order``. Seq-cst-by-default hides the
                   intended protocol and costs fences the SPSC/metrics hot
                   paths were designed to avoid. The AST engine also flags
                   implicit seq-cst through atomic ``operator=`` /
                   ``operator++`` / ``operator--``.

  acquire-release-pair
                   Same directories: publication protocol audit per atomic
                   member, per file. A ``store(memory_order_relaxed)`` on a
                   member that is acquire-loaded elsewhere in the file
                   publishes nothing (the acquire has no release to pair
                   with); conversely an acquire ``load`` of a member whose
                   stores are all relaxed synchronizes with nothing. This
                   is the rule that keeps the SPSC cursors' release-store /
                   acquire-load protocol intact under refactoring.

  guarded-field    Members annotated ``FCM_GUARDED_BY(cap)``
                   (common/thread_annotations.h) may only be touched inside
                   a function that (a) is declared ``FCM_REQUIRES`` (here
                   or in the sibling header), or (b) visibly enters the
                   capability — takes a ``MutexLock``/``lock_guard``/
                   ``unique_lock``/``scoped_lock`` or calls
                   ``assert_held()``/``assume_producer()``/
                   ``assume_consumer()``. Function-granular by design: the
                   statement-precise version of this check is Clang's
                   -Wthread-safety (the clang-thread-safety CI job); this
                   rule is the net that still catches lock-free access
                   under GCC-only builds.

  hot-path-lock    The batched hot-path entry points (the hot-path-alloc
                   function list) may not take locks: no ``MutexLock``,
                   ``lock_guard``, ``unique_lock``, ``scoped_lock`` or
                   ``.lock()`` in their bodies. One blocking mutex in the
                   per-packet loop serializes every shard.

  hot-path-alloc   No heap allocation (``new``, ``make_unique``,
                   ``std::vector<...>`` construction) inside the bodies of
                   the batched hot-path entry points in ``src/`` —
                   functions named ``add_batch``, ``ingest``,
                   ``process_batch``, ``offer_batch``, ``update_batch``,
                   ``index_block`` or ``apply_block`` (DESIGN.md §9).

  datapath-bounds  Inside ``src/datapath`` (hostile-input territory: every
                   byte comes off the wire), no ``reinterpret_cast``, no
                   ``memcpy``/``memmove``/``memset``, and no raw pointer
                   arithmetic or indexing off ``.data()``. All capture-byte
                   access goes through the bounds-checked ``ByteCursor``
                   (``byte_cursor.h``, itself exempt as the sanctioned
                   primitive) so a truncated or lying caplen can never turn
                   into an out-of-bounds read.

  staging-ownership
                   Inside ``src/runtime`` (the block-staged ingest layer),
                   per-producer staging state — open-block buffers
                   (``open_``), staging arrays (``*staging*_``), and
                   round-robin cursors (``rr_*_``) — must be declared
                   ``FCM_GUARDED_BY`` a producer role on the same line, so
                   the ownership rule "one producer drives a handle at a
                   time" is visible to Clang's thread-safety analysis.
                   Additionally, the span-ingest bodies (``ingest``,
                   ``ingest_keys``, ``ingest_packets``, ``stage_*``,
                   ``route_item``, ``flush``) may not call per-item
                   ``try_push``/``try_push_bulk``: the hand-off is
                   whole blocks through ``BlockQueue::try_open``/
                   ``publish`` — per-packet queue pushes reintroduce the
                   fan-out tax the block staging exists to kill
                   (DESIGN.md §13).

  simd-confinement Everywhere except the two sanctioned homes
                   (``src/fcm/fcm_kernel_avx2.cpp`` — the only TU built
                   with ``-mavx2`` — and ``src/common/simd_dispatch.h``,
                   which declares its entry points on plain pointers):
                   no ``<immintrin.h>``-family includes, no ``_mm*_``
                   intrinsic calls, no ``__m128``/``__m256``/``__m512``
                   vector types. Vector code that leaks into a baseline-ISA
                   TU either fails to compile on older CPUs or, worse,
                   compiles and SIGILLs at runtime only on machines the CI
                   fleet does not have (DESIGN.md §14).

  unused-suppression
                   Every ``// fcm-lint: allow(<rule>)`` marker must name a
                   known rule that actually fires on its line; stale or
                   misspelled suppressions are findings themselves, so
                   carve-outs cannot outlive the code they excused.

Suppression: append ``// fcm-lint: allow(<rule>)`` (or
``allow(<rule-a>, <rule-b>)``) to the offending line.

Self-test: ``tools/fcm_lint.py --self-test`` lints the deliberately-broken
corpus under ``tests/lint/`` and fails on any missed or spurious finding.
Corpus files declare their pretend location with ``// fcm-lint-path:
src/...`` (which drives the per-directory rule gating) and mark each
expected finding with ``// fcm-lint-expect: <rule>`` on the offending line
(``// fcm-lint-expect-ast: <rule>`` for AST-engine-only findings). The
corpus is excluded from normal lint walks.

Usage:  tools/fcm_lint.py [--engine=auto|ast|regex] [--self-test] [paths...]
        (default paths: src tests bench examples)
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import glob as globmod
import re
import sys
from dataclasses import dataclass
from pathlib import Path

HEADER_SUFFIXES = {".h", ".hpp", ".hh"}
SOURCE_SUFFIXES = HEADER_SUFFIXES | {".cc", ".cpp", ".cxx"}

KNOWN_RULES = {
    "narrowing-cast",
    "rand-seeding",
    "pragma-once",
    "register-access",
    "thread-join",
    "raw-atomic",
    "atomic-order",
    "acquire-release-pair",
    "guarded-field",
    "hot-path-lock",
    "hot-path-alloc",
    "wire-encoding",
    "datapath-bounds",
    "staging-ownership",
    "simd-confinement",
}

# Rule: narrowing-cast — only inside these top-level directories.
NARROWING_DIRS = ("src/fcm", "src/pisa", "src/runtime")
NARROWING_RE = re.compile(r"static_cast<\s*(?:std::)?u?int(?:8|16|32)_t\s*>")

RAND_RE = re.compile(r"(?<![\w:])(?:std::)?(?:rand|srand|srandom|random)\s*\(")
TIME_SEED_RE = re.compile(
    r"(?<![\w:])(?:std::)?time\s*\(\s*(?:0|NULL|nullptr)\s*\)"
)

CELLS_INDEX_RE = re.compile(r"\.cells\s*\[")

# Rule: thread-join — only inside src/ (tests/benches may query
# std::thread::hardware_concurrency or build scratch threads). Matches the
# exact token std::thread; std::jthread and std::this_thread do not match.
THREAD_DIRS = ("src",)
THREAD_RE = re.compile(r"(?<![\w:])std::thread\b(?!::)")

PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)

# Rule: raw-atomic — src/ only, with the two sanctioned homes exempt.
ATOMIC_DIRS = ("src",)
ATOMIC_EXEMPT_DIRS = ("src/common", "src/obs")
ATOMIC_RE = re.compile(r"(?<![\w:])std::atomic\b")

# Rules: atomic-order / acquire-release-pair — the directories where raw
# atomics legitimately live (the exempt homes plus the runtime's sanctioned
# stop flag).
ATOMIC_ORDER_DIRS = ("src/common", "src/obs", "src/runtime")
ATOMIC_OP_RE = re.compile(
    r"(\w+)\s*\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and"
    r"|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\("
)
MEMORY_ORDER_ARG_RE = re.compile(r"memory_order_(\w+)")

# Rule: wire-encoding — src/agg only. The wire format is explicit
# little-endian, one byte at a time through WireWriter/WireReader
# (DESIGN.md §11); memcpy'ing or reinterpret_cast'ing counter memory onto
# the wire silently bakes host endianness, struct padding, and type-punning
# UB into frames that must round-trip bit-exactly across machines.
WIRE_DIRS = ("src/agg",)
WIRE_RE = re.compile(
    r"(?<![\w:])(?:std::)?memcpy\s*\(|(?<![\w:])reinterpret_cast\s*<"
)

# Rule: datapath-bounds — src/datapath only. Capture parsing is the one
# place where attacker-controlled lengths meet raw buffers; every access
# must go through ByteCursor's checked reads. byte_cursor.h IS the
# sanctioned primitive, so it is exempt.
DATAPATH_DIRS = ("src/datapath",)
DATAPATH_EXEMPT_FILES = {"src/datapath/byte_cursor.h"}
DATAPATH_RE = re.compile(
    r"(?<![\w:])reinterpret_cast\s*<"
    r"|(?<![\w:])(?:std::)?mem(?:cpy|move|set)\s*\("
    r"|\.\s*data\s*\(\s*\)\s*(?:\+|\[)"
)

# Rules: guarded-field / hot-path-* — src/ only.
GUARDED_DIRS = ("src",)
HOTPATH_DIRS = ("src",)
HOTPATH_FN_NAMES = {
    "add_batch",
    "ingest",
    "process_batch",
    "offer_batch",
    "update_batch",
    "index_block",
    "apply_block",
}
HOTPATH_ALLOC_RE = re.compile(r"(?<![\w:])new\b|\bmake_unique\b|std::vector\s*<")
HOTPATH_LOCK_RE = re.compile(
    r"\b(?:MutexLock|lock_guard|unique_lock|scoped_lock)\b|\.\s*lock\s*\("
)

# Rule: staging-ownership — src/runtime only. The block-staged ingest path
# (DESIGN.md §13) keeps per-producer staging state (open blocks, staging
# buffers, round-robin cursors) as plain unsynchronized members whose
# safety contract is "exactly one producer drives a handle at a time";
# that contract only holds if the members are FCM_GUARDED_BY a producer
# role so Clang's analysis can see violations. Declaration heuristic: a
# type token, then a staging-style member name, then ;/=/{ — a guarded
# declaration has FCM_GUARDED_BY between the name and the terminator, so
# it never matches. The leading keyword guard keeps `return rr_next_;`
# from parsing as a declaration.
STAGING_DIRS = ("src/runtime",)
STAGING_DECL_RE = re.compile(
    r"^\s*(?!return\b|throw\b|case\b|using\b|delete\b|goto\b|co_return\b)"
    r"[A-Za-z_][\w:]*(?:\s*<[^;{}()=]*>)?[\s*&]+"
    r"(\w*staging\w*_|rr_\w+_|open_|pending_block\w*_)\s*[;={]"
)
# Span-ingest bodies must hand off whole blocks; per-item queue pushes are
# the fan-out tax the staging layer exists to remove.
STAGING_PUSH_RE = re.compile(r"\.\s*try_push(?:_bulk)?\s*\(")
STAGING_INGEST_FN_NAMES = {
    "ingest",
    "ingest_keys",
    "ingest_packets",
    "stage_unit",
    "stage_pair",
    "stage_weighted",
    "route_item",
    "flush",
}

# Rule: simd-confinement — every linted file except the two sanctioned
# homes. The AVX2 kernel TU is the only one compiled with -mavx2; an
# intrinsic (or a vector type, which only exists under the intrinsic
# headers) anywhere else either breaks the build on baseline-ISA targets or
# SIGILLs at runtime on CPUs without the extension. The dispatch header
# stays exempt so its doc comments and the kernel's entry points (declared
# on plain pointers) can name the machinery.
SIMD_EXEMPT_FILES = {
    "src/fcm/fcm_kernel_avx2.cpp",
    "src/common/simd_dispatch.h",
}
SIMD_RE = re.compile(
    r"#\s*include\s*[<\"](?:[\w/]*/)?"
    r"(?:immintrin|x86intrin|x86gprintrin|[a-z0-9]*mmintrin|avx\w*intrin)"
    r"\.h[>\"]"
    r"|(?<![\w:])_mm(?:256|512)?_\w+"
    r"|(?<![\w:])__m(?:64|128|256|512)[di]?\b"
)

# Tokens that mark a function as visibly holding/entering a capability.
CAPABILITY_TOKEN_RE = re.compile(
    r"\b(?:MutexLock|lock_guard|unique_lock|scoped_lock|assert_held"
    r"|assume_producer|assume_consumer|FCM_REQUIRES(?:_SHARED)?"
    r"|FCM_ASSERT_CAPABILITY|FCM_ACQUIRE|FCM_NO_THREAD_SAFETY_ANALYSIS)\b"
)

GUARDED_DECL_RE = re.compile(r"\b(\w+)\s+FCM_GUARDED_BY\s*\(")
# Identifiers GUARDED_DECL_RE can capture that are not member names (the
# macro's own #define in thread_annotations.h).
GUARDED_DECL_IGNORE = {"define"}

REQUIRES_RE = re.compile(r"\bFCM_REQUIRES(?:_SHARED)?\s*\(")

ALLOW_RE = re.compile(r"//\s*fcm-lint:\s*allow\(([a-z\-,\s]+)\)")

FN_CANDIDATE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
FN_SKIP_KEYWORDS = {
    "alignas",
    "alignof",
    "assert",
    "case",
    "catch",
    "co_await",
    "co_return",
    "co_yield",
    "decltype",
    "defined",
    "delete",
    "do",
    "else",
    "for",
    "if",
    "new",
    "noexcept",
    "requires",
    "return",
    "sizeof",
    "static_assert",
    "switch",
    "throw",
    "while",
}

# contracts.h implements checked_narrow itself; its internal static_cast is
# the sanctioned primitive.
EXEMPT_FILES = {"src/common/contracts.h"}

# The self-test corpus is deliberately broken; keep it out of normal walks.
CORPUS_DIR = "tests/lint"


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allows_on(raw_line: str) -> list[str]:
    """All rule names suppressed by fcm-lint allow markers on this line."""
    rules: list[str] = []
    for match in ALLOW_RE.finditer(raw_line):
        for name in match.group(1).split(","):
            name = name.strip()
            if name:
                rules.append(name)
    return rules


def strip_comments_keep_lines(text: str) -> str:
    """Blank out // and /* */ comment bodies so rules don't fire on prose,
    while preserving line numbering and the fcm-lint allow markers."""
    out = []
    i = 0
    n = len(text)
    in_block = False
    in_line = False
    in_string: str | None = None
    while i < n:
        c = text[i]
        if in_block:
            if c == "\n":
                out.append("\n")
            elif text.startswith("*/", i):
                in_block = False
                out.append("  ")
                i += 2
                continue
            else:
                out.append(" ")
            i += 1
            continue
        if in_line:
            if c == "\n":
                in_line = False
                out.append("\n")
            else:
                out.append(" ")  # allow markers are matched on the raw line
            i += 1
            continue
        if in_string:
            out.append(c)
            if c == "\\":
                if i + 1 < n:
                    out.append(text[i + 1])
                    i += 2
                    continue
            elif c == in_string:
                in_string = None
            i += 1
            continue
        if text.startswith("/*", i):
            in_block = True
            out.append("  ")
            i += 2
            continue
        if text.startswith("//", i):
            in_line = True
            out.append("//")
            i += 2
            continue
        if c in "\"'":
            in_string = c
        out.append(c)
        i += 1
    return "".join(out)


def blank_strings(text: str) -> str:
    """Blank string/char literal bodies (post comment-strip) so brace/paren
    balancing and identifier scans can't be confused by quoted code."""
    out = []
    i = 0
    n = len(text)
    quote: str | None = None
    while i < n:
        c = text[i]
        if quote:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                quote = None
                out.append(c)
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
            continue
        if c in "\"'":
            quote = c
        out.append(c)
        i += 1
    return "".join(out)


def _skip_balanced(text: str, i: int, open_ch: str, close_ch: str) -> int:
    """i points just past an opening delimiter; return index just past its
    match (or len(text) when unbalanced)."""
    depth = 1
    n = len(text)
    while i < n and depth:
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
        i += 1
    return i


@dataclass
class FnDef:
    name: str
    start: int       # offset of the name token
    param_end: int   # offset just past the parameter list's ')'
    body_open: int   # offset of the body '{'
    body_end: int    # offset just past the matching '}'
    line: int        # 1-based line of the name token


def function_definitions(text: str) -> list[FnDef]:
    """Enumerate function definitions: an identifier + balanced parameter
    list followed by '{' before any ';' (specifier parens like noexcept(...)
    or attribute macros are skipped). Heuristic, but the repo's style keeps
    it reliable; run on comment-stripped, string-blanked text."""
    defs: list[FnDef] = []
    n = len(text)
    for m in FN_CANDIDATE_RE.finditer(text):
        name = m.group(1)
        if name in FN_SKIP_KEYWORDS:
            continue
        param_end = _skip_balanced(text, m.end(), "(", ")")
        j = param_end
        body_open = -1
        while j < n:
            c = text[j]
            if c == "{":
                body_open = j
                break
            if c in ";)}":
                # ';' = declaration/statement; a stray ')' or '}' means the
                # candidate was a call inside an enclosing expression (e.g.
                # `while (q.size() > cap) {`), not a definition header.
                break
            if c == "(":
                j = _skip_balanced(text, j + 1, "(", ")")
                continue
            j += 1
        if body_open < 0:
            continue
        body_end = _skip_balanced(text, body_open + 1, "{", "}")
        defs.append(
            FnDef(
                name,
                m.start(),
                param_end,
                body_open,
                body_end,
                text.count("\n", 0, m.start()) + 1,
            )
        )
    return defs


def functions_with_requires(text: str) -> set[str]:
    """Names of functions whose declaration carries FCM_REQUIRES[_SHARED]
    (searched backwards from the attribute over specifier tokens to the
    parameter list, then to the identifier before it)."""
    names: set[str] = set()
    for m in REQUIRES_RE.finditer(text):
        i = m.start() - 1
        while True:
            while i >= 0 and text[i] in " \t\n\r":
                i -= 1
            j = i
            while j >= 0 and (text[j].isalnum() or text[j] == "_"):
                j -= 1
            word = text[j + 1 : i + 1]
            if word in ("const", "noexcept", "override", "final", "mutable"):
                i = j
                continue
            break
        if i < 0 or text[i] != ")":
            continue
        depth = 1
        i -= 1
        while i >= 0 and depth:
            if text[i] == ")":
                depth += 1
            elif text[i] == "(":
                depth -= 1
            i -= 1
        while i >= 0 and text[i] in " \t\n\r":
            i -= 1
        j = i
        while j >= 0 and (text[j].isalnum() or text[j] == "_"):
            j -= 1
        name = text[j + 1 : i + 1]
        if name:
            names.add(name)
    return names


def guarded_members(text: str) -> set[str]:
    """Member names declared with FCM_GUARDED_BY(...)."""
    members: set[str] = set()
    for m in GUARDED_DECL_RE.finditer(text):
        name = m.group(1)
        if name not in GUARDED_DECL_IGNORE:
            members.add(name)
    return members


@dataclass
class AtomicOp:
    receiver: str
    op: str
    orders: list[str]  # memory_order_<X> names in the argument list
    line: int


def scan_atomic_ops(text: str) -> list[AtomicOp]:
    ops: list[AtomicOp] = []
    for m in ATOMIC_OP_RE.finditer(text):
        arg_end = _skip_balanced(text, m.end(), "(", ")")
        args = text[m.end() : arg_end - 1]
        ops.append(
            AtomicOp(
                m.group(1),
                m.group(2),
                MEMORY_ORDER_ARG_RE.findall(args),
                text.count("\n", 0, m.start()) + 1,
            )
        )
    return ops


class AstOracle:
    """libclang refinement layer. Every query fails open: a file that can't
    be parsed (or a binding surface that misbehaves) degrades that file to
    pure regex behavior rather than dropping findings."""

    ATOMIC_METHODS = {
        "load",
        "store",
        "exchange",
        "fetch_add",
        "fetch_sub",
        "fetch_and",
        "fetch_or",
        "fetch_xor",
        "compare_exchange_weak",
        "compare_exchange_strong",
    }
    IMPLICIT_OPERATORS = {"operator=", "operator++", "operator--"}

    def __init__(self, cindex, repo_root: Path):
        self.cindex = cindex
        self.repo_root = repo_root
        self.index = cindex.Index.create()
        self._cache: dict[str, object] = {}

    @staticmethod
    def try_create(repo_root: Path) -> "AstOracle | None":
        try:
            from clang import cindex
        except ImportError:
            return None
        try:
            return AstOracle(cindex, repo_root)
        except Exception:
            pass
        # The python bindings are installed but libclang.so was not found on
        # the default path; probe the usual Linux install locations.
        for pattern in (
            "/usr/lib/llvm-*/lib/libclang.so*",
            "/usr/lib/llvm-*/lib/libclang-*.so*",
            "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
            "/usr/lib/*/libclang.so*",
        ):
            for candidate in sorted(globmod.glob(pattern), reverse=True):
                try:
                    cindex.Config.set_library_file(candidate)
                    return AstOracle(cindex, repo_root)
                except Exception:
                    continue
        return None

    def _translation_unit(self, path: Path):
        key = str(path)
        if key in self._cache:
            return self._cache[key]
        tu = None
        try:
            args = ["-x", "c++", "-std=c++20", "-I", str(self.repo_root / "src")]
            candidate = self.index.parse(str(path), args=args)
            fatal = any(
                d.severity >= self.cindex.Diagnostic.Fatal
                for d in candidate.diagnostics
            )
            if not fatal:
                tu = candidate
        except Exception:
            tu = None
        self._cache[key] = tu
        return tu

    def _own_cursors(self, path: Path):
        tu = self._translation_unit(path)
        if tu is None:
            return None
        target = str(path)
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if loc.file is not None and loc.file.name == target:
                yield cursor

    def atomic_op_lines(self, path: Path) -> set[int] | None:
        """Lines covered by a member call on a std::atomic receiver (full
        extents, so multi-line calls are covered). None = could not parse;
        callers must fail open and keep their regex facts."""
        cursors = self._own_cursors(path)
        if cursors is None:
            return None
        lines: set[int] = set()
        try:
            for cursor in cursors:
                if cursor.kind != self.cindex.CursorKind.CXX_MEMBER_CALL_EXPR:
                    continue
                if cursor.spelling not in self.ATOMIC_METHODS:
                    continue
                children = list(cursor.get_children())
                if not children:
                    continue
                base = children[0]
                spelling = base.type.spelling
                canonical = base.type.get_canonical().spelling
                if "atomic" in spelling or "atomic" in canonical:
                    for line in range(
                        cursor.extent.start.line, cursor.extent.end.line + 1
                    ):
                        lines.add(line)
        except Exception:
            return None
        return lines

    def implicit_seqcst_sites(self, path: Path) -> list[tuple[int, str]]:
        """(line, operator) pairs for atomic operator=/++/-- uses — the
        seq-cst-by-default spellings regex cannot see. [] on failure."""
        cursors = self._own_cursors(path)
        if cursors is None:
            return []
        sites: list[tuple[int, str]] = []
        try:
            for cursor in cursors:
                if cursor.kind != self.cindex.CursorKind.CXX_OPERATOR_CALL_EXPR:
                    continue
                ref = cursor.referenced
                if ref is None or ref.spelling not in self.IMPLICIT_OPERATORS:
                    continue
                parent = ref.semantic_parent
                if parent is not None and parent.spelling == "atomic":
                    sites.append((cursor.location.line, ref.spelling))
        except Exception:
            return []
        return sites


def _sibling_header_text(path: Path) -> str | None:
    if path.suffix in HEADER_SUFFIXES:
        return None
    for suffix in sorted(HEADER_SUFFIXES):
        sibling = path.with_suffix(suffix)
        if sibling.is_file():
            return strip_comments_keep_lines(
                sibling.read_text(encoding="utf-8", errors="replace")
            )
    return None


def lint_file(
    path: Path,
    repo_root: Path,
    rel: str | None = None,
    oracle: AstOracle | None = None,
) -> list[Finding]:
    rel = rel or path.relative_to(repo_root).as_posix()
    if rel in EXEMPT_FILES:
        return []
    raw = path.read_text(encoding="utf-8", errors="replace")
    text = strip_comments_keep_lines(raw)
    scan = blank_strings(text)
    raw_lines = raw.splitlines()
    findings: list[Finding] = []
    used_suppressions: set[tuple[int, str]] = set()

    def add(lineno: int, rule: str, message: str) -> None:
        raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        if rule in allows_on(raw_line):
            used_suppressions.add((lineno, rule))
            return
        findings.append(Finding(path, lineno, rule, message))

    def in_dirs(dirs: tuple[str, ...]) -> bool:
        return any(rel.startswith(d + "/") for d in dirs)

    if path.suffix in HEADER_SUFFIXES and not PRAGMA_ONCE_RE.search(raw):
        add(1, "pragma-once", "header is missing '#pragma once'")

    check_narrowing = in_dirs(NARROWING_DIRS)
    check_threads = in_dirs(THREAD_DIRS)
    check_atomics = in_dirs(ATOMIC_DIRS) and not in_dirs(ATOMIC_EXEMPT_DIRS)
    check_wire = in_dirs(WIRE_DIRS)
    check_datapath = in_dirs(DATAPATH_DIRS) and rel not in DATAPATH_EXEMPT_FILES
    check_staging = in_dirs(STAGING_DIRS)
    check_simd = rel not in SIMD_EXEMPT_FILES

    for lineno, line in enumerate(text.splitlines(), start=1):
        if check_narrowing and NARROWING_RE.search(line):
            add(
                lineno,
                "narrowing-cast",
                "bare narrowing static_cast on a counter type; use "
                "fcm::common::checked_narrow<T>() "
                "(or '// fcm-lint: allow(narrowing-cast)')",
            )
        if RAND_RE.search(line) or TIME_SEED_RE.search(line):
            add(
                lineno,
                "rand-seeding",
                "non-deterministic randomness; use "
                "fcm::common::Xoshiro256 with an explicit seed",
            )
        if CELLS_INDEX_RE.search(line):
            add(
                lineno,
                "register-access",
                "direct RegisterArray cell indexing; use the "
                "bounds-checked .at(...) accessor",
            )
        if check_atomics and ATOMIC_RE.search(line):
            add(
                lineno,
                "raw-atomic",
                "raw std::atomic outside src/common/ and src/obs/; "
                "route telemetry through obs::MetricsRegistry, or "
                "justify control state with "
                "'// fcm-lint: allow(raw-atomic)'",
            )
        if check_wire and WIRE_RE.search(line):
            add(
                lineno,
                "wire-encoding",
                "memcpy/reinterpret_cast in the wire codec; frames must be "
                "encoded byte-at-a-time through WireWriter/WireReader "
                "(explicit little-endian, no struct dumps) "
                "(or '// fcm-lint: allow(wire-encoding)')",
            )
        if check_datapath and DATAPATH_RE.search(line):
            add(
                lineno,
                "datapath-bounds",
                "raw byte access in the capture datapath "
                "(reinterpret_cast / mem* / pointer arithmetic off .data()); "
                "hostile captures control every length field — go through "
                "the bounds-checked ByteCursor (byte_cursor.h) "
                "(or '// fcm-lint: allow(datapath-bounds)')",
            )
        if (
            check_staging
            and "FCM_GUARDED_BY" not in line
            and STAGING_DECL_RE.search(line)
        ):
            add(
                lineno,
                "staging-ownership",
                "per-producer staging state declared without "
                "FCM_GUARDED_BY(<producer role>); the single-producer "
                "ownership contract must be visible to thread-safety "
                "analysis (DESIGN.md §13) "
                "(or '// fcm-lint: allow(staging-ownership)')",
            )
        if check_simd and SIMD_RE.search(line):
            add(
                lineno,
                "simd-confinement",
                "SIMD intrinsics / vector types outside the sanctioned "
                "kernel TU; hand-written vector code lives only in "
                "src/fcm/fcm_kernel_avx2.cpp behind the simd_dispatch.h "
                "entry points (DESIGN.md §14) "
                "(or '// fcm-lint: allow(simd-confinement)')",
            )
        if check_threads and THREAD_RE.search(line):
            add(
                lineno,
                "thread-join",
                "plain std::thread in src/; a joinable std::thread "
                "destructor calls std::terminate — use std::jthread "
                "(joins on destruction) "
                "(or '// fcm-lint: allow(thread-join)')",
            )

    # --- atomic-order / acquire-release-pair --------------------------------
    if in_dirs(ATOMIC_ORDER_DIRS):
        ops = scan_atomic_ops(scan)
        if oracle is not None:
            atomic_lines = oracle.atomic_op_lines(path)
            if atomic_lines is not None:
                ops = [op for op in ops if op.line in atomic_lines]
        for op in ops:
            if not op.orders:
                add(
                    op.line,
                    "atomic-order",
                    f"atomic {op.op}() on '{op.receiver}' without an explicit "
                    "std::memory_order; seq-cst-by-default hides the intended "
                    "protocol — name the order "
                    "(or '// fcm-lint: allow(atomic-order)')",
                )
        if oracle is not None:
            for lineno, operator in oracle.implicit_seqcst_sites(path):
                add(
                    lineno,
                    "atomic-order",
                    f"implicit seq-cst atomic access through {operator}; "
                    "use load()/store()/fetch_*() with an explicit "
                    "std::memory_order "
                    "(or '// fcm-lint: allow(atomic-order)')",
                )
        by_receiver: dict[str, list[AtomicOp]] = {}
        for op in ops:
            by_receiver.setdefault(op.receiver, []).append(op)
        for receiver, receiver_ops in sorted(by_receiver.items()):
            loads = [o for o in receiver_ops if o.op == "load"]
            stores = [o for o in receiver_ops if o.op == "store"]
            acquire_loads = [
                o
                for o in loads
                if any(x in ("acquire", "seq_cst", "acq_rel") for x in o.orders)
            ]
            releasing_stores = [
                o
                for o in stores
                if any(x in ("release", "seq_cst", "acq_rel") for x in o.orders)
            ]
            if acquire_loads and stores:
                for o in stores:
                    if o.orders and all(x == "relaxed" for x in o.orders):
                        add(
                            o.line,
                            "acquire-release-pair",
                            f"store(memory_order_relaxed) on '{receiver}', "
                            "which is acquire-loaded elsewhere in this file; "
                            "a relaxed store publishes nothing — pair release "
                            "stores with acquire loads "
                            "(or '// fcm-lint: allow(acquire-release-pair)')",
                        )
                if not releasing_stores:
                    for o in acquire_loads:
                        add(
                            o.line,
                            "acquire-release-pair",
                            f"load(memory_order_acquire) on '{receiver}' but "
                            "every store of it in this file is relaxed; the "
                            "acquire has no release to synchronize with "
                            "(or '// fcm-lint: allow(acquire-release-pair)')",
                        )

    # --- function-body rules ------------------------------------------------
    need_guarded = in_dirs(GUARDED_DIRS)
    need_hotpath = in_dirs(HOTPATH_DIRS)
    if need_guarded or need_hotpath or check_staging:
        defs = function_definitions(scan)
        members = guarded_members(scan)
        requires_fns = functions_with_requires(scan)
        sibling = _sibling_header_text(path)
        if sibling is not None:
            sibling_scan = blank_strings(sibling)
            members |= guarded_members(sibling_scan)
            requires_fns |= functions_with_requires(sibling_scan)

        if need_guarded and members:
            reported: set[tuple[int, str]] = set()
            for fn in defs:
                body = scan[fn.body_open : fn.body_end]
                signature = scan[fn.start : fn.body_open]
                if (
                    fn.name in requires_fns
                    or CAPABILITY_TOKEN_RE.search(body)
                    or CAPABILITY_TOKEN_RE.search(signature)
                ):
                    continue
                for member in sorted(members):
                    m = re.search(rf"\b{re.escape(member)}\b", body)
                    if not m:
                        continue
                    lineno = fn.line + scan.count(
                        "\n", fn.body_open, fn.body_open + m.start()
                    ) + scan.count("\n", fn.start, fn.body_open)
                    key = (lineno, member)
                    if key in reported:
                        continue
                    reported.add(key)
                    add(
                        lineno,
                        "guarded-field",
                        f"'{member}' is FCM_GUARDED_BY-annotated but "
                        f"'{fn.name}' neither holds a visible lock/role nor "
                        "is declared FCM_REQUIRES; take the capability or "
                        "annotate the function "
                        "(or '// fcm-lint: allow(guarded-field)')",
                    )

        if need_hotpath:
            for fn in defs:
                if fn.name not in HOTPATH_FN_NAMES:
                    continue
                body = scan[fn.body_open : fn.body_end]
                base_line = fn.line + scan.count("\n", fn.start, fn.body_open)
                for alloc in HOTPATH_ALLOC_RE.finditer(body):
                    lineno = base_line + body.count("\n", 0, alloc.start())
                    add(
                        lineno,
                        "hot-path-alloc",
                        f"heap allocation inside hot-path function "
                        f"'{fn.name}'; stage through fixed-size stack "
                        "buffers (common::kBatchBlock, DESIGN.md §9) "
                        "(or '// fcm-lint: allow(hot-path-alloc)')",
                    )
                for lock in HOTPATH_LOCK_RE.finditer(body):
                    lineno = base_line + body.count("\n", 0, lock.start())
                    add(
                        lineno,
                        "hot-path-lock",
                        f"lock acquisition inside hot-path function "
                        f"'{fn.name}'; one blocking mutex in the per-packet "
                        "loop serializes every shard — move synchronization "
                        "to an epoch boundary "
                        "(or '// fcm-lint: allow(hot-path-lock)')",
                    )

        if check_staging:
            for fn in defs:
                if fn.name not in STAGING_INGEST_FN_NAMES:
                    continue
                body = scan[fn.body_open : fn.body_end]
                base_line = fn.line + scan.count("\n", fn.start, fn.body_open)
                for push in STAGING_PUSH_RE.finditer(body):
                    lineno = base_line + body.count("\n", 0, push.start())
                    add(
                        lineno,
                        "staging-ownership",
                        f"per-item try_push inside span-ingest function "
                        f"'{fn.name}'; the runtime hand-off is whole blocks "
                        "through BlockQueue::try_open/publish — per-packet "
                        "queue pushes reintroduce the fan-out tax "
                        "(DESIGN.md §13) "
                        "(or '// fcm-lint: allow(staging-ownership)')",
                    )

    # --- unused / unknown suppressions --------------------------------------
    for lineno, raw_line in enumerate(raw_lines, start=1):
        for rule in allows_on(raw_line):
            if rule not in KNOWN_RULES:
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "unused-suppression",
                        f"suppression names unknown rule '{rule}' "
                        f"(known: {', '.join(sorted(KNOWN_RULES))})",
                    )
                )
            elif (lineno, rule) not in used_suppressions:
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "unused-suppression",
                        f"unused suppression: rule '{rule}' did not fire on "
                        "this line — delete the stale allow marker",
                    )
                )

    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def collect_files(paths: list[str], repo_root: Path) -> list[Path]:
    corpus_root = (repo_root / CORPUS_DIR).resolve()
    files: list[Path] = []
    for raw in paths:
        p = (repo_root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if p.is_file():
            if p.suffix in SOURCE_SUFFIXES:
                files.append(p)
        elif p.is_dir():
            explicit_corpus = p == corpus_root or corpus_root in p.parents
            for f in sorted(p.rglob("*")):
                if f.suffix not in SOURCE_SUFFIXES:
                    continue
                if not explicit_corpus and corpus_root in f.parents:
                    continue  # deliberately-broken self-test corpus
                files.append(f)
        else:
            print(f"fcm_lint: no such path: {raw}", file=sys.stderr)
            sys.exit(2)
    return files


PRETEND_PATH_RE = re.compile(r"//\s*fcm-lint-path:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*fcm-lint-expect:\s*([a-z\-, ]+)")
EXPECT_AST_RE = re.compile(r"//\s*fcm-lint-expect-ast:\s*([a-z\-, ]+)")


def run_self_test(repo_root: Path, oracle: AstOracle | None) -> int:
    corpus = sorted(
        f
        for f in (repo_root / CORPUS_DIR).rglob("*")
        if f.suffix in SOURCE_SUFFIXES
    )
    if not corpus:
        print(f"fcm_lint: self-test corpus {CORPUS_DIR}/ is empty", file=sys.stderr)
        return 2
    failures = 0
    for f in corpus:
        raw = f.read_text(encoding="utf-8", errors="replace")
        pretend = PRETEND_PATH_RE.search(raw)
        rel = pretend.group(1) if pretend else f.relative_to(repo_root).as_posix()
        expected: set[tuple[int, str]] = set()
        for lineno, line in enumerate(raw.splitlines(), start=1):
            matchers = [EXPECT_RE]
            if oracle is not None:
                matchers.append(EXPECT_AST_RE)
            for matcher in matchers:
                for m in matcher.finditer(line):
                    for rule in m.group(1).split(","):
                        rule = rule.strip()
                        if rule:
                            expected.add((lineno, rule))
        got = {
            (finding.line, finding.rule)
            for finding in lint_file(f, repo_root, rel=rel, oracle=oracle)
        }
        name = f.relative_to(repo_root)
        missed = sorted(expected - got)
        spurious = sorted(got - expected)
        if not missed and not spurious:
            print(f"self-test: {name}: ok ({len(expected)} expected finding(s))")
            continue
        failures += 1
        for line, rule in missed:
            print(f"self-test: {name}:{line}: MISSED expected [{rule}] finding")
        for line, rule in spurious:
            print(f"self-test: {name}:{line}: SPURIOUS [{rule}] finding")
    if failures:
        print(f"fcm_lint: self-test FAILED in {failures} corpus file(s)")
        return 1
    print(f"fcm_lint: self-test passed ({len(corpus)} corpus files)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "bench", "examples"],
        help="files or directories to lint (default: src tests bench examples)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "ast", "regex"),
        default="auto",
        help="auto: libclang when available, else regex; ast: require "
        "libclang; regex: never load libclang",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help=f"lint the {CORPUS_DIR}/ corpus and compare against its "
        "fcm-lint-expect markers",
    )
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    oracle: AstOracle | None = None
    if args.engine in ("auto", "ast"):
        oracle = AstOracle.try_create(repo_root)
        if oracle is None and args.engine == "ast":
            print(
                "fcm_lint: --engine=ast but libclang / python3 clang bindings "
                "are unavailable",
                file=sys.stderr,
            )
            return 2
    engine = "ast" if oracle is not None else "regex"

    if args.self_test:
        print(f"fcm_lint: engine={engine} (self-test)")
        return run_self_test(repo_root, oracle)

    files = collect_files(args.paths, repo_root)
    if not files:
        print("fcm_lint: no C++ sources found", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, repo_root, oracle=oracle))

    for finding in findings:
        try:
            shown = finding.path.relative_to(repo_root)
        except ValueError:
            shown = finding.path
        print(f"{shown}:{finding.line}: [{finding.rule}] {finding.message}")

    if findings:
        print(
            f"fcm_lint: {len(findings)} finding(s) in {len(files)} file(s) "
            f"[engine={engine}]"
        )
        return 1
    print(f"fcm_lint: clean ({len(files)} files) [engine={engine}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
