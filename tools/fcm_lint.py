#!/usr/bin/env python3
"""fcm_lint: repo-specific static analysis the compiler can't do.

Rules (see DESIGN.md "Correctness & static analysis"):

  narrowing-cast   No bare narrowing ``static_cast`` onto counter types
                   (``uint8_t``/``uint16_t``/``uint32_t`` and signed
                   variants) inside ``src/fcm`` and ``src/pisa``. Counter
                   narrowing must go through ``fcm::common::checked_narrow``,
                   which asserts value preservation. (Bit-exact counter
                   semantics are exactly what breaks silently under
                   optimization — FCM-sketch §6-§8.)

  rand-seeding     No ``std::rand``/``rand()``/``srand``/``random()`` and no
                   seeding from ``time(0)``/``time(NULL)``/``std::time``.
                   All randomness goes through the deterministic
                   ``fcm::common::Xoshiro256`` so experiments reproduce.

  pragma-once      Every header carries ``#pragma once``.

  register-access  Every ``RegisterArray`` cell access goes through the
                   bounds-checked ``.at(...)`` accessor; direct ``.cells[...]``
                   indexing is banned (it bypasses the contract that names
                   the offending array on out-of-range access).

  thread-join      No plain ``std::thread`` inside ``src/``: a joinable
                   ``std::thread`` whose destructor runs (stack unwinding,
                   early return, a throwing emplace loop) calls
                   ``std::terminate``. Use ``std::jthread``, which joins on
                   destruction — the sharded runtime's worker/coordinator
                   threads rely on this for exception-safe teardown.
                   (``std::this_thread``, ``std::jthread`` and nested names
                   like ``std::thread::id``/``hardware_concurrency`` do not
                   match.)

  raw-atomic       No ``std::atomic`` inside ``src/`` outside
                   ``src/common/`` and ``src/obs/``. Cross-thread telemetry
                   belongs in the ``obs::MetricsRegistry`` (striped,
                   relaxed-order, scrape-aggregated); ad-hoc atomics in the
                   sketch/runtime layers either pessimize the single-shard
                   hot path or reintroduce the data races the registry was
                   built to eliminate. Control-plane state that is genuinely
                   not telemetry (e.g. a stop flag) carries an explicit
                   ``allow`` marker with a justification.

  hot-path-alloc   No heap allocation (``new``, ``make_unique``,
                   ``std::vector<...>`` construction) inside the bodies of
                   the batched hot-path entry points in ``src/`` — functions
                   named ``add_batch``, ``ingest``, ``process_batch``,
                   ``offer_batch``, ``update_batch``, ``index_block`` or
                   ``apply_block``. The batched ingest kernel (DESIGN.md §9)
                   stages everything through fixed-size stack buffers
                   (``common::kBatchBlock``); an allocation on these paths is
                   a per-batch malloc hiding in the packet loop.

Suppression: append ``// fcm-lint: allow(<rule>)`` to the offending line.

Usage:  tools/fcm_lint.py [paths...]       (default: src tests bench examples)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

HEADER_SUFFIXES = {".h", ".hpp", ".hh"}
SOURCE_SUFFIXES = HEADER_SUFFIXES | {".cc", ".cpp", ".cxx"}

# Rule: narrowing-cast — only inside these top-level directories.
NARROWING_DIRS = ("src/fcm", "src/pisa", "src/runtime")
NARROWING_RE = re.compile(
    r"static_cast<\s*(?:std::)?u?int(?:8|16|32)_t\s*>"
)

RAND_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|srandom|random)\s*\("
)
TIME_SEED_RE = re.compile(
    r"(?<![\w:])(?:std::)?time\s*\(\s*(?:0|NULL|nullptr)\s*\)"
)

CELLS_INDEX_RE = re.compile(r"\.cells\s*\[")

# Rule: thread-join — only inside src/ (tests/benches may query
# std::thread::hardware_concurrency or build scratch threads). Matches the
# exact token std::thread; std::jthread and std::this_thread do not match.
THREAD_DIRS = ("src",)
THREAD_RE = re.compile(r"(?<![\w:])std::thread\b(?!::)")

PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)

# Rule: raw-atomic — src/ only, with the two sanctioned homes exempt.
ATOMIC_DIRS = ("src",)
ATOMIC_EXEMPT_DIRS = ("src/common", "src/obs")
ATOMIC_RE = re.compile(r"(?<![\w:])std::atomic\b")

# Rule: hot-path-alloc — src/ only. Batched hot-path entry points must not
# allocate; the kernel stages through stack buffers (DESIGN.md §9).
HOTPATH_DIRS = ("src",)
HOTPATH_FN_RE = re.compile(
    r"\b(add_batch|ingest|process_batch|offer_batch|update_batch"
    r"|index_block|apply_block)\s*\("
)
HOTPATH_ALLOC_RE = re.compile(
    r"(?<![\w:])new\b|\bmake_unique\b|std::vector\s*<"
)

ALLOW_RE = re.compile(r"//\s*fcm-lint:\s*allow\(([a-z-]+)\)")

# contracts.h implements checked_narrow itself; its internal static_cast is
# the sanctioned primitive.
EXEMPT_FILES = {"src/common/contracts.h"}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def line_allows(line: str, rule: str) -> bool:
    match = ALLOW_RE.search(line)
    return bool(match) and match.group(1) == rule


def strip_comments_keep_lines(text: str) -> str:
    """Blank out // and /* */ comment bodies so rules don't fire on prose,
    while preserving line numbering and the fcm-lint allow markers."""
    out = []
    i = 0
    n = len(text)
    in_block = False
    in_line = False
    in_string: str | None = None
    while i < n:
        c = text[i]
        if in_block:
            if c == "\n":
                out.append("\n")
            elif text.startswith("*/", i):
                in_block = False
                out.append("  ")
                i += 2
                continue
            else:
                out.append(" ")
            i += 1
            continue
        if in_line:
            if c == "\n":
                in_line = False
                out.append("\n")
            else:
                out.append(" ")  # allow markers are matched on the raw line
            i += 1
            continue
        if in_string:
            out.append(c)
            if c == "\\":
                if i + 1 < n:
                    out.append(text[i + 1])
                    i += 2
                    continue
            elif c == in_string:
                in_string = None
            i += 1
            continue
        if text.startswith("/*", i):
            in_block = True
            out.append("  ")
            i += 2
            continue
        if text.startswith("//", i):
            in_line = True
            out.append("//")
            i += 2
            continue
        if c in "\"'":
            in_string = c
        out.append(c)
        i += 1
    return "".join(out)


def hot_path_alloc_findings(
    path: Path, text: str, raw_lines: list[str]
) -> list[Finding]:
    """Find heap allocations inside hot-path function *definitions*.

    Works on comment-stripped text. A match of HOTPATH_FN_RE is a definition
    when, after its balanced parameter list, a '{' appears before any ';'
    (declarations and call sites hit ';' first). The body is then the
    brace-balanced block, scanned for HOTPATH_ALLOC_RE.
    """
    findings: list[Finding] = []
    n = len(text)
    for m in HOTPATH_FN_RE.finditer(text):
        # Skip the balanced parameter list.
        i = m.end()
        depth = 1
        while i < n and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        if depth:
            continue
        # Definition check: '{' before ';', skipping specifier parens
        # (e.g. noexcept(...)).
        j = i
        body_open = -1
        while j < n:
            c = text[j]
            if c == "{":
                body_open = j
                break
            if c == ";":
                break
            if c == "(":
                inner = 1
                j += 1
                while j < n and inner:
                    if text[j] == "(":
                        inner += 1
                    elif text[j] == ")":
                        inner -= 1
                    j += 1
                continue
            j += 1
        if body_open < 0:
            continue
        # Extract the brace-balanced body.
        k = body_open + 1
        depth = 1
        while k < n and depth:
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
            k += 1
        body = text[body_open:k]
        base_line = text.count("\n", 0, body_open) + 1
        for alloc in HOTPATH_ALLOC_RE.finditer(body):
            lineno = base_line + body.count("\n", 0, alloc.start())
            raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            if line_allows(raw_line, "hot-path-alloc"):
                continue
            findings.append(
                Finding(
                    path,
                    lineno,
                    "hot-path-alloc",
                    f"heap allocation inside hot-path function "
                    f"'{m.group(1)}'; stage through fixed-size stack "
                    "buffers (common::kBatchBlock, DESIGN.md §9) "
                    "(or '// fcm-lint: allow(hot-path-alloc)')",
                )
            )
    return findings


def lint_file(path: Path, repo_root: Path) -> list[Finding]:
    rel = path.relative_to(repo_root).as_posix()
    if rel in EXEMPT_FILES:
        return []
    raw = path.read_text(encoding="utf-8", errors="replace")
    text = strip_comments_keep_lines(raw)
    findings: list[Finding] = []

    if path.suffix in HEADER_SUFFIXES and not PRAGMA_ONCE_RE.search(raw):
        findings.append(
            Finding(path, 1, "pragma-once", "header is missing '#pragma once'")
        )

    check_narrowing = any(rel.startswith(d + "/") for d in NARROWING_DIRS)
    check_threads = any(rel.startswith(d + "/") for d in THREAD_DIRS)
    check_hotpath = any(rel.startswith(d + "/") for d in HOTPATH_DIRS)
    check_atomics = any(rel.startswith(d + "/") for d in ATOMIC_DIRS) and not any(
        rel.startswith(d + "/") for d in ATOMIC_EXEMPT_DIRS
    )

    raw_lines = raw.splitlines()
    for lineno, line in enumerate(text.splitlines(), start=1):
        raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else line
        if check_narrowing and NARROWING_RE.search(line):
            if not line_allows(raw_line, "narrowing-cast"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "narrowing-cast",
                        "bare narrowing static_cast on a counter type; use "
                        "fcm::common::checked_narrow<T>() "
                        "(or '// fcm-lint: allow(narrowing-cast)')",
                    )
                )
        if RAND_RE.search(line) or TIME_SEED_RE.search(line):
            if not line_allows(raw_line, "rand-seeding"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "rand-seeding",
                        "non-deterministic randomness; use "
                        "fcm::common::Xoshiro256 with an explicit seed",
                    )
                )
        if CELLS_INDEX_RE.search(line):
            if not line_allows(raw_line, "register-access"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "register-access",
                        "direct RegisterArray cell indexing; use the "
                        "bounds-checked .at(...) accessor",
                    )
                )
        if check_atomics and ATOMIC_RE.search(line):
            if not line_allows(raw_line, "raw-atomic"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "raw-atomic",
                        "raw std::atomic outside src/common/ and src/obs/; "
                        "route telemetry through obs::MetricsRegistry, or "
                        "justify control state with "
                        "'// fcm-lint: allow(raw-atomic)'",
                    )
                )
        if check_threads and THREAD_RE.search(line):
            if not line_allows(raw_line, "thread-join"):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "thread-join",
                        "plain std::thread in src/; a joinable std::thread "
                        "destructor calls std::terminate — use std::jthread "
                        "(joins on destruction) "
                        "(or '// fcm-lint: allow(thread-join)')",
                    )
                )
    if check_hotpath:
        findings.extend(hot_path_alloc_findings(path, text, raw_lines))
    return findings


def collect_files(paths: list[str], repo_root: Path) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = (repo_root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if p.is_file():
            if p.suffix in SOURCE_SUFFIXES:
                files.append(p)
        elif p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        else:
            print(f"fcm_lint: no such path: {raw}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "bench", "examples"],
        help="files or directories to lint (default: src tests bench examples)",
    )
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    files = collect_files(args.paths, repo_root)
    if not files:
        print("fcm_lint: no C++ sources found", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, repo_root))

    for finding in findings:
        try:
            shown = finding.path.relative_to(repo_root)
        except ValueError:
            shown = finding.path
        print(f"{shown}:{finding.line}: [{finding.rule}] {finding.message}")

    if findings:
        print(f"fcm_lint: {len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"fcm_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
