#!/usr/bin/env python3
"""check_perf_baseline: guard the batched ingest kernel against regressions.

Compares a freshly measured ``bench_throughput --scaling-only`` JSON against
the committed baseline (``BENCH_throughput.json``). Absolute packets/sec are
machine-dependent and useless across CI runners, so the guard compares the
in-run ``batch_speedup`` RATIO (batch pps / scalar pps, both best-of-N
interleaved within one process on one machine — see EXPERIMENTS.md,
throughput methodology). That ratio cancels CPU model and frequency, leaving
the kernel's relative advantage, which is what the PR promised.

Checks:
  1. schema match between baseline and current run;
  2. serial (single-thread) batch_speedup must not fall more than
     ``--tolerance`` (default 15%) below the committed baseline's;
  3. serial batch_speedup must stay >= 1.0 (the batch path must never be
     slower than the scalar path it replaces).

Usage:  tools/check_perf_baseline.py BASELINE.json CURRENT.json [--tolerance F]
Exit status: 0 pass, 1 regression, 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import json
import sys

EXPECTED_SCHEMA = "fcm.bench.throughput.v2"


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_perf_baseline: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    schema = data.get("schema")
    if schema != EXPECTED_SCHEMA:
        print(
            f"check_perf_baseline: {path} has schema {schema!r}, "
            f"expected {EXPECTED_SCHEMA!r} (re-record the baseline?)",
            file=sys.stderr,
        )
        sys.exit(2)
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_throughput.json")
    parser.add_argument("current", help="freshly measured bench JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative drop in serial batch_speedup (default 0.15)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    base_ratio = baseline["serial"]["batch_speedup"]
    cur_ratio = current["serial"]["batch_speedup"]
    floor = base_ratio * (1.0 - args.tolerance)

    print(
        f"serial batch_speedup: baseline {base_ratio:.3f}x, "
        f"current {cur_ratio:.3f}x, floor {floor:.3f}x "
        f"(tolerance {args.tolerance:.0%})"
    )

    failed = False
    if cur_ratio < floor:
        print(
            f"check_perf_baseline: FAIL — serial batch_speedup {cur_ratio:.3f}x "
            f"regressed more than {args.tolerance:.0%} below the committed "
            f"{base_ratio:.3f}x",
            file=sys.stderr,
        )
        failed = True
    if cur_ratio < 1.0:
        print(
            f"check_perf_baseline: FAIL — batch path is slower than scalar "
            f"({cur_ratio:.3f}x < 1.0x)",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("check_perf_baseline: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
