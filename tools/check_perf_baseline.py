#!/usr/bin/env python3
"""check_perf_baseline: guard committed bench baselines against regressions.

Two baseline families, dispatched on the JSON ``schema`` field:

``fcm.bench.throughput.v2`` / ``...v3`` (batched ingest kernel + cache)
    Compares a freshly measured ``bench_throughput --scaling-only`` JSON
    against the committed ``BENCH_throughput.json``. Absolute packets/sec
    are machine-dependent and useless across CI runners, so the guard
    compares the in-run ``batch_speedup`` RATIO (batch pps / scalar pps,
    both best-of-N interleaved within one process on one machine — see
    EXPERIMENTS.md, throughput methodology). That ratio cancels CPU model
    and frequency, leaving the kernel's relative advantage.

    Checks:
      1. schema match between baseline and current run;
      2. serial (single-thread) batch_speedup must not fall more than
         ``--tolerance`` (default 15%) below the committed baseline's;
      3. serial batch_speedup must stay >= 1.0 (the batch path must never
         be slower than the scalar path it replaces).

    v3 adds the heavy-flow-cache study (DESIGN.md §12) and two checks on
    its in-run ``cache_speedup`` ratio (cache-on vs cache-off pps on the
    skewed Zipf-1.3 trace, same process, same machine):
      4. it must not fall more than ``--tolerance`` below the baseline's;
      5. it must stay >= 1.2 (the acceptance floor: an exact-match cache
         that does not beat the sketch walk by 20% on elephant-dominated
         traffic is not pulling its weight). Machine-local ratio, so this
         check stays fatal across machine classes.

    v5 adds the kernel-tier study (DESIGN.md §14) plus two provenance rules:
      9. the ``kernels`` section records every kernel tier's serial
         throughput, forced in-process; when both the scalar and avx2 rows
         are present, ``avx2_index_speedup_vs_scalar`` must stay >= 2.5
         (the ISSUE-10 acceptance floor — an in-run same-machine ratio, so
         fatal on every machine class) and >= 1.0 for the end-to-end ingest
         ratio (the AVX2 kernel must never lose to scalar);
      10. v5 baselines must carry real provenance: a committed baseline
         with ``git_rev: "unknown"`` is rejected outright (exit 2), and a
         current run with an unknown rev only warns (it cannot be blessed
         as a baseline without fixing the build first). Baseline-relative
         drift checks (serial batch_speedup, cache_speedup, sharded
         vs-serial ratios) FAIL instead of warning whenever the committed
         baseline itself has ``hardware_concurrency >= 2`` — those are
         in-run ratios, so a multi-core-provenance baseline makes them
         binding even when the current runner's core count differs.

    v4 adds the block-staged sharded hand-off columns (DESIGN.md §13) and a
    sharded-scaling section with its own provenance rule:
      6. the CURRENT run must have ``hardware_concurrency >= 2`` — on a
         single-core runner the sharded-scaling numbers measure nothing but
         scheduler round-robin, so this section FAILS outright (not a
         warning): a 1-core CI runner can never silently bless or re-pin a
         scaling baseline. (ISSUE 9 satellite; absolute pps stays warn-only
         across machine classes as before.)
      7. in-run floors, fatal on any multi-core machine: 1-shard sharded
         batch ingest >= 0.9x the serial batch path (the block hand-off tax
         cap) and 1-shard in-shard batch_speedup >= 1.4x (batching must
         survive the ring);
      8. aggregate scaling: 4-shard batch pps >= 1.6x 1-shard batch pps,
         enforced when the runner has >= 4 hardware threads (warned below
         that, where 4 workers cannot actually run in parallel).

``fcm.bench.agg.v1`` (aggregation service, DESIGN.md §11)
    Compares a fresh ``bench_agg`` JSON against ``BENCH_agg.json``.

    Checks:
      1. schema match;
      2. ``snapshot_bytes`` must match the baseline EXACTLY — the wire
         format is deterministic for a given seed and configuration, so any
         drift means the format (or the bench setup) changed and the
         baseline must be re-recorded deliberately;
      3. deliver/query p99 latency must not exceed the baseline by more
         than ``--latency-factor`` (default 3x). Latency is machine-bound,
         so this is generous by design.

Core-count skew: both families record ``hardware_concurrency``. When the
current machine's core count differs from the one that recorded the
baseline, ratio/latency regressions DOWNGRADE to warnings (exit 0) — a
2-core runner measuring a baseline recorded on 8 cores proves nothing.
The machine-independent checks (speedup >= 1.0, exact snapshot_bytes)
stay fatal regardless.

Usage:  tools/check_perf_baseline.py BASELINE.json CURRENT.json
            [--tolerance F] [--latency-factor F]
Exit status: 0 pass (or warnings only), 1 regression, 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import json
import sys

KNOWN_SCHEMAS = (
    "fcm.bench.throughput.v2",
    "fcm.bench.throughput.v3",
    "fcm.bench.throughput.v4",
    "fcm.bench.throughput.v5",
    "fcm.bench.agg.v1",
)
# Schemas whose committed baselines must carry real git provenance.
PROVENANCE_REQUIRED_SCHEMAS = ("fcm.bench.throughput.v5",)
CACHE_SPEEDUP_FLOOR = 1.2
# v5 kernel-tier floors (in-run same-machine ratios, DESIGN.md §14):
AVX2_INDEX_VS_SCALAR_FLOOR = 2.5  # hash+fast-range kernel, ISSUE-10 target
AVX2_INGEST_VS_SCALAR_FLOOR = 1.0  # end-to-end serial ingest sanity
# v4 sharded-scaling floors (in-run ratios, DESIGN.md §13 / ISSUE 9):
SHARDED_VS_SERIAL_FLOOR = 0.9  # 1-shard sharded batch vs serial batch
SHARDED_BATCH_SPEEDUP_FLOOR = 1.4  # in-shard batch vs scalar at 1 shard
SHARDED_4V1_FLOOR = 1.6  # 4-shard vs 1-shard aggregate batch pps


def load(path: str, *, is_baseline: bool = False) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_perf_baseline: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    schema = data.get("schema")
    if schema not in KNOWN_SCHEMAS:
        print(
            f"check_perf_baseline: {path} has schema {schema!r}, "
            f"expected one of {KNOWN_SCHEMAS} (re-record the baseline?)",
            file=sys.stderr,
        )
        sys.exit(2)
    if schema in PROVENANCE_REQUIRED_SCHEMAS:
        rev = data.get("git_rev")
        if rev in (None, "", "unknown"):
            if is_baseline:
                # A baseline nobody can trace to a commit can never be
                # diagnosed as stale; refuse it rather than guard against it.
                print(
                    f"check_perf_baseline: {path} has git_rev {rev!r} — "
                    "committed baselines must be recorded from a build with "
                    "real git provenance (re-run cmake in a git checkout and "
                    "re-record)",
                    file=sys.stderr,
                )
                sys.exit(2)
            print(
                f"check_perf_baseline: WARN — {path} has git_rev {rev!r}; "
                "this run cannot be blessed as a committed baseline",
                file=sys.stderr,
            )
    return data


def describe(tag: str, data: dict) -> None:
    cores = data.get("hardware_concurrency", "?")
    rev = data.get("git_rev", "?")
    print(f"{tag}: {cores} hardware threads, git rev {rev}")


def same_machine_class(baseline: dict, current: dict) -> bool:
    """True when the runs are comparable: both recorded a core count and it
    matches. Missing counts (pre-provenance baselines) compare as skewed."""
    base = baseline.get("hardware_concurrency")
    cur = current.get("hardware_concurrency")
    return base is not None and base == cur


def drift_is_fatal(baseline: dict, current: dict) -> bool:
    """Baseline-relative ratio drift fails (instead of warning) when the runs
    are the same machine class, OR when the committed baseline itself has
    multi-core provenance: the guarded quantities are in-run ratios that
    mostly cancel the machine, so a trustworthy (>= 2 core) baseline makes
    them binding everywhere. Single-core-provenance baselines keep the old
    warn-only behavior — they are the thing being phased out, not a license
    to ignore drift forever."""
    if same_machine_class(baseline, current):
        return True
    base_cores = baseline.get("hardware_concurrency")
    return base_cores is not None and base_cores >= 2


def check_throughput(baseline: dict, current: dict, args) -> int:
    base_ratio = baseline["serial"]["batch_speedup"]
    cur_ratio = current["serial"]["batch_speedup"]
    floor = base_ratio * (1.0 - args.tolerance)
    comparable = drift_is_fatal(baseline, current)

    print(
        f"serial batch_speedup: baseline {base_ratio:.3f}x, "
        f"current {cur_ratio:.3f}x, floor {floor:.3f}x "
        f"(tolerance {args.tolerance:.0%})"
    )

    failed = False
    if cur_ratio < floor:
        message = (
            f"serial batch_speedup {cur_ratio:.3f}x regressed more than "
            f"{args.tolerance:.0%} below the committed {base_ratio:.3f}x"
        )
        if comparable:
            print(f"check_perf_baseline: FAIL — {message}", file=sys.stderr)
            failed = True
        else:
            print(
                "check_perf_baseline: WARN — committed baseline has "
                "single-core provenance and the core count differs; not "
                f"failing on: {message}",
                file=sys.stderr,
            )
    if cur_ratio < 1.0:
        # Machine-local sanity: stays fatal even across machine classes.
        print(
            f"check_perf_baseline: FAIL — batch path is slower than scalar "
            f"({cur_ratio:.3f}x < 1.0x)",
            file=sys.stderr,
        )
        failed = True

    if baseline["schema"] in ("fcm.bench.throughput.v3",
                              "fcm.bench.throughput.v4",
                              "fcm.bench.throughput.v5"):
        base_cache = baseline["cache"]["cache_speedup"]
        cur_cache = current["cache"]["cache_speedup"]
        cache_floor = base_cache * (1.0 - args.tolerance)
        print(
            f"cache_speedup: baseline {base_cache:.3f}x, "
            f"current {cur_cache:.3f}x, floor {cache_floor:.3f}x "
            f"(hard floor {CACHE_SPEEDUP_FLOOR:.1f}x)"
        )
        if cur_cache < cache_floor:
            message = (
                f"cache_speedup {cur_cache:.3f}x regressed more than "
                f"{args.tolerance:.0%} below the committed {base_cache:.3f}x"
            )
            if comparable:
                print(f"check_perf_baseline: FAIL — {message}", file=sys.stderr)
                failed = True
            else:
                print(
                    "check_perf_baseline: WARN — committed baseline has "
                    "single-core provenance and the core count differs; not "
                    f"failing on: {message}",
                    file=sys.stderr,
                )
        if cur_cache < CACHE_SPEEDUP_FLOOR:
            # In-run ratio on one machine: fatal regardless of machine class.
            print(
                f"check_perf_baseline: FAIL — heavy-flow cache speedup "
                f"{cur_cache:.3f}x is below the {CACHE_SPEEDUP_FLOOR:.1f}x "
                "acceptance floor on the skewed trace",
                file=sys.stderr,
            )
            failed = True

    if baseline["schema"] in ("fcm.bench.throughput.v4",
                              "fcm.bench.throughput.v5"):
        if check_sharded_scaling(baseline, current, args):
            failed = True

    if baseline["schema"] == "fcm.bench.throughput.v5":
        if check_kernels(baseline, current):
            failed = True
    return 1 if failed else 0


def check_kernels(baseline: dict, current: dict) -> int:
    """The v5 kernel-tier section: the AVX2 kernel's in-run advantage over
    the forced scalar tier, same process, same machine — fatal everywhere."""
    failed = False
    kernels = current.get("kernels")
    if kernels is None:
        print(
            "check_perf_baseline: FAIL — v5 run is missing the kernels "
            "section (bench too old for the baseline schema?)",
            file=sys.stderr,
        )
        return 1

    tiers = {row["tier"]: row for row in kernels.get("tiers", [])}
    print(
        f"kernels: cpu_supports_avx2 {kernels.get('cpu_supports_avx2')}, "
        f"active tier {kernels.get('active_tier')!r}, rows "
        f"{sorted(tiers)}"
    )
    if not kernels.get("cpu_supports_avx2"):
        # Nothing to hold to the floor on a non-AVX2 machine; the dispatch
        # matrix tests still cover scalar/autovec equivalence there.
        print(
            "check_perf_baseline: NOTE — no AVX2 on this machine; skipping "
            "the kernel-speedup floors"
        )
        return 0
    if "scalar" not in tiers or "avx2" not in tiers:
        print(
            "check_perf_baseline: FAIL — AVX2-capable machine but the "
            "kernels section lacks a scalar+avx2 row pair (was the bench run "
            "with FCM_FORCE_KERNEL set?)",
            file=sys.stderr,
        )
        return 1

    index_speedup = kernels["avx2_index_speedup_vs_scalar"]
    ingest_speedup = kernels["avx2_ingest_speedup_vs_scalar"]
    print(
        f"avx2 vs scalar: index {index_speedup:.3f}x "
        f"(floor {AVX2_INDEX_VS_SCALAR_FLOOR:.1f}x), ingest "
        f"{ingest_speedup:.3f}x (floor {AVX2_INGEST_VS_SCALAR_FLOOR:.1f}x)"
    )
    if index_speedup < AVX2_INDEX_VS_SCALAR_FLOOR:
        print(
            f"check_perf_baseline: FAIL — AVX2 index kernel is only "
            f"{index_speedup:.3f}x the scalar tier, below the "
            f"{AVX2_INDEX_VS_SCALAR_FLOOR:.1f}x acceptance floor",
            file=sys.stderr,
        )
        failed = True
    if ingest_speedup < AVX2_INGEST_VS_SCALAR_FLOOR:
        print(
            f"check_perf_baseline: FAIL — AVX2 end-to-end serial ingest is "
            f"slower than the scalar tier ({ingest_speedup:.3f}x < "
            f"{AVX2_INGEST_VS_SCALAR_FLOOR:.1f}x)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def check_sharded_scaling(baseline: dict, current: dict, args) -> int:
    """The v4 block-staged hand-off section: in-run ratio floors, plus the
    provenance rule that a single-core runner FAILS rather than warns."""
    failed = False
    cur_cores = current.get("hardware_concurrency")

    if cur_cores is None or cur_cores < 2:
        # The satellite fix: scheduling N workers onto one core measures
        # nothing about the hand-off, and warn-only behavior here is how the
        # repo's previous scaling baseline got recorded on a 1-core container.
        print(
            "check_perf_baseline: FAIL — sharded-scaling section requires "
            f"hardware_concurrency >= 2, current run has {cur_cores!r}; "
            "run the sharded guard on a multi-core machine (the rest of the "
            "guard already ran above)",
            file=sys.stderr,
        )
        return 1

    by_shards = {p["shards"]: p for p in current["sharded"]}
    base_by_shards = {p["shards"]: p for p in baseline["sharded"]}
    one = by_shards.get(1)
    if one is None:
        print(
            "check_perf_baseline: FAIL — sharded section has no 1-shard row",
            file=sys.stderr,
        )
        return 1

    print(
        f"sharded 1-shard: vs_serial {one['speedup_vs_serial']:.3f}x "
        f"(floor {SHARDED_VS_SERIAL_FLOOR:.1f}x), batch_speedup "
        f"{one['batch_speedup']:.3f}x (floor {SHARDED_BATCH_SPEEDUP_FLOOR:.1f}x)"
    )
    if one["speedup_vs_serial"] < SHARDED_VS_SERIAL_FLOOR:
        print(
            f"check_perf_baseline: FAIL — 1-shard sharded batch ingest runs at "
            f"{one['speedup_vs_serial']:.3f}x serial, below the "
            f"{SHARDED_VS_SERIAL_FLOOR:.1f}x hand-off-tax cap",
            file=sys.stderr,
        )
        failed = True
    if one["batch_speedup"] < SHARDED_BATCH_SPEEDUP_FLOOR:
        print(
            f"check_perf_baseline: FAIL — in-shard batch speedup collapsed to "
            f"{one['batch_speedup']:.3f}x, below the "
            f"{SHARDED_BATCH_SPEEDUP_FLOOR:.1f}x floor (batching did not "
            "survive the ring)",
            file=sys.stderr,
        )
        failed = True

    four = by_shards.get(4)
    if four is not None:
        agg = four["batch_packets_per_sec"] / one["batch_packets_per_sec"]
        print(
            f"sharded 4-vs-1 aggregate: {agg:.3f}x "
            f"(floor {SHARDED_4V1_FLOOR:.1f}x, needs >= 4 hardware threads)"
        )
        if agg < SHARDED_4V1_FLOOR:
            message = (
                f"4-shard aggregate throughput is only {agg:.3f}x the 1-shard "
                f"run (floor {SHARDED_4V1_FLOOR:.1f}x)"
            )
            if cur_cores >= 4:
                print(f"check_perf_baseline: FAIL — {message}", file=sys.stderr)
                failed = True
            else:
                print(
                    f"check_perf_baseline: WARN — {cur_cores} hardware threads "
                    f"cannot run 4 workers in parallel; not failing on: "
                    f"{message}",
                    file=sys.stderr,
                )

    # Baseline-relative drift on the per-shard-count vs-serial ratios: only
    # meaningful when the committed baseline itself has multi-core provenance
    # AND the machine classes match (absolute pps stays warn-only as ever).
    base_cores = baseline.get("hardware_concurrency")
    if base_cores is not None and base_cores >= 2:
        # Multi-core baseline provenance makes these in-run ratios binding on
        # every runner (drift_is_fatal); no warn-only escape hatch here.
        for shards, base_point in sorted(base_by_shards.items()):
            cur_point = by_shards.get(shards)
            if cur_point is None:
                continue
            base_ratio = base_point["speedup_vs_serial"]
            cur_ratio = cur_point["speedup_vs_serial"]
            floor = base_ratio * (1.0 - args.tolerance)
            if cur_ratio < floor:
                print(
                    f"check_perf_baseline: FAIL — {shards}-shard "
                    f"speedup_vs_serial {cur_ratio:.3f}x regressed more than "
                    f"{args.tolerance:.0%} below the committed "
                    f"{base_ratio:.3f}x",
                    file=sys.stderr,
                )
                failed = True
    else:
        print(
            "check_perf_baseline: NOTE — committed baseline's sharded section "
            f"was recorded with hardware_concurrency={base_cores!r}; skipping "
            "baseline-relative scaling drift (floors above still apply)"
        )
    return 1 if failed else 0


def check_agg(baseline: dict, current: dict, args) -> int:
    comparable = same_machine_class(baseline, current)
    failed = False

    base_bytes = baseline["snapshot_bytes"]
    cur_bytes = current["snapshot_bytes"]
    print(f"snapshot_bytes: baseline {base_bytes}, current {cur_bytes}")
    if base_bytes != cur_bytes:
        # Deterministic for a given seed/config on every machine: a drift is
        # a wire-format or bench-setup change, never noise.
        print(
            f"check_perf_baseline: FAIL — snapshot_bytes changed "
            f"({base_bytes} -> {cur_bytes}); the wire format or the bench "
            "configuration drifted. If intentional, re-record BENCH_agg.json.",
            file=sys.stderr,
        )
        failed = True

    for column in ("deliver", "query"):
        base_p99 = baseline[column]["p99_seconds"]
        cur_p99 = current[column]["p99_seconds"]
        ceiling = base_p99 * args.latency_factor
        print(
            f"{column} p99: baseline {base_p99 * 1e6:.1f}us, "
            f"current {cur_p99 * 1e6:.1f}us, "
            f"ceiling {ceiling * 1e6:.1f}us ({args.latency_factor:g}x)"
        )
        if cur_p99 > ceiling:
            message = (
                f"{column} p99 {cur_p99 * 1e6:.1f}us exceeds "
                f"{args.latency_factor:g}x the committed "
                f"{base_p99 * 1e6:.1f}us"
            )
            if comparable:
                print(f"check_perf_baseline: FAIL — {message}", file=sys.stderr)
                failed = True
            else:
                print(
                    "check_perf_baseline: WARN — core count differs from "
                    f"the baseline recording; not failing on: {message}",
                    file=sys.stderr,
                )
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly measured bench JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative drop in serial batch_speedup (default 0.15)",
    )
    parser.add_argument(
        "--latency-factor",
        type=float,
        default=3.0,
        help="allowed p99 latency growth factor for agg baselines (default 3)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline, is_baseline=True)
    current = load(args.current)

    if baseline["schema"] != current["schema"]:
        print(
            f"check_perf_baseline: schema mismatch — baseline "
            f"{baseline['schema']!r} vs current {current['schema']!r}",
            file=sys.stderr,
        )
        return 2

    describe("baseline", baseline)
    describe("current ", current)
    if not same_machine_class(baseline, current):
        print(
            "check_perf_baseline: WARN — hardware_concurrency differs (or is "
            "missing); machine-bound regressions will warn instead of fail"
        )

    if baseline["schema"].startswith("fcm.bench.throughput."):
        result = check_throughput(baseline, current, args)
    else:
        result = check_agg(baseline, current, args)

    if result == 0:
        print("check_perf_baseline: PASS")
    return result


if __name__ == "__main__":
    sys.exit(main())
