#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace fcm::metrics {

ClassificationScores classification_scores(std::span<const flow::FlowKey> reported,
                                           std::span<const flow::FlowKey> actual) {
  ClassificationScores scores;
  const std::unordered_set<flow::FlowKey> actual_set(actual.begin(), actual.end());
  const std::unordered_set<flow::FlowKey> reported_set(reported.begin(), reported.end());
  scores.reported = reported_set.size();
  scores.actual = actual_set.size();
  for (const flow::FlowKey key : reported_set) {
    if (actual_set.contains(key)) ++scores.true_positives;
  }
  if (scores.reported > 0) {
    scores.precision = static_cast<double>(scores.true_positives) /
                       static_cast<double>(scores.reported);
  }
  if (scores.actual > 0) {
    scores.recall = static_cast<double>(scores.true_positives) /
                    static_cast<double>(scores.actual);
  }
  if (scores.precision + scores.recall > 0.0) {
    scores.f1 = 2.0 * scores.precision * scores.recall /
                (scores.precision + scores.recall);
  }
  return scores;
}

double relative_error(double estimate, double truth) {
  if (truth == 0.0) throw std::invalid_argument("relative_error: zero truth");
  return std::abs(estimate - truth) / std::abs(truth);
}

Summary summarize(std::vector<double> samples) {
  Summary summary;
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  double total = 0.0;
  for (const double v : samples) total += v;
  summary.mean = total / static_cast<double>(samples.size());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  summary.p10 = at(0.10);
  summary.p90 = at(0.90);
  return summary;
}

}  // namespace fcm::metrics
