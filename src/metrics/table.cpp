#include "metrics/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fcm::metrics {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out, bool with_csv) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  out << "== " << title_ << " ==\n";
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    out << '\n';
  };
  line(columns_);
  for (const auto& row : rows_) line(row);
  if (with_csv) {
    out << "# csv," << title_ << '\n';
    const auto csv_line = [&](const std::vector<std::string>& cells) {
      out << "# ";
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) out << ',';
        out << cells[c];
      }
      out << '\n';
    };
    csv_line(columns_);
    for (const auto& row : rows_) csv_line(row);
  }
  out << '\n';
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream stream;
  stream << std::fixed << std::setprecision(precision) << value;
  return stream.str();
}

std::string Table::sci(double value, int precision) {
  std::ostringstream stream;
  stream << std::scientific << std::setprecision(precision) << value;
  return stream.str();
}

}  // namespace fcm::metrics
