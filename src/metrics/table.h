// Aligned-text table printing for the benchmark harnesses: every bench
// prints the paper's rows/series through this, so output stays uniform and
// machine-scrapable (a CSV block follows each table).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fcm::metrics {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out, bool with_csv = true) const;

  static std::string fmt(double value, int precision = 3);
  static std::string sci(double value, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fcm::metrics
