// Shared experiment plumbing for the bench harnesses.
#pragma once

#include <cstdint>
#include <span>

#include "flow/synthetic.h"
#include "flow/trace.h"
#include "metrics/metrics.h"
#include "sketch/frequency_estimator.h"

namespace fcm::metrics {

// Feeds every packet of `trace` into `estimator`.
void feed(sketch::FrequencyEstimator& estimator, const flow::Trace& trace);

// ARE/AAE of `estimator` against the exact flow sizes.
SizeErrors evaluate_sizes(const sketch::FrequencyEstimator& estimator,
                          const flow::GroundTruth& truth);

// Heavy hitters by query: every true flow whose *estimate* crosses the
// threshold is reported (how sketches without key storage are evaluated).
std::vector<flow::FlowKey> heavy_hitters_by_query(
    const sketch::FrequencyEstimator& estimator, const flow::GroundTruth& truth,
    std::uint64_t threshold);

// Trace scale for benches: 1.0 reproduces the paper's 20M-packet windows.
// Controlled by the FCM_SCALE environment variable ("full", or a number in
// (0, 1]); the default keeps bench runtimes reasonable on one core.
double bench_scale(double default_scale = 0.15);

// The paper's heavy-hitter threshold: 0.05% of the packets in the trace.
std::uint64_t heavy_hitter_threshold(const flow::GroundTruth& truth);

}  // namespace fcm::metrics
