#include "metrics/evaluator.h"

#include <cstdlib>
#include <string>

namespace fcm::metrics {

void feed(sketch::FrequencyEstimator& estimator, const flow::Trace& trace) {
  for (const flow::Packet& packet : trace.packets()) {
    estimator.update(packet.key);
  }
}

SizeErrors evaluate_sizes(const sketch::FrequencyEstimator& estimator,
                          const flow::GroundTruth& truth) {
  return size_errors(truth.flow_sizes(),
                     [&](flow::FlowKey key) { return estimator.query(key); });
}

std::vector<flow::FlowKey> heavy_hitters_by_query(
    const sketch::FrequencyEstimator& estimator, const flow::GroundTruth& truth,
    std::uint64_t threshold) {
  std::vector<flow::FlowKey> reported;
  for (const auto& [key, size] : truth.flow_sizes()) {
    if (estimator.query(key) >= threshold) reported.push_back(key);
  }
  return reported;
}

double bench_scale(double default_scale) {
  // getenv is read-only here and nothing in the tree calls setenv, so the
  // data race concurrency-mt-unsafe guards against cannot occur.
  const char* env = std::getenv("FCM_SCALE");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || *env == '\0') return default_scale;
  const std::string value(env);
  if (value == "full") return 1.0;
  try {
    const double scale = std::stod(value);
    if (scale > 0.0 && scale <= 1.0) return scale;
  } catch (...) {
  }
  return default_scale;
}

std::uint64_t heavy_hitter_threshold(const flow::GroundTruth& truth) {
  return std::max<std::uint64_t>(1, truth.total_packets() / 2000);  // 0.05%
}

}  // namespace fcm::metrics
