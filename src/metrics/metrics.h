// Evaluation metrics (paper §7.2).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "flow/flow_key.h"

namespace fcm::metrics {

// ARE: (1/N) * sum |x̂ - x| / x, over true flows.
// AAE: (1/N) * sum |x̂ - x|.
struct SizeErrors {
  double are = 0.0;
  double aae = 0.0;
};

// `estimate` is called once per true flow.
template <typename QueryFn>
SizeErrors size_errors(const std::unordered_map<flow::FlowKey, std::uint64_t>& truth,
                       const QueryFn& estimate) {
  SizeErrors errors;
  if (truth.empty()) return errors;
  for (const auto& [key, true_size] : truth) {
    const double diff = std::abs(static_cast<double>(estimate(key)) -
                                 static_cast<double>(true_size));
    errors.aae += diff;
    errors.are += diff / static_cast<double>(true_size);
  }
  const double n = static_cast<double>(truth.size());
  errors.are /= n;
  errors.aae /= n;
  return errors;
}

// Precision / recall / F1 of a reported set against the true set.
struct ClassificationScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t true_positives = 0;
  std::size_t reported = 0;
  std::size_t actual = 0;
};

ClassificationScores classification_scores(std::span<const flow::FlowKey> reported,
                                           std::span<const flow::FlowKey> actual);

// Relative error |x̂ - x| / x (x must be non-zero).
double relative_error(double estimate, double truth);

// Mean and percentile helpers for error-bar reporting across seeds.
struct Summary {
  double mean = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
};
Summary summarize(std::vector<double> samples);

}  // namespace fcm::metrics
