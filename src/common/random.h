// Deterministic PRNG and samplers for workload generation.
//
// xoshiro256++ is implemented from scratch so trace generation is
// reproducible across standard-library implementations (std::mt19937 output
// is portable but distributions are not).
#pragma once

#include <cstdint>
#include <vector>

namespace fcm::common {

// xoshiro256++ by Blackman & Vigna (public-domain algorithm, reimplemented).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }
  result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t s_[4];
};

// Zipf(alpha) sampler over ranks {1, ..., n}: P(rank = r) ∝ r^-alpha.
// Uses an inverse-CDF table; construction is O(n), sampling O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t n() const noexcept { return cdf_.size(); }
  double alpha() const noexcept { return alpha_; }

  // Returns a rank in [1, n].
  std::size_t sample(Xoshiro256& rng) const noexcept;

  // Expected probability mass of rank r (1-based).
  double probability(std::size_t rank) const;

 private:
  double alpha_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

}  // namespace fcm::common
