#include "common/hash.h"

#include <cstring>

namespace fcm::common {
namespace {

using detail::rot32;

inline void mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) noexcept {
  a -= c; a ^= rot32(c, 4);  c += b;
  b -= a; b ^= rot32(a, 6);  a += c;
  c -= b; c ^= rot32(b, 8);  b += a;
  a -= c; a ^= rot32(c, 16); c += b;
  b -= a; b ^= rot32(a, 19); a += c;
  c -= b; c ^= rot32(b, 4);  b += a;
}

// The final mix lives in hash.h (detail::final_mix32) so the inline 4-byte
// specialization and this general routine cannot drift apart.
inline void final_mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) noexcept {
  detail::final_mix32(a, b, c);
}

inline std::uint32_t load_u32(const std::byte* p, std::size_t n) noexcept {
  // Loads up to 4 bytes little-endian, zero-padded. memcpy keeps this
  // well-defined regardless of alignment.
  std::uint32_t v = 0;
  std::memcpy(&v, p, n);
  return v;
}

}  // namespace

std::uint32_t bob_hash(std::span<const std::byte> data, std::uint32_t seed) noexcept {
  std::uint32_t a = 0xdeadbeef + static_cast<std::uint32_t>(data.size()) + seed;
  std::uint32_t b = a;
  std::uint32_t c = a;

  const std::byte* p = data.data();
  std::size_t length = data.size();

  while (length > 12) {
    a += load_u32(p, 4);
    b += load_u32(p + 4, 4);
    c += load_u32(p + 8, 4);
    mix(a, b, c);
    p += 12;
    length -= 12;
  }

  if (length > 0) {
    if (length > 8) {
      a += load_u32(p, 4);
      b += load_u32(p + 4, 4);
      c += load_u32(p + 8, length - 8);
    } else if (length > 4) {
      a += load_u32(p, 4);
      b += load_u32(p + 4, length - 4);
    } else {
      a += load_u32(p, length);
    }
    final_mix(a, b, c);
  }
  return c;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

SeededHash make_hash(std::uint64_t master_seed, std::uint32_t function_index) noexcept {
  const std::uint64_t derived = mix64(master_seed + 0x100000001b3ull * (function_index + 1));
  return SeededHash{static_cast<std::uint32_t>(derived ^ (derived >> 32))};
}

}  // namespace fcm::common
