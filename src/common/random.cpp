#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/hash.h"

namespace fcm::common {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // SplitMix64 seeding, as recommended by the xoshiro authors.
  std::uint64_t state = seed;
  for (auto& word : s_) {
    state += 0x9e3779b97f4a7c15ull;
    word = mix64(state);
  }
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire-style rejection: accept when the low product part is unbiased.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  if (alpha < 0.0) throw std::invalid_argument("ZipfSampler: alpha must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    total += std::pow(static_cast<double>(r), -alpha);
    cdf_[r - 1] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Xoshiro256& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank == 0 || rank > cdf_.size()) {
    throw std::out_of_range("ZipfSampler::probability: rank out of range");
  }
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return cdf_[rank - 1] - lo;
}

}  // namespace fcm::common
