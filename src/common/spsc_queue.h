// Lock-free single-producer / single-consumer ring buffer.
//
// The sharded ingestion runtime (src/runtime/) fans packets out to shard
// workers over one of these per shard: the driver thread is the single
// producer, the shard worker the single consumer. The design is the classic
// bounded ring with monotonic 64-bit produce/consume cursors (they never
// wrap in practice: 2^64 items at 10^9 items/s is ~585 years) plus
// producer/consumer-local *cached* copies of the opposite cursor, so the hot
// path touches a shared cache line only when the cached view says the queue
// looks full/empty — the trick DPDK's rte_ring and folly::ProducerConsumerQueue
// use to keep cross-core traffic off the fast path.
//
// Memory ordering: the producer publishes items with a release store of
// head_; the consumer acquires head_ before reading slots (and vice versa
// for tail_ on the return path). This is the minimal correct protocol and is
// what makes the runtime TSan-clean (CI runs test_runtime under
// FCM_SANITIZE=thread).
//
// Batched enqueue/dequeue amortize the atomic operations: one release store
// publishes a whole span. Single-element ops are thin wrappers.
//
// Contract: exactly one producer thread and one consumer thread. The roles
// are expressed as thread-safety capabilities (producer_role() /
// consumer_role(), see common/thread_annotations.h): push entry points
// require the producer role, pop entry points the consumer role, and the
// cached cursor copies are FCM_GUARDED_BY their owning role. A caller thread
// declares its role once per scope with assume_producer() /
// assume_consumer() — runtime no-ops that let Clang's -Wthread-safety prove
// the single-producer/single-consumer discipline at every call site.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/contracts.h"
#include "common/thread_annotations.h"

namespace fcm::common {

// Destructive interference distance; 64 bytes on every target we build for.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscQueue slots are copied raw between threads");

 public:
  // `capacity` slots, all usable; must be a power of two >= 2 so index
  // reduction is a mask.
  explicit SpscQueue(std::size_t capacity) : mask_(capacity - 1) {
    FCM_REQUIRE(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                "SpscQueue: capacity must be a power of two >= 2");
    buffer_.resize(capacity);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  // Approximate occupancy; exact only when both sides are quiescent. For
  // monitoring, not for synchronization decisions.
  std::size_t size_approx() const noexcept {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  // --- thread roles --------------------------------------------------------

  // Called once per scope by the thread that IS the producer/consumer; tells
  // the thread-safety analysis (at zero runtime cost) which side of the ring
  // the surrounding code owns.
  void assume_producer() const FCM_ASSERT_CAPABILITY(producer_role_) {}
  void assume_consumer() const FCM_ASSERT_CAPABILITY(consumer_role_) {}

  // --- producer side -------------------------------------------------------

  // Enqueues as many items from `items` as fit; returns how many were taken.
  std::size_t try_push_bulk(std::span<const T> items) noexcept
      FCM_REQUIRES(producer_role_) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t room = capacity() - static_cast<std::size_t>(head - cached_tail_);
    if (room < items.size()) {
      // The cached view looks full: refresh from the shared cursor once.
      cached_tail_ = tail_.load(std::memory_order_acquire);
      room = capacity() - static_cast<std::size_t>(head - cached_tail_);
    }
    const std::size_t n = room < items.size() ? room : items.size();
    for (std::size_t i = 0; i < n; ++i) {
      buffer_[static_cast<std::size_t>(head + i) & mask_] = items[i];
    }
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  bool try_push(const T& item) noexcept FCM_REQUIRES(producer_role_) {
    return try_push_bulk(std::span<const T>(&item, 1)) == 1;
  }

  // --- consumer side -------------------------------------------------------

  // Dequeues up to `out.size()` items; returns how many were produced.
  std::size_t try_pop_bulk(std::span<T> out) noexcept
      FCM_REQUIRES(consumer_role_) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(cached_head_ - tail);
    if (avail < out.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(cached_head_ - tail);
    }
    const std::size_t n = avail < out.size() ? avail : out.size();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = buffer_[static_cast<std::size_t>(tail + i) & mask_];
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  bool try_pop(T& out) noexcept FCM_REQUIRES(consumer_role_) {
    return try_pop_bulk(std::span<T>(&out, 1)) == 1;
  }

 private:
  // The two thread roles (annotation-only; see assume_producer()).
  ThreadRole producer_role_;
  ThreadRole consumer_role_;

  // Shared cursors on their own cache lines; each side's cached view of the
  // opposite cursor lives with its owner (and is guarded by that owner's
  // role capability — the analysis rejects a consumer touching the
  // producer's cache and vice versa).
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};  // produced
  alignas(kCacheLineBytes) std::uint64_t cached_head_
      FCM_GUARDED_BY(consumer_role_) = 0;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};  // consumed
  alignas(kCacheLineBytes) std::uint64_t cached_tail_
      FCM_GUARDED_BY(producer_role_) = 0;
  alignas(kCacheLineBytes) std::size_t mask_;
  std::vector<T> buffer_;
};

}  // namespace fcm::common
