// Clang thread-safety annotations + the annotated lock primitives the
// concurrent layers build on (DESIGN.md §10).
//
// Two pieces:
//
//  1. FCM_GUARDED_BY / FCM_REQUIRES / FCM_ACQUIRE / ... — macro wrappers over
//     Clang's capability attributes. Under Clang they feed -Wthread-safety,
//     which proves at compile time that every access to an annotated member
//     happens with the right capability held (the CI job
//     `clang-thread-safety` builds the whole tree with
//     -Wthread-safety -Werror=thread-safety). Under GCC they expand to
//     nothing, so the annotations are free documentation there.
//
//  2. fcm::common::Mutex / MutexLock / ThreadRole — the capability types the
//     attributes refer to. std::mutex and std::lock_guard carry no
//     annotations in libstdc++, so Clang cannot see their acquire/release
//     semantics; Mutex is a zero-overhead annotated wrapper and MutexLock the
//     matching scoped lock (relockable, so it can be handed to
//     std::condition_variable_any::wait). ThreadRole is an annotation-only
//     capability expressing single-thread ownership disciplines that are not
//     locks — "only the SPSC producer thread", "only the driver thread" —
//     asserted (not acquired) at the owning thread's entry points.
//
// Annotation conventions for this repo (see DESIGN.md §10 for the catalog):
//  - every mutex-protected member carries FCM_GUARDED_BY(mutex_);
//  - private helpers that expect the lock held carry FCM_REQUIRES(mutex_)
//    on their *declaration* (Clang propagates it to the definition);
//  - single-thread state (SPSC cursors, driver staging) is guarded by a
//    ThreadRole; the owning code path calls role.assert_held() — a runtime
//    no-op that tells the analysis (and tools/fcm_lint.py's guarded-field
//    rule) which thread the surrounding scope belongs to.
#pragma once

#include <mutex>

// Attribute plumbing: real Clang attributes under Clang, no-ops elsewhere.
#if defined(__clang__)
#define FCM_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define FCM_THREAD_ANNOTATION_ATTRIBUTE_(x)  // GCC et al.: documentation only
#endif

// A type that represents a capability (a lock, or a thread-ownership role).
#define FCM_CAPABILITY(x) FCM_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// A RAII type that acquires a capability on construction and releases it on
// destruction (may also release/re-acquire mid-scope, e.g. around a
// condition-variable wait).
#define FCM_SCOPED_CAPABILITY FCM_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// Data members: may only be read/written while holding the capability.
#define FCM_GUARDED_BY(x) FCM_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
// Pointer members: the pointed-to data is protected by the capability.
#define FCM_PT_GUARDED_BY(x) FCM_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Functions: caller must hold the capability (checked at every call site).
#define FCM_REQUIRES(...) \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define FCM_REQUIRES_SHARED(...) \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

// Functions: acquire/release the capability (lock()/unlock() style).
#define FCM_ACQUIRE(...) \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define FCM_RELEASE(...) \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define FCM_TRY_ACQUIRE(...) \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// Functions: caller must NOT hold the capability (deadlock prevention).
#define FCM_EXCLUDES(...) \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Functions: assert (do not acquire) that the capability is held from here
// on — the escape hatch for ownership the analysis cannot see, e.g. "this
// function only ever runs on the producer thread".
#define FCM_ASSERT_CAPABILITY(...) \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(__VA_ARGS__))

// Functions: returns a reference to the capability guarding the object.
#define FCM_RETURN_CAPABILITY(x) \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Last resort: disable the analysis for one function (constructors tearing
// through not-yet-shared state, test scaffolding). Use sparingly and say why.
#define FCM_NO_THREAD_SAFETY_ANALYSIS \
  FCM_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace fcm::common {

// Annotated drop-in for std::mutex. Same cost — the annotations are
// compile-time only — but Clang understands lock()/unlock(), so members
// declared FCM_GUARDED_BY(a Mutex) are machine-checked.
class FCM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FCM_ACQUIRE() { mutex_.lock(); }
  void unlock() FCM_RELEASE() { mutex_.unlock(); }
  bool try_lock() FCM_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  // Declares (to the analysis only) that the current thread holds the lock.
  void assert_held() const FCM_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mutex_;
};

// Scoped lock for Mutex, annotated so Clang tracks the critical section.
// Relockable: unlock()/lock() let std::condition_variable_any::wait release
// and re-take it, and the destructor only unlocks when currently held —
// the early-release pattern the coordinator uses stays correct.
class FCM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FCM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FCM_RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() FCM_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }
  void lock() FCM_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

// An annotation-only capability naming a thread-ownership role rather than a
// lock: "the single SPSC producer", "the one driver thread", "the
// EpochManager's owning thread". Nothing acquires it at runtime — the code
// path that is the role calls assert_held(), an empty inline function that
// (under Clang) marks the capability held for the rest of the scope. That
// lets FCM_GUARDED_BY express cursor/staging ownership the same way it
// expresses mutex protection, and turns "this must only be called from the
// worker thread" comments into analyzable facts.
class FCM_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void assert_held() const FCM_ASSERT_CAPABILITY(this) {}
};

}  // namespace fcm::common
