#include "common/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

namespace fcm::common::simd {

namespace {

// -1 = no override; otherwise the int value of the forced KernelTier.
// Relaxed everywhere: the value is a pure dispatch hint — every tier
// produces bit-identical results, so no ordering with other memory is
// needed, only atomicity of the int itself.
std::atomic<int> g_forced_tier{-1};

KernelTier probe_kernel_tier() noexcept {
  return cpu_supports_avx2() ? KernelTier::kAvx2 : KernelTier::kAutovec;
}

}  // namespace

std::string_view kernel_tier_name(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAutovec:
      return "autovec";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<KernelTier> parse_kernel_tier(std::string_view name) noexcept {
  if (name == "scalar") return KernelTier::kScalar;
  if (name == "autovec") return KernelTier::kAutovec;
  if (name == "avx2") return KernelTier::kAvx2;
  return std::nullopt;
}

bool cpu_supports_avx2() noexcept {
#if FCM_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelTier resolve_kernel_tier() noexcept {
  if (const char* env = std::getenv("FCM_FORCE_KERNEL")) {
    if (const auto forced = parse_kernel_tier(env)) {
      if (*forced == KernelTier::kAvx2 && !cpu_supports_avx2()) {
        return KernelTier::kAutovec;
      }
      return *forced;
    }
    // Unrecognized value: fall through to the probe rather than abort —
    // the bench records the raw env string so the mistake is visible.
  }
  return probe_kernel_tier();
}

KernelTier active_kernel_tier() noexcept {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelTier>(forced);
  // Magic-static: resolved once (env + cpuid), then immutable. The guard's
  // acquire check is the only cost after the first call, and callers hit
  // this once per kBatchBlock-sized block, not per key.
  static const KernelTier resolved = resolve_kernel_tier();
  return resolved;
}

void force_kernel_tier(std::optional<KernelTier> tier) noexcept {
  g_forced_tier.store(tier ? static_cast<int>(*tier) : -1,
                      std::memory_order_relaxed);
}

}  // namespace fcm::common::simd
