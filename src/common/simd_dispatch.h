// Runtime CPU dispatch for the batched ingest kernels (DESIGN.md §14).
//
// Three tiers share one contract — bit-identical output to the scalar
// per-key path:
//
//   kScalar   the pre-batching shape: one bob_hash_value + fast_range32 per
//             key, loads typed through the key struct (the form GCC declines
//             to auto-vectorize). Ground truth for the dispatch-matrix tests
//             and the denominator of the bench speedup columns.
//   kAutovec  the PR-5 kernel: keys staged into the output array, then a
//             uniform u32 -> u32 in-place loop the auto-vectorizer packs.
//   kAvx2     hand-written 8-lane AVX2 (fcm_kernel_avx2.cpp): vectorized
//             BobHash + Lemire fast-range, and a gather/compare/store level-1
//             saturating-increment fast path for FcmTree::apply_block.
//
// The tier is resolved once per process: FCM_FORCE_KERNEL=scalar|autovec|avx2
// wins if set (an avx2 request on a CPU without AVX2 falls back to autovec),
// otherwise the cpuid probe picks kAvx2 when available and kAutovec when not.
// Tests and the bench force tiers in-process via force_kernel_tier().
//
// This header deliberately contains no intrinsics and never includes
// <immintrin.h>: the AVX2 entry points below are declared on plain pointers
// so only fcm_kernel_avx2.cpp (the sole TU built with -mavx2) touches vector
// types. tools/fcm_lint.py rule `simd-confinement` enforces that split.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

// x86-64 is the only ISA we hand-vectorize for; everything else resolves to
// kAutovec at most. (MSVC would need a cpuid path; this tree is gcc/clang.)
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define FCM_SIMD_X86 1
#else
#define FCM_SIMD_X86 0
#endif

namespace fcm::common::simd {

enum class KernelTier : int {
  kScalar = 0,
  kAutovec = 1,
  kAvx2 = 2,
};

// Stable lowercase names, matching the FCM_FORCE_KERNEL spellings.
std::string_view kernel_tier_name(KernelTier tier) noexcept;

// Parses a FCM_FORCE_KERNEL value; nullopt for anything unrecognized.
std::optional<KernelTier> parse_kernel_tier(std::string_view name) noexcept;

// True when the running CPU supports AVX2 (false off x86).
bool cpu_supports_avx2() noexcept;

// Resolves the tier from scratch: FCM_FORCE_KERNEL if set and valid (with
// the avx2-on-unsupported-CPU fallback to autovec), else the cpuid probe.
// Ignores force_kernel_tier(); exists so tests can pin the env contract.
KernelTier resolve_kernel_tier() noexcept;

// The tier every batched kernel dispatches on. First call resolves and
// caches; later calls are a single relaxed atomic load. Out-of-line on
// purpose — callers amortize it once per kBatchBlock, not per key.
KernelTier active_kernel_tier() noexcept;

// Test/bench hook: overrides active_kernel_tier() process-wide until called
// with nullopt (which restores the cached resolve_kernel_tier() result).
// Not for concurrent use with live ingest: switching tiers mid-batch is
// benign for correctness (every tier is bit-exact) but makes timings lie.
void force_kernel_tier(std::optional<KernelTier> tier) noexcept;

#if FCM_SIMD_X86
// --- AVX2 kernel entry points (defined in src/fcm/fcm_kernel_avx2.cpp) ---
// Callers must check active_kernel_tier() == kAvx2 first; the symbols exist
// whenever FCM_SIMD_X86 but execute AVX2 instructions unconditionally.

// 8-lane bob_hash_u32 over `n` contiguous 4-byte keys. `keys` must point to
// n * 4 readable bytes (FlowKey or uint32_t — same bytes either way).
void avx2_hash_batch_u32(const void* keys, std::size_t n, std::uint32_t seed,
                         std::uint32_t* hashes) noexcept;

// Fused hash + Lemire fast-range: idx[i] = (u64(bob(keys[i])) * width) >> 32.
// When `raw_hashes` is non-null the pre-reduction hashes are stored too (the
// single-pass sweep reuses them for the cardinality sidecars).
void avx2_index_batch_u32(const void* keys, std::size_t n, std::uint32_t seed,
                          std::uint32_t width, std::uint32_t* idx,
                          std::uint32_t* raw_hashes) noexcept;

// Level-1 saturating-increment fast path: processes leading groups of 8
// indices (gather counters, verify every lane < cap and no duplicate index
// within the group, increment, store back) and returns how many indices it
// consumed — always a multiple of 8, stopping at the first group with an
// at-cap lane or an intra-group duplicate, or at the <8 tail. The caller
// scalar-processes at most 8 entries (running the add_at carry walk for
// overflowed lanes) and calls again, preserving exact per-key order so
// promotion counts and counter state stay bit-identical to the scalar path.
// When `new_values` is non-null the post-increment counter value of every
// consumed index is stored at the matching offset (conservative-update
// callers fold these into their running minima). Indices must be < 2^31
// (vpgatherdd treats them as signed); FcmConfig keeps stage widths far below
// that.
std::size_t avx2_apply_saturating(std::uint32_t* level1,
                                  const std::uint32_t* idx, std::size_t n,
                                  std::uint32_t cap,
                                  std::uint32_t* new_values) noexcept;
#endif  // FCM_SIMD_X86

}  // namespace fcm::common::simd
