// Small bit-manipulation helpers shared by counter implementations.
#pragma once

#include <bit>
#include <cstdint>

// Software prefetch for the batched ingest kernel (DESIGN.md §9): request a
// cache line for writing with full temporal locality. A hint only — no
// observable semantics — so the no-op fallback keeps non-GNU compilers
// building bit-exact binaries.
#if defined(__GNUC__) || defined(__clang__)
#define FCM_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 3)
#else
#define FCM_PREFETCH_WRITE(addr) ((void)(addr))
#endif

namespace fcm::common {

// Largest value representable in `bits` bits (bits in [1, 64]).
constexpr std::uint64_t max_value_for_bits(unsigned bits) noexcept {
  return bits >= 64 ? ~0ull : (1ull << bits) - 1;
}

// FCM node semantics (paper §3.1, Figure 3): a b-bit node counts 0..2^b-2;
// the all-ones pattern 2^b-1 marks "saturated at 2^b-2, overflowed".
constexpr std::uint64_t fcm_counting_max(unsigned bits) noexcept {
  return max_value_for_bits(bits) - 1;  // 2^b - 2
}
constexpr std::uint64_t fcm_overflow_marker(unsigned bits) noexcept {
  return max_value_for_bits(bits);  // 2^b - 1
}

constexpr bool is_power_of_two(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

// Rounds v down/up to a power of two (v must be > 0 for round_up).
constexpr std::uint64_t round_down_pow2(std::uint64_t v) noexcept {
  return v == 0 ? 0 : std::bit_floor(v);
}
constexpr std::uint64_t round_up_pow2(std::uint64_t v) noexcept {
  return std::bit_ceil(v);
}

}  // namespace fcm::common
