// Contract macros and checked conversions for the whole tree.
//
// Three macro families, mirroring the classic design-by-contract split:
//
//   FCM_REQUIRE(cond, msg)  — precondition on caller-supplied input
//                             (bad configs, out-of-range indices, ...)
//   FCM_ASSERT(cond, msg)   — internal consistency mid-computation
//   FCM_ENSURE(cond, msg)   — postcondition / result sanity
//
// The enforcement level is chosen at compile time via FCM_CONTRACT_LEVEL:
//
//   0  off    — contracts compile to nothing (benchmark-only; the repo's
//               input-validation tests require level >= 1)
//   1  throw  — violations throw fcm::common::ContractViolation (default)
//   2  abort  — violations print to stderr and abort() (sanitizer/CI runs,
//               where an exception would unwind past the corrupted state)
//
// ContractViolation derives from std::invalid_argument so pre-existing
// callers catching std::invalid_argument / std::logic_error keep working.
//
// The message expression is evaluated lazily — only on violation — so it
// may build std::strings without a hot-path cost.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <type_traits>

#ifndef FCM_CONTRACT_LEVEL
#define FCM_CONTRACT_LEVEL 1
#endif

namespace fcm::common {

// Thrown (at level 1) when a contract is violated. what() carries the
// contract kind, the failed condition, the source location, and the
// caller-supplied message.
class ContractViolation : public std::invalid_argument {
 public:
  ContractViolation(const char* kind, const char* condition, const char* file,
                    int line, const std::string& message)
      : std::invalid_argument(format(kind, condition, file, line, message)),
        kind_(kind) {}

  // "REQUIRE", "ASSERT", or "ENSURE".
  const char* kind() const noexcept { return kind_; }

 private:
  static std::string format(const char* kind, const char* condition,
                            const char* file, int line,
                            const std::string& message) {
    std::string out;
    out.reserve(128);
    out += "contract violation [";
    out += kind;
    out += "] at ";
    out += file;
    out += ":";
    out += std::to_string(line);
    out += ": (";
    out += condition;
    out += ") — ";
    out += message;
    return out;
  }

  const char* kind_;
};

namespace detail {

[[noreturn]] inline void contract_fail_throw(const char* kind,
                                             const char* condition,
                                             const char* file, int line,
                                             const std::string& message) {
  throw ContractViolation(kind, condition, file, line, message);
}

[[noreturn]] inline void contract_fail_abort(const char* kind,
                                             const char* condition,
                                             const char* file, int line,
                                             const std::string& message) {
  std::fprintf(stderr, "contract violation [%s] at %s:%d: (%s) — %s\n", kind,
               file, line, condition, message.c_str());
  std::abort();
}

}  // namespace detail

}  // namespace fcm::common

#if FCM_CONTRACT_LEVEL == 0
#define FCM_CONTRACT_IMPL_(kind, cond, msg) ((void)0)
#elif FCM_CONTRACT_LEVEL == 1
#define FCM_CONTRACT_IMPL_(kind, cond, msg)                              \
  ((cond) ? (void)0                                                     \
          : ::fcm::common::detail::contract_fail_throw(kind, #cond,     \
                                                       __FILE__, __LINE__, \
                                                       (msg)))
#else
#define FCM_CONTRACT_IMPL_(kind, cond, msg)                              \
  ((cond) ? (void)0                                                     \
          : ::fcm::common::detail::contract_fail_abort(kind, #cond,     \
                                                       __FILE__, __LINE__, \
                                                       (msg)))
#endif

#define FCM_REQUIRE(cond, msg) FCM_CONTRACT_IMPL_("REQUIRE", cond, msg)
#define FCM_ASSERT(cond, msg) FCM_CONTRACT_IMPL_("ASSERT", cond, msg)
#define FCM_ENSURE(cond, msg) FCM_CONTRACT_IMPL_("ENSURE", cond, msg)

// FCM_CHECKED_ONLY(stmt): executes `stmt` only in CHECKED builds
// (-DFCM_CHECKED=ON). Used to run deep check_invariants() sweeps on hot
// paths without taxing release builds.
#ifdef FCM_CHECKED
#define FCM_CHECKED_ONLY(stmt) \
  do {                         \
    stmt;                      \
  } while (0)
#else
#define FCM_CHECKED_ONLY(stmt) \
  do {                         \
  } while (0)
#endif

namespace fcm::common {

// Value-preserving narrowing conversion for counter types. The only
// sanctioned way to narrow a counter in src/fcm and src/pisa — a bare
// narrowing static_cast there is rejected by tools/fcm_lint.py.
template <typename To, typename From>
constexpr To checked_narrow(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_narrow is for integral types");
  const To narrowed = static_cast<To>(value);
  FCM_ASSERT(static_cast<From>(narrowed) == value &&
                 ((narrowed < To{}) == (value < From{})),
             "narrowing conversion lost value");
  return narrowed;
}

}  // namespace fcm::common
