// Hash functions used throughout the FCM framework.
//
// The paper (§7.1) recommends BobHash [Henke et al., CCR 2008] for sketching;
// we implement Bob Jenkins' lookup3 from scratch plus a cheap 64-bit mixer
// used for seeding and for splitting one hash into independent sub-hashes.
//
// Table-index reduction uses Lemire's multiply-shift fast range
// ("Fast random integer generation in an interval", 2019): for a uniform
// 32-bit hash h and a width w < 2^32, (h * w) >> 32 is uniform over [0, w)
// up to the same floor rounding a modulo has, but costs one multiply instead
// of a division. See DESIGN.md §9 for the unbiasedness argument.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "common/simd_dispatch.h"

namespace fcm::common {

// Block size of the batched ingest kernel (DESIGN.md §9): index_batch
// consumers stage hashes/indices in stack arrays of this many entries, and
// the prefetch distance of the batched sketch updates is exactly one block.
inline constexpr std::size_t kBatchBlock = 64;

namespace detail {

inline constexpr std::uint32_t rot32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

// lookup3's final mix, shared by the out-of-line general hash (hash.cpp) and
// the inline 4-byte specialization below — they must stay bit-identical.
inline constexpr void final_mix32(std::uint32_t& a, std::uint32_t& b,
                                  std::uint32_t& c) noexcept {
  c ^= b; c -= rot32(b, 14);
  a ^= c; a -= rot32(c, 11);
  b ^= a; b -= rot32(a, 25);
  c ^= b; c -= rot32(b, 16);
  a ^= c; a -= rot32(c, 4);
  b ^= a; b -= rot32(a, 14);
  c ^= b; c -= rot32(b, 24);
}

}  // namespace detail

// Bob Jenkins' lookup3 hash (public-domain algorithm, reimplemented).
// Deterministic for a given (data, seed) pair across platforms.
std::uint32_t bob_hash(std::span<const std::byte> data, std::uint32_t seed) noexcept;

// Inline specialization of bob_hash for exactly-4-byte values, bit-identical
// to the general routine (lookup3 with length 4 takes the single-block tail
// path: a += word, final mix). The batched ingest kernel hashes flow keys
// through this so the whole hash block inlines into one tight loop the
// compiler can pipeline; test_hash pins the equivalence.
inline constexpr std::uint32_t bob_hash_u32(std::uint32_t value,
                                            std::uint32_t seed) noexcept {
  std::uint32_t a = 0xdeadbeef + 4u + seed;
  std::uint32_t b = a;
  std::uint32_t c = a;
  a += value;
  detail::final_mix32(a, b, c);
  return c;
}

// Convenience overload for trivially-copyable values (flow keys, integers).
template <typename T>
std::uint32_t bob_hash_value(const T& value, std::uint32_t seed) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (sizeof(T) == sizeof(std::uint32_t)) {
    // Same bytes, same native-endian load the general tail path performs.
    return bob_hash_u32(std::bit_cast<std::uint32_t>(value), seed);
  } else {
    return bob_hash(std::as_bytes(std::span<const T, 1>{&value, 1}), seed);
  }
}

// SplitMix64 finalizer: a strong 64-bit mixer. Used to derive independent
// seeds and to fold 64-bit keys.
std::uint64_t mix64(std::uint64_t x) noexcept;

// Lemire multiply-shift reduction of a 32-bit hash onto [0, width).
// Precondition: width <= 2^32 (every table in this tree is far smaller).
inline constexpr std::size_t fast_range32(std::uint32_t hash,
                                          std::size_t width) noexcept {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(hash) * static_cast<std::uint64_t>(width)) >>
      32);
}

// A seeded hash function object: one member of a pairwise-independent family.
// Instances with different `seed` values behave as independent hash functions
// (the property CM/FCM analyses require).
class SeededHash {
 public:
  constexpr SeededHash() noexcept : seed_(0) {}
  explicit constexpr SeededHash(std::uint32_t seed) noexcept : seed_(seed) {}

  std::uint32_t seed() const noexcept { return seed_; }

  template <typename T>
  std::uint32_t operator()(const T& value) const noexcept {
    return bob_hash_value(value, seed_);
  }

  // Hash reduced to a table index in [0, width) via fast-range (see above).
  template <typename T>
  std::size_t index(const T& value, std::size_t width) const noexcept {
    return fast_range32((*this)(value), width);
  }

  // Bulk interface of index(): hashes `keys` and writes the reduced indices
  // into `out` (out.size() >= keys.size()). Bit-identical to calling index()
  // per key; exists so the batched ingest kernel can hash a whole block in
  // one tight inline loop — independent hashes pipeline across iterations
  // instead of each serializing against its table load, and with FCM_NATIVE
  // the compiler is free to vectorize the block.
  template <typename T>
  void index_batch(std::span<const T> keys, std::size_t width,
                   std::span<std::size_t> out) const noexcept {
    const std::size_t n = keys.size();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = fast_range32(bob_hash_value(keys[i], seed_), width);
    }
  }

  // 32-bit-output variant of index_batch, used by the hot kernels. A
  // fast-range index is always < width < 2^32, so narrowing loses nothing —
  // but a uniform 32-bit loop (32-bit keys in, 32-bit indices out) is what
  // the auto-vectorizer actually packs; the widening store of the size_t
  // variant defeats it ("no vectype" under GCC 12). Bit-identical values to
  // the span<size_t> overload (tests/test_batch_equivalence.cpp).
  //
  // Routed through the kernel tier dispatch (simd_dispatch.h) for 4-byte
  // keys: equivalent to index_hash_batch without the raw-hash output.
  template <typename T>
  void index_batch(std::span<const T> keys, std::size_t width,
                   std::span<std::uint32_t> out) const noexcept {
    index_hash_batch(keys, width, out, {});
  }

  // Raw (pre-reduction) bob hashes for a whole block, behind the same tier
  // dispatch. The single-pass sweep (DESIGN.md §14) feeds these to the
  // cardinality sidecars instead of re-hashing.
  template <typename T>
  void hash_batch(std::span<const T> keys,
                  std::span<std::uint32_t> out) const noexcept {
    const std::size_t n = keys.size();
    if constexpr (sizeof(T) == sizeof(std::uint32_t)) {
      const simd::KernelTier tier = simd::active_kernel_tier();
#if FCM_SIMD_X86
      if (tier == simd::KernelTier::kAvx2) {
        simd::avx2_hash_batch_u32(keys.data(), n, seed_, out.data());
        return;
      }
#endif
      if (tier != simd::KernelTier::kScalar) {
        // Autovec: stage the key bytes, hash in place (uniform u32 -> u32
        // loop; same staging trick as index_hash_batch below).
        std::memcpy(out.data(), keys.data(), n * sizeof(std::uint32_t));
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = bob_hash_u32(out[i], seed_);
        }
        return;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = bob_hash_value(keys[i], seed_);
    }
  }

  // Fused form: reduced indices plus (optionally) the raw hashes they came
  // from. `raw` may be empty (no raw output) or at least keys.size() long.
  // Every kernel tier is bit-identical — the tier only changes how the same
  // arithmetic is scheduled (tests/test_batch_equivalence.cpp pins this).
  template <typename T>
  void index_hash_batch(std::span<const T> keys, std::size_t width,
                        std::span<std::uint32_t> out,
                        std::span<std::uint32_t> raw) const noexcept {
    const std::size_t n = keys.size();
    // fast_range32 spelled with a u32 width so the multiply stays in the
    // u32 x u32 -> u64 widening form the vectorizer maps onto pmuludq; the
    // generic size_t multiply inside fast_range32 reads as an unsupported
    // 64-bit operation and blocks packing. Identical results: width < 2^32
    // is already fast_range32's precondition.
    const auto w = static_cast<std::uint32_t>(width);
    if constexpr (sizeof(T) == sizeof(std::uint32_t)) {
      const simd::KernelTier tier = simd::active_kernel_tier();
#if FCM_SIMD_X86
      if (tier == simd::KernelTier::kAvx2) {
        simd::avx2_index_batch_u32(keys.data(), n, seed_, w, out.data(),
                                   raw.empty() ? nullptr : raw.data());
        return;
      }
#endif
      if (tier != simd::KernelTier::kScalar) {
        // Autovec (the PR-5 shape): stage the key bytes into `out` first
        // (same bytes bob_hash_value's bit_cast would read), then hash in
        // place — the struct-typed key load is the one remaining statement
        // GCC refuses to pack, and a uniform u32 -> u32 loop over a single
        // array has no such load and no aliasing question. One 4n-byte copy
        // is noise next to the hashing.
        std::memcpy(out.data(), keys.data(), n * sizeof(std::uint32_t));
        if (raw.empty()) {
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t h = bob_hash_u32(out[i], seed_);
            out[i] = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(h) * w) >> 32);
          }
        } else {
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t h = bob_hash_u32(out[i], seed_);
            raw[i] = h;
            out[i] = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(h) * w) >> 32);
          }
        }
        return;
      }
      // Scalar tier falls through to the per-key loop below: the loads go
      // through the key type, which is exactly the shape GCC declines to
      // vectorize — the honest pre-batching baseline.
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t h = bob_hash_value(keys[i], seed_);
      if (!raw.empty()) raw[i] = h;
      out[i] = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(h) * w) >> 32);
    }
  }

 private:
  std::uint32_t seed_;
};

// Derives the i-th hash function of a family rooted at `master_seed`.
SeededHash make_hash(std::uint64_t master_seed, std::uint32_t function_index) noexcept;

}  // namespace fcm::common
