// Hash functions used throughout the FCM framework.
//
// The paper (§7.1) recommends BobHash [Henke et al., CCR 2008] for sketching;
// we implement Bob Jenkins' lookup3 from scratch plus a cheap 64-bit mixer
// used for seeding and for splitting one hash into independent sub-hashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace fcm::common {

// Bob Jenkins' lookup3 hash (public-domain algorithm, reimplemented).
// Deterministic for a given (data, seed) pair across platforms.
std::uint32_t bob_hash(std::span<const std::byte> data, std::uint32_t seed) noexcept;

// Convenience overload for trivially-copyable values (flow keys, integers).
template <typename T>
std::uint32_t bob_hash_value(const T& value, std::uint32_t seed) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  return bob_hash(std::as_bytes(std::span<const T, 1>{&value, 1}), seed);
}

// SplitMix64 finalizer: a strong 64-bit mixer. Used to derive independent
// seeds and to fold 64-bit keys.
std::uint64_t mix64(std::uint64_t x) noexcept;

// A seeded hash function object: one member of a pairwise-independent family.
// Instances with different `seed` values behave as independent hash functions
// (the property CM/FCM analyses require).
class SeededHash {
 public:
  constexpr SeededHash() noexcept : seed_(0) {}
  explicit constexpr SeededHash(std::uint32_t seed) noexcept : seed_(seed) {}

  std::uint32_t seed() const noexcept { return seed_; }

  template <typename T>
  std::uint32_t operator()(const T& value) const noexcept {
    return bob_hash_value(value, seed_);
  }

  // Hash reduced to a table index in [0, width).
  template <typename T>
  std::size_t index(const T& value, std::size_t width) const noexcept {
    return static_cast<std::size_t>((*this)(value)) % width;
  }

 private:
  std::uint32_t seed_;
};

// Derives the i-th hash function of a family rooted at `master_seed`.
SeededHash make_hash(std::uint64_t master_seed, std::uint32_t function_index) noexcept;

}  // namespace fcm::common
