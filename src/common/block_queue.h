// Lock-free single-producer / single-consumer ring of BLOCKS.
//
// SpscQueue (spsc_queue.h) moves items; this sibling moves whole
// process_batch-sized blocks, which is what the sharded runtime's block-staged
// ingest path (DESIGN.md §13) hands off: the producer stages keys DIRECTLY
// into the in-ring block it has open (zero staging copy), then publishes the
// whole block with ONE release store; the consumer borrows the block in place
// (no dequeue copy), feeds it to the batched sketch kernel, and releases the
// slot with one release store. Per item, the ring costs one store on each
// side — the per-entry cursor traffic that made the item ring the bottleneck
// of the PR-5 kernel is amortized over the block.
//
// Layout: `block_count` payload blocks of `block_size` T slots, each block
// padded out to a whole number of cache lines and the base 64-byte aligned,
// so a staged block never shares a line with its neighbor and the consumer
// streams it without false sharing. Each block has a header slot
// {count, kind, aux} on its own cache line; `kind` and `aux` are opaque to
// the queue (the runtime uses them for payload tagging — unit keys /
// key-byte pairs / weighted adds / epoch markers).
//
// Protocol (same DPDK-style cursor discipline as SpscQueue, one cursor step
// per BLOCK):
//   producer:  T* slots = q.try_open();        // nullptr => ring full
//              ... fill slots[0..n) ...
//              q.publish(n, kind, aux);        // ONE release store
//              (or q.abandon() to hand the reserved slot back unused)
//   consumer:  BlockQueue<T>::View v;
//              if (q.try_front(v)) { ... read v.data[0..v.count) ... ;
//                                    q.release(); }
//
// The producer may hold at most one block open per queue; the consumer must
// finish reading a View before release() — the slot is recycled after that.
// Roles are machine-checked exactly like SpscQueue's: try_open/publish
// require the producer role, try_front/release the consumer role, and each
// side's cached cursor is FCM_GUARDED_BY its role.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/contracts.h"
#include "common/spsc_queue.h"  // kCacheLineBytes
#include "common/thread_annotations.h"

namespace fcm::common {

template <typename T>
class BlockQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "BlockQueue blocks are copied raw between threads");
  static_assert(sizeof(T) <= kCacheLineBytes &&
                    kCacheLineBytes % sizeof(T) == 0,
                "BlockQueue pads blocks to whole cache lines");

 public:
  // A published block, borrowed in place from the ring. Valid until the
  // consumer calls release().
  struct View {
    const T* data = nullptr;
    std::uint32_t count = 0;
    std::uint32_t kind = 0;
    std::uint64_t aux = 0;
  };

  // `block_count` blocks of `block_size` slots each. Unlike SpscQueue the
  // ring ops are per block, so block_count needs no power-of-two shape.
  BlockQueue(std::size_t block_count, std::size_t block_size)
      : block_count_(block_count),
        block_size_(block_size),
        stride_(pad_to_line(block_size)) {
    FCM_REQUIRE(block_count >= 1, "BlockQueue: need at least one block");
    FCM_REQUIRE(block_size >= 1 && block_size <= 0xffffffffu,
                "BlockQueue: block_size must fit the header's u32 count");
    headers_.resize(block_count_);
    // Over-allocate one line so the first block can start 64-byte aligned
    // regardless of where the vector's allocation landed.
    payload_.resize(block_count_ * stride_ + kCacheLineBytes / sizeof(T));
    const auto addr = reinterpret_cast<std::uintptr_t>(payload_.data());
    const std::uintptr_t aligned =
        (addr + kCacheLineBytes - 1) & ~std::uintptr_t(kCacheLineBytes - 1);
    base_ = payload_.data() + (aligned - addr) / sizeof(T);
  }

  BlockQueue(const BlockQueue&) = delete;
  BlockQueue& operator=(const BlockQueue&) = delete;

  std::size_t block_count() const noexcept { return block_count_; }
  std::size_t block_size() const noexcept { return block_size_; }

  // Published-but-unconsumed blocks; approximate (see SpscQueue::size_approx).
  std::size_t size_approx_blocks() const noexcept {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  // Producer-side occupancy high-water mark, in blocks. Updated against the
  // producer's cached view of the consumer cursor, so it can UNDERSTATE peak
  // occupancy by at most the staleness of that cache — good enough for the
  // scaling study's occupancy column, not a synchronization primitive.
  std::size_t high_water_blocks() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  // --- thread roles (see SpscQueue) ----------------------------------------
  void assume_producer() const FCM_ASSERT_CAPABILITY(producer_role_) {}
  void assume_consumer() const FCM_ASSERT_CAPABILITY(consumer_role_) {}

  // --- producer side -------------------------------------------------------

  // Reserves the next block and returns its slot array, or nullptr when the
  // ring is full (caller applies backpressure). At most one block may be
  // open at a time.
  T* try_open() noexcept FCM_REQUIRES(producer_role_) {
    FCM_ASSERT(!open_, "BlockQueue: try_open with a block already open");
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= block_count_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= block_count_) return nullptr;
    }
    open_ = true;
    return base_ + (head % block_count_) * stride_;
  }

  // Publishes the open block: writes the header, then ONE release store of
  // the produce cursor makes header and payload visible to the consumer.
  void publish(std::uint32_t count, std::uint32_t kind,
               std::uint64_t aux = 0) noexcept FCM_REQUIRES(producer_role_) {
    FCM_ASSERT(open_, "BlockQueue: publish without an open block");
    FCM_ASSERT(count <= block_size_, "BlockQueue: block overfilled");
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    Header& header = headers_[head % block_count_];
    header.count = count;
    header.kind = kind;
    header.aux = aux;
    head_.store(head + 1, std::memory_order_release);
    open_ = false;
    const std::size_t inflight =
        static_cast<std::size_t>(head + 1 - cached_tail_);
    if (inflight > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(inflight, std::memory_order_relaxed);
    }
  }

  // Hands an open-but-unused block back (the cursor never advanced, so the
  // next try_open returns the same slot). Lets a flush close out a shard
  // whose reserved block never received data without publishing an empty
  // block.
  void abandon() noexcept FCM_REQUIRES(producer_role_) {
    FCM_ASSERT(open_, "BlockQueue: abandon without an open block");
    open_ = false;
  }

  // --- consumer side -------------------------------------------------------

  // Borrows the oldest published block without consuming it; returns false
  // when the ring is empty. Repeated calls return the same block until
  // release().
  bool try_front(View& out) noexcept FCM_REQUIRES(consumer_role_) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ - tail == 0) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ - tail == 0) return false;
    }
    const std::size_t slot = static_cast<std::size_t>(tail % block_count_);
    const Header& header = headers_[slot];
    out.data = base_ + slot * stride_;
    out.count = header.count;
    out.kind = header.kind;
    out.aux = header.aux;
    return true;
  }

  // Recycles the block returned by the last try_front. The View is dead
  // after this: the producer may immediately reuse the slot.
  void release() noexcept FCM_REQUIRES(consumer_role_) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    tail_.store(tail + 1, std::memory_order_release);
  }

 private:
  // One header per block on its own cache line, so the producer writing
  // block i+1's header never invalidates the line the consumer is reading
  // block i's header from.
  struct alignas(kCacheLineBytes) Header {
    std::uint32_t count = 0;
    std::uint32_t kind = 0;
    std::uint64_t aux = 0;
  };

  static constexpr std::size_t pad_to_line(std::size_t block_size) noexcept {
    const std::size_t per_line = kCacheLineBytes / sizeof(T);
    return ((block_size + per_line - 1) / per_line) * per_line;
  }

  ThreadRole producer_role_;
  ThreadRole consumer_role_;

  const std::size_t block_count_;
  const std::size_t block_size_;
  const std::size_t stride_;  // slots per block incl. cache-line padding

  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};  // published
  alignas(kCacheLineBytes) std::uint64_t cached_head_
      FCM_GUARDED_BY(consumer_role_) = 0;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};  // released
  alignas(kCacheLineBytes) std::uint64_t cached_tail_
      FCM_GUARDED_BY(producer_role_) = 0;
  // Producer writes (publish); any thread may read. Telemetry only.
  alignas(kCacheLineBytes) std::atomic<std::size_t> high_water_{0};
  bool open_ FCM_GUARDED_BY(producer_role_) = false;

  std::vector<Header> headers_;
  std::vector<T> payload_;
  T* base_ = nullptr;  // 64-byte-aligned first block
};

}  // namespace fcm::common
