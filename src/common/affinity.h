// Core-pinning portability shim.
//
// The sharded runtime optionally pins each shard worker to a core
// (Options::pin_workers, DESIGN.md §13) so the per-shard replica and its
// ring stay resident in one L1/L2 and the scheduler cannot migrate a worker
// mid-epoch. Affinity syscalls are platform-specific; this header confines
// the #ifdef so the runtime stays portable — on platforms without an
// affinity API the call is a no-op and pinning silently degrades to the
// scheduler's placement (pinning is a performance hint, never a correctness
// requirement).
#pragma once

#include <cstddef>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fcm::common {

// Pins the calling thread to logical CPU `cpu % hardware_concurrency()`.
// Returns true when the affinity change took effect, false when the platform
// has no affinity API or the syscall failed (e.g. the process runs in a
// restricted cpuset that does not include the requested CPU). Callers must
// treat false as "keep going unpinned".
inline bool pin_current_thread(std::size_t cpu) noexcept {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % hw), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace fcm::common
