#include "agg/agg_service.h"

#include <algorithm>
#include <array>
#include <iterator>
#include <optional>
#include <string>
#include <utility>

#include "common/contracts.h"

namespace fcm::agg {

const char* to_string(DeliveryStatus status) noexcept {
  switch (status) {
    case DeliveryStatus::kAccepted:
      return "accepted";
    case DeliveryStatus::kRejectedFingerprint:
      return "rejected_fingerprint";
    case DeliveryStatus::kRejectedStale:
      return "rejected_stale";
    case DeliveryStatus::kRejectedDuplicate:
      return "rejected_duplicate";
    case DeliveryStatus::kRejectedUnknownVantage:
      return "rejected_unknown_vantage";
    case DeliveryStatus::kRejectedMalformed:
      return "rejected_malformed";
  }
  return "unknown";
}

namespace {

constexpr DeliveryStatus kAllStatuses[] = {
    DeliveryStatus::kAccepted,          DeliveryStatus::kRejectedFingerprint,
    DeliveryStatus::kRejectedStale,     DeliveryStatus::kRejectedDuplicate,
    DeliveryStatus::kRejectedUnknownVantage,
    DeliveryStatus::kRejectedMalformed,
};

}  // namespace

// Registry series the service writes (DESIGN.md §8). Handles resolved once
// at construction; deliver() touches only relaxed atomic cells. Null when
// Options::metrics == nullptr.
struct AggregationService::Instruments {
  // One counter per DeliveryStatus, indexed by the enum's value.
  std::array<obs::Counter*, std::size(kAllStatuses)> by_status{};
  std::vector<obs::Counter*> vantage_bytes;  // one series per vantage id
  obs::Histogram* merge_seconds = nullptr;    // per-snapshot merge time
  obs::Histogram* publish_seconds = nullptr;  // view build + install time
  obs::Gauge* published_epoch = nullptr;      // watermark
  obs::Gauge* pending_epochs = nullptr;       // epochs buffered
  obs::Gauge* staleness_epochs = nullptr;     // newest pending - watermark
  obs::Counter* forced_publishes = nullptr;   // watchdog/finalize publishes
};

AggregationService::AggregationService(Options options)
    : options_(std::move(options)),
      plane_(options_.retained_epochs) {
  FCM_REQUIRE(options_.vantage_count >= 1,
              "AggregationService needs at least one vantage point");
  // Single-knob metrics rule: Options::metrics overrides the reference
  // framework's sink, so metrics = nullptr silences the whole service.
  options_.reference.metrics = options_.metrics;
  // Vantage replicas record heavy-hitter candidates at ceil(T / N): the
  // per-vantage candidate union cannot miss a flow whose network-wide count
  // reaches T (FCM never underestimates, and some vantage holds >= ceil(T/N)
  // of it); publish_oldest() re-qualifies the union at the global T.
  vantage_options_ = options_.reference;
  const std::uint64_t global_t = options_.reference.heavy_hitter_threshold;
  if (global_t > 0) {
    vantage_options_.heavy_hitter_threshold =
        (global_t + options_.vantage_count - 1) / options_.vantage_count;
  }
  fingerprint_ = WireCodec::merge_fingerprint(vantage_options_);

  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr) return;
  auto base_labels = [&]() -> std::vector<obs::MetricLabel> {
    if (options_.metrics_instance.empty()) return {};
    return {{"instance", options_.metrics_instance}};
  };
  auto instruments = std::make_unique<Instruments>();
  for (const DeliveryStatus status : kAllStatuses) {
    std::vector<obs::MetricLabel> labels = base_labels();
    labels.push_back({"status", to_string(status)});
    instruments->by_status[static_cast<std::size_t>(status)] =
        &registry->counter("fcm_agg_snapshots_total", std::move(labels),
                           "Snapshot deliveries by outcome");
  }
  instruments->vantage_bytes.reserve(options_.vantage_count);
  for (std::size_t v = 0; v < options_.vantage_count; ++v) {
    std::vector<obs::MetricLabel> labels = base_labels();
    labels.push_back({"vantage", std::to_string(v)});
    instruments->vantage_bytes.push_back(
        &registry->counter("fcm_agg_vantage_bytes_total", std::move(labels),
                           "Wire bytes accepted per vantage point"));
  }
  instruments->merge_seconds = &registry->histogram(
      "fcm_agg_merge_seconds", obs::Histogram::latency_bounds(), base_labels(),
      "Per-snapshot deserialize-free merge time into the pending epoch");
  instruments->publish_seconds = &registry->histogram(
      "fcm_agg_publish_seconds", obs::Histogram::latency_bounds(),
      base_labels(),
      "View derivation (HH, cardinality, heavy change, optional EM) + "
      "install time per published epoch");
  instruments->published_epoch = &registry->gauge(
      "fcm_agg_published_epoch", base_labels(),
      "Highest epoch published to the query plane (the staleness watermark)");
  instruments->pending_epochs = &registry->gauge(
      "fcm_agg_pending_epochs", base_labels(),
      "Epochs buffered waiting for straggler vantage points");
  instruments->staleness_epochs = &registry->gauge(
      "fcm_agg_staleness_epochs", base_labels(),
      "Newest pending epoch minus the published watermark (how far the "
      "query plane lags ingest)");
  instruments->forced_publishes = &registry->counter(
      "fcm_agg_forced_publishes_total", base_labels(),
      "Epochs published partial (watchdog overflow or finalize calls)");
  instruments_ = std::move(instruments);
}

AggregationService::~AggregationService() = default;

DeliveryStatus AggregationService::deliver(SnapshotEnvelope envelope) {
  const auto reject = [&](DeliveryStatus status) {
    if (instruments_ != nullptr) {
      instruments_->by_status[static_cast<std::size_t>(status)]->inc();
    }
    return status;
  };

  // Header checks need no lock and no deserialization: a snapshot from an
  // incompatible deployment bounces off 24 bytes.
  WireHeader header;
  try {
    header = WireCodec::peek(envelope.payload);
  } catch (const common::ContractViolation&) {
    return reject(DeliveryStatus::kRejectedMalformed);
  }
  if (header.type != WireType::kFcmFramework) {
    return reject(DeliveryStatus::kRejectedMalformed);
  }
  if (header.fingerprint != fingerprint_) {
    return reject(DeliveryStatus::kRejectedFingerprint);
  }
  if (envelope.vantage_id >= options_.vantage_count) {
    return reject(DeliveryStatus::kRejectedUnknownVantage);
  }

  // Deserialize outside the lock: it is the expensive part, and running it
  // concurrently across vantage threads is the point of the design. A
  // buffer truncated or bit-flipped past the header fails validation here;
  // the service signals it via the status and never throws on hostile
  // input.
  std::optional<framework::FcmFramework> snapshot;
  try {
    snapshot.emplace(
        WireCodec::deserialize_framework(envelope.payload, options_.metrics));
  } catch (const common::ContractViolation&) {
    return reject(DeliveryStatus::kRejectedMalformed);
  }

  common::MutexLock lock(mutex_);
  const DeliveryStatus status = absorb(envelope.vantage_id, envelope.epoch,
                                       std::move(*snapshot),
                                       envelope.payload.size());
  if (status == DeliveryStatus::kAccepted) publish_ready();
  if (instruments_ != nullptr) {
    instruments_->by_status[static_cast<std::size_t>(status)]->inc();
  }
  return status;
}

DeliveryStatus AggregationService::absorb(std::uint32_t vantage_id,
                                          std::uint64_t epoch,
                                          framework::FcmFramework&& snapshot,
                                          std::size_t payload_bytes) {
  if (published_.has_value() && epoch <= *published_) {
    return DeliveryStatus::kRejectedStale;
  }
  auto it = pending_.find(epoch);
  if (it == pending_.end()) {
    PendingEpoch entry{std::move(snapshot), {vantage_id}};
    pending_.emplace(epoch, std::move(entry));
  } else {
    PendingEpoch& entry = it->second;
    if (std::binary_search(entry.vantages.begin(), entry.vantages.end(),
                           vantage_id)) {
      return DeliveryStatus::kRejectedDuplicate;
    }
    {
      obs::ScopedTimer timer(instruments_ ? instruments_->merge_seconds
                                          : nullptr);
      entry.merged.merge(snapshot);
    }
    entry.vantages.insert(std::upper_bound(entry.vantages.begin(),
                                           entry.vantages.end(), vantage_id),
                          vantage_id);
  }
  if (instruments_ != nullptr) {
    instruments_->vantage_bytes[vantage_id]->inc(payload_bytes);
    instruments_->pending_epochs->set(static_cast<double>(pending_.size()));
    const std::uint64_t newest = pending_.rbegin()->first;
    const std::uint64_t watermark = published_.value_or(0);
    instruments_->staleness_epochs->set(
        static_cast<double>(newest - std::min(newest, watermark)));
  }
  return DeliveryStatus::kAccepted;
}

void AggregationService::publish_ready() {
  while (!pending_.empty()) {
    const std::uint64_t next =
        published_.has_value() ? *published_ + 1 : options_.first_epoch;
    // Complete AND next in sequence: a complete epoch still waits while an
    // earlier epoch (possibly not yet started) could arrive. The watchdog
    // skips the gap when the buffer overflows.
    const bool ready =
        pending_.begin()->second.vantages.size() == options_.vantage_count &&
        pending_.begin()->first <= next;
    const bool overflow = options_.max_pending_epochs > 0 &&
                          pending_.size() > options_.max_pending_epochs;
    if (!ready && !overflow) break;
    if (!ready && instruments_ != nullptr) {
      instruments_->forced_publishes->inc();
    }
    publish_oldest();
  }
}

void AggregationService::publish_oldest() {
  obs::ScopedTimer timer(instruments_ ? instruments_->publish_seconds
                                      : nullptr);
  auto oldest = pending_.begin();
  const std::uint64_t epoch = oldest->first;
  // The merged state carries the per-vantage ceil(T/N) candidate set;
  // promote it to the network-wide threshold before freezing the view.
  const std::uint64_t global_t = options_.reference.heavy_hitter_threshold;
  if (global_t > 0) {
    oldest->second.merged.requalify_heavy_hitters(global_t);
  }
  auto view = std::make_shared<NetworkView>(std::move(oldest->second.merged));
  view->epoch = epoch;
  view->vantages = std::move(oldest->second.vantages);
  pending_.erase(oldest);

  view->heavy_hitters = view->network.heavy_hitters();
  view->cardinality = view->network.cardinality();
  if (options_.heavy_change_threshold > 0) {
    if (const auto previous = plane_.current(); previous != nullptr) {
      view->heavy_changes = framework::FcmFramework::heavy_changes(
          previous->network, view->network, options_.heavy_change_threshold);
    }
  }
  if (options_.analyze_on_publish) view->report = view->network.analyze();

  plane_.publish(view);
  published_ = epoch;
  if (instruments_ != nullptr) {
    instruments_->published_epoch->set(static_cast<double>(epoch));
    instruments_->pending_epochs->set(static_cast<double>(pending_.size()));
  }
}

bool AggregationService::finalize_epoch(std::uint64_t epoch) {
  common::MutexLock lock(mutex_);
  if (pending_.find(epoch) == pending_.end()) return false;
  // Publishes stay in epoch order: older pending epochs (also stragglers,
  // or this call would not be needed) go out first, partial.
  while (!pending_.empty() && pending_.begin()->first <= epoch) {
    if (pending_.begin()->second.vantages.size() != options_.vantage_count &&
        instruments_ != nullptr) {
      instruments_->forced_publishes->inc();
    }
    publish_oldest();
  }
  // Forcing the watermark forward may have made later buffered epochs
  // complete-and-oldest; publish them too.
  publish_ready();
  return true;
}

void AggregationService::finalize_all() {
  common::MutexLock lock(mutex_);
  while (!pending_.empty()) {
    if (pending_.begin()->second.vantages.size() != options_.vantage_count &&
        instruments_ != nullptr) {
      instruments_->forced_publishes->inc();
    }
    publish_oldest();
  }
}

std::vector<std::uint64_t> AggregationService::pending_epochs() const {
  common::MutexLock lock(mutex_);
  std::vector<std::uint64_t> epochs;
  epochs.reserve(pending_.size());
  for (const auto& [epoch, entry] : pending_) epochs.push_back(epoch);
  return epochs;
}

VantagePoint::VantagePoint(std::uint32_t id,
                           framework::FcmFramework::Options options,
                           VantageTransport& transport)
    : id_(id), framework_(std::move(options)), transport_(&transport) {}

DeliveryStatus VantagePoint::flush(std::uint64_t epoch) {
  SnapshotEnvelope envelope;
  envelope.vantage_id = id_;
  envelope.epoch = epoch;
  envelope.payload = WireCodec::serialize(framework_);
  const DeliveryStatus status = transport_->send(std::move(envelope));
  if (status == DeliveryStatus::kAccepted) framework_.reset();
  return status;
}

}  // namespace fcm::agg
