#include "agg/query_plane.h"

#include <utility>

#include "common/contracts.h"

namespace fcm::agg {

QueryPlane::QueryPlane(std::size_t retained_epochs)
    : retained_(retained_epochs) {
  FCM_REQUIRE(retained_epochs >= 1,
              "QueryPlane must retain at least the current epoch");
}

void QueryPlane::publish(std::shared_ptr<const NetworkView> view) {
  FCM_REQUIRE(view != nullptr, "QueryPlane: cannot publish a null view");
  common::MutexLock lock(mutex_);
  FCM_REQUIRE(history_.empty() || view->epoch > history_.back()->epoch,
              "QueryPlane: views must publish with strictly increasing "
              "epochs");
  history_.push_back(std::move(view));
  if (history_.size() > retained_) history_.pop_front();
}

std::shared_ptr<const NetworkView> QueryPlane::current() const {
  common::MutexLock lock(mutex_);
  return history_.empty() ? nullptr : history_.back();
}

std::shared_ptr<const NetworkView> QueryPlane::at(std::uint64_t epoch) const {
  common::MutexLock lock(mutex_);
  for (const auto& view : history_) {
    if (view->epoch == epoch) return view;
  }
  return nullptr;
}

std::vector<std::uint64_t> QueryPlane::published_epochs() const {
  common::MutexLock lock(mutex_);
  std::vector<std::uint64_t> epochs;
  epochs.reserve(history_.size());
  for (const auto& view : history_) epochs.push_back(view->epoch);
  return epochs;
}

}  // namespace fcm::agg
