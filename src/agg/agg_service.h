// Network-wide aggregation service (DESIGN.md §11): N vantage points each
// run a local FcmFramework, serialize it at epoch boundaries through the
// wire format (agg/wire.h), and deliver the buffer to one
// AggregationService, which validates the config fingerprint from the frame
// header alone, merges per-epoch with the bit-exact merge() from DESIGN.md
// §7, and publishes immutable NetworkViews through the QueryPlane.
//
// Transport is an abstraction: vantage points talk to a VantageTransport,
// the service implements SnapshotSink. InProcessTransport wires the two
// directly (tests, benches, single-process deployments); a socket transport
// can slot in later by carrying SnapshotEnvelope frames — the envelope is
// already nothing but plain integers and wire-format bytes.
//
// Fault posture (exercised by tests/test_agg_soak.cpp under TSan):
//  - out-of-order epochs buffer until their turn; publishes stay in epoch
//    order;
//  - a slow vantage stalls only its own epoch until max_pending_epochs is
//    exceeded, then the oldest epoch force-publishes partial (watchdog);
//  - a dropped vantage is handled the same way, or explicitly via
//    finalize_epoch();
//  - duplicate/stale/foreign-config/corrupt snapshots are rejected with a
//    typed status and counted in the registry, never merged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "agg/query_plane.h"
#include "agg/wire.h"
#include "common/thread_annotations.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"

namespace fcm::agg {

// One sketch snapshot in flight from a vantage point to the aggregator.
struct SnapshotEnvelope {
  std::uint32_t vantage_id = 0;
  std::uint64_t epoch = 0;
  // A complete wire frame (WireType::kFcmFramework) as produced by
  // WireCodec::serialize.
  std::vector<std::byte> payload;
};

// Typed outcome of a delivery; everything except kAccepted leaves the
// service state untouched.
enum class DeliveryStatus {
  kAccepted,
  kRejectedFingerprint,     // snapshot built from incompatible Options
  kRejectedStale,           // epoch at or below the published watermark
  kRejectedDuplicate,       // this vantage already delivered this epoch
  kRejectedUnknownVantage,  // vantage_id >= configured vantage_count
  kRejectedMalformed,       // frame failed wire validation (ContractViolation)
};

const char* to_string(DeliveryStatus status) noexcept;

// Receiving side of the transport: the aggregator (or a test double).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual DeliveryStatus deliver(SnapshotEnvelope envelope) = 0;
};

// Sending side: what a vantage point holds. Implementations move the
// envelope to the sink however they like (direct call, socket, queue).
class VantageTransport {
 public:
  virtual ~VantageTransport() = default;
  virtual DeliveryStatus send(SnapshotEnvelope envelope) = 0;
};

// Zero-hop transport: send == deliver. The sink must outlive the transport.
class InProcessTransport final : public VantageTransport {
 public:
  explicit InProcessTransport(SnapshotSink& sink) : sink_(&sink) {}
  DeliveryStatus send(SnapshotEnvelope envelope) override {
    return sink_->deliver(std::move(envelope));
  }

 private:
  SnapshotSink* sink_;
};

// The aggregator. deliver() is safe to call from any number of vantage
// threads concurrently; queries go through query_plane() and never contend
// with ingest beyond the plane's pointer-swap lock.
class AggregationService final : public SnapshotSink {
 public:
  struct Options {
    // The network-wide configuration. Vantages run vantage_options() —
    // `reference` with the heavy-hitter threshold scaled to ceil(T/N) —
    // and snapshots whose header fingerprint differs from
    // merge_fingerprint(vantage_options()) are rejected without
    // deserialization. `reference.metrics` is also the registry the merged
    // network view analyzes through.
    framework::FcmFramework::Options reference;

    // Vantage ids are 0..vantage_count-1; an epoch is complete once every
    // id has delivered it.
    std::size_t vantage_count = 1;

    // The first epoch number vantages will deliver. A complete later epoch
    // buffers until every epoch before it (starting here) has published, so
    // out-of-order arrivals cannot leapfrog a slower epoch; the watchdog
    // and finalize_epoch() can still skip a gap.
    std::uint64_t first_epoch = 1;

    // QueryPlane retention (how far back at()/heavy-change can reach).
    std::size_t retained_epochs = 4;

    // Watchdog: when more than this many epochs sit pending (a vantage is
    // slow or gone), the oldest force-publishes partial so the query plane
    // keeps advancing. 0 disables forced publishes.
    std::size_t max_pending_epochs = 4;

    // 0 disables heavy-change detection between consecutive published
    // views.
    std::uint64_t heavy_change_threshold = 0;

    // Run the EM/analyze() pass at publish time and attach the Report to
    // the view. Epoch-scale work; leave off unless readers need FSD/entropy
    // without running analyze() themselves.
    bool analyze_on_publish = false;

    // Telemetry (DESIGN.md §8): snapshot/reject counters, per-vantage
    // bytes, merge/publish latency, staleness. nullptr runs uninstrumented;
    // the single-knob rule applies — this overrides reference.metrics.
    obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global();
    // Label distinguishing this service's series when several share one
    // registry.
    std::string metrics_instance;
  };

  explicit AggregationService(Options options);
  ~AggregationService() override;

  AggregationService(const AggregationService&) = delete;
  AggregationService& operator=(const AggregationService&) = delete;

  // Validates, deserializes, and merges one snapshot; publishes every epoch
  // that completes as a result. Thread-safe.
  DeliveryStatus deliver(SnapshotEnvelope envelope) override;

  // Force-publishes `epoch` from whatever snapshots have arrived (the
  // dropped-vantage escape hatch). Returns false if the epoch is not
  // pending. Thread-safe.
  bool finalize_epoch(std::uint64_t epoch);

  // Force-publishes all pending epochs in order (end-of-run drain).
  void finalize_all();

  // The fingerprint deliveries must carry (what WireCodec stamps into
  // frames serialized under vantage_options()-compatible Options).
  std::uint64_t expected_fingerprint() const noexcept { return fingerprint_; }

  // The Options every vantage point must run: identical to `reference`
  // except the heavy-hitter threshold is ceil(T / vantage_count). A flow
  // with network-wide count >= T has >= ceil(T/N) packets at some vantage
  // and FCM never underestimates, so the per-vantage candidate union cannot
  // miss it; the service re-qualifies the union at the global T when it
  // publishes (same scheme as the sharded runtime, DESIGN.md §7).
  const framework::FcmFramework::Options& vantage_options() const noexcept {
    return vantage_options_;
  }

  // Snapshot-isolated read side. Typical reader:
  //   auto view = service.query_plane().current();
  //   if (view) use(view->network.flow_size(key));
  const QueryPlane& query_plane() const noexcept { return plane_; }

  // Epochs currently buffered waiting for stragglers (oldest first).
  std::vector<std::uint64_t> pending_epochs() const;

  const Options& options() const noexcept { return options_; }

 private:
  struct PendingEpoch {
    framework::FcmFramework merged;
    std::vector<std::uint32_t> vantages;  // sorted ids already merged
  };
  struct Instruments;

  // Merges `snapshot` into `epoch`'s pending state (starting it if new).
  DeliveryStatus absorb(std::uint32_t vantage_id, std::uint64_t epoch,
                        framework::FcmFramework&& snapshot,
                        std::size_t payload_bytes) FCM_REQUIRES(mutex_);
  // Publishes the oldest pending epochs: every complete one, plus partial
  // ones while the watchdog limit is exceeded.
  void publish_ready() FCM_REQUIRES(mutex_);
  // Builds the immutable view for the oldest pending epoch and installs it.
  void publish_oldest() FCM_REQUIRES(mutex_);

  Options options_;
  framework::FcmFramework::Options vantage_options_;
  std::uint64_t fingerprint_ = 0;
  QueryPlane plane_;
  std::unique_ptr<Instruments> instruments_;

  mutable common::Mutex mutex_;
  std::map<std::uint64_t, PendingEpoch> pending_ FCM_GUARDED_BY(mutex_);
  // Highest published epoch; deliveries at or below it are stale.
  std::optional<std::uint64_t> published_ FCM_GUARDED_BY(mutex_);
};

// A simulated vantage point: a local framework plus the transport to the
// aggregator. Feed it traffic via framework(), then flush(epoch) to
// serialize the local state, ship it, and reset for the next epoch.
class VantagePoint {
 public:
  // `options` should equal the service's vantage_options() (up to local
  // policy: EM parameters and metrics sinks may differ; geometry, seeds,
  // count mode, thresholds and Top-K shape may not, or every flush is
  // rejected with kRejectedFingerprint). The transport must outlive this.
  VantagePoint(std::uint32_t id, framework::FcmFramework::Options options,
               VantageTransport& transport);

  framework::FcmFramework& framework() noexcept { return framework_; }
  const framework::FcmFramework& framework() const noexcept {
    return framework_;
  }
  std::uint32_t id() const noexcept { return id_; }

  // Serializes the local sketch, sends it as `epoch`, and — when the
  // delivery is accepted — resets the local state for the next epoch.
  DeliveryStatus flush(std::uint64_t epoch);

 private:
  std::uint32_t id_;
  framework::FcmFramework framework_;
  VantageTransport* transport_;
};

}  // namespace fcm::agg
