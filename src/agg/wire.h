// Versioned sketch wire format (DESIGN.md §11).
//
// Every sketch type the tree can merge network-wide — FcmTree, FcmSketch,
// CmSketch/CuSketch, TopKFilter/FcmTopK, the cardinality registers
// (LinearCounting / HyperLogLog), and the whole FcmFramework facade — can be
// serialized to a compact, self-describing byte buffer and reconstructed
// bit-exactly on the other side: every query (flow size, cardinality, heavy
// hitters, FSD/entropy after analyze()) returns the same answer on the
// deserialized object as on the original, and merge() on deserialized
// replicas is bit-exact with merge() on the in-memory ones
// (tests/test_wire.cpp pins both properties).
//
// Frame layout (all integers little-endian, fixed width, byte-at-a-time —
// no struct dumps, no reinterpret_cast; tools/fcm_lint.py's wire-encoding
// rule bans both in src/agg):
//
//   offset size  field
//   0      4     magic "FCMW"
//   4      2     u16 wire version (kWireVersion)
//   6      1     u8  payload type tag (WireType)
//   7      1     u8  reserved, must be zero
//   8      8     u64 config fingerprint (see below)
//   16     8     u64 payload length; must equal exactly the bytes that follow
//   24     ...   type-specific payload
//
// The config fingerprint hashes the *merge-relevant* configuration of the
// encoded object (geometry + hash seeds + count mode + heavy-hitter
// threshold — exactly the preconditions the merge() contracts check, not
// local policy like EM iteration caps). Two buffers with equal fingerprints
// are mergeable; the AggregationService rejects mismatches from the header
// alone, without deserializing the payload.
//
// Hostile-input posture: deserializers validate BEFORE they allocate or
// build state. Truncated buffers, wrong magic, unsupported versions,
// non-zero reserved bytes, payload-length mismatches, oversized declared
// counts, out-of-range node values, and fingerprint mismatches all raise
// fcm::common::ContractViolation; declared element counts are checked
// against the bytes actually present, so a flipped count byte cannot cause
// allocation amplification (tests/test_wire.cpp, hostile suite). A final
// check_invariants() sweep on the rebuilt object catches bit flips that
// survive the field-level checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.h"
#include "fcm/fcm_topk.h"
#include "framework/fcm_framework.h"
#include "sketch/cardinality.h"
#include "sketch/cm_sketch.h"

namespace fcm::agg {

// Bump when the byte layout changes incompatibly. Policy (DESIGN.md §11):
// readers accept exactly their own version; the version byte exists so a
// mixed-fleet rollout fails loudly at the header, not by misparsing state.
inline constexpr std::uint16_t kWireVersion = 1;

// Payload type tags. Values are wire ABI — append, never renumber.
enum class WireType : std::uint8_t {
  kFcmTree = 1,
  kFcmSketch = 2,
  kCmSketch = 3,
  kCuSketch = 4,
  kTopKFilter = 5,
  kFcmTopK = 6,
  kLinearCounting = 7,
  kHyperLogLog = 8,
  kFcmFramework = 9,
};

// Append-only little-endian encoder. Integers are emitted byte by byte so
// the layout is identical on every host.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v & 0xff));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xffff));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v & 0xffffffffu));
    u32(static_cast<std::uint32_t>(v >> 32));
  }

  std::size_t size() const noexcept { return buf_.size(); }
  std::span<const std::byte> bytes() const noexcept { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

// Bounds-checked little-endian decoder over a borrowed buffer. Every read
// validates the remaining length first; a short buffer raises
// ContractViolation instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) noexcept : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  // Contract guard for array decodes: `count` elements of `element_bytes`
  // each must still be present. Called BEFORE any reserve/resize so a
  // hostile declared count cannot amplify into a giant allocation.
  void require_payload(std::uint64_t count, std::uint64_t element_bytes) const {
    FCM_REQUIRE(element_bytes == 0 ||
                    count <= remaining() / element_bytes,
                "wire: declared element count exceeds the bytes present "
                "(truncated or hostile buffer)");
  }

  std::uint8_t u8() {
    FCM_REQUIRE(remaining() >= 1, "wire: truncated buffer (u8)");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    FCM_REQUIRE(remaining() >= 2, "wire: truncated buffer (u16)");
    const auto lo = static_cast<std::uint16_t>(u8());
    const auto hi = static_cast<std::uint16_t>(u8());
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    FCM_REQUIRE(remaining() >= 4, "wire: truncated buffer (u32)");
    const auto lo = static_cast<std::uint32_t>(u16());
    const auto hi = static_cast<std::uint32_t>(u16());
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    FCM_REQUIRE(remaining() >= 8, "wire: truncated buffer (u64)");
    const auto lo = static_cast<std::uint64_t>(u32());
    const auto hi = static_cast<std::uint64_t>(u32());
    return lo | (hi << 32);
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// Parsed and validated frame header.
struct WireHeader {
  std::uint16_t version = 0;
  WireType type = WireType::kFcmTree;
  std::uint64_t fingerprint = 0;
  std::uint64_t payload_bytes = 0;
};

// The (de)serializer for every sketch type. A single class so the sketch
// headers grant exactly one friend; all functions are stateless.
class WireCodec {
 public:
  // --- serialize ----------------------------------------------------------
  static std::vector<std::byte> serialize(const core::FcmTree& tree);
  static std::vector<std::byte> serialize(const core::FcmSketch& sketch);
  // Tags kCmSketch or kCuSketch by the object's dynamic type (name()).
  static std::vector<std::byte> serialize(const sketch::CmSketch& cm);
  static std::vector<std::byte> serialize(const sketch::TopKFilter& filter);
  static std::vector<std::byte> serialize(const core::FcmTopK& topk);
  static std::vector<std::byte> serialize(const sketch::LinearCounting& lc);
  static std::vector<std::byte> serialize(const sketch::HyperLogLog& hll);
  static std::vector<std::byte> serialize(const framework::FcmFramework& fw);

  // --- deserialize --------------------------------------------------------
  // Each function requires the matching type tag and throws
  // ContractViolation on any malformed input (see header comment).
  static core::FcmTree deserialize_tree(std::span<const std::byte> buffer);
  static core::FcmSketch deserialize_sketch(std::span<const std::byte> buffer);
  static sketch::CmSketch deserialize_cm(std::span<const std::byte> buffer);
  static sketch::CuSketch deserialize_cu(std::span<const std::byte> buffer);
  static sketch::TopKFilter deserialize_topk_filter(
      std::span<const std::byte> buffer);
  static core::FcmTopK deserialize_fcm_topk(std::span<const std::byte> buffer);
  static sketch::LinearCounting deserialize_linear_counting(
      std::span<const std::byte> buffer);
  static sketch::HyperLogLog deserialize_hll(std::span<const std::byte> buffer);
  // `metrics` replaces the non-serializable telemetry sink (wire buffers
  // never carry pointers); pass nullptr for an uninstrumented replica.
  static framework::FcmFramework deserialize_framework(
      std::span<const std::byte> buffer,
      obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global());

  // --- header / fingerprint ----------------------------------------------
  // Validates magic, version, reserved byte, type-tag range, and that
  // payload_bytes matches the buffer exactly; throws ContractViolation.
  static WireHeader peek(std::span<const std::byte> buffer);

  // Merge-compatibility fingerprint of a framework configuration: equal
  // fingerprints guarantee FcmFramework::merge() preconditions hold between
  // snapshots encoded with these options. The AggregationService compares
  // this against WireHeader::fingerprint before deserializing anything.
  static std::uint64_t merge_fingerprint(
      const framework::FcmFramework::Options& options);

 private:
  // Shared body encoders/decoders (nested payloads reuse them: FcmTopK is a
  // sketch body followed by a filter body, FcmFramework wraps either).
  static void encode_config(WireWriter& out, const core::FcmConfig& config);
  static core::FcmConfig decode_config(WireReader& in);
  static void encode_tree_state(WireWriter& out, const core::FcmTree& tree);
  static void decode_tree_state(WireReader& in, core::FcmTree& tree);
  static void encode_sketch_body(WireWriter& out, const core::FcmSketch& s);
  static core::FcmSketch decode_sketch_body(WireReader& in);
  static void encode_cm_body(WireWriter& out, const sketch::CmSketch& cm);
  static void decode_cm_body(WireReader& in, sketch::CmSketch& cm);
  static void encode_filter_body(WireWriter& out,
                                 const sketch::TopKFilter& filter);
  static sketch::TopKFilter decode_filter_body(WireReader& in);

  // Per-type merge-compatibility fingerprints (see WireHeader::fingerprint).
  static std::uint64_t fingerprint_bytes(std::span<const std::byte> bytes);
  static std::uint64_t fingerprint_config(const core::FcmConfig& config);
  static std::uint64_t fingerprint_tree(const core::FcmTree& tree);
  static std::uint64_t fingerprint_cm(const sketch::CmSketch& cm);
  static std::uint64_t fingerprint_filter(const sketch::TopKFilter& filter);
  static std::uint64_t fingerprint_fcm_topk(const core::FcmTopK& topk);

  // Frame assembly/validation around a finished payload.
  static std::vector<std::byte> frame(WireType type, std::uint64_t fingerprint,
                                      WireWriter&& payload);
  static WireReader open(std::span<const std::byte> buffer, WireType expected,
                         std::uint64_t* fingerprint_out);
};

}  // namespace fcm::agg
