// Snapshot-isolated query plane for the aggregation service (DESIGN.md §11).
//
// The AggregationService publishes one immutable NetworkView per completed
// epoch; readers grab a shared_ptr to the current view under a brief lock
// and then query it lock-free for as long as they hold the pointer — the
// double-buffered-generation pattern from ShardedFcmFramework, generalized
// to a retained history so heavy-change queries can reach back several
// epochs. Ingest and merges never mutate a published view: publish()
// installs a *new* shared_ptr; concurrent readers keep whatever generation
// they already pinned (TSan-verified by tests/test_agg.cpp and the CI soak
// job).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"
#include "framework/fcm_framework.h"

namespace fcm::agg {

// One published network-wide generation: the merged data plane plus the
// derived statistics frozen at publish time. Immutable after publication —
// every member is written exactly once, before the shared_ptr is installed.
struct NetworkView {
  std::uint64_t epoch = 0;

  // Vantage points whose snapshots were merged into this view (sorted). A
  // partial epoch (forced publish after a dropped vantage) lists fewer than
  // the service's configured vantage_count.
  std::vector<std::uint32_t> vantages;

  // The merged data plane. Flow size / cardinality / heavy hitters queries
  // go straight through it; analyze() may also be re-run by a reader that
  // wants fresh EM statistics on this frozen epoch.
  framework::FcmFramework network;

  // Derived at publish time.
  std::vector<flow::FlowKey> heavy_hitters;
  double cardinality = 0.0;

  // Flows whose size changed by at least the service's heavy-change
  // threshold vs the previously published view. Empty when no previous view
  // existed or heavy-change detection is disabled.
  std::vector<flow::FlowKey> heavy_changes;

  // EM-derived statistics (FSD, entropy); populated only when the service
  // runs with analyze_on_publish (the EM pass is epoch-scale work).
  std::optional<framework::FcmFramework::Report> report;

  explicit NetworkView(framework::FcmFramework merged)
      : network(std::move(merged)) {}
};

// Holder of the published generations. publish() and the readers
// synchronize on one mutex held only for a pointer/deque swap; all actual
// query work happens outside the lock on immutable views.
class QueryPlane {
 public:
  // Keeps the newest `retained_epochs` views reachable via at(); current()
  // always returns the newest. retained_epochs >= 1.
  explicit QueryPlane(std::size_t retained_epochs);

  // Installs `view` as the current generation. Views must arrive with
  // strictly increasing epochs (the service's in-order publish guarantees
  // it; ContractViolation otherwise).
  void publish(std::shared_ptr<const NetworkView> view);

  // The newest published generation; nullptr before the first publish.
  // Readers may hold the returned pointer arbitrarily long — retention only
  // bounds what at() can find, not the lifetime of pinned views.
  std::shared_ptr<const NetworkView> current() const;

  // A retained historical generation, or nullptr if `epoch` was never
  // published or has aged out of the retention window.
  std::shared_ptr<const NetworkView> at(std::uint64_t epoch) const;

  // Epochs still in the retention window, oldest first.
  std::vector<std::uint64_t> published_epochs() const;

  std::size_t retained_epochs() const noexcept { return retained_; }

 private:
  const std::size_t retained_;

  mutable common::Mutex mutex_;
  // history_.back() is the current generation.
  std::deque<std::shared_ptr<const NetworkView>> history_
      FCM_GUARDED_BY(mutex_);
};

}  // namespace fcm::agg
