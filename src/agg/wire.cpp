#include "agg/wire.h"

#include <algorithm>
#include <array>
#include <string>
#include <utility>

#include "common/hash.h"

namespace fcm::agg {
namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'F', 'C', 'M', 'W'};
constexpr std::size_t kFrameHeaderBytes = 24;
constexpr std::uint64_t kFingerprintSalt = 0xfc3a'9617'57a9'e001ull;

// Sanity ceiling on tree_count for wire decodes: the paper uses 2, the
// ablation bench at most 4. Bounds the tree_count * per-tree-bytes product
// before any allocation, so a hostile count cannot overflow the arithmetic.
constexpr std::uint64_t kMaxWireTrees = 64;

// Smallest fixed width that holds a b-bit stage's overflow marker 2^b - 1.
std::uint64_t stage_elem_bytes(unsigned bits) {
  return bits <= 8 ? 1 : bits <= 16 ? 2 : 4;
}

// Bytes one tree's state section occupies: promotions + per-stage arrays.
std::uint64_t tree_state_bytes(const core::FcmConfig& config) {
  std::uint64_t total = 8;  // promotions
  for (std::size_t l = 1; l <= config.stage_count(); ++l) {
    total += static_cast<std::uint64_t>(config.width(l)) *
             stage_elem_bytes(config.stage_bits[l - 1]);
  }
  return total;
}

void require_valid_config(const core::FcmConfig& config) {
  try {
    config.validate();
  } catch (const std::invalid_argument& err) {
    // Re-raise through the contract machinery so hostile wire input always
    // surfaces as ContractViolation (never a bare invalid_argument whose
    // origin the caller cannot distinguish from a programming error).
    const std::string why = err.what();
    FCM_REQUIRE(false, "wire: invalid FcmConfig in buffer: " + why);
  }
}

}  // namespace

// --- fingerprints -----------------------------------------------------------

std::uint64_t WireCodec::fingerprint_bytes(std::span<const std::byte> bytes) {
  std::uint64_t h = kFingerprintSalt;
  for (const std::byte b : bytes) {
    h = common::mix64(h ^ std::to_integer<std::uint64_t>(b));
  }
  // One more round so trailing zero bytes still perturb the result.
  return common::mix64(h ^ bytes.size());
}

std::uint64_t WireCodec::fingerprint_config(const core::FcmConfig& config) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(WireType::kFcmSketch));
  encode_config(w, config);
  return fingerprint_bytes(w.bytes());
}

std::uint64_t WireCodec::fingerprint_tree(const core::FcmTree& tree) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(WireType::kFcmTree));
  encode_config(w, tree.config());
  w.u32(tree.hash().seed());
  return fingerprint_bytes(w.bytes());
}

std::uint64_t WireCodec::fingerprint_cm(const sketch::CmSketch& cm) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(cm.name() == "CU" ? WireType::kCuSketch
                                                   : WireType::kCmSketch));
  w.u32(static_cast<std::uint32_t>(cm.depth()));
  w.u64(cm.width());
  for (const common::SeededHash& hash : cm.hashes_) w.u32(hash.seed());
  return fingerprint_bytes(w.bytes());
}

std::uint64_t WireCodec::fingerprint_filter(const sketch::TopKFilter& filter) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(WireType::kTopKFilter));
  w.u32(filter.hash_.seed());
  w.u32(filter.lambda_);
  w.u64(filter.entry_count());
  return fingerprint_bytes(w.bytes());
}

std::uint64_t WireCodec::fingerprint_fcm_topk(const core::FcmTopK& topk) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(WireType::kFcmTopK));
  encode_config(w, topk.sketch().config());
  w.u64(fingerprint_filter(topk.filter()));
  return fingerprint_bytes(w.bytes());
}

std::uint64_t WireCodec::merge_fingerprint(
    const framework::FcmFramework::Options& options) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(WireType::kFcmFramework));
  encode_config(w, options.fcm);
  w.u64(options.topk_entries);
  w.u64(options.heavy_hitter_threshold);
  w.u8(static_cast<std::uint8_t>(options.count_mode));
  // The framework always builds its Top-K filter with the default eviction
  // lambda (FcmTopK::Config); 0 marks "no filter" so plain and filtered
  // deployments can never collide.
  w.u32(options.topk_entries > 0 ? core::FcmTopK::Config{}.eviction_lambda
                                 : 0u);
  return fingerprint_bytes(w.bytes());
}

// --- frame helpers ----------------------------------------------------------

std::vector<std::byte> WireCodec::frame(WireType type,
                                        std::uint64_t fingerprint,
                                        WireWriter&& payload) {
  WireWriter out;
  for (const std::uint8_t m : kMagic) out.u8(m);
  out.u16(kWireVersion);
  out.u8(static_cast<std::uint8_t>(type));
  out.u8(0);  // reserved
  out.u64(fingerprint);
  out.u64(payload.size());
  std::vector<std::byte> head = out.take();
  std::vector<std::byte> body = payload.take();
  head.insert(head.end(), body.begin(), body.end());
  return head;
}

WireHeader WireCodec::peek(std::span<const std::byte> buffer) {
  FCM_REQUIRE(buffer.size() >= kFrameHeaderBytes,
              "wire: buffer shorter than the frame header");
  WireReader in(buffer);
  for (const std::uint8_t expected : kMagic) {
    FCM_REQUIRE(in.u8() == expected, "wire: bad magic (not an FCMW buffer)");
  }
  WireHeader header;
  header.version = in.u16();
  FCM_REQUIRE(header.version == kWireVersion,
              "wire: unsupported wire version " +
                  std::to_string(header.version) + " (this build reads " +
                  std::to_string(kWireVersion) + ")");
  const std::uint8_t tag = in.u8();
  FCM_REQUIRE(tag >= static_cast<std::uint8_t>(WireType::kFcmTree) &&
                  tag <= static_cast<std::uint8_t>(WireType::kFcmFramework),
              "wire: unknown payload type tag " + std::to_string(tag));
  header.type = static_cast<WireType>(tag);
  FCM_REQUIRE(in.u8() == 0, "wire: reserved header byte is non-zero");
  header.fingerprint = in.u64();
  header.payload_bytes = in.u64();
  FCM_REQUIRE(header.payload_bytes == buffer.size() - kFrameHeaderBytes,
              "wire: declared payload length does not match the buffer "
              "(truncated or padded)");
  return header;
}

WireReader WireCodec::open(std::span<const std::byte> buffer, WireType expected,
                           std::uint64_t* fingerprint_out) {
  const WireHeader header = peek(buffer);
  FCM_REQUIRE(header.type == expected,
              "wire: payload type tag does not match the requested "
              "deserializer");
  *fingerprint_out = header.fingerprint;
  return WireReader(buffer.subspan(kFrameHeaderBytes));
}

// --- FcmConfig --------------------------------------------------------------

void WireCodec::encode_config(WireWriter& out, const core::FcmConfig& config) {
  out.u32(static_cast<std::uint32_t>(config.tree_count));
  out.u32(static_cast<std::uint32_t>(config.k));
  out.u64(config.leaf_count);
  out.u64(config.seed);
  out.u8(static_cast<std::uint8_t>(config.stage_count()));
  for (const unsigned bits : config.stage_bits) {
    out.u8(static_cast<std::uint8_t>(bits));
  }
}

core::FcmConfig WireCodec::decode_config(WireReader& in) {
  core::FcmConfig config;
  config.tree_count = in.u32();
  config.k = in.u32();
  config.leaf_count = in.u64();
  config.seed = in.u64();
  const std::uint8_t stage_count = in.u8();
  FCM_REQUIRE(stage_count >= 1 && stage_count <= 32,
              "wire: FcmConfig stage count out of range");
  config.stage_bits.clear();
  config.stage_bits.reserve(stage_count);
  for (std::uint8_t i = 0; i < stage_count; ++i) {
    const std::uint8_t bits = in.u8();
    FCM_REQUIRE(bits >= 1 && bits <= 32,
                "wire: FcmConfig stage bit width out of range");
    config.stage_bits.push_back(bits);
  }
  FCM_REQUIRE(config.tree_count >= 1 && config.tree_count <= kMaxWireTrees,
              "wire: FcmConfig tree count out of range");
  // Stage 1 alone needs >= leaf_count bytes of state, so any leaf_count
  // larger than the remaining payload is hostile; rejecting it here keeps
  // the per-stage byte arithmetic below overflow-free AND stops the tree
  // constructor from allocating gigabytes off a 30-byte buffer.
  FCM_REQUIRE(config.leaf_count <= in.remaining(),
              "wire: FcmConfig leaf count exceeds the bytes present");
  require_valid_config(config);
  return config;
}

// --- FcmTree ----------------------------------------------------------------

void WireCodec::encode_tree_state(WireWriter& out, const core::FcmTree& tree) {
  out.u64(tree.promotions_);
  const core::FcmConfig& config = tree.config();
  for (std::size_t l = 1; l <= config.stage_count(); ++l) {
    const std::uint64_t elem = stage_elem_bytes(config.stage_bits[l - 1]);
    for (const std::uint32_t value : tree.stages_[l - 1]) {
      if (elem == 1) {
        out.u8(static_cast<std::uint8_t>(value));
      } else if (elem == 2) {
        out.u16(static_cast<std::uint16_t>(value));
      } else {
        out.u32(value);
      }
    }
  }
}

void WireCodec::decode_tree_state(WireReader& in, core::FcmTree& tree) {
  const core::FcmConfig& config = tree.config();
  tree.promotions_ = in.u64();
  for (std::size_t l = 1; l <= config.stage_count(); ++l) {
    const unsigned bits = config.stage_bits[l - 1];
    const std::uint64_t elem = stage_elem_bytes(bits);
    const std::size_t width = config.width(l);
    in.require_payload(width, elem);
    // The overflow marker 2^b - 1 is the largest storable value.
    const std::uint64_t marker = config.counting_max(l) + 1;
    std::vector<std::uint32_t>& stage = tree.stages_[l - 1];
    for (std::size_t i = 0; i < width; ++i) {
      const std::uint32_t value =
          elem == 1 ? in.u8() : elem == 2 ? in.u16() : in.u32();
      FCM_REQUIRE(value <= marker,
                  "wire: tree node value exceeds its stage bit width "
                  "(corrupt or hostile buffer)");
      stage[i] = value;
    }
  }
  tree.check_invariants();
}

std::vector<std::byte> WireCodec::serialize(const core::FcmTree& tree) {
  WireWriter payload;
  encode_config(payload, tree.config());
  payload.u32(tree.hash().seed());
  encode_tree_state(payload, tree);
  return frame(WireType::kFcmTree, fingerprint_tree(tree), std::move(payload));
}

core::FcmTree WireCodec::deserialize_tree(std::span<const std::byte> buffer) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kFcmTree, &fingerprint);
  const core::FcmConfig config = decode_config(in);
  const std::uint32_t seed = in.u32();
  in.require_payload(tree_state_bytes(config), 1);
  core::FcmTree tree(config, common::SeededHash(seed));
  decode_tree_state(in, tree);
  FCM_REQUIRE(in.remaining() == 0, "wire: trailing bytes after FcmTree state");
  FCM_REQUIRE(fingerprint_tree(tree) == fingerprint,
              "wire: FcmTree config fingerprint mismatch");
  return tree;
}

// --- FcmSketch --------------------------------------------------------------

void WireCodec::encode_sketch_body(WireWriter& out, const core::FcmSketch& s) {
  encode_config(out, s.config_);
  for (const core::FcmTree& tree : s.trees_) {
    out.u32(tree.hash().seed());
    encode_tree_state(out, tree);
  }
  out.u8(s.hh_threshold_.has_value() ? 1 : 0);
  if (s.hh_threshold_.has_value()) out.u64(*s.hh_threshold_);
  // Sorted for a canonical encoding (the in-memory set iterates in hash
  // order, which must not leak into the bytes).
  std::vector<std::uint32_t> hh;
  hh.reserve(s.heavy_hitters_.size());
  for (const flow::FlowKey key : s.heavy_hitters_) hh.push_back(key.value);
  std::sort(hh.begin(), hh.end());
  out.u64(hh.size());
  for (const std::uint32_t key : hh) out.u32(key);
  out.u64(s.cardinality_saturations_);
}

core::FcmSketch WireCodec::decode_sketch_body(WireReader& in) {
  const core::FcmConfig config = decode_config(in);
  // Everything the trees will occupy must already be present; checked
  // before FcmSketch's constructor allocates the tree arrays.
  in.require_payload(
      config.tree_count,
      4 + tree_state_bytes(config));  // per tree: hash seed + state
  core::FcmSketch sketch(config);
  for (core::FcmTree& tree : sketch.trees_) {
    const std::uint32_t seed = in.u32();
    FCM_REQUIRE(seed == tree.hash().seed(),
                "wire: tree hash seed does not match the config-derived "
                "family (corrupt or hostile buffer)");
    decode_tree_state(in, tree);
  }
  const std::uint8_t has_threshold = in.u8();
  FCM_REQUIRE(has_threshold <= 1, "wire: boolean field out of range");
  if (has_threshold == 1) {
    const std::uint64_t threshold = in.u64();
    FCM_REQUIRE(threshold > 0, "wire: zero heavy-hitter threshold recorded");
    sketch.hh_threshold_ = threshold;
  }
  const std::uint64_t hh_count = in.u64();
  in.require_payload(hh_count, 4);
  FCM_REQUIRE(hh_count == 0 || has_threshold == 1,
              "wire: heavy hitters recorded without a threshold");
  sketch.heavy_hitters_.reserve(hh_count);
  for (std::uint64_t i = 0; i < hh_count; ++i) {
    sketch.heavy_hitters_.insert(flow::FlowKey{in.u32()});
  }
  FCM_REQUIRE(sketch.heavy_hitters_.size() == hh_count,
              "wire: duplicate heavy-hitter keys in buffer");
  sketch.cardinality_saturations_ = in.u64();
  sketch.check_invariants();
  return sketch;
}

std::vector<std::byte> WireCodec::serialize(const core::FcmSketch& sketch) {
  WireWriter payload;
  encode_sketch_body(payload, sketch);
  WireWriter fp;
  fp.u8(static_cast<std::uint8_t>(WireType::kFcmSketch));
  encode_config(fp, sketch.config());
  fp.u8(sketch.hh_threshold_.has_value() ? 1 : 0);
  fp.u64(sketch.hh_threshold_.value_or(0));
  return frame(WireType::kFcmSketch, fingerprint_bytes(fp.bytes()),
               std::move(payload));
}

core::FcmSketch WireCodec::deserialize_sketch(
    std::span<const std::byte> buffer) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kFcmSketch, &fingerprint);
  core::FcmSketch sketch = decode_sketch_body(in);
  FCM_REQUIRE(in.remaining() == 0,
              "wire: trailing bytes after FcmSketch state");
  WireWriter fp;
  fp.u8(static_cast<std::uint8_t>(WireType::kFcmSketch));
  encode_config(fp, sketch.config());
  fp.u8(sketch.hh_threshold_.has_value() ? 1 : 0);
  fp.u64(sketch.hh_threshold_.value_or(0));
  FCM_REQUIRE(fingerprint_bytes(fp.bytes()) == fingerprint,
              "wire: FcmSketch config fingerprint mismatch");
  return sketch;
}

// --- CmSketch / CuSketch ----------------------------------------------------

void WireCodec::encode_cm_body(WireWriter& out, const sketch::CmSketch& cm) {
  out.u32(static_cast<std::uint32_t>(cm.depth()));
  out.u64(cm.width());
  for (const common::SeededHash& hash : cm.hashes_) out.u32(hash.seed());
  out.u64(cm.saturations_);
  for (const std::vector<std::uint32_t>& row : cm.rows_) {
    for (const std::uint32_t counter : row) out.u32(counter);
  }
}

void WireCodec::decode_cm_body(WireReader& in, sketch::CmSketch& cm) {
  // Geometry was decoded and bounded by the caller (which constructed `cm`);
  // here the seeds/saturations/counters stream straight into it.
  for (common::SeededHash& hash : cm.hashes_) {
    hash = common::SeededHash(in.u32());
  }
  cm.saturations_ = in.u64();
  for (std::vector<std::uint32_t>& row : cm.rows_) {
    in.require_payload(row.size(), 4);
    for (std::uint32_t& counter : row) counter = in.u32();
  }
  cm.check_invariants();
}

std::vector<std::byte> WireCodec::serialize(const sketch::CmSketch& cm) {
  const WireType type =
      cm.name() == "CU" ? WireType::kCuSketch : WireType::kCmSketch;
  WireWriter payload;
  encode_cm_body(payload, cm);
  return frame(type, fingerprint_cm(cm), std::move(payload));
}

namespace {

// Shared CM/CU geometry decode: bounds depth/width against the payload
// before the sketch constructor allocates depth*width counters.
struct CmGeometry {
  std::size_t depth = 0;
  std::size_t width = 0;
};

CmGeometry decode_cm_geometry(WireReader& in) {
  CmGeometry geometry;
  geometry.depth = in.u32();
  FCM_REQUIRE(geometry.depth >= 1 && geometry.depth <= 64,
              "wire: CM depth out of range");
  const std::uint64_t width = in.u64();
  FCM_REQUIRE(width >= 1, "wire: CM width must be positive");
  FCM_REQUIRE(width <= in.remaining() / (4 * geometry.depth),
              "wire: declared CM geometry exceeds the bytes present "
              "(truncated or hostile buffer)");
  geometry.width = static_cast<std::size_t>(width);
  return geometry;
}

}  // namespace

sketch::CmSketch WireCodec::deserialize_cm(std::span<const std::byte> buffer) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kCmSketch, &fingerprint);
  const CmGeometry geometry = decode_cm_geometry(in);
  sketch::CmSketch cm(geometry.depth, geometry.width);
  decode_cm_body(in, cm);
  FCM_REQUIRE(in.remaining() == 0, "wire: trailing bytes after CM state");
  FCM_REQUIRE(fingerprint_cm(cm) == fingerprint,
              "wire: CM config fingerprint mismatch");
  return cm;
}

sketch::CuSketch WireCodec::deserialize_cu(std::span<const std::byte> buffer) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kCuSketch, &fingerprint);
  const CmGeometry geometry = decode_cm_geometry(in);
  sketch::CuSketch cu(geometry.depth, geometry.width);
  decode_cm_body(in, cu);
  FCM_REQUIRE(in.remaining() == 0, "wire: trailing bytes after CU state");
  FCM_REQUIRE(fingerprint_cm(cu) == fingerprint,
              "wire: CU config fingerprint mismatch");
  return cu;
}

// --- TopKFilter -------------------------------------------------------------

void WireCodec::encode_filter_body(WireWriter& out,
                                   const sketch::TopKFilter& filter) {
  out.u32(filter.hash_.seed());
  out.u32(filter.lambda_);
  out.u64(filter.table_.size());
  for (const sketch::TopKFilter::Entry& entry : filter.table_) {
    out.u32(entry.key.value);
    out.u32(entry.count);
    out.u32(entry.negative);
    out.u8(entry.has_light_part ? 1 : 0);
  }
}

sketch::TopKFilter WireCodec::decode_filter_body(WireReader& in) {
  const std::uint32_t seed = in.u32();
  const std::uint32_t lambda = in.u32();
  FCM_REQUIRE(lambda >= 1, "wire: Top-K eviction lambda must be positive");
  const std::uint64_t entry_count = in.u64();
  FCM_REQUIRE(entry_count >= 1, "wire: Top-K entry count must be positive");
  in.require_payload(entry_count, 13);  // u32 key/count/negative + u8 flags
  sketch::TopKFilter filter(static_cast<std::size_t>(entry_count), lambda);
  filter.hash_ = common::SeededHash(seed);
  for (sketch::TopKFilter::Entry& entry : filter.table_) {
    entry.key = flow::FlowKey{in.u32()};
    entry.count = in.u32();
    entry.negative = in.u32();
    const std::uint8_t flags = in.u8();
    FCM_REQUIRE(flags <= 1, "wire: Top-K entry flags out of range");
    entry.has_light_part = flags == 1;
  }
  // The vote-table ordering invariants (empty buckets carry nothing,
  // residents dominate challengers) catch bit flips the field checks miss.
  filter.check_invariants();
  return filter;
}

std::vector<std::byte> WireCodec::serialize(const sketch::TopKFilter& filter) {
  WireWriter payload;
  encode_filter_body(payload, filter);
  return frame(WireType::kTopKFilter, fingerprint_filter(filter),
               std::move(payload));
}

sketch::TopKFilter WireCodec::deserialize_topk_filter(
    std::span<const std::byte> buffer) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kTopKFilter, &fingerprint);
  sketch::TopKFilter filter = decode_filter_body(in);
  FCM_REQUIRE(in.remaining() == 0,
              "wire: trailing bytes after Top-K filter state");
  FCM_REQUIRE(fingerprint_filter(filter) == fingerprint,
              "wire: Top-K filter config fingerprint mismatch");
  return filter;
}

// --- FcmTopK ----------------------------------------------------------------

std::vector<std::byte> WireCodec::serialize(const core::FcmTopK& topk) {
  WireWriter payload;
  encode_sketch_body(payload, topk.sketch_);
  encode_filter_body(payload, topk.filter_);
  return frame(WireType::kFcmTopK, fingerprint_fcm_topk(topk),
               std::move(payload));
}

core::FcmTopK WireCodec::deserialize_fcm_topk(
    std::span<const std::byte> buffer) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kFcmTopK, &fingerprint);
  core::FcmSketch sketch = decode_sketch_body(in);
  sketch::TopKFilter filter = decode_filter_body(in);
  FCM_REQUIRE(in.remaining() == 0, "wire: trailing bytes after FcmTopK state");
  core::FcmTopK::Config config;
  config.fcm = sketch.config();
  config.topk_entries = filter.entry_count();
  config.eviction_lambda = filter.lambda_;
  core::FcmTopK topk(config);
  topk.sketch_ = std::move(sketch);
  topk.filter_ = std::move(filter);
  FCM_REQUIRE(fingerprint_fcm_topk(topk) == fingerprint,
              "wire: FcmTopK config fingerprint mismatch");
  return topk;
}

// --- cardinality registers --------------------------------------------------

std::vector<std::byte> WireCodec::serialize(const sketch::LinearCounting& lc) {
  WireWriter payload;
  payload.u32(lc.hash_.seed());
  payload.u64(lc.bitmap_.size());
  std::uint8_t packed = 0;
  for (std::size_t i = 0; i < lc.bitmap_.size(); ++i) {
    if (lc.bitmap_[i]) packed |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7 || i + 1 == lc.bitmap_.size()) {
      payload.u8(packed);
      packed = 0;
    }
  }
  WireWriter fp;
  fp.u8(static_cast<std::uint8_t>(WireType::kLinearCounting));
  fp.u32(lc.hash_.seed());
  fp.u64(lc.bitmap_.size());
  return frame(WireType::kLinearCounting, fingerprint_bytes(fp.bytes()),
               std::move(payload));
}

sketch::LinearCounting WireCodec::deserialize_linear_counting(
    std::span<const std::byte> buffer) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kLinearCounting, &fingerprint);
  const std::uint32_t seed = in.u32();
  const std::uint64_t bits = in.u64();
  FCM_REQUIRE(bits >= 1, "wire: LinearCounting bitmap must be non-empty");
  // bits/8 <= remaining bounds the constructor's allocation by the buffer.
  FCM_REQUIRE(bits / 8 <= in.remaining(),
              "wire: LinearCounting bitmap exceeds the bytes present");
  const std::uint64_t packed_bytes = (bits + 7) / 8;
  in.require_payload(packed_bytes, 1);
  sketch::LinearCounting lc(static_cast<std::size_t>(bits));
  lc.hash_ = common::SeededHash(seed);
  std::uint8_t packed = 0;
  for (std::uint64_t i = 0; i < bits; ++i) {
    if (i % 8 == 0) packed = in.u8();
    lc.bitmap_[static_cast<std::size_t>(i)] = (packed >> (i % 8)) & 1u;
  }
  if (bits % 8 != 0) {
    FCM_REQUIRE(packed >> (bits % 8) == 0,
                "wire: LinearCounting trailing pad bits are non-zero");
  }
  FCM_REQUIRE(in.remaining() == 0,
              "wire: trailing bytes after LinearCounting state");
  WireWriter fp;
  fp.u8(static_cast<std::uint8_t>(WireType::kLinearCounting));
  fp.u32(seed);
  fp.u64(bits);
  FCM_REQUIRE(fingerprint_bytes(fp.bytes()) == fingerprint,
              "wire: LinearCounting config fingerprint mismatch");
  return lc;
}

std::vector<std::byte> WireCodec::serialize(const sketch::HyperLogLog& hll) {
  WireWriter payload;
  payload.u32(hll.hash_.seed());
  payload.u8(static_cast<std::uint8_t>(hll.index_bits_));
  for (const std::uint8_t reg : hll.registers_) payload.u8(reg);
  WireWriter fp;
  fp.u8(static_cast<std::uint8_t>(WireType::kHyperLogLog));
  fp.u32(hll.hash_.seed());
  fp.u8(static_cast<std::uint8_t>(hll.index_bits_));
  return frame(WireType::kHyperLogLog, fingerprint_bytes(fp.bytes()),
               std::move(payload));
}

sketch::HyperLogLog WireCodec::deserialize_hll(
    std::span<const std::byte> buffer) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kHyperLogLog, &fingerprint);
  const std::uint32_t seed = in.u32();
  const std::uint8_t index_bits = in.u8();
  FCM_REQUIRE(index_bits >= 4 && index_bits <= 26,
              "wire: HyperLogLog index bits out of range");
  const std::uint64_t register_count = 1ull << index_bits;
  in.require_payload(register_count, 1);
  sketch::HyperLogLog hll(static_cast<std::size_t>(register_count));
  hll.hash_ = common::SeededHash(seed);
  for (std::uint8_t& reg : hll.registers_) {
    reg = in.u8();
    // rho(hash) of a 32-bit value is at most 33; anything above is corrupt.
    FCM_REQUIRE(reg <= 64, "wire: HyperLogLog register value out of range");
  }
  FCM_REQUIRE(in.remaining() == 0,
              "wire: trailing bytes after HyperLogLog state");
  WireWriter fp;
  fp.u8(static_cast<std::uint8_t>(WireType::kHyperLogLog));
  fp.u32(seed);
  fp.u8(index_bits);
  FCM_REQUIRE(fingerprint_bytes(fp.bytes()) == fingerprint,
              "wire: HyperLogLog config fingerprint mismatch");
  return hll;
}

// --- FcmFramework -----------------------------------------------------------

std::vector<std::byte> WireCodec::serialize(const framework::FcmFramework& fw) {
  const framework::FcmFramework::Options& options = fw.options_;
  // The single-pass sweep sidecars (DESIGN.md §14) are a local ingest
  // optimization and are not part of the wire format; silently dropping
  // them would make a round-trip lossy, so refuse outright.
  FCM_REQUIRE(!options.single_pass_sweep,
              "wire: sweep-enabled frameworks are not wire-transportable");
  WireWriter payload;
  payload.u8(fw.with_topk_.has_value() ? 1 : 0);
  encode_config(payload, options.fcm);
  payload.u64(options.topk_entries);
  payload.u64(options.heavy_hitter_threshold);
  payload.u8(static_cast<std::uint8_t>(options.count_mode));
  // Analysis policy rides along so a control plane restored from the wire
  // produces the same reports; it is NOT part of the merge fingerprint.
  payload.u64(options.em.max_iterations);
  payload.u64(options.em.value_enumeration_cap);
  payload.u64(options.em.max_extra_flows);
  payload.u32(options.em.max_enumeration_degree);
  payload.u64(options.em.thread_count);
  if (fw.with_topk_.has_value()) {
    encode_sketch_body(payload, fw.with_topk_->sketch_);
    encode_filter_body(payload, fw.with_topk_->filter_);
  } else {
    encode_sketch_body(payload, *fw.plain_);
  }
  return frame(WireType::kFcmFramework, merge_fingerprint(options),
               std::move(payload));
}

framework::FcmFramework WireCodec::deserialize_framework(
    std::span<const std::byte> buffer, obs::MetricsRegistry* metrics) {
  std::uint64_t fingerprint = 0;
  WireReader in = open(buffer, WireType::kFcmFramework, &fingerprint);
  const std::uint8_t has_topk = in.u8();
  FCM_REQUIRE(has_topk <= 1, "wire: boolean field out of range");

  framework::FcmFramework::Options options;
  options.fcm = decode_config(in);
  options.topk_entries = static_cast<std::size_t>(in.u64());
  options.heavy_hitter_threshold = in.u64();
  const std::uint8_t count_mode = in.u8();
  FCM_REQUIRE(count_mode <= 1, "wire: count mode out of range");
  options.count_mode =
      static_cast<framework::FcmFramework::CountMode>(count_mode);
  options.em.max_iterations = static_cast<std::size_t>(in.u64());
  options.em.value_enumeration_cap = in.u64();
  options.em.max_extra_flows = static_cast<std::size_t>(in.u64());
  options.em.max_enumeration_degree = in.u32();
  options.em.thread_count = static_cast<std::size_t>(in.u64());
  options.metrics = metrics;
  FCM_REQUIRE((has_topk == 1) == (options.topk_entries > 0),
              "wire: Top-K presence flag contradicts the entry count");

  // The constructor re-runs all Options cross-field validation (e.g. byte
  // counting excludes the Top-K plane) before any state is restored.
  framework::FcmFramework fw(options);
  if (has_topk == 1) {
    core::FcmSketch sketch = decode_sketch_body(in);
    sketch::TopKFilter filter = decode_filter_body(in);
    FCM_REQUIRE(sketch.config() == options.fcm,
                "wire: framework body config contradicts its options");
    FCM_REQUIRE(filter.entry_count() == options.topk_entries,
                "wire: framework filter geometry contradicts its options");
    fw.with_topk_->sketch_ = std::move(sketch);
    fw.with_topk_->filter_ = std::move(filter);
  } else {
    core::FcmSketch sketch = decode_sketch_body(in);
    FCM_REQUIRE(sketch.config() == options.fcm,
                "wire: framework body config contradicts its options");
    *fw.plain_ = std::move(sketch);
  }
  FCM_REQUIRE(in.remaining() == 0,
              "wire: trailing bytes after FcmFramework state");
  const core::FcmSketch& restored = fw.sketch();
  FCM_REQUIRE(
      (restored.hh_threshold_.has_value() ? *restored.hh_threshold_ : 0) ==
          options.heavy_hitter_threshold,
      "wire: restored heavy-hitter threshold contradicts the options");
  FCM_REQUIRE(merge_fingerprint(options) == fingerprint,
              "wire: framework merge fingerprint mismatch");
  fw.check_invariants();
  return fw;
}

}  // namespace fcm::agg
