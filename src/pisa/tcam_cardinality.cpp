#include "pisa/tcam_cardinality.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fcm::pisa {

double TcamCardinalityTable::exact(std::size_t leaf_count,
                                   std::size_t empty_leaves) {
  const double w1 = static_cast<double>(leaf_count);
  const double w0 = std::max<double>(0.5, static_cast<double>(empty_leaves));
  return -w1 * std::log(std::min(1.0, w0 / w1));
}

TcamCardinalityTable::TcamCardinalityTable(std::size_t leaf_count,
                                           double max_relative_error)
    : leaf_count_(leaf_count) {
  if (leaf_count == 0 || max_relative_error <= 0.0) {
    throw std::invalid_argument("TcamCardinalityTable: bad parameters");
  }
  // Walk w0 downward from w1; emit an entry whenever the exact estimate has
  // drifted past the error budget from the last emitted entry. One flow of
  // absolute slack keeps the near-zero region from emitting every w0.
  std::size_t w0 = leaf_count;
  entries_.push_back(Entry{w0, exact(leaf_count, w0)});
  while (w0 > 1) {
    const double last = entries_.back().estimate;
    const double budget = last * max_relative_error + 1.0;
    std::size_t next = w0 - 1;
    // Largest step such that the estimate moves by at most `budget`:
    // n̂(w0') - n̂(w0) = w1 * ln(w0/w0')  =>  w0' >= w0 * exp(-budget/w1).
    const double w0_min =
        static_cast<double>(w0) *
        std::exp(-budget / static_cast<double>(leaf_count));
    next = std::min<std::size_t>(
        next, static_cast<std::size_t>(std::floor(w0_min)));
    if (next < 1) next = 1;
    entries_.push_back(Entry{next, exact(leaf_count, next)});
    if (next == 1) break;
    w0 = next;
  }
}

double TcamCardinalityTable::lookup(std::size_t empty_leaves) const {
  const std::size_t w0 =
      std::clamp<std::size_t>(empty_leaves, 1, leaf_count_);
  // Entries are stored with descending empty_leaves; pick the first entry
  // whose w0 <= observed (the one-sided nearest match of Appendix C).
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), w0,
      [](const Entry& entry, std::size_t value) { return entry.empty_leaves > value; });
  return it == entries_.end() ? entries_.back().estimate : it->estimate;
}

}  // namespace fcm::pisa
