// PISA (Tofino-like) resource model used to reproduce the paper's hardware
// evaluation (§8.3, Table 4/5 and Figure 14a).
//
// Resource totals follow the publicly known Tofino-1 per-pipe architecture:
// 12 match-action stages, 4 stateful ALUs and 80 16-KB SRAM blocks per
// stage. Per-algorithm usage is computed structurally (one register array
// per counter stage, one hash unit per independent hash function, ...);
// formulas are calibrated against the utilization percentages published in
// the paper's Table 4 and documented inline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fcm/fcm_config.h"

namespace fcm::pisa {

// Per-pipe budget of the modeled switch.
struct PipelineBudget {
  std::size_t stages = 12;
  std::size_t salus_per_stage = 4;        // 48 total
  std::size_t sram_blocks_per_stage = 80; // 16 KB each, 960 total
  std::size_t sram_block_bytes = 16 * 1024;
  std::size_t hash_bits_total = 4992;     // 8 x 52-bit units per stage group
  std::size_t crossbar_units_total = 1536;
  std::size_t vliw_actions_total = 384;
  std::size_t tcam_blocks_total = 288;

  std::size_t salus_total() const noexcept { return stages * salus_per_stage; }
  std::size_t sram_blocks_total() const noexcept {
    return stages * sram_blocks_per_stage;
  }
};

struct ResourceUsage {
  std::string name;
  std::size_t stages = 0;
  std::size_t salus = 0;
  std::size_t sram_blocks = 0;
  std::size_t hash_bits = 0;
  std::size_t crossbar_units = 0;
  std::size_t vliw_actions = 0;
  std::size_t tcam_entries = 0;

  double stage_fraction(const PipelineBudget& b) const;
  double salu_percent(const PipelineBudget& b) const;
  double sram_percent(const PipelineBudget& b) const;
  double hash_percent(const PipelineBudget& b) const;
  double crossbar_percent(const PipelineBudget& b) const;
  double vliw_percent(const PipelineBudget& b) const;
};

// FCM-Sketch mapped onto the pipeline: one stage for hashing plus one stage
// per tree level (trees run in parallel), one sALU per (tree, level).
ResourceUsage fcm_usage(const core::FcmConfig& config,
                        const PipelineBudget& budget = {});

// FCM+TopK: FCM plus a single-level TopK filter (key/count/vote register
// arrays and the eviction logic) occupying four additional stages (§8.1).
ResourceUsage fcm_topk_usage(const core::FcmConfig& config,
                             std::size_t topk_entries,
                             const PipelineBudget& budget = {});

// CM(d)+TopK (the paper's ElasticSketch emulation, §8.2.2): d arrays of
// 8-bit registers behind the same single-level TopK filter.
ResourceUsage cm_topk_usage(std::size_t depth, std::size_t counters_per_array,
                            std::size_t topk_entries,
                            const PipelineBudget& budget = {});

// Published utilization of the switch.p4 baseline (paper Table 4) and of
// the related systems in Table 5. These are constants from the paper, not
// modeled (the artifacts are external).
struct PublishedUsage {
  std::string name;
  double sram_percent;
  double crossbar_percent;
  double tcam_percent;
  double salu_percent;
  double hash_percent;
  double vliw_percent;
  std::size_t stages;
};
PublishedUsage switch_p4_published();
// Table 5 rows: {SketchLearn, QPipe, SpreadSketch}.
std::vector<PublishedUsage> related_systems_published();

}  // namespace fcm::pisa
