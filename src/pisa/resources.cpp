#include "pisa/resources.h"

namespace fcm::pisa {
namespace {

// SRAM blocks for one register array: payload rounded up to 16-KB blocks
// plus one block of map-RAM/overhead per array (the calibration that makes
// the paper's 9.38% at 1.3 MB come out).
std::size_t blocks_for_array(std::size_t bytes, const PipelineBudget& budget) {
  return (bytes + budget.sram_block_bytes - 1) / budget.sram_block_bytes + 1;
}

}  // namespace

double ResourceUsage::stage_fraction(const PipelineBudget& b) const {
  return static_cast<double>(stages) / static_cast<double>(b.stages);
}
double ResourceUsage::salu_percent(const PipelineBudget& b) const {
  return 100.0 * static_cast<double>(salus) / static_cast<double>(b.salus_total());
}
double ResourceUsage::sram_percent(const PipelineBudget& b) const {
  return 100.0 * static_cast<double>(sram_blocks) /
         static_cast<double>(b.sram_blocks_total());
}
double ResourceUsage::hash_percent(const PipelineBudget& b) const {
  return 100.0 * static_cast<double>(hash_bits) /
         static_cast<double>(b.hash_bits_total);
}
double ResourceUsage::crossbar_percent(const PipelineBudget& b) const {
  return 100.0 * static_cast<double>(crossbar_units) /
         static_cast<double>(b.crossbar_units_total);
}
double ResourceUsage::vliw_percent(const PipelineBudget& b) const {
  return 100.0 * static_cast<double>(vliw_actions) /
         static_cast<double>(b.vliw_actions_total);
}

ResourceUsage fcm_usage(const core::FcmConfig& config,
                        const PipelineBudget& budget) {
  ResourceUsage usage;
  usage.name = "FCM-Sketch";
  // One stage computes the per-tree hashes; each tree level occupies one
  // stage (trees are parallel, so levels share stages across trees).
  usage.stages = 1 + config.stage_count();
  usage.salus = config.tree_count * config.stage_count();
  for (std::size_t l = 1; l <= config.stage_count(); ++l) {
    const std::size_t bytes = config.width(l) * config.stage_bits[l - 1] / 8;
    usage.sram_blocks += config.tree_count * blocks_for_array(bytes, budget);
  }
  // One 52-bit hash unit per tree.
  usage.hash_bits = config.tree_count * 52;
  // Crossbar: flow key (4 bytes) into each tree's hash unit plus ~2 bytes of
  // PHV per register access for index/predicate wiring.
  usage.crossbar_units =
      config.tree_count * (8 + 2 * config.stage_count()) + 4;
  // One VLIW action per pipeline stage used, plus one for the final
  // estimate assembly.
  usage.vliw_actions = usage.stages + 1;
  return usage;
}

namespace {

// Single-level TopK filter resources: key, count and vote register arrays
// (3 sALUs) plus the eviction/flag logic (1 sALU), spread over 4 stages.
ResourceUsage topk_overhead(std::size_t entries, const PipelineBudget& budget) {
  ResourceUsage usage;
  usage.stages = 4;
  usage.salus = 4;
  usage.sram_blocks = blocks_for_array(entries * 4, budget) +  // keys
                      blocks_for_array(entries * 4, budget) +  // counts
                      blocks_for_array(entries * 4, budget);   // votes+flag
  usage.hash_bits = 24;  // one index hash into the filter
  usage.crossbar_units = 18;
  usage.vliw_actions = 5;
  return usage;
}

ResourceUsage combine(std::string name, const ResourceUsage& a,
                      const ResourceUsage& b) {
  ResourceUsage usage;
  usage.name = std::move(name);
  usage.stages = a.stages + b.stages;
  usage.salus = a.salus + b.salus;
  usage.sram_blocks = a.sram_blocks + b.sram_blocks;
  usage.hash_bits = a.hash_bits + b.hash_bits;
  usage.crossbar_units = a.crossbar_units + b.crossbar_units;
  usage.vliw_actions = a.vliw_actions + b.vliw_actions;
  usage.tcam_entries = a.tcam_entries + b.tcam_entries;
  return usage;
}

}  // namespace

ResourceUsage fcm_topk_usage(const core::FcmConfig& config,
                             std::size_t topk_entries,
                             const PipelineBudget& budget) {
  return combine("FCM+TopK", fcm_usage(config, budget),
                 topk_overhead(topk_entries, budget));
}

ResourceUsage cm_topk_usage(std::size_t depth, std::size_t counters_per_array,
                            std::size_t topk_entries,
                            const PipelineBudget& budget) {
  ResourceUsage cm;
  cm.name = "CM(" + std::to_string(depth) + ")+TopK";
  cm.stages = 1 + depth;  // hash stage + one stage per 8-bit array
  cm.salus = depth;
  for (std::size_t d = 0; d < depth; ++d) {
    cm.sram_blocks += blocks_for_array(counters_per_array, budget);  // 1 B each
  }
  cm.hash_bits = depth * 26;
  cm.crossbar_units = depth * 6 + 4;
  cm.vliw_actions = cm.stages + 1;
  return combine(cm.name, cm, topk_overhead(topk_entries, budget));
}

PublishedUsage switch_p4_published() {
  // Paper Table 4, switch.p4 column.
  return PublishedUsage{"switch.p4", 30.52, 37.50, 28.12, 22.92, 33.43, 36.98, 12};
}

std::vector<PublishedUsage> related_systems_published() {
  // Paper Table 5 (stages and sALUs are the published figures; other
  // columns were not reported and are set to 0).
  return {
      PublishedUsage{"SketchLearn", 0, 0, 0, 68.75, 0, 0, 9},
      PublishedUsage{"QPipe", 0, 0, 0, 45.83, 0, 0, 12},
      PublishedUsage{"SpreadSketch", 0, 0, 0, 12.50, 0, 0, 6},
  };
}

}  // namespace fcm::pisa
