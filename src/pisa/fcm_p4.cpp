#include "pisa/fcm_p4.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/contracts.h"

namespace fcm::pisa {

FcmP4Program::FcmP4Program(core::FcmConfig config)
    : config_(std::move(config)), cardinality_table_(config_.leaf_count, 0.002) {
  config_.validate();
  FCM_REQUIRE(config_.tree_count <= 4,
              "FcmP4Program: at most 4 trees fit the PHV layout, got " +
                  std::to_string(config_.tree_count));
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    tree_hashes_.push_back(
        common::make_hash(config_.seed, common::checked_narrow<std::uint32_t>(t)));
  }

  // Register arrays: one per (tree, level). Trees are parallel, so a level's
  // arrays share a stage (within the 4-sALU budget).
  array_ids_.resize(config_.tree_count);
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    for (std::size_t l = 1; l <= config_.stage_count(); ++l) {
      array_ids_[t].push_back(pipeline_.add_register_array(
          "tree" + std::to_string(t) + "_level" + std::to_string(l),
          config_.stage_bits[l - 1], config_.width(l)));
    }
  }

  // Stage 0: hashing and PHV initialization.
  const std::size_t hash_stage = pipeline_.add_stage();
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    const int ti = static_cast<int>(t);
    pipeline_.add_action(hash_stage,
                         HashAction{kIdxBase + ti, tree_hashes_[t].seed(),
                                    config_.leaf_count});
    pipeline_.add_action(hash_stage,
                         FieldAction{FieldAction::Op::kSetImm, kCarryBase + ti,
                                     -1, -1, 1, -1});
    pipeline_.add_action(hash_stage,
                         FieldAction{FieldAction::Op::kSetImm, kEstBase + ti,
                                     -1, -1, 0, -1});
  }

  // One stage per level: gated sALU increment plus the carry/estimate logic.
  for (std::size_t l = 1; l <= config_.stage_count(); ++l) {
    const std::size_t stage = pipeline_.add_stage();
    const auto marker = static_cast<std::uint64_t>(config_.counting_max(l)) + 1;
    const std::uint64_t cap = config_.counting_max(l);
    for (std::size_t t = 0; t < config_.tree_count; ++t) {
      const int idx = kIdxBase + static_cast<int>(t);
      const int carry = kCarryBase + static_cast<int>(t);
      const int est = kEstBase + static_cast<int>(t);

      pipeline_.add_action(
          stage, SaluAction{SaluAction::Kind::kFcmIncrement, array_ids_[t][l - 1],
                            idx, kVal, -1, carry});
      // overflow = (value == marker)
      pipeline_.add_action(stage, FieldAction{FieldAction::Op::kCmpEqImm, kOvf,
                                              kVal, -1, marker, carry});
      // contribution = overflow ? counting_max : value
      pipeline_.add_action(stage, FieldAction{FieldAction::Op::kCopy, kContrib,
                                              kVal, -1, 0, carry});
      pipeline_.add_action(stage, FieldAction{FieldAction::Op::kAnd, kGateTmp,
                                              carry, kOvf, 0, -1});
      pipeline_.add_action(stage, FieldAction{FieldAction::Op::kSetImm, kContrib,
                                              -1, -1, cap, kGateTmp});
      pipeline_.add_action(stage, FieldAction{FieldAction::Op::kAddField, est,
                                              kContrib, -1, 0, carry});
      // carry &&= overflow; index moves to the parent node.
      pipeline_.add_action(stage, FieldAction{FieldAction::Op::kAnd, carry,
                                              carry, kOvf, 0, -1});
      pipeline_.add_action(stage, FieldAction{FieldAction::Op::kDivImm, idx, -1,
                                              -1, config_.k, -1});
    }
  }

  // Final stage: count-query assembly (min over trees), the "one extra
  // stage" of §8.3.
  const std::size_t final_stage = pipeline_.add_stage();
  pipeline_.add_action(final_stage, FieldAction{FieldAction::Op::kCopy, kFinal,
                                                kEstBase, -1, 0, -1});
  for (std::size_t t = 1; t < config_.tree_count; ++t) {
    pipeline_.add_action(final_stage,
                         FieldAction{FieldAction::Op::kMinField, kFinal,
                                     kEstBase + static_cast<int>(t), -1, 0, -1});
  }

  pipeline_.validate();
}

std::uint64_t FcmP4Program::update(flow::FlowKey key) {
  Phv phv;
  phv.key = key;
  pipeline_.process(phv);
  return phv.fields[kFinal];
}

std::uint64_t FcmP4Program::query(flow::FlowKey key) const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    std::size_t index = tree_hashes_[t].index(key, config_.leaf_count);
    std::uint64_t estimate = 0;
    for (std::size_t l = 1; l <= config_.stage_count(); ++l) {
      const RegisterArray& array =
          pipeline_.register_array(array_ids_[t][l - 1]);
      const std::uint64_t value = array.at(index);
      if (value != array.marker()) {
        estimate += value;
        break;
      }
      estimate += value - 1;  // marker - 1 == counting max
      index /= config_.k;
    }
    best = std::min(best, estimate);
  }
  return best;
}

double FcmP4Program::estimate_cardinality_tcam() const {
  // The stateful ALUs track the number of empty leaves (§8.3); here it is
  // read from the registers, averaged over trees, and resolved via TCAM.
  double empty_sum = 0.0;
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    const auto& cells = pipeline_.register_array(array_ids_[t][0]).cells;
    empty_sum += static_cast<double>(
        std::count(cells.begin(), cells.end(), 0u));
  }
  const auto average_empty = static_cast<std::size_t>(
      empty_sum / static_cast<double>(config_.tree_count));
  return cardinality_table_.lookup(average_empty);
}

const RegisterArray& FcmP4Program::level_registers(std::size_t tree,
                                                   std::size_t level_1based) const {
  FCM_REQUIRE(tree < array_ids_.size(),
              "FcmP4Program: tree " + std::to_string(tree) + " out of range");
  FCM_REQUIRE(level_1based >= 1 && level_1based <= array_ids_[tree].size(),
              "FcmP4Program: level " + std::to_string(level_1based) +
                  " out of range");
  return pipeline_.register_array(array_ids_[tree][level_1based - 1]);
}

void FcmP4Program::check_invariants() const {
  config_.validate();
  pipeline_.check_invariants();
  // The compiled register arrays mirror the config's geometry exactly —
  // this is what makes the P4 program bit-identical to core::FcmSketch.
  FCM_ASSERT(array_ids_.size() == config_.tree_count,
             "FcmP4Program: register array rows diverged from tree count");
  for (std::size_t t = 0; t < array_ids_.size(); ++t) {
    FCM_ASSERT(array_ids_[t].size() == config_.stage_count(),
               "FcmP4Program: tree " + std::to_string(t) +
                   " register levels diverged from stage count");
    for (std::size_t l = 1; l <= array_ids_[t].size(); ++l) {
      const RegisterArray& array = level_registers(t, l);
      FCM_ASSERT(array.bits == config_.stage_bits[l - 1] &&
                     array.size() == config_.width(l),
                 "FcmP4Program: register array '" + array.name +
                     "' geometry diverged from the FCM config");
    }
  }
}

}  // namespace fcm::pisa
