#include "pisa/hardware_topk.h"

#include <stdexcept>
#include <string>

#include "common/contracts.h"

namespace fcm::pisa {

HardwareTopKFilter::HardwareTopKFilter(std::size_t entry_count,
                                       std::uint32_t eviction_votes,
                                       std::uint64_t seed)
    : hash_(common::make_hash(seed, 0)), eviction_votes_(eviction_votes) {
  FCM_REQUIRE(entry_count > 0,
              "HardwareTopKFilter: entry_count must be positive");
  FCM_REQUIRE(eviction_votes > 0,
              "HardwareTopKFilter: eviction_votes must be positive");
  table_.resize(entry_count);
}

sketch::TopKFilter::Offer HardwareTopKFilter::offer(flow::FlowKey key) {
  Entry& entry = table_[hash_.index(key, table_.size())];
  sketch::TopKFilter::Offer result;
  if (entry.key.value == 0) {
    entry = Entry{key, 1, 0, false};
    result.outcome = sketch::TopKFilter::Offer::Outcome::kKept;
    return result;
  }
  if (entry.key == key) {
    ++entry.count;
    result.outcome = sketch::TopKFilter::Offer::Outcome::kKept;
    return result;
  }
  ++entry.negative;
  if (entry.negative >= eviction_votes_) {
    result.outcome = sketch::TopKFilter::Offer::Outcome::kEvicted;
    result.evicted_key = entry.key;
    result.evicted_count = entry.count;
    entry = Entry{key, 1, 0, true};
    return result;
  }
  result.outcome = sketch::TopKFilter::Offer::Outcome::kPassThrough;
  return result;
}

std::optional<sketch::TopKFilter::QueryResult> HardwareTopKFilter::query(
    flow::FlowKey key) const {
  const Entry& entry = table_[hash_.index(key, table_.size())];
  if (entry.key.value == 0 || entry.key != key) return std::nullopt;
  return sketch::TopKFilter::QueryResult{entry.count, entry.has_light_part};
}

std::vector<sketch::TopKFilter::EntryView> HardwareTopKFilter::entries() const {
  std::vector<sketch::TopKFilter::EntryView> result;
  for (const Entry& entry : table_) {
    if (entry.key.value != 0) {
      result.push_back({entry.key, entry.count, entry.has_light_part});
    }
  }
  return result;
}

void HardwareTopKFilter::check_invariants() const {
  FCM_ASSERT(!table_.empty(), "HardwareTopKFilter: empty table");
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const Entry& entry = table_[i];
    if (entry.key.value == 0) {
      FCM_ASSERT(entry.count == 0 && entry.negative == 0 && !entry.has_light_part,
                 "HardwareTopKFilter: empty bucket " + std::to_string(i) +
                     " carries votes or flags");
      continue;
    }
    FCM_ASSERT(entry.count >= 1,
               "HardwareTopKFilter: occupied bucket " + std::to_string(i) +
                   " has zero count");
    FCM_ASSERT(entry.negative < eviction_votes_,
               "HardwareTopKFilter: bucket " + std::to_string(i) +
                   " survived past the eviction threshold");
  }
}

void HardwareTopKFilter::clear() {
  std::fill(table_.begin(), table_.end(), Entry{});
}

HardwareFcmTopK::HardwareFcmTopK(core::FcmConfig config, std::size_t topk_entries,
                                 std::uint32_t eviction_votes)
    : sketch_(std::move(config)),
      filter_(topk_entries, eviction_votes,
              common::mix64(sketch_.config().seed ^ 0x70b5)) {}

void HardwareFcmTopK::update(flow::FlowKey key) {
  const auto offer = filter_.offer(key);
  switch (offer.outcome) {
    case sketch::TopKFilter::Offer::Outcome::kKept:
      break;
    case sketch::TopKFilter::Offer::Outcome::kPassThrough:
      sketch_.update(key);
      break;
    case sketch::TopKFilter::Offer::Outcome::kEvicted:
      // The evicted count rides the packet's PHV into the sketch region
      // (a bulk add is one saturating sALU pass per level).
      sketch_.add(offer.evicted_key, offer.evicted_count);
      break;
  }
}

std::uint64_t HardwareFcmTopK::query(flow::FlowKey key) const {
  if (const auto hit = filter_.query(key)) {
    return hit->has_light_part ? hit->count + sketch_.query(key) : hit->count;
  }
  return sketch_.query(key);
}

void HardwareFcmTopK::clear() {
  sketch_.clear();
  filter_.clear();
}

}  // namespace fcm::pisa
