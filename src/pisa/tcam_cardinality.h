// TCAM-backed cardinality lookup (paper §3.3 and Appendix C).
//
// The data plane cannot evaluate n̂ = -w1 ln(w0/w1); instead a TCAM table
// maps the observed number of empty leaves w0 to a pre-computed estimate.
// A full table needs one entry per possible w0; Appendix C spaces entries
// using the estimator's sensitivity ∂n̂/∂w0 = -w1/w0 so the additional error
// stays below a bound (0.2% in the paper), shrinking the table by about two
// orders of magnitude. Lookup takes the nearest entry on one side, as
// longest-prefix matching would.
#pragma once

#include <cstdint>
#include <vector>

namespace fcm::pisa {

class TcamCardinalityTable {
 public:
  // `leaf_count` is w1; `max_relative_error` the additional error budget.
  explicit TcamCardinalityTable(std::size_t leaf_count,
                                double max_relative_error = 0.002);

  // Estimate for an observed number of empty leaves (clamped to [1, w1]).
  double lookup(std::size_t empty_leaves) const;

  // Exact linear-counting estimate (control-plane reference).
  static double exact(std::size_t leaf_count, std::size_t empty_leaves);

  std::size_t entry_count() const noexcept { return entries_.size(); }
  std::size_t full_table_size() const noexcept { return leaf_count_; }

 private:
  struct Entry {
    std::size_t empty_leaves;  // w0 of this entry
    double estimate;
  };
  std::size_t leaf_count_;
  std::vector<Entry> entries_;  // descending w0 (ascending estimate)
};

}  // namespace fcm::pisa
