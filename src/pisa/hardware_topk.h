// Hardware-constrained Top-K filter and the FCM+TopK variant deployed on
// the pipeline model (paper §8.1–8.2).
//
// On PISA, the heavy-part bucket's key, count and votes live in separate
// register arrays touched in different stages, so the eviction decision
// cannot evaluate ElasticSketch's vote *ratio* (a division against a value
// read in a later stage). The implementable approximation — the source of
// the small accuracy gap in Figure 13 — replaces the ratio test with an
// absolute negative-vote threshold.
#pragma once

#include <cstdint>

#include "fcm/fcm_sketch.h"
#include "sketch/topk_filter.h"

namespace fcm::pisa {

class HardwareTopKFilter {
 public:
  // Evicts when a bucket accumulates `eviction_votes` mismatches since its
  // last ownership change.
  explicit HardwareTopKFilter(std::size_t entry_count,
                              std::uint32_t eviction_votes = 32,
                              std::uint64_t seed = 0x70b5);

  sketch::TopKFilter::Offer offer(flow::FlowKey key);
  std::optional<sketch::TopKFilter::QueryResult> query(flow::FlowKey key) const;
  std::vector<sketch::TopKFilter::EntryView> entries() const;

  std::size_t memory_bytes() const { return table_.size() * 8; }

  // Deep invariants of the hardware vote table: empty buckets carry no
  // state; occupied buckets have count >= 1 and strictly fewer negative
  // votes than the eviction threshold.
  void check_invariants() const;

  void clear();

 private:
  struct Entry {
    flow::FlowKey key{};
    std::uint32_t count = 0;
    std::uint32_t negative = 0;
    bool has_light_part = false;
  };
  common::SeededHash hash_;
  std::uint32_t eviction_votes_;
  std::vector<Entry> table_;
};

// FCM+TopK as deployable on the hardware model: hardware TopK filter in
// front of the (bit-exact) FCM-Sketch.
class HardwareFcmTopK {
 public:
  HardwareFcmTopK(core::FcmConfig config, std::size_t topk_entries,
                  std::uint32_t eviction_votes = 32);

  void update(flow::FlowKey key);
  std::uint64_t query(flow::FlowKey key) const;

  const core::FcmSketch& sketch() const noexcept { return sketch_; }
  const HardwareTopKFilter& filter() const noexcept { return filter_; }
  std::size_t memory_bytes() const {
    return sketch_.memory_bytes() + filter_.memory_bytes();
  }

  // Deep invariants of both parts.
  void check_invariants() const {
    sketch_.check_invariants();
    filter_.check_invariants();
  }

  void clear();

 private:
  core::FcmSketch sketch_;
  HardwareTopKFilter filter_;
};

}  // namespace fcm::pisa
