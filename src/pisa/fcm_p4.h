// FCM-Sketch compiled onto the PISA pipeline model (paper §8.1).
//
// The program reproduces the P4 implementation's structure: one hashing
// stage, one stateful-ALU register access per tree level, predicated
// (gated) execution replacing control flow, and a final stage assembling
// the count-query as the minimum over trees. Updates on this program are
// bit-identical to core::FcmSketch (asserted in tests).
#pragma once

#include <cstdint>
#include <vector>

#include "fcm/fcm_sketch.h"
#include "pisa/pipeline.h"
#include "pisa/tcam_cardinality.h"

namespace fcm::pisa {

class FcmP4Program {
 public:
  explicit FcmP4Program(core::FcmConfig config);

  // Processes one packet (update + simultaneous count-query, §3.2) and
  // returns the post-update estimate.
  std::uint64_t update(flow::FlowKey key);

  // Control-plane register read of the current estimate (no mutation).
  std::uint64_t query(flow::FlowKey key) const;

  // Data-plane cardinality (§3.3, Appendix C): linear counting resolved
  // through the sensitivity-spaced TCAM lookup table rather than the exact
  // logarithm (which the switch cannot evaluate).
  double estimate_cardinality_tcam() const;
  const TcamCardinalityTable& cardinality_table() const noexcept {
    return cardinality_table_;
  }

  // Raw register access for equivalence checks and control-plane collection.
  const RegisterArray& level_registers(std::size_t tree, std::size_t level_1based) const;

  const core::FcmConfig& config() const noexcept { return config_; }
  Pipeline& pipeline() noexcept { return pipeline_; }
  const Pipeline& pipeline() const noexcept { return pipeline_; }

  // Deep invariants: the pipeline's register state respects every array's
  // bit width, and the compiled arrays still mirror the FCM geometry.
  void check_invariants() const;

  void clear() { pipeline_.clear_registers(); }

 private:
  core::FcmConfig config_;
  Pipeline pipeline_;
  std::vector<common::SeededHash> tree_hashes_;
  std::vector<std::vector<std::size_t>> array_ids_;  // [tree][level]
  TcamCardinalityTable cardinality_table_;

  // PHV field allocation.
  static constexpr int kIdxBase = 0;        // idx per tree
  static constexpr int kCarryBase = 4;      // carry flag per tree
  static constexpr int kEstBase = 8;        // estimate per tree
  static constexpr int kVal = 16;           // scratch: salu output
  static constexpr int kOvf = 17;           // scratch: overflow flag
  static constexpr int kContrib = 18;       // scratch: level contribution
  static constexpr int kGateTmp = 19;       // scratch: carry && overflow
  static constexpr int kFinal = 20;         // min over trees
};

}  // namespace fcm::pisa
