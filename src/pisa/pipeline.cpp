#include "pisa/pipeline.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace fcm::pisa {

namespace {

// True when `field` is a valid PHV slot or the "unused" sentinel -1.
bool phv_field_ok(int field, bool allow_unset = true) {
  if (field == -1) return allow_unset;
  return field >= 0 && static_cast<std::size_t>(field) < Phv::kFields;
}

}  // namespace

std::size_t Pipeline::add_register_array(std::string name, unsigned bits,
                                         std::size_t size) {
  FCM_REQUIRE(bits >= 2 && bits <= 32,
              "Pipeline: register array '" + name + "' cell width " +
                  std::to_string(bits) + " outside [2, 32] bits");
  FCM_REQUIRE(size > 0, "Pipeline: register array '" + name + "' has zero cells");
  arrays_.push_back(RegisterArray{std::move(name), bits,
                                  std::vector<std::uint32_t>(size, 0u)});
  return arrays_.size() - 1;
}

std::size_t Pipeline::add_stage() {
  stages_.emplace_back();
  return stages_.size() - 1;
}

void Pipeline::add_action(std::size_t stage, Action action) {
  FCM_REQUIRE(stage < stages_.size(),
              "Pipeline: stage " + std::to_string(stage) +
                  " does not exist (have " + std::to_string(stages_.size()) +
                  " stages)");
  if (const auto* salu = std::get_if<SaluAction>(&action)) {
    FCM_REQUIRE(salu->array < arrays_.size(),
                "Pipeline: sALU in stage " + std::to_string(stage) +
                    " references unknown register array id " +
                    std::to_string(salu->array));
    const std::string& name = arrays_[salu->array].name;
    FCM_REQUIRE(phv_field_ok(salu->index_field, /*allow_unset=*/false),
                "Pipeline: sALU on array '" + name + "' in stage " +
                    std::to_string(stage) + " has an invalid index field");
    FCM_REQUIRE(phv_field_ok(salu->output_field) &&
                    phv_field_ok(salu->input_field) &&
                    phv_field_ok(salu->gate_field),
                "Pipeline: sALU on array '" + name + "' in stage " +
                    std::to_string(stage) + " has a PHV field out of range");
    FCM_REQUIRE((salu->kind != SaluAction::Kind::kAddFieldSaturating &&
                 salu->kind != SaluAction::Kind::kSwap) ||
                    salu->input_field >= 0,
                "Pipeline: sALU on array '" + name + "' in stage " +
                    std::to_string(stage) + " needs an input field");
  } else if (const auto* hash = std::get_if<HashAction>(&action)) {
    FCM_REQUIRE(phv_field_ok(hash->dst, /*allow_unset=*/false),
                "Pipeline: hash action in stage " + std::to_string(stage) +
                    " writes an out-of-range PHV field");
    FCM_REQUIRE(hash->modulo > 0, "Pipeline: hash action in stage " +
                                      std::to_string(stage) +
                                      " has modulo == 0");
  } else {
    const auto& field = std::get<FieldAction>(action);
    FCM_REQUIRE(phv_field_ok(field.dst, /*allow_unset=*/false) &&
                    phv_field_ok(field.a) && phv_field_ok(field.b) &&
                    phv_field_ok(field.gate_field),
                "Pipeline: field action in stage " + std::to_string(stage) +
                    " has a PHV field out of range");
    FCM_REQUIRE(field.op != FieldAction::Op::kDivImm || field.imm != 0,
                "Pipeline: field action in stage " + std::to_string(stage) +
                    " divides by zero");
  }
  stages_[stage].push_back(std::move(action));
}

void Pipeline::validate() const {
  if (stages_.size() > limits_.max_stages) {
    throw PipelineError("Pipeline: program uses " +
                        std::to_string(stages_.size()) + " stages, budget is " +
                        std::to_string(limits_.max_stages));
  }
  std::set<std::size_t> arrays_touched;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const auto& stage = stages_[s];
    std::size_t salus = 0;
    std::size_t stage_register_bytes = 0;
    std::set<std::size_t> arrays_in_stage;
    for (const Action& action : stage) {
      if (const auto* salu = std::get_if<SaluAction>(&action)) {
        ++salus;
        if (salu->array >= arrays_.size()) {
          throw PipelineError("Pipeline: stage " + std::to_string(s) +
                              " sALU references unknown array id " +
                              std::to_string(salu->array));
        }
        const RegisterArray& array = arrays_[salu->array];
        if (!arrays_in_stage.insert(salu->array).second) {
          throw PipelineError("Pipeline: register array '" + array.name +
                              "' accessed twice in stage " + std::to_string(s));
        }
        if (!arrays_touched.insert(salu->array).second) {
          throw PipelineError("Pipeline: register array '" + array.name +
                              "' accessed again in stage " + std::to_string(s) +
                              " (one access per packet pass)");
        }
        stage_register_bytes += array.cells.size() * ((array.bits + 7) / 8);
      }
    }
    if (salus > limits_.max_salus_per_stage) {
      throw PipelineError("Pipeline: stage " + std::to_string(s) + " uses " +
                          std::to_string(salus) + " sALUs, budget is " +
                          std::to_string(limits_.max_salus_per_stage));
    }
    if (stage_register_bytes > limits_.max_register_bytes_per_stage) {
      throw PipelineError("Pipeline: stage " + std::to_string(s) + " places " +
                          std::to_string(stage_register_bytes) +
                          " register bytes, SRAM budget is " +
                          std::to_string(limits_.max_register_bytes_per_stage));
    }
  }
}

void Pipeline::check_invariants() const {
  for (const RegisterArray& array : arrays_) {
    const std::uint64_t marker = array.marker();
    for (std::size_t i = 0; i < array.cells.size(); ++i) {
      // Bit-width saturation: a b-bit register never stores more than
      // 2^b - 1; anything above means a write bypassed the sALU semantics.
      FCM_ASSERT(array.at(i) <= marker,
                 "Pipeline: register array '" + array.name + "' cell " +
                     std::to_string(i) + " exceeds its " +
                     std::to_string(array.bits) + "-bit width");
    }
  }
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    for (const Action& action : stages_[s]) {
      if (const auto* salu = std::get_if<SaluAction>(&action)) {
        FCM_ASSERT(salu->array < arrays_.size(),
                   "Pipeline: stage " + std::to_string(s) +
                       " sALU references an unknown array");
      }
    }
  }
}

namespace {

bool gated_off(const Phv& phv, int gate_field) {
  return gate_field >= 0 && phv.fields[static_cast<std::size_t>(gate_field)] == 0;
}

void run_salu(RegisterArray& array, const SaluAction& salu, Phv& phv) {
  if (gated_off(phv, salu.gate_field)) return;
  auto& cell =
      array.at(phv.fields[static_cast<std::size_t>(salu.index_field)] %
               array.size());
  const std::uint64_t marker = array.marker();
  std::uint64_t output = cell;
  switch (salu.kind) {
    case SaluAction::Kind::kFcmIncrement:
      if (cell != marker) ++cell;
      output = cell;
      break;
    case SaluAction::Kind::kAddFieldSaturating: {
      const std::uint64_t next =
          cell + phv.fields[static_cast<std::size_t>(salu.input_field)];
      cell = common::checked_narrow<std::uint32_t>(std::min(next, marker));
      output = cell;
      break;
    }
    case SaluAction::Kind::kRead:
      output = cell;
      break;
    case SaluAction::Kind::kSwap:
      output = cell;
      cell = common::checked_narrow<std::uint32_t>(
          phv.fields[static_cast<std::size_t>(salu.input_field)] & marker);
      break;
  }
  if (salu.output_field >= 0) {
    phv.fields[static_cast<std::size_t>(salu.output_field)] = output;
  }
}

void run_field(const FieldAction& op, Phv& phv) {
  if (gated_off(phv, op.gate_field)) return;
  auto field = [&phv](int i) -> std::uint64_t {
    return phv.fields[static_cast<std::size_t>(i)];
  };
  auto& dst = phv.fields[static_cast<std::size_t>(op.dst)];
  switch (op.op) {
    case FieldAction::Op::kSetImm: dst = op.imm; break;
    case FieldAction::Op::kCopy: dst = field(op.a); break;
    case FieldAction::Op::kAddField: dst += field(op.a); break;
    case FieldAction::Op::kDivImm: dst /= op.imm; break;
    case FieldAction::Op::kCmpEqImm: dst = field(op.a) == op.imm ? 1 : 0; break;
    case FieldAction::Op::kAnd: dst = (field(op.a) && field(op.b)) ? 1 : 0; break;
    case FieldAction::Op::kSelect: dst = field(op.a) ? field(op.b) : op.imm; break;
    case FieldAction::Op::kMinField: dst = std::min(dst, field(op.a)); break;
  }
}

}  // namespace

void Pipeline::process(Phv& phv) {
  for (const auto& stage : stages_) {
    for (const Action& action : stage) {
      if (const auto* hash = std::get_if<HashAction>(&action)) {
        if (!gated_off(phv, -1)) {
          phv.fields[static_cast<std::size_t>(hash->dst)] =
              common::SeededHash{hash->seed}.index(phv.key, hash->modulo);
        }
      } else if (const auto* salu = std::get_if<SaluAction>(&action)) {
        run_salu(arrays_[salu->array], *salu, phv);
      } else {
        run_field(std::get<FieldAction>(action), phv);
      }
    }
  }
}

void Pipeline::clear_registers() {
  for (auto& array : arrays_) {
    std::fill(array.cells.begin(), array.cells.end(), 0u);
  }
}

}  // namespace fcm::pisa
