#include "pisa/pipeline.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace fcm::pisa {

std::size_t Pipeline::add_register_array(std::string name, unsigned bits,
                                         std::size_t size) {
  if (bits < 2 || bits > 32 || size == 0) {
    throw std::invalid_argument("Pipeline: bad register array geometry");
  }
  arrays_.push_back(RegisterArray{std::move(name), bits,
                                  std::vector<std::uint32_t>(size, 0u)});
  return arrays_.size() - 1;
}

std::size_t Pipeline::add_stage() {
  stages_.emplace_back();
  return stages_.size() - 1;
}

void Pipeline::add_action(std::size_t stage, Action action) {
  stages_.at(stage).push_back(std::move(action));
}

void Pipeline::validate() const {
  if (stages_.size() > limits_.max_stages) {
    throw std::runtime_error("Pipeline: stage budget exceeded");
  }
  std::set<std::size_t> arrays_touched;
  for (const auto& stage : stages_) {
    std::size_t salus = 0;
    std::size_t stage_register_bytes = 0;
    std::set<std::size_t> arrays_in_stage;
    for (const Action& action : stage) {
      if (const auto* salu = std::get_if<SaluAction>(&action)) {
        ++salus;
        if (salu->array >= arrays_.size()) {
          throw std::runtime_error("Pipeline: sALU references unknown array");
        }
        if (!arrays_in_stage.insert(salu->array).second) {
          throw std::runtime_error(
              "Pipeline: register array accessed twice in one stage");
        }
        if (!arrays_touched.insert(salu->array).second) {
          throw std::runtime_error(
              "Pipeline: register array accessed from two stages (one access "
              "per packet pass)");
        }
        const RegisterArray& array = arrays_[salu->array];
        stage_register_bytes += array.cells.size() * ((array.bits + 7) / 8);
      }
    }
    if (salus > limits_.max_salus_per_stage) {
      throw std::runtime_error("Pipeline: too many sALUs in one stage");
    }
    if (stage_register_bytes > limits_.max_register_bytes_per_stage) {
      throw std::runtime_error("Pipeline: stage SRAM budget exceeded");
    }
  }
}

namespace {

bool gated_off(const Phv& phv, int gate_field) {
  return gate_field >= 0 && phv.fields[static_cast<std::size_t>(gate_field)] == 0;
}

void run_salu(RegisterArray& array, const SaluAction& salu, Phv& phv) {
  if (gated_off(phv, salu.gate_field)) return;
  auto& cell =
      array.cells[phv.fields[static_cast<std::size_t>(salu.index_field)] %
                  array.cells.size()];
  const std::uint64_t marker = array.marker();
  std::uint64_t output = cell;
  switch (salu.kind) {
    case SaluAction::Kind::kFcmIncrement:
      if (cell != marker) ++cell;
      output = cell;
      break;
    case SaluAction::Kind::kAddFieldSaturating: {
      const std::uint64_t next =
          cell + phv.fields[static_cast<std::size_t>(salu.input_field)];
      cell = static_cast<std::uint32_t>(std::min(next, marker));
      output = cell;
      break;
    }
    case SaluAction::Kind::kRead:
      output = cell;
      break;
    case SaluAction::Kind::kSwap:
      output = cell;
      cell = static_cast<std::uint32_t>(
          phv.fields[static_cast<std::size_t>(salu.input_field)] & marker);
      break;
  }
  if (salu.output_field >= 0) {
    phv.fields[static_cast<std::size_t>(salu.output_field)] = output;
  }
}

void run_field(const FieldAction& op, Phv& phv) {
  if (gated_off(phv, op.gate_field)) return;
  auto field = [&phv](int i) -> std::uint64_t {
    return phv.fields[static_cast<std::size_t>(i)];
  };
  auto& dst = phv.fields[static_cast<std::size_t>(op.dst)];
  switch (op.op) {
    case FieldAction::Op::kSetImm: dst = op.imm; break;
    case FieldAction::Op::kCopy: dst = field(op.a); break;
    case FieldAction::Op::kAddField: dst += field(op.a); break;
    case FieldAction::Op::kDivImm: dst /= op.imm; break;
    case FieldAction::Op::kCmpEqImm: dst = field(op.a) == op.imm ? 1 : 0; break;
    case FieldAction::Op::kAnd: dst = (field(op.a) && field(op.b)) ? 1 : 0; break;
    case FieldAction::Op::kSelect: dst = field(op.a) ? field(op.b) : op.imm; break;
    case FieldAction::Op::kMinField: dst = std::min(dst, field(op.a)); break;
  }
}

}  // namespace

void Pipeline::process(Phv& phv) {
  for (const auto& stage : stages_) {
    for (const Action& action : stage) {
      if (const auto* hash = std::get_if<HashAction>(&action)) {
        if (!gated_off(phv, -1)) {
          phv.fields[static_cast<std::size_t>(hash->dst)] =
              common::SeededHash{hash->seed}.index(phv.key, hash->modulo);
        }
      } else if (const auto* salu = std::get_if<SaluAction>(&action)) {
        run_salu(arrays_[salu->array], *salu, phv);
      } else {
        run_field(std::get<FieldAction>(action), phv);
      }
    }
  }
}

void Pipeline::clear_registers() {
  for (auto& array : arrays_) {
    std::fill(array.cells.begin(), array.cells.end(), 0u);
  }
}

}  // namespace fcm::pisa
