// An executable model of a PISA match-action pipeline.
//
// The model enforces the architectural constraints the paper leans on
// (§3.1, §8.1): a fixed number of stages, at most a few stateful ALUs per
// stage, one access per register array per packet, and single-stage
// read-modify-write register semantics. Programs are straight-line per
// stage; control flow is expressed through predicated (gated) actions, as
// on real hardware.
//
// This is what lets the repository validate the paper's claim that
// FCM-Sketch runs *unmodified* on PISA: the P4-style FCM program built in
// fcm_p4.h executes on this pipeline bit-identically to the software sketch
// (asserted in tests and exercised by bench_fig13_hw_sw).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "common/contracts.h"
#include "common/hash.h"
#include "flow/flow_key.h"

namespace fcm::pisa {

// Thrown when a program violates the modeled hardware constraints. The
// message always names the offending stage and/or register array.
class PipelineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Packet header vector: a small bank of metadata fields programs operate on.
struct Phv {
  static constexpr std::size_t kFields = 32;
  flow::FlowKey key{};
  std::array<std::uint64_t, kFields> fields{};
};

// --- actions -------------------------------------------------------------

// dst = hash(packet key, seed) mod modulo. Consumes hash-unit bits.
struct HashAction {
  int dst;
  std::uint32_t seed;
  std::uint64_t modulo;
};

// Stateful ALU: one read-modify-write on one register array per packet.
struct SaluAction {
  enum class Kind {
    // FCM node update (Algorithm 1): if reg != marker then reg += 1;
    // marker = 2^bits - 1 with saturation semantics handled by the program.
    // Writes the post-update register value to `output_field`.
    kFcmIncrement,
    // reg += phv[input_field], saturating at 2^bits - 1; outputs new value.
    kAddFieldSaturating,
    // Outputs the register value without modifying it.
    kRead,
    // reg = phv[input_field]; outputs the OLD value (swap primitive).
    kSwap,
  };
  Kind kind;
  std::size_t array;        // register array id
  int index_field;          // PHV field holding the index
  int output_field = -1;    // -1: no output
  int input_field = -1;     // for kAddFieldSaturating / kSwap
  int gate_field = -1;      // execute only when phv[gate] != 0 (-1: always)
};

// Stateless PHV arithmetic (VLIW action slice).
struct FieldAction {
  enum class Op {
    kSetImm,    // dst = imm
    kCopy,      // dst = phv[a]
    kAddField,  // dst += phv[a]
    kDivImm,    // dst /= imm
    kCmpEqImm,  // dst = (phv[a] == imm)
    kAnd,       // dst = phv[a] && phv[b]
    kSelect,    // dst = phv[a] ? phv[b] : imm
    kMinField,  // dst = min(dst, phv[a])
  };
  Op op;
  int dst;
  int a = -1;
  int b = -1;
  std::uint64_t imm = 0;
  int gate_field = -1;  // execute only when phv[gate] != 0
};

using Action = std::variant<HashAction, SaluAction, FieldAction>;

// --- pipeline ------------------------------------------------------------

struct RegisterArray {
  std::string name;
  unsigned bits;  // cell width
  std::vector<std::uint32_t> cells;

  std::uint64_t marker() const noexcept { return (1ull << bits) - 1; }

  std::size_t size() const noexcept { return cells.size(); }

  // Bounds-checked cell access — the only sanctioned way to index a
  // register array (enforced by tools/fcm_lint.py). Out-of-range access is
  // a contract violation naming the offending array.
  std::uint32_t at(std::size_t index) const {
    FCM_REQUIRE(index < cells.size(),
                "RegisterArray '" + name + "': index " + std::to_string(index) +
                    " out of range (size " + std::to_string(cells.size()) + ")");
    return cells[index];
  }
  std::uint32_t& at(std::size_t index) {
    FCM_REQUIRE(index < cells.size(),
                "RegisterArray '" + name + "': index " + std::to_string(index) +
                    " out of range (size " + std::to_string(cells.size()) + ")");
    return cells[index];
  }
};

struct PipelineLimits {
  std::size_t max_stages = 12;
  std::size_t max_salus_per_stage = 4;
  std::size_t max_register_bytes_per_stage = 80 * 16 * 1024;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineLimits limits = {}) : limits_(limits) {}

  std::size_t add_register_array(std::string name, unsigned bits, std::size_t size);
  RegisterArray& register_array(std::size_t id) {
    FCM_REQUIRE(id < arrays_.size(),
                "Pipeline: register array id " + std::to_string(id) +
                    " out of range (have " + std::to_string(arrays_.size()) +
                    " arrays)");
    return arrays_[id];
  }
  const RegisterArray& register_array(std::size_t id) const {
    FCM_REQUIRE(id < arrays_.size(),
                "Pipeline: register array id " + std::to_string(id) +
                    " out of range (have " + std::to_string(arrays_.size()) +
                    " arrays)");
    return arrays_[id];
  }

  // Appends a stage; returns its index.
  std::size_t add_stage();

  // Appends `action` to `stage`. Structural preconditions — the stage
  // exists, an sALU references a known register array, and every PHV field
  // index is in range — are contract-checked here, at insertion time, so a
  // malformed program fails where it is built rather than at validate().
  void add_action(std::size_t stage, Action action);

  std::size_t stage_count() const noexcept { return stages_.size(); }

  // Throws PipelineError (a std::runtime_error) naming the offending stage
  // and/or register array when the program violates the hardware
  // constraints (stage budget, sALUs per stage, one array access per pass,
  // array placement within one stage's SRAM).
  void validate() const;

  // Deep invariants of the runtime state: every register cell respects its
  // array's bit width (value <= marker), and every recorded action's
  // references are still in range.
  void check_invariants() const;

  // Runs one packet through every stage, mutating `phv` and the register
  // arrays.
  void process(Phv& phv);

  void clear_registers();

 private:
  PipelineLimits limits_;
  std::vector<RegisterArray> arrays_;
  std::vector<std::vector<Action>> stages_;
};

}  // namespace fcm::pisa
