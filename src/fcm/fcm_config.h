// Configuration of an FCM-Sketch instance (paper §3.1, §7.2).
//
// A sketch is `tree_count` independent k-ary trees. Tree stage l (1-based)
// has w_l = w_1 / k^(l-1) nodes of stage_bits[l-1] bits each. The paper's
// default is 2 trees with 8/16/32-bit stages and k = 8.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fcm::core {

struct FcmConfig {
  std::size_t tree_count = 2;           // d, number of trees (min-query over them)
  std::size_t k = 8;                    // fan-in of the k-ary tree
  std::vector<unsigned> stage_bits = {8, 16, 32};  // b_l, strictly increasing
  std::size_t leaf_count = 65536;       // w_1, must divide evenly by k^(L-1)
  std::uint64_t seed = 0x5555aaaa;      // root of the hash family

  std::size_t stage_count() const noexcept { return stage_bits.size(); }

  // Two configs are mergeable (see FcmTree::merge / FcmSketch::merge) iff
  // they compare equal: identical geometry AND an identical hash-family seed,
  // so every tree indexes flows the same way.
  friend bool operator==(const FcmConfig&, const FcmConfig&) = default;

  // Nodes at stage l (1-based).
  std::size_t width(std::size_t stage) const noexcept;

  // Maximum counting value at stage l: 2^b_l - 2 (theta_l in the paper).
  std::uint64_t counting_max(std::size_t stage) const noexcept;

  // Logical memory of the whole sketch in bytes (what the paper's "memory
  // usage" axis measures): sum over trees and stages of w_l * b_l / 8.
  std::size_t memory_bytes() const noexcept;

  // Throws std::invalid_argument when the geometry is inconsistent
  // (non-increasing bit widths, k < 2, leaf count not divisible, ...).
  void validate() const;

  // Builds a config whose total logical memory is as close to (and not
  // above) `memory_bytes` as the divisibility constraint allows.
  static FcmConfig for_memory(std::size_t memory_bytes, std::size_t tree_count,
                              std::size_t k, std::vector<unsigned> stage_bits,
                              std::uint64_t seed = 0x5555aaaa);

  // The paper's default: 2 trees, 8-ary, 8/16/32-bit, sized for 1.5 MB.
  static FcmConfig paper_default();
};

}  // namespace fcm::core
