#include "fcm/fcm_topk.h"

#include <stdexcept>

namespace fcm::core {

FcmTopK::FcmTopK(Config config)
    : sketch_(config.fcm),
      filter_(config.topk_entries, config.eviction_lambda,
              common::mix64(config.fcm.seed ^ 0x70b4)) {}

FcmTopK FcmTopK::for_memory(std::size_t memory_bytes, std::size_t tree_count,
                            std::size_t k, std::size_t topk_entries,
                            std::uint64_t seed) {
  const std::size_t filter_bytes = topk_entries * 8;
  if (memory_bytes <= filter_bytes) {
    throw std::invalid_argument("FcmTopK::for_memory: budget below filter size");
  }
  Config config;
  config.topk_entries = topk_entries;
  config.fcm = FcmConfig::for_memory(memory_bytes - filter_bytes, tree_count, k,
                                     {8, 16, 32}, seed);
  return FcmTopK(config);
}

void FcmTopK::update(flow::FlowKey key) {
  const auto offer = filter_.offer(key);
  switch (offer.outcome) {
    case sketch::TopKFilter::Offer::Outcome::kKept:
      break;
    case sketch::TopKFilter::Offer::Outcome::kPassThrough:
      sketch_.update(key);
      break;
    case sketch::TopKFilter::Offer::Outcome::kEvicted:
      sketch_.add(offer.evicted_key, offer.evicted_count);
      break;
  }
}

void FcmTopK::add_batch(std::span<const flow::FlowKey> keys) {
  sketch::TopKFilter::Offer offers[common::kBatchBlock];
  flow::FlowKey pending[common::kBatchBlock];
  for (std::size_t base = 0; base < keys.size(); base += common::kBatchBlock) {
    const std::size_t n = std::min(common::kBatchBlock, keys.size() - base);
    const auto block = keys.subspan(base, n);
    filter_.offer_batch(block, std::span<sketch::TopKFilter::Offer>(offers, n));
    // Kept packets never reach the sketch, so dropping them leaves the
    // relative order of sketch writes untouched. Pass-through keys compact
    // into `pending` and drain as one sketch batch; an eviction flush must
    // land between the pass-through updates around it, so it drains the run
    // first.
    std::size_t n_pending = 0;
    const auto drain = [&] {
      sketch_.add_batch(std::span<const flow::FlowKey>(pending, n_pending));
      n_pending = 0;
    };
    for (std::size_t i = 0; i < n; ++i) {
      switch (offers[i].outcome) {
        case sketch::TopKFilter::Offer::Outcome::kKept:
          break;
        case sketch::TopKFilter::Offer::Outcome::kPassThrough:
          pending[n_pending++] = block[i];
          break;
        case sketch::TopKFilter::Offer::Outcome::kEvicted:
          drain();
          sketch_.add(offers[i].evicted_key, offers[i].evicted_count);
          break;
      }
    }
    drain();
  }
}

void FcmTopK::add_weighted(flow::FlowKey key, std::uint64_t count) {
  sketch_.add(key, count);
  // If the flow holds a filter entry, its sketch-side residue must be made
  // visible to query(): without the light-part flag the filter would answer
  // with its exact count alone and UNDERESTIMATE by `count`.
  filter_.note_light_part(key);
}

void FcmTopK::merge(const FcmTopK& other) {
  // Sketches first (bit-exact linear merge), then the heavy parts; flows
  // displaced by bucket contention flush into the merged sketch the same way
  // a data-plane eviction would.
  sketch_.merge(other.sketch_);
  for (const auto& evicted : filter_.merge(other.filter_)) {
    sketch_.add(evicted.key, evicted.count);
  }
}

void FcmTopK::requalify_heavy_hitters(std::uint64_t threshold) {
  sketch_.requalify_heavy_hitters(threshold);
}

std::uint64_t FcmTopK::query(flow::FlowKey key) const {
  if (const auto hit = filter_.query(key)) {
    return hit->has_light_part ? hit->count + sketch_.query(key) : hit->count;
  }
  return sketch_.query(key);
}

double FcmTopK::estimate_cardinality() const {
  // Filter-resident flows without light-part residue never touched the
  // sketch's leaves; add them to the linear-counting estimate.
  double extra = 0.0;
  for (const auto& entry : filter_.entries()) {
    if (!entry.has_light_part) extra += 1.0;
  }
  return sketch_.estimate_cardinality() + extra;
}

void FcmTopK::set_heavy_hitter_threshold(std::uint64_t threshold) {
  sketch_.set_heavy_hitter_threshold(threshold);
}

std::vector<flow::FlowKey> FcmTopK::heavy_hitters(std::uint64_t threshold) const {
  std::vector<flow::FlowKey> result;
  std::unordered_set<flow::FlowKey> seen;
  for (const auto& entry : filter_.entries()) {
    if (query(entry.key) >= threshold && seen.insert(entry.key).second) {
      result.push_back(entry.key);
    }
  }
  for (const auto& key : sketch_.heavy_hitters()) {
    if (query(key) >= threshold && seen.insert(key).second) {
      result.push_back(key);
    }
  }
  return result;
}

std::unordered_map<flow::FlowKey, std::uint64_t> FcmTopK::topk_flows() const {
  std::unordered_map<flow::FlowKey, std::uint64_t> flows;
  for (const auto& entry : filter_.entries()) {
    flows[entry.key] = entry.count;
  }
  return flows;
}

void FcmTopK::check_invariants() const {
  sketch_.check_invariants();
  filter_.check_invariants();
}

void FcmTopK::clear() {
  sketch_.clear();
  filter_.clear();
}

}  // namespace fcm::core
