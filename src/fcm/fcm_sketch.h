// Multi-tree FCM-Sketch (paper §3): the data-plane structure.
//
// d independent trees are updated in parallel; a count-query returns the
// minimum per-tree estimate (as in Count-Min). Data-plane queries supported
// here: flow size (count-query), heavy-hitter detection (threshold crossing
// observed on update, as the switch would mirror it), and cardinality via
// linear counting over the leaf stage (§3.3).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "fcm/fcm_tree.h"

namespace fcm::core {

class FcmSketch {
 public:
  explicit FcmSketch(FcmConfig config);

  // Per-packet update; returns the post-update estimate (min over trees).
  // When a heavy-hitter threshold is set, flows whose estimate reaches it
  // are recorded, mirroring the data plane's on-path detection.
  std::uint64_t update(flow::FlowKey key) { return add(key, 1); }

  // Conservative-update variant (the paper's footnote 3: "CU can improve
  // the count-query of FCM"): only trees currently at the minimum estimate
  // are incremented, so no other flow's query changes. Strictly tightens
  // estimates; not implementable on PISA (needs a read-all-then-write pass),
  // provided for software deployments and the ablation bench.
  std::uint64_t update_conservative(flow::FlowKey key);

  // Bulk insert of `count` packets of the same flow.
  std::uint64_t add(flow::FlowKey key, std::uint64_t count);

  // Batched per-packet update (DESIGN.md §9): equivalent to update(key) for
  // each key in order, bit-exact — tree state, promotion counters, and the
  // heavy-hitter set all match the scalar loop. Each tree consumes the whole
  // block through FcmTree::add_batch (bulk hashing + level-1 prefetch +
  // branch-light fast path); per-key min estimates accumulate across trees in
  // a stack buffer so the heavy-hitter check runs once per key at the end.
  void add_batch(std::span<const flow::FlowKey> keys) {
    add_batch(keys, BlockSweep{});
  }

  // Single-pass sweep hook (DESIGN.md §14): when set, invoked once per
  // staged block with the block's keys and tree-0's raw 32-bit bob hashes —
  // computed once by the ingest kernel and shared with the leaf indexing —
  // so consumers (cardinality sidecars, per-shard metrics) ride the same
  // sweep instead of re-hashing in a second pass. Plain function pointer +
  // context, keeping the hot path allocation-free.
  struct BlockSweep {
    using Fn = void (*)(void* ctx, std::span<const flow::FlowKey> keys,
                        std::span<const std::uint32_t> tree0_hashes);
    Fn fn = nullptr;
    void* ctx = nullptr;
    explicit operator bool() const noexcept { return fn != nullptr; }
  };

  // add_batch with the sweep hook. The hook fires at block-staging time,
  // before the block is applied; tree state is bit-identical to the plain
  // overload (the hook only *reads* keys and hashes).
  void add_batch(std::span<const flow::FlowKey> keys, BlockSweep sweep);

  // Count-query (§3.2): min over trees. Never underestimates.
  std::uint64_t query(flow::FlowKey key) const noexcept;

  // Merges `other` into this sketch, tree by tree (see FcmTree::merge): the
  // merged state is bit-exact the state a single sketch would hold after
  // absorbing both packet streams, so sharded ingestion loses no accuracy.
  // Requires identical FcmConfig and identical heavy-hitter thresholds
  // (ContractViolation otherwise). Heavy-hitter sets are unioned, deduped,
  // and re-qualified against the *merged* counters: a candidate recorded by
  // one shard is dropped when its merged estimate is below the threshold.
  // Callers sharding a stream across N replicas should record with a
  // per-shard threshold of ceil(T/N) and re-qualify at T afterwards (see
  // requalify_heavy_hitters): a flow with true global count >= T has count
  // >= ceil(T/N) in some shard, so the union cannot miss it.
  void merge(const FcmSketch& other);

  // Tightens (or sets) the heavy-hitter threshold and prunes the recorded
  // set against the current counters: only flows whose estimate still
  // reaches `threshold` survive. Used after merge() to lift per-shard
  // thresholds back to the global one.
  void requalify_heavy_hitters(std::uint64_t threshold);

  // Linear-counting cardinality over stage-1 nodes (§3.3):
  // n̂ = -w1 * ln(w0/w1), with w0 averaged across trees. When every leaf is
  // occupied the formula has no finite value; the estimate saturates at the
  // guard w0 = 0.5 (half an empty slot) and the event is recorded in
  // cardinality_saturation_count() so benches can report how often linear
  // counting ran out of range.
  double estimate_cardinality() const;

  // How many estimate_cardinality() calls hit the full-table guard since
  // construction / the last clear().
  std::uint64_t cardinality_saturation_count() const noexcept {
    return cardinality_saturations_;
  }

  // Observability: total overflow-promotion events across all trees (see
  // FcmTree::overflow_promotion_count). Scraped into obs::MetricsRegistry by
  // the framework/runtime layers at epoch boundaries.
  std::uint64_t overflow_promotion_count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& tree : trees_) total += tree.overflow_promotion_count();
    return total;
  }

  // --- heavy hitters (data-plane query) ---
  void set_heavy_hitter_threshold(std::uint64_t threshold) {
    hh_threshold_ = threshold;
  }
  const std::unordered_set<flow::FlowKey>& heavy_hitters() const noexcept {
    return heavy_hitters_;
  }

  // --- introspection ---
  const FcmConfig& config() const noexcept { return config_; }
  std::size_t tree_count() const noexcept { return trees_.size(); }
  const FcmTree& tree(std::size_t i) const noexcept { return trees_[i]; }
  std::size_t memory_bytes() const noexcept { return config_.memory_bytes(); }

  // Deep invariants: config validity, tree-count consistency, and every
  // tree's structural invariants (see FcmTree::check_invariants).
  void check_invariants() const;

  void clear();

 private:
  friend class ::fcm::agg::WireCodec;

  FcmConfig config_;
  std::vector<FcmTree> trees_;
  std::optional<std::uint64_t> hh_threshold_;
  std::unordered_set<flow::FlowKey> heavy_hitters_;
  // Mutable: estimate_cardinality() is logically const; the counter is
  // observability metadata, not sketch state.
  mutable std::uint64_t cardinality_saturations_ = 0;
};

}  // namespace fcm::core
