// FCM+TopK (paper §6): a single-level Top-K filter in front of an
// FCM-Sketch. Heavy flows are pinned in the filter with exact counts;
// pass-through packets and evicted incumbents land in the FCM-Sketch.
// The paper's default geometry is 16-ary trees with a 4K-entry filter (§7.2).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "fcm/fcm_sketch.h"
#include "sketch/topk_filter.h"

namespace fcm::core {

class FcmTopK {
 public:
  struct Config {
    FcmConfig fcm;
    std::size_t topk_entries = 4096;   // §7.2 software default
    std::uint32_t eviction_lambda = 8;
  };

  explicit FcmTopK(Config config);

  // Splits `memory_bytes` as the paper does: the Top-K table takes its fixed
  // 8-byte entries, the remainder goes to the FCM-Sketch.
  static FcmTopK for_memory(std::size_t memory_bytes, std::size_t tree_count = 2,
                            std::size_t k = 16, std::size_t topk_entries = 4096,
                            std::uint64_t seed = 0x5555aaaa);

  void update(flow::FlowKey key);

  // Batched per-packet update (DESIGN.md §9): equivalent to update(key) for
  // each key in order, bit-exact in filter state, sketch state, and the
  // sketch's heavy-hitter set. The filter consumes each block through
  // offer_batch; the sketch-side operations the offers imply (pass-through
  // updates and eviction flushes) are then applied in the scalar order —
  // pending pass-through keys are drained through FcmSketch::add_batch
  // before every eviction flush, so no sketch write is reordered.
  void add_batch(std::span<const flow::FlowKey> keys);

  // Weighted bulk insert: `count` packets of `key` land in the FCM sketch in
  // one add, exactly as an eviction flush would deposit them — the datapath
  // heavy-flow cache demotes cold flows through this (DESIGN.md §12). If the
  // flow is filter-resident its light-part flag is set so query() keeps
  // combining both parts and never underestimates.
  void add_weighted(flow::FlowKey key, std::uint64_t count);

  std::uint64_t query(flow::FlowKey key) const;

  // Merges `other` into this instance: the FCM sketches merge bit-exactly
  // (FcmSketch::merge); the Top-K heavy parts merge bucket-wise, with flows
  // displaced from contended buckets flushed into the merged sketch exactly
  // as a data-plane eviction would flush them (TopKFilter::merge). Queries
  // on the merged structure never underestimate. Requires identical configs
  // (ContractViolation otherwise).
  void merge(const FcmTopK& other);

  // Lifts the sketch-side heavy-hitter threshold and prunes its recorded
  // set against the merged counters (see FcmSketch::requalify_heavy_hitters).
  void requalify_heavy_hitters(std::uint64_t threshold);

  double estimate_cardinality() const;

  void set_heavy_hitter_threshold(std::uint64_t threshold);
  // Heavy hitters from both parts: filter-resident flows whose combined
  // count crossed the threshold, plus FCM-side detections.
  std::vector<flow::FlowKey> heavy_hitters(std::uint64_t threshold) const;

  // Filter-resident flows with their heavy-part counts (control plane input).
  std::unordered_map<flow::FlowKey, std::uint64_t> topk_flows() const;

  const FcmSketch& sketch() const noexcept { return sketch_; }
  FcmSketch& sketch() noexcept { return sketch_; }
  const sketch::TopKFilter& filter() const noexcept { return filter_; }

  std::size_t memory_bytes() const {
    return sketch_.memory_bytes() + filter_.memory_bytes();
  }

  // Deep invariants of both parts (sketch trees + filter vote table).
  void check_invariants() const;

  void clear();

 private:
  friend class ::fcm::agg::WireCodec;

  FcmSketch sketch_;
  sketch::TopKFilter filter_;
};

}  // namespace fcm::core
