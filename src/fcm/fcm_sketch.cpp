#include "fcm/fcm_sketch.h"

#include <cmath>

namespace fcm::core {

FcmSketch::FcmSketch(FcmConfig config) : config_(std::move(config)) {
  config_.validate();
  trees_.reserve(config_.tree_count);
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    trees_.emplace_back(config_, common::make_hash(config_.seed, static_cast<std::uint32_t>(t)));
  }
}

std::uint64_t FcmSketch::add(flow::FlowKey key, std::uint64_t count) {
  std::uint64_t estimate = std::numeric_limits<std::uint64_t>::max();
  for (auto& tree : trees_) {
    estimate = std::min(estimate, tree.add(key, count));
  }
  if (hh_threshold_ && estimate >= *hh_threshold_) {
    heavy_hitters_.insert(key);
  }
  return estimate;
}

std::uint64_t FcmSketch::update_conservative(flow::FlowKey key) {
  std::uint64_t minimum = std::numeric_limits<std::uint64_t>::max();
  for (const auto& tree : trees_) {
    minimum = std::min(minimum, tree.query(key));
  }
  std::uint64_t estimate = minimum + 1;
  for (auto& tree : trees_) {
    if (tree.query(key) == minimum) {
      estimate = std::min(estimate, tree.add(key, 1));
    }
  }
  if (hh_threshold_ && estimate >= *hh_threshold_) {
    heavy_hitters_.insert(key);
  }
  return estimate;
}

std::uint64_t FcmSketch::query(flow::FlowKey key) const noexcept {
  std::uint64_t estimate = std::numeric_limits<std::uint64_t>::max();
  for (const auto& tree : trees_) {
    estimate = std::min(estimate, tree.query(key));
  }
  return estimate;
}

double FcmSketch::estimate_cardinality() const {
  const double w1 = static_cast<double>(config_.leaf_count);
  double empty_sum = 0.0;
  for (const auto& tree : trees_) {
    empty_sum += static_cast<double>(tree.empty_leaf_count());
  }
  double w0 = empty_sum / static_cast<double>(trees_.size());
  // Standard linear-counting guard: a full table has no finite estimate;
  // treat as half an empty slot (upper end of the estimable range).
  if (w0 < 0.5) w0 = 0.5;
  return -w1 * std::log(w0 / w1);
}

void FcmSketch::clear() {
  for (auto& tree : trees_) tree.clear();
  heavy_hitters_.clear();
}

}  // namespace fcm::core
