#include "fcm/fcm_sketch.h"

#include <cmath>
#include <string>

#include "common/contracts.h"

namespace fcm::core {

FcmSketch::FcmSketch(FcmConfig config) : config_(std::move(config)) {
  config_.validate();
  trees_.reserve(config_.tree_count);
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    trees_.emplace_back(
        config_, common::make_hash(config_.seed,
                                   common::checked_narrow<std::uint32_t>(t)));
  }
}

std::uint64_t FcmSketch::add(flow::FlowKey key, std::uint64_t count) {
  std::uint64_t estimate = std::numeric_limits<std::uint64_t>::max();
  for (auto& tree : trees_) {
    estimate = std::min(estimate, tree.add(key, count));
  }
  if (hh_threshold_ && estimate >= *hh_threshold_) {
    heavy_hitters_.insert(key);
  }
  return estimate;
}

std::uint64_t FcmSketch::update_conservative(flow::FlowKey key) {
  std::uint64_t minimum = std::numeric_limits<std::uint64_t>::max();
  for (const auto& tree : trees_) {
    minimum = std::min(minimum, tree.query(key));
  }
  std::uint64_t estimate = minimum + 1;
  for (auto& tree : trees_) {
    if (tree.query(key) == minimum) {
      estimate = std::min(estimate, tree.add(key, 1));
    }
  }
  // Conservative updates are monotone and tight: the post-update minimum
  // moves by at most one and never decreases (footnote 3 semantics).
  FCM_ENSURE(estimate >= minimum && estimate <= minimum + 1,
             "FcmSketch: conservative update broke monotonicity");
  if (hh_threshold_ && estimate >= *hh_threshold_) {
    heavy_hitters_.insert(key);
  }
  return estimate;
}

std::uint64_t FcmSketch::query(flow::FlowKey key) const noexcept {
  std::uint64_t estimate = std::numeric_limits<std::uint64_t>::max();
  for (const auto& tree : trees_) {
    estimate = std::min(estimate, tree.query(key));
  }
  return estimate;
}

void FcmSketch::merge(const FcmSketch& other) {
  FCM_REQUIRE(config_ == other.config_,
              "FcmSketch::merge: mismatched configs (geometry or seed differ)");
  FCM_REQUIRE(hh_threshold_ == other.hh_threshold_,
              "FcmSketch::merge: mismatched heavy-hitter thresholds");
  FCM_ASSERT(trees_.size() == other.trees_.size(),
             "FcmSketch::merge: tree count diverged between operands");
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    trees_[t].merge(other.trees_[t]);
  }
  // Union the per-shard candidates, then re-qualify against the merged
  // counters so flows below the threshold globally are dropped.
  heavy_hitters_.insert(other.heavy_hitters_.begin(),
                        other.heavy_hitters_.end());
  if (hh_threshold_) requalify_heavy_hitters(*hh_threshold_);
  cardinality_saturations_ += other.cardinality_saturations_;
}

void FcmSketch::requalify_heavy_hitters(std::uint64_t threshold) {
  FCM_REQUIRE(threshold > 0,
              "FcmSketch::requalify_heavy_hitters: threshold must be positive");
  hh_threshold_ = threshold;
  std::erase_if(heavy_hitters_, [&](const flow::FlowKey& key) {
    return query(key) < threshold;
  });
}

double FcmSketch::estimate_cardinality() const {
  const double w1 = static_cast<double>(config_.leaf_count);
  double empty_sum = 0.0;
  for (const auto& tree : trees_) {
    empty_sum += static_cast<double>(tree.empty_leaf_count());
  }
  double w0 = empty_sum / static_cast<double>(trees_.size());
  FCM_ASSERT(w0 >= 0.0 && w0 <= w1,
             "FcmSketch: empty-leaf average outside [0, w1]");
  // Linear-counting guard: a full table has no finite estimate. Saturate at
  // half an empty slot (the upper end of the estimable range) and record the
  // event so callers/benches can see how often the guard fired instead of
  // silently absorbing it.
  if (w0 < 0.5) {
    ++cardinality_saturations_;
    w0 = 0.5;
  }
  const double estimate = -w1 * std::log(w0 / w1);
  FCM_ENSURE(std::isfinite(estimate) && estimate >= 0.0,
             "FcmSketch: linear-counting estimate is not finite/non-negative");
  return estimate;
}

void FcmSketch::check_invariants() const {
  config_.validate();
  FCM_ASSERT(trees_.size() == config_.tree_count,
             "FcmSketch: tree count diverged from config (" +
                 std::to_string(trees_.size()) + " vs " +
                 std::to_string(config_.tree_count) + ")");
  for (const auto& tree : trees_) tree.check_invariants();
}

void FcmSketch::clear() {
  for (auto& tree : trees_) tree.clear();
  heavy_hitters_.clear();
  cardinality_saturations_ = 0;
}

}  // namespace fcm::core
