#include "fcm/fcm_sketch.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/contracts.h"

namespace fcm::core {

FcmSketch::FcmSketch(FcmConfig config) : config_(std::move(config)) {
  config_.validate();
  trees_.reserve(config_.tree_count);
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    trees_.emplace_back(
        config_, common::make_hash(config_.seed,
                                   common::checked_narrow<std::uint32_t>(t)));
  }
}

std::uint64_t FcmSketch::add(flow::FlowKey key, std::uint64_t count) {
  std::uint64_t estimate = std::numeric_limits<std::uint64_t>::max();
  for (auto& tree : trees_) {
    estimate = std::min(estimate, tree.add(key, count));
  }
  if (hh_threshold_ && estimate >= *hh_threshold_) {
    heavy_hitters_.insert(key);
  }
  return estimate;
}

void FcmSketch::add_batch(std::span<const flow::FlowKey> keys,
                          BlockSweep sweep) {
  const std::size_t total = keys.size();
  if (total == 0) return;
  // Cross-tree software pipeline (DESIGN.md §9): for each kBatchBlock block,
  // EVERY tree hashes + prefetches before ANY tree applies, and block b+1 is
  // staged before block b is applied (double-buffered index blocks). Two
  // wins over running each tree across the whole span: the key block is
  // read from L1 once instead of each tree re-streaming the span from the
  // outer caches, and the outstanding prefetches of all trees overlap.
  // Per-tree key order is exactly the scalar loop's (trees touch disjoint
  // state, so interleaving trees between blocks is unobservable) — state
  // stays bit-exact (tests/test_batch_equivalence.cpp).
  constexpr std::size_t kMaxTrees = 8;
  FCM_ASSERT(trees_.size() <= kMaxTrees,
             "FcmSketch: tree count exceeds the batched kernel's stack buffers");
  const std::size_t tree_count = trees_.size();
  std::uint32_t idx_a[kMaxTrees][common::kBatchBlock];
  std::uint32_t idx_b[kMaxTrees][common::kBatchBlock];
  auto* cur = &idx_a;
  auto* next = &idx_b;
  // Raw tree-0 hashes for the sweep hook; consumed inside stage(), so one
  // buffer serves both pipeline slots.
  std::uint32_t raw[common::kBatchBlock];
  const auto stage = [&](std::size_t base,
                         std::uint32_t (*out)[kMaxTrees][common::kBatchBlock]) {
    const std::size_t n = std::min(common::kBatchBlock, total - base);
    const auto block = keys.subspan(base, n);
    if (sweep) {
      // Tree 0 surfaces its raw hashes in the same kernel sweep; the hook
      // sees every block exactly once, in key order.
      trees_[0].index_block_hashes(block,
                                   std::span<std::uint32_t>((*out)[0], n),
                                   std::span<std::uint32_t>(raw, n));
      sweep.fn(sweep.ctx, block, std::span<const std::uint32_t>(raw, n));
    } else {
      trees_[0].index_block(block, std::span<std::uint32_t>((*out)[0], n));
    }
    for (std::size_t t = 1; t < tree_count; ++t) {
      trees_[t].index_block(block, std::span<std::uint32_t>((*out)[t], n));
    }
    return n;
  };

  std::uint64_t estimates[common::kBatchBlock];
  std::size_t n = stage(0, cur);
  for (std::size_t base = 0; base < total;) {
    const std::size_t next_base = base + n;
    std::size_t next_n = 0;
    if (next_base < total) next_n = stage(next_base, next);
    if (!hh_threshold_) {
      // No heavy-hitter consumer: no estimate bookkeeping at all.
      for (std::size_t t = 0; t < tree_count; ++t) {
        trees_[t].apply_block(std::span<const std::uint32_t>((*cur)[t], n), {});
      }
    } else {
      std::fill_n(estimates, n, std::numeric_limits<std::uint64_t>::max());
      // apply_block lowers estimates[i] toward the per-tree minimum.
      for (std::size_t t = 0; t < tree_count; ++t) {
        trees_[t].apply_block(std::span<const std::uint32_t>((*cur)[t], n),
                              std::span<std::uint64_t>(estimates, n));
      }
      const std::uint64_t threshold = *hh_threshold_;
      for (std::size_t i = 0; i < n; ++i) {
        if (estimates[i] >= threshold) heavy_hitters_.insert(keys[base + i]);
      }
    }
    std::swap(cur, next);
    base = next_base;
    n = next_n;
  }
}

std::uint64_t FcmSketch::update_conservative(flow::FlowKey key) {
  // One leaf hash per tree: the read pass and the write pass below reuse the
  // same indices instead of rehashing the key three times.
  std::size_t idx[common::kBatchBlock];
  FCM_ASSERT(trees_.size() <= common::kBatchBlock,
             "FcmSketch: tree count exceeds the stack index buffer");
  std::uint64_t minimum = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    idx[t] = trees_[t].leaf_index(key);
    minimum = std::min(minimum, trees_[t].query_at(idx[t]));
  }
  std::uint64_t estimate = minimum + 1;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    if (trees_[t].query_at(idx[t]) == minimum) {
      estimate = std::min(estimate, trees_[t].add_at(idx[t], 1));
    }
  }
  // Conservative updates are monotone and tight: the post-update minimum
  // moves by at most one and never decreases (footnote 3 semantics).
  FCM_ENSURE(estimate >= minimum && estimate <= minimum + 1,
             "FcmSketch: conservative update broke monotonicity");
  if (hh_threshold_ && estimate >= *hh_threshold_) {
    heavy_hitters_.insert(key);
  }
  return estimate;
}

std::uint64_t FcmSketch::query(flow::FlowKey key) const noexcept {
  std::uint64_t estimate = std::numeric_limits<std::uint64_t>::max();
  for (const auto& tree : trees_) {
    estimate = std::min(estimate, tree.query(key));
  }
  return estimate;
}

void FcmSketch::merge(const FcmSketch& other) {
  FCM_REQUIRE(config_ == other.config_,
              "FcmSketch::merge: mismatched configs (geometry or seed differ)");
  FCM_REQUIRE(hh_threshold_ == other.hh_threshold_,
              "FcmSketch::merge: mismatched heavy-hitter thresholds");
  FCM_ASSERT(trees_.size() == other.trees_.size(),
             "FcmSketch::merge: tree count diverged between operands");
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    trees_[t].merge(other.trees_[t]);
  }
  // Union the per-shard candidates, then re-qualify against the merged
  // counters so flows below the threshold globally are dropped.
  heavy_hitters_.insert(other.heavy_hitters_.begin(),
                        other.heavy_hitters_.end());
  if (hh_threshold_) requalify_heavy_hitters(*hh_threshold_);
  cardinality_saturations_ += other.cardinality_saturations_;
}

void FcmSketch::requalify_heavy_hitters(std::uint64_t threshold) {
  FCM_REQUIRE(threshold > 0,
              "FcmSketch::requalify_heavy_hitters: threshold must be positive");
  hh_threshold_ = threshold;
  std::erase_if(heavy_hitters_, [&](const flow::FlowKey& key) {
    return query(key) < threshold;
  });
}

double FcmSketch::estimate_cardinality() const {
  const double w1 = static_cast<double>(config_.leaf_count);
  double empty_sum = 0.0;
  for (const auto& tree : trees_) {
    empty_sum += static_cast<double>(tree.empty_leaf_count());
  }
  double w0 = empty_sum / static_cast<double>(trees_.size());
  FCM_ASSERT(w0 >= 0.0 && w0 <= w1,
             "FcmSketch: empty-leaf average outside [0, w1]");
  // Linear-counting guard: a full table has no finite estimate. Saturate at
  // half an empty slot (the upper end of the estimable range) and record the
  // event so callers/benches can see how often the guard fired instead of
  // silently absorbing it.
  if (w0 < 0.5) {
    ++cardinality_saturations_;
    w0 = 0.5;
  }
  const double estimate = -w1 * std::log(w0 / w1);
  FCM_ENSURE(std::isfinite(estimate) && estimate >= 0.0,
             "FcmSketch: linear-counting estimate is not finite/non-negative");
  return estimate;
}

void FcmSketch::check_invariants() const {
  config_.validate();
  FCM_ASSERT(trees_.size() == config_.tree_count,
             "FcmSketch: tree count diverged from config (" +
                 std::to_string(trees_.size()) + " vs " +
                 std::to_string(config_.tree_count) + ")");
  for (const auto& tree : trees_) tree.check_invariants();
}

void FcmSketch::clear() {
  for (auto& tree : trees_) tree.clear();
  heavy_hitters_.clear();
  cardinality_saturations_ = 0;
}

}  // namespace fcm::core
