// Hand-written AVX2 ingest kernel (DESIGN.md §14). The ONLY translation unit
// in the tree built with -mavx2 and the only one (with simd_dispatch.h's
// declarations) allowed to touch <immintrin.h> — fcm_lint.py rule
// `simd-confinement` keeps it that way, so every other TU stays baseline-ISA
// and a non-AVX2 host never decodes a VEX instruction (dispatch guarantees
// these symbols are not called there).
//
// Every routine is bit-identical to its scalar counterpart in hash.h /
// fcm_tree.cpp; tests/test_batch_equivalence.cpp pins the equivalence across
// all kernel tiers.

#include "common/simd_dispatch.h"

#if FCM_SIMD_X86

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/hash.h"

namespace fcm::common::simd {

namespace {

inline __m256i rot32x8(__m256i x, int k) noexcept {
  return _mm256_or_si256(_mm256_slli_epi32(x, k), _mm256_srli_epi32(x, 32 - k));
}

// 8-lane transcription of detail::final_mix32 — must stay line-for-line in
// step with hash.h (test_batch_equivalence pins it, lane by lane).
inline void final_mix32x8(__m256i& a, __m256i& b, __m256i& c) noexcept {
  c = _mm256_xor_si256(c, b); c = _mm256_sub_epi32(c, rot32x8(b, 14));
  a = _mm256_xor_si256(a, c); a = _mm256_sub_epi32(a, rot32x8(c, 11));
  b = _mm256_xor_si256(b, a); b = _mm256_sub_epi32(b, rot32x8(a, 25));
  c = _mm256_xor_si256(c, b); c = _mm256_sub_epi32(c, rot32x8(b, 16));
  a = _mm256_xor_si256(a, c); a = _mm256_sub_epi32(a, rot32x8(c, 4));
  b = _mm256_xor_si256(b, a); b = _mm256_sub_epi32(b, rot32x8(a, 14));
  c = _mm256_xor_si256(c, b); c = _mm256_sub_epi32(c, rot32x8(b, 24));
}

// bob_hash_u32 on 8 keys at once.
inline __m256i bob_hash_u32x8(__m256i value, std::uint32_t seed) noexcept {
  const __m256i init =
      _mm256_set1_epi32(static_cast<int>(0xdeadbeefu + 4u + seed));
  __m256i a = _mm256_add_epi32(init, value);
  __m256i b = init;
  __m256i c = init;
  final_mix32x8(a, b, c);
  return c;
}

// Lemire fast-range on 8 lanes: (u64(h) * width) >> 32 per lane.
// vpmuludq multiplies the even dwords of each 64-bit lane, so the odd keys
// are shifted down, multiplied separately, and blended back: after the
// even product is shifted right 32 its result sits in dwords 0/2/4/6, and
// the odd product's result already sits in dwords 1/3/5/7.
inline __m256i fast_range32x8(__m256i h, __m256i width) noexcept {
  const __m256i even = _mm256_srli_epi64(_mm256_mul_epu32(h, width), 32);
  const __m256i odd = _mm256_mul_epu32(_mm256_srli_epi64(h, 32), width);
  return _mm256_blend_epi32(even, odd, 0b10101010);
}

inline std::uint32_t load_u32(const unsigned char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void avx2_hash_batch_u32(const void* keys, std::size_t n, std::uint32_t seed,
                         std::uint32_t* hashes) noexcept {
  const auto* in = static_cast<const unsigned char*>(keys);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8, in += 32) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i),
                        bob_hash_u32x8(k, seed));
  }
  for (; i < n; ++i, in += sizeof(std::uint32_t)) {
    hashes[i] = bob_hash_u32(load_u32(in), seed);
  }
}

void avx2_index_batch_u32(const void* keys, std::size_t n, std::uint32_t seed,
                          std::uint32_t width, std::uint32_t* idx,
                          std::uint32_t* raw_hashes) noexcept {
  const __m256i w = _mm256_set1_epi32(static_cast<int>(width));
  const auto* in = static_cast<const unsigned char*>(keys);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8, in += 32) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
    const __m256i h = bob_hash_u32x8(k, seed);
    if (raw_hashes != nullptr) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(raw_hashes + i), h);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + i),
                        fast_range32x8(h, w));
  }
  for (; i < n; ++i, in += sizeof(std::uint32_t)) {
    const std::uint32_t h = bob_hash_u32(load_u32(in), seed);
    if (raw_hashes != nullptr) raw_hashes[i] = h;
    // Implicit u64 -> u32 narrowing; a fast-range result is < width < 2^32.
    idx[i] = (static_cast<std::uint64_t>(h) * width) >> 32;
  }
}

std::size_t avx2_apply_saturating(std::uint32_t* level1,
                                  const std::uint32_t* idx, std::size_t n,
                                  std::uint32_t cap,
                                  std::uint32_t* new_values) noexcept {
  // AVX2 has no unsigned dword compare: bias both sides by 2^31 and use the
  // signed compare (x <u y  <=>  (x ^ 2^31) <s (y ^ 2^31)).
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i cap_biased =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(cap)), bias);
  const __m256i one = _mm256_set1_epi32(1);
  // Lane rotations for the intra-group duplicate check. Two indices equal at
  // lane distance d collide under rotation d or 8-d, so distances 1..4 cover
  // every pair.
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i ix =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));

    // A duplicated index inside the group would collapse two increments
    // into one under gather/store; such groups go back to the caller's
    // scalar loop, which applies them in key order.
    __m256i dup = _mm256_cmpeq_epi32(ix, _mm256_permutevar8x32_epi32(ix, rot1));
    dup = _mm256_or_si256(
        dup, _mm256_cmpeq_epi32(ix, _mm256_permutevar8x32_epi32(ix, rot2)));
    dup = _mm256_or_si256(
        dup, _mm256_cmpeq_epi32(ix, _mm256_permutevar8x32_epi32(ix, rot3)));
    dup = _mm256_or_si256(
        dup, _mm256_cmpeq_epi32(ix, _mm256_permutevar8x32_epi32(ix, rot4)));

    const __m256i v =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(level1), ix,
                               sizeof(std::uint32_t));
    const __m256i below_cap =
        _mm256_cmpgt_epi32(cap_biased, _mm256_xor_si256(v, bias));

    const int ok = _mm256_movemask_ps(_mm256_castsi256_ps(below_cap));
    const int dups = _mm256_movemask_ps(_mm256_castsi256_ps(dup));
    if (ok != 0xff || dups != 0) return i;  // dirty group: caller takes over

    const __m256i nv = _mm256_add_epi32(v, one);
    if (new_values != nullptr) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(new_values + i), nv);
    }
    // No scatter in AVX2: spill and store the 8 lanes individually. The
    // group was verified duplicate-free, so store order within it is moot.
    alignas(32) std::uint32_t ixs[8];
    alignas(32) std::uint32_t nvs[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(ixs), ix);
    _mm256_store_si256(reinterpret_cast<__m256i*>(nvs), nv);
    for (int j = 0; j < 8; ++j) level1[ixs[j]] = nvs[j];
  }
  return i;  // clean run ended at the <8 tail
}

}  // namespace fcm::common::simd

#endif  // FCM_SIMD_X86
