#include "fcm/fcm_config.h"

#include <stdexcept>
#include <string>

#include "common/bitutil.h"
#include "common/contracts.h"

namespace fcm::core {

std::size_t FcmConfig::width(std::size_t stage) const noexcept {
  std::size_t w = leaf_count;
  for (std::size_t l = 1; l < stage; ++l) w /= k;
  return w;
}

std::uint64_t FcmConfig::counting_max(std::size_t stage) const noexcept {
  return common::fcm_counting_max(stage_bits[stage - 1]);
}

std::size_t FcmConfig::memory_bytes() const noexcept {
  std::size_t bits = 0;
  for (std::size_t l = 1; l <= stage_count(); ++l) {
    bits += width(l) * stage_bits[l - 1];
  }
  return tree_count * bits / 8;
}

void FcmConfig::validate() const {
  FCM_REQUIRE(tree_count > 0, "FcmConfig: tree_count == 0");
  FCM_REQUIRE(k >= 2, "FcmConfig: k must be >= 2");
  FCM_REQUIRE(!stage_bits.empty(), "FcmConfig: no stages");
  for (std::size_t i = 0; i < stage_bits.size(); ++i) {
    FCM_REQUIRE(stage_bits[i] >= 2 && stage_bits[i] <= 32,
                "FcmConfig: stage bits must be in [2, 32], got " +
                    std::to_string(stage_bits[i]) + " at stage " +
                    std::to_string(i + 1));
    FCM_REQUIRE(i == 0 || stage_bits[i] > stage_bits[i - 1],
                "FcmConfig: stage bits must be strictly increasing (stage " +
                    std::to_string(i + 1) + ")");
  }
  std::size_t divisor = 1;
  for (std::size_t l = 1; l < stage_count(); ++l) divisor *= k;
  FCM_REQUIRE(
      leaf_count > 0 && leaf_count % divisor == 0,
      "FcmConfig: leaf_count (" + std::to_string(leaf_count) +
          ") must be a positive multiple of k^(L-1) = " + std::to_string(divisor));
}

FcmConfig FcmConfig::for_memory(std::size_t memory_bytes, std::size_t tree_count,
                                std::size_t k, std::vector<unsigned> stage_bits,
                                std::uint64_t seed) {
  FcmConfig config;
  config.tree_count = tree_count;
  config.k = k;
  config.stage_bits = std::move(stage_bits);
  config.seed = seed;

  // Bits per leaf slot across all stages: sum_l b_l / k^(l-1).
  double bits_per_leaf = 0.0;
  double scale = 1.0;
  for (const unsigned b : config.stage_bits) {
    bits_per_leaf += static_cast<double>(b) / scale;
    scale *= static_cast<double>(k);
  }
  FCM_REQUIRE(tree_count > 0 && bits_per_leaf > 0.0,
              "FcmConfig::for_memory: bad parameters");
  const double budget_bits =
      static_cast<double>(memory_bytes) * 8.0 / static_cast<double>(tree_count);
  auto leaves = static_cast<std::size_t>(budget_bits / bits_per_leaf);

  std::size_t divisor = 1;
  for (std::size_t l = 1; l < config.stage_count(); ++l) divisor *= k;
  leaves -= leaves % divisor;
  FCM_REQUIRE(leaves > 0,
              "FcmConfig::for_memory: memory budget of " +
                  std::to_string(memory_bytes) + " bytes too small for " +
                  std::to_string(tree_count) + " tree(s)");
  config.leaf_count = leaves;
  config.validate();
  FCM_ENSURE(config.memory_bytes() <= memory_bytes,
             "FcmConfig::for_memory: built config exceeds the memory budget");
  return config;
}

FcmConfig FcmConfig::paper_default() {
  return for_memory(1'500'000, /*tree_count=*/2, /*k=*/8, {8, 16, 32});
}

}  // namespace fcm::core
