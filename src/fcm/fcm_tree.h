// A single k-ary FCM tree (paper §3.1–3.2).
//
// Stage l holds width(l) nodes of b_l bits. A node stores values
// 0..2^b_l - 2 directly; the all-ones value 2^b_l - 1 means "count saturated
// at 2^b_l - 2 and increments have been carried to the parent" (Figure 3).
// Update feeds increments forward (Algorithm 1); count-query sums capped
// values along the path until the first non-overflowed node.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "fcm/fcm_config.h"
#include "flow/flow_key.h"

namespace fcm::agg {
class WireCodec;  // wire-format (de)serializer, the single state-access friend
}

namespace fcm::core {

class FcmTree {
 public:
  // `config` describes geometry; `hash` selects this tree's leaf index.
  FcmTree(const FcmConfig& config, common::SeededHash hash);

  // Adds `count` to the flow (Algorithm 1 generalized to bulk increments;
  // count = 1 is the per-packet update). Returns the post-update estimate
  // for the flow, mirroring the data plane's write-and-return sALU.
  std::uint64_t add(flow::FlowKey key, std::uint64_t count = 1) {
    return add_at(leaf_index(key), count);
  }

  // Leaf-index forms of add/query, for callers that already hold the leaf
  // index (the batched kernel, and FcmSketch::update_conservative's
  // read-then-write pass, which must not hash twice). `index` must come from
  // leaf_index()/index_batch() on this tree's hash.
  std::uint64_t add_at(std::size_t index, std::uint64_t count);
  std::uint64_t query_at(std::size_t index) const noexcept;

  // Batched per-packet update (DESIGN.md §9): hashes `keys` block by block
  // (common::kBatchBlock) through SeededHash::index_batch, issues software
  // prefetches on the level-1 counter lines one block ahead, then applies
  // the updates in key order. The common no-overflow case (node below the
  // counting max) is a single branch-light level-1 increment; nodes at the
  // counting max or already overflowed fall back to the scalar carry walk
  // (add_at), so the resulting tree state, promotion counter, and per-key
  // estimates are bit-exact against per-key add() in the same order —
  // duplicates within a batch included (tests/test_batch_equivalence.cpp).
  //
  // For each key i, min_estimates[i] is lowered to min(min_estimates[i],
  // post-update estimate): FcmSketch::add_batch runs all trees over one
  // block and reads off the min-query without a second pass. An EMPTY
  // min_estimates span means "no estimate consumer" (heavy-hitter tracking
  // off) and skips the bookkeeping entirely; otherwise it must cover
  // keys.size() entries.
  void add_batch(std::span<const flow::FlowKey> keys,
                 std::span<std::uint64_t> min_estimates);

  // The two halves of the batched kernel, exposed so FcmSketch can pipeline
  // ACROSS trees: hash+prefetch one block for every tree, then apply every
  // tree's block — the key block is read from L1 once instead of each tree
  // re-streaming the whole key span, and the outstanding prefetches of all
  // trees overlap. keys/idx must be at most kBatchBlock entries.
  //
  // index_block hashes `keys` into level-1 indices and issues a write
  // prefetch for each touched counter line; apply_block applies +1 updates
  // in key order (same fast/slow path split as add_batch) and, when
  // `min_estimates` is non-empty, lowers min_estimates[i] toward the
  // post-update estimate of keys[i].
  void index_block(std::span<const flow::FlowKey> keys,
                   std::span<std::uint32_t> idx) const noexcept;
  void apply_block(std::span<const std::uint32_t> idx,
                   std::span<std::uint64_t> min_estimates);

  // index_block that additionally writes the raw (pre-reduction) bob hashes
  // into `raw` (raw.size() >= keys.size()). The single-pass sweep (DESIGN.md
  // §14) feeds them to the cardinality sidecars, which share this tree's
  // hash function, instead of hashing the block a second time.
  void index_block_hashes(std::span<const flow::FlowKey> keys,
                          std::span<std::uint32_t> idx,
                          std::span<std::uint32_t> raw) const noexcept;

  // Count-query (paper §3.2): sum along the overflow path.
  std::uint64_t query(flow::FlowKey key) const noexcept {
    return query_at(leaf_index(key));
  }

  // Merges `other` into this tree: counter-sum with overflow promotion to
  // the next tree level. FCM trees are linear in the per-leaf arrival totals,
  // so the merged state is *bit-exact* the state a single tree would hold
  // after absorbing both input streams (see DESIGN.md §7 for the argument):
  // per node, bottom-up,
  //     S = promoted + Σ_shard min(v_shard, θ_l)
  // stores S when no shard overflowed and S <= θ_l; otherwise the node is
  // marked overflowed and max(0, S - θ_l) is promoted to its parent (the
  // excess each shard already forwarded lives in that shard's next level and
  // is picked up by the Σ there). Requires identical config and leaf hash;
  // violations raise ContractViolation via FCM_REQUIRE. Commutative and
  // associative; merging a cleared tree is an identity.
  void merge(const FcmTree& other);

  // Leaf index this tree assigns to `key`.
  std::size_t leaf_index(flow::FlowKey key) const noexcept {
    return hash_.index(key, config_.leaf_count);
  }

  // Raw stored node values at stage l (1-based): 2^b-1 entries are overflow
  // markers. Used by the control-plane conversion algorithm.
  std::span<const std::uint32_t> stage(std::size_t stage_1based) const noexcept {
    return stages_[stage_1based - 1];
  }

  // The count a node contributes locally: min(value, 2^b - 2).
  std::uint64_t node_count(std::size_t stage_1based, std::size_t index) const noexcept;
  bool node_overflowed(std::size_t stage_1based, std::size_t index) const noexcept;

  // Number of zero-valued leaf nodes (w_1^0), for linear counting.
  std::size_t empty_leaf_count() const noexcept;

  // Total count absorbed by the tree (sum of capped node counts). Preserved
  // exactly by the virtual-counter conversion; used as an invariant check.
  std::uint64_t total_count() const noexcept;

  // Observability: how many nodes this tree has tripped into the overflow
  // state (a counter saturating and carrying to its parent — Figure 3's
  // promotion event) since construction / clear(). Monotone; merge() folds
  // the other tree's history in plus any trips the merge itself causes.
  // Scraped into the obs::MetricsRegistry by the layers above (the tree
  // itself stays free of atomics so the single-shard hot path is untouched).
  std::uint64_t overflow_promotion_count() const noexcept {
    return promotions_;
  }

  const FcmConfig& config() const noexcept { return config_; }

  // Deep structural invariants (§3.1/Figure 3 semantics); throws/aborts per
  // the contract level on violation:
  //   - geometry: stage vector shapes match the config;
  //   - bit-width saturation: every stored node value <= overflow marker;
  //   - overflow-flag ↔ parent consistency: an overflowed node's parent
  //     holds a positive count (the carry landed), and a non-leaf node with
  //     a positive count has at least one overflowed child.
  // Cheap enough for test sweeps; CHECKED builds call it from hot paths via
  // FCM_CHECKED_ONLY.
  void check_invariants() const;

  // The hash function selecting this tree's leaf (needed to compile the
  // tree onto the PISA pipeline with identical indexing).
  common::SeededHash hash() const noexcept { return hash_; }

  void clear() noexcept;

 private:
  friend class ::fcm::agg::WireCodec;

  // AVX2 body of apply_block (kernel tier kAvx2 only): groups of 8 run
  // through common::simd::avx2_apply_saturating; any group with an at-cap
  // lane or intra-group duplicate index is re-applied by the scalar loop in
  // exact key order, so carries and promotions stay bit-identical.
  void apply_block_avx2(std::span<const std::uint32_t> idx,
                        std::span<std::uint64_t> min_estimates);

  FcmConfig config_;
  common::SeededHash hash_;
  std::vector<std::vector<std::uint32_t>> stages_;
  // Per-stage cached limits, so the hot path avoids recomputing shifts.
  std::vector<std::uint32_t> counting_max_;
  std::vector<std::uint32_t> marker_;
  // Overflow-promotion events (see overflow_promotion_count()).
  std::uint64_t promotions_ = 0;
};

}  // namespace fcm::core
