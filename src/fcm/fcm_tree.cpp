#include "fcm/fcm_tree.h"

#include <algorithm>
#include <string>

#include "common/bitutil.h"
#include "common/contracts.h"

namespace fcm::core {

FcmTree::FcmTree(const FcmConfig& config, common::SeededHash hash)
    : config_(config), hash_(hash) {
  config_.validate();
  const std::size_t levels = config_.stage_count();
  stages_.resize(levels);
  counting_max_.resize(levels);
  marker_.resize(levels);
  for (std::size_t l = 1; l <= levels; ++l) {
    stages_[l - 1].assign(config_.width(l), 0);
    counting_max_[l - 1] =
        common::checked_narrow<std::uint32_t>(config_.counting_max(l));
    marker_[l - 1] = counting_max_[l - 1] + 1;
  }
}

std::uint64_t FcmTree::add_at(std::size_t index, std::uint64_t count) {
  std::uint64_t estimate = 0;
  std::uint64_t carry = count;
  const std::size_t levels = stages_.size();

  for (std::size_t l = 0; l < levels; ++l) {
    auto& node = stages_[l][index];
    const std::uint64_t cap = counting_max_[l];
    const std::uint64_t mark = marker_[l];

    if (node == mark) {
      // Already overflowed: everything carries forward (Algorithm 1 skips
      // the increment and recurses).
      estimate += cap;
    } else {
      const std::uint64_t room = cap - node;
      if (carry <= room) {
        node = common::checked_narrow<std::uint32_t>(node + carry);
        estimate += node;
        return estimate;
      }
      // The increments fill the node and trip the overflow marker; the
      // remainder (including the tripping increment) carries forward.
      carry -= room;
      node = common::checked_narrow<std::uint32_t>(mark);
      estimate += cap;
      ++promotions_;  // observability: a fresh overflow promotion
    }
    if (l + 1 == levels) {
      // Final stage has no parent; counts beyond its range are lost
      // (unreachable with 32-bit roots in practice).
      return estimate;
    }
    index /= config_.k;
  }
  return estimate;
}

void FcmTree::index_block(std::span<const flow::FlowKey> keys,
                          std::span<std::uint32_t> idx) const noexcept {
  // One tight inline loop of hashes + fast-range reductions (32-bit in and
  // out, so the compiler can pack it — see SeededHash::index_batch) ...
  hash_.index_batch(keys, config_.leaf_count, idx);
  // ... then request every level-1 counter line of the block up front, so
  // the misses overlap each other and whatever work runs before the apply.
  const std::uint32_t* const level1 = stages_[0].data();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    FCM_PREFETCH_WRITE(level1 + idx[i]);
  }
}

void FcmTree::index_block_hashes(std::span<const flow::FlowKey> keys,
                                 std::span<std::uint32_t> idx,
                                 std::span<std::uint32_t> raw) const noexcept {
  hash_.index_hash_batch(keys, config_.leaf_count, idx, raw);
  const std::uint32_t* const level1 = stages_[0].data();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    FCM_PREFETCH_WRITE(level1 + idx[i]);
  }
}

void FcmTree::apply_block(std::span<const std::uint32_t> idx,
                          std::span<std::uint64_t> min_estimates) {
#if FCM_SIMD_X86
  // vpgatherdd reads indices as signed 32-bit; FcmConfig stage widths are
  // far below 2^31, but gate explicitly so the contract is in the code.
  if (common::simd::active_kernel_tier() == common::simd::KernelTier::kAvx2 &&
      stages_[0].size() < (std::size_t{1} << 31)) {
    apply_block_avx2(idx, min_estimates);
    return;
  }
#endif
  std::uint32_t* const level1 = stages_[0].data();
  const std::uint32_t cap = counting_max_[0];
  const std::size_t n = idx.size();
  // Apply in key order. Carries must not be reordered (a node's trip into
  // overflow is observed by later duplicates in the block), so only the
  // per-key *work* is specialized, never the sequence.
  if (min_estimates.empty()) {
    // No estimate consumer (heavy-hitter tracking off): the fast path is a
    // bare increment with no value materialization or min bookkeeping.
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t& node = level1[idx[i]];
      if (node < cap) {
        // Fast path: below the counting max, so a single increment neither
        // saturates nor carries — the overwhelming common case (level 1
        // holds most nodes and most of them never overflow).
        ++node;
      } else {
        // Node at the counting max (this increment trips it) or already
        // overflowed: take the scalar carry walk unchanged.
        add_at(idx[i], 1);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t& node = level1[idx[i]];
    std::uint64_t estimate;
    if (node < cap) {
      estimate = ++node;
    } else {
      estimate = add_at(idx[i], 1);
    }
    std::uint64_t& slot = min_estimates[i];
    slot = std::min(slot, estimate);
  }
}

#if FCM_SIMD_X86
void FcmTree::apply_block_avx2(std::span<const std::uint32_t> idx,
                               std::span<std::uint64_t> min_estimates) {
  std::uint32_t* const level1 = stages_[0].data();
  const std::uint32_t cap = counting_max_[0];
  const std::size_t n = idx.size();
  // The kernel consumes leading groups of 8 that are entirely on the fast
  // path (every lane below the counting max, no duplicate index inside the
  // group) and stops at the first group it cannot prove clean. We then apply
  // AT MOST one group's worth (8 keys) with the scalar loop — running the
  // add_at carry walk for overflow, honoring duplicate order — and hand the
  // rest back to the kernel. Key order is preserved exactly, so counter
  // state, promotions_ and per-key estimates match the scalar tier bit for
  // bit (the dispatch-matrix suite pins this, overflow and dup cases
  // included).
  if (min_estimates.empty()) {
    std::size_t i = 0;
    while (i < n) {
      i += common::simd::avx2_apply_saturating(level1, idx.data() + i, n - i,
                                               cap, nullptr);
      const std::size_t stop = std::min(i + 8, n);
      for (; i < stop; ++i) {
        std::uint32_t& node = level1[idx[i]];
        if (node < cap) {
          ++node;
        } else {
          add_at(idx[i], 1);
        }
      }
    }
    return;
  }
  // With an estimate consumer the kernel also reports each consumed index's
  // post-increment value; a fast-path node never overflows on +1, so that
  // value IS the post-update estimate (the query stops at a non-overflowed
  // level-1 node).
  std::uint32_t values[common::kBatchBlock];
  FCM_ASSERT(n <= common::kBatchBlock,
             "FcmTree::apply_block: block exceeds kBatchBlock");
  std::size_t i = 0;
  while (i < n) {
    const std::size_t start = i;
    i += common::simd::avx2_apply_saturating(level1, idx.data() + i, n - i,
                                             cap, values + start);
    for (std::size_t j = start; j < i; ++j) {
      std::uint64_t& slot = min_estimates[j];
      slot = std::min<std::uint64_t>(slot, values[j]);
    }
    const std::size_t stop = std::min(i + 8, n);
    for (; i < stop; ++i) {
      std::uint32_t& node = level1[idx[i]];
      std::uint64_t estimate;
      if (node < cap) {
        estimate = ++node;
      } else {
        estimate = add_at(idx[i], 1);
      }
      std::uint64_t& slot = min_estimates[i];
      slot = std::min(slot, estimate);
    }
  }
}
#endif  // FCM_SIMD_X86

void FcmTree::add_batch(std::span<const flow::FlowKey> keys,
                        std::span<std::uint64_t> min_estimates) {
  const std::size_t total = keys.size();
  if (total == 0) return;

  // Software pipeline with double-buffered index blocks (DESIGN.md §9):
  // block b+1 is hashed and its level-1 lines prefetched BEFORE block b is
  // applied, so every prefetch has one full block of work (~kBatchBlock
  // hashes + applies) to land — a just-prefetched line is never demanded on
  // the very next instruction. Hashing block b+1 touches only the key span
  // and the stack, so it cannot disturb block b's carries.
  std::uint32_t idx_a[common::kBatchBlock];
  std::uint32_t idx_b[common::kBatchBlock];
  std::uint32_t* cur = idx_a;
  std::uint32_t* next = idx_b;
  const auto stage = [&](std::size_t base, std::uint32_t* out) {
    const std::size_t n = std::min(common::kBatchBlock, total - base);
    index_block(keys.subspan(base, n), std::span<std::uint32_t>(out, n));
    return n;
  };

  std::size_t n = stage(0, cur);
  for (std::size_t base = 0; base < total;) {
    const std::size_t next_base = base + n;
    std::size_t next_n = 0;
    if (next_base < total) next_n = stage(next_base, next);
    apply_block(std::span<const std::uint32_t>(cur, n),
                min_estimates.empty() ? min_estimates
                                      : min_estimates.subspan(base, n));
    std::swap(cur, next);
    base = next_base;
    n = next_n;
  }
}

std::uint64_t FcmTree::query_at(std::size_t index) const noexcept {
  std::uint64_t estimate = 0;
  const std::size_t levels = stages_.size();
  for (std::size_t l = 0; l < levels; ++l) {
    const std::uint32_t node = stages_[l][index];
    if (node != marker_[l]) {
      return estimate + node;
    }
    estimate += counting_max_[l];
    if (l + 1 == levels) return estimate;  // root overflowed: best effort
    index /= config_.k;
  }
  return estimate;
}

void FcmTree::merge(const FcmTree& other) {
  FCM_REQUIRE(config_ == other.config_,
              "FcmTree::merge: mismatched configs (geometry or seed differ)");
  FCM_REQUIRE(hash_.seed() == other.hash_.seed(),
              "FcmTree::merge: trees use different leaf hash functions");
  const std::size_t levels = stages_.size();
  // Counts promoted from merged children into the current level. Index j at
  // level l receives the excess of its k children at level l-1.
  std::vector<std::uint64_t> promoted(stages_[0].size(), 0);
  std::vector<std::uint64_t> next_promoted;
  // Fold the other tree's promotion history into ours (monotone telemetry;
  // merge-induced fresh trips are counted in the loop below).
  promotions_ += other.promotions_;
  for (std::size_t l = 0; l < levels; ++l) {
    const std::uint64_t cap = counting_max_[l];
    const std::uint32_t mark = marker_[l];
    next_promoted.assign(l + 1 < levels ? stages_[l + 1].size() : 0, 0);
    for (std::size_t i = 0; i < stages_[l].size(); ++i) {
      const std::uint32_t va = stages_[l][i];
      const std::uint32_t vb = other.stages_[l][i];
      const bool shard_overflowed = (va == mark) || (vb == mark);
      // Local arrivals visible at this level: what each shard counted here
      // (capped; their excess is in their next level) plus what the merged
      // children promoted.
      const std::uint64_t sum = promoted[i] +
                                std::min<std::uint64_t>(va, cap) +
                                std::min<std::uint64_t>(vb, cap);
      // A shard overflow implies its capped value == cap, hence sum >= cap;
      // the serial tree overflowed here iff a shard did or the sum alone
      // exceeds the counting range.
      if (shard_overflowed || sum > cap) {
        FCM_ASSERT(sum >= cap,
                   "FcmTree::merge: overflowed node with sum below capacity");
        if (l + 1 < levels) next_promoted[i / config_.k] += sum - cap;
        // Beyond the root the serial tree drops the excess too.
        stages_[l][i] = mark;
        // Observability: a node neither input had tripped overflows only
        // now, in the merge — count the fresh promotion (trips either input
        // already performed arrive via the promotions_ sum below).
        if (!shard_overflowed) ++promotions_;
      } else {
        stages_[l][i] = common::checked_narrow<std::uint32_t>(sum);
      }
    }
    promoted.swap(next_promoted);
  }
  FCM_CHECKED_ONLY(check_invariants());
}

std::uint64_t FcmTree::node_count(std::size_t stage_1based,
                                  std::size_t index) const noexcept {
  const std::uint32_t v = stages_[stage_1based - 1][index];
  return std::min<std::uint64_t>(v, counting_max_[stage_1based - 1]);
}

bool FcmTree::node_overflowed(std::size_t stage_1based,
                              std::size_t index) const noexcept {
  return stages_[stage_1based - 1][index] == marker_[stage_1based - 1];
}

std::size_t FcmTree::empty_leaf_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(stages_[0].begin(), stages_[0].end(), 0u));
}

std::uint64_t FcmTree::total_count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < stages_.size(); ++l) {
    for (const std::uint32_t v : stages_[l]) {
      total += std::min<std::uint64_t>(v, counting_max_[l]);
    }
  }
  return total;
}

void FcmTree::check_invariants() const {
  const std::size_t levels = config_.stage_count();
  FCM_ASSERT(stages_.size() == levels,
             "FcmTree: stage vector count diverged from config");
  FCM_ASSERT(counting_max_.size() == levels && marker_.size() == levels,
             "FcmTree: cached per-stage limits diverged from config");
  for (std::size_t l = 0; l < levels; ++l) {
    FCM_ASSERT(stages_[l].size() == config_.width(l + 1),
               "FcmTree: stage " + std::to_string(l + 1) +
                   " width diverged from config");
    FCM_ASSERT(marker_[l] == counting_max_[l] + 1,
               "FcmTree: marker/counting-max mismatch at stage " +
                   std::to_string(l + 1));
    for (std::size_t i = 0; i < stages_[l].size(); ++i) {
      const std::uint32_t v = stages_[l][i];
      // Bit-width saturation: a b-bit node never stores more than 2^b - 1.
      FCM_ASSERT(v <= marker_[l],
                 "FcmTree: node value exceeds its bit width at stage " +
                     std::to_string(l + 1) + " index " + std::to_string(i));
      if (l + 1 < levels) {
        // Overflow flag ↔ next-level counter consistency (Figure 3): the
        // tripping increment always lands in the parent.
        FCM_ASSERT(v != marker_[l] || stages_[l + 1][i / config_.k] > 0,
                   "FcmTree: overflowed node at stage " + std::to_string(l + 1) +
                       " index " + std::to_string(i) +
                       " but its parent holds no count");
      }
      if (l > 0 && v > 0) {
        // A non-leaf node only receives counts via child overflow.
        bool any_overflowed_child = false;
        for (std::size_t c = i * config_.k;
             c < std::min((i + 1) * config_.k, stages_[l - 1].size()); ++c) {
          if (stages_[l - 1][c] == marker_[l - 1]) {
            any_overflowed_child = true;
            break;
          }
        }
        FCM_ASSERT(any_overflowed_child,
                   "FcmTree: stage " + std::to_string(l + 1) + " node " +
                       std::to_string(i) +
                       " holds a count but no child overflowed");
      }
    }
  }
}

void FcmTree::clear() noexcept {
  for (auto& stage : stages_) std::fill(stage.begin(), stage.end(), 0u);
  promotions_ = 0;
}

}  // namespace fcm::core
