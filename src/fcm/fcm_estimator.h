// Adapters exposing FCM-Sketch and FCM+TopK through the generic
// FrequencyEstimator interface used by the evaluation harness.
#pragma once

#include <memory>

#include "fcm/fcm_topk.h"
#include "sketch/frequency_estimator.h"

namespace fcm::core {

class FcmEstimator final : public sketch::FrequencyEstimator {
 public:
  explicit FcmEstimator(FcmConfig config) : sketch_(std::move(config)) {}

  void update(flow::FlowKey key) override { sketch_.update(key); }
  std::uint64_t query(flow::FlowKey key) const override { return sketch_.query(key); }
  std::size_t memory_bytes() const override { return sketch_.memory_bytes(); }
  std::string name() const override { return "FCM"; }
  void clear() override { sketch_.clear(); }

  FcmSketch& sketch() noexcept { return sketch_; }
  const FcmSketch& sketch() const noexcept { return sketch_; }

 private:
  FcmSketch sketch_;
};

class FcmTopKEstimator final : public sketch::FrequencyEstimator {
 public:
  explicit FcmTopKEstimator(FcmTopK::Config config) : inner_(std::move(config)) {}
  explicit FcmTopKEstimator(FcmTopK inner) : inner_(std::move(inner)) {}

  void update(flow::FlowKey key) override { inner_.update(key); }
  std::uint64_t query(flow::FlowKey key) const override { return inner_.query(key); }
  std::size_t memory_bytes() const override { return inner_.memory_bytes(); }
  std::string name() const override { return "FCM+TopK"; }
  void clear() override { inner_.clear(); }

  FcmTopK& inner() noexcept { return inner_; }
  const FcmTopK& inner() const noexcept { return inner_; }

 private:
  FcmTopK inner_;
};

}  // namespace fcm::core
