// The FCM framework (paper Figure 1): FCM-Sketch in the data plane with an
// optional Top-K filter, plus the control-plane pipeline (virtual counter
// conversion, EM, entropy, heavy change) behind one facade. This is the
// public API an application embeds; the examples/ directory shows it in use.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "controlplane/em.h"
#include "controlplane/heavy_change.h"
#include "fcm/fcm_topk.h"
#include "flow/packet.h"
#include "obs/metrics_registry.h"
#include "sketch/cardinality.h"

namespace fcm::agg {
class WireCodec;  // wire-format (de)serializer, the single state-access friend
}

namespace fcm::framework {

class FcmFramework {
 public:
  // What one packet adds to its flow's counter (§3.3: "the count can be
  // interpreted in different ways, e.g., bytes, packets").
  enum class CountMode { kPackets, kBytes };

  struct Options {
    core::FcmConfig fcm = core::FcmConfig::paper_default();
    // 0 disables the Top-K filter (plain FCM); the paper's FCM+TopK uses
    // 4096 entries with 16-ary trees.
    std::size_t topk_entries = 0;
    // 0 disables on-path heavy-hitter tracking.
    std::uint64_t heavy_hitter_threshold = 0;
    // Byte counting requires the plain-FCM data plane (the TopK filter's
    // vote counters are per-packet); the constructor rejects the combination.
    CountMode count_mode = CountMode::kPackets;
    control::EmConfig em;
    // Telemetry sink for the control plane (analyze() counters/latency and,
    // threaded into em.metrics, the EM estimator's series). Defaults to the
    // process-global registry; nullptr runs fully uninstrumented — this is
    // the single knob: it OVERRIDES em.metrics, and the sharded runtime
    // propagates its own Options::metrics here so `metrics = nullptr` means
    // no registry is touched anywhere in the pipeline. Must outlive the
    // framework when non-null.
    obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global();
    // Single-pass multi-query sweep (DESIGN.md §14, the Count-Less
    // fold-everything-into-one-pass discipline): maintain LinearCounting and
    // HyperLogLog cardinality sidecars updated from the SAME hashes the
    // ingest kernel already computes — batched ingest feeds them via
    // FcmSketch::BlockSweep with tree-0's raw hashes, scalar entry points
    // update them per key. Both produce bit-identical sidecar state, and
    // both are bit-identical to running the sidecars as a separate pass over
    // the same keys (tests pin this). Plain-FCM only: the Top-K filter
    // diverts heavy flows before the sketch, so a sketch-coupled sweep would
    // see a different key stream (the constructor rejects the combination).
    // Not wire-transportable — WireCodec rejects sweep-enabled frameworks.
    bool single_pass_sweep = false;
    // Sidecar geometry, used only when single_pass_sweep is set.
    std::size_t sweep_linear_bits = std::size_t{1} << 13;
    std::size_t sweep_hll_registers = std::size_t{1} << 11;
  };

  explicit FcmFramework(Options options);

  // --- data plane -------------------------------------------------------
  void process(flow::FlowKey key);
  // In kBytes mode the packet's byte size is added; otherwise counts one.
  void process(const flow::Packet& packet);
  void process(std::span<const flow::Packet> packets);

  // Batched per-packet ingest (DESIGN.md §9): equivalent to process(key) for
  // each key in order, bit-exact — routed to FcmSketch::add_batch or
  // FcmTopK::add_batch (bulk hashing, level-1 prefetch, branch-light fast
  // path). The span overload of process() feeds packet keys through this in
  // kPackets mode; kBytes stays per-packet (the increment is data-dependent).
  void process_batch(std::span<const flow::FlowKey> keys);

  // Weighted bulk insert: absorbs `count` units (packets in kPackets mode,
  // bytes in kBytes mode) of flow `key` in one call — the demotion path of
  // the datapath heavy-flow cache and the sharded runtime's cache flush
  // (DESIGN.md §12). For the plain-FCM plane this is bit-exact equivalent to
  // `count` separate unit inserts (FCM counters are order-independent sums);
  // with the Top-K filter the count lands in the backing sketch and the
  // filter's light-part flag is set, so queries never underestimate.
  void process_weighted(flow::FlowKey key, std::uint64_t count);

  // Data-plane queries (§3.3): available at line rate.
  std::uint64_t flow_size(flow::FlowKey key) const;
  double cardinality() const;
  std::vector<flow::FlowKey> heavy_hitters() const;

  // --- single-pass sweep sidecars (Options::single_pass_sweep) ------------
  bool single_pass_sweep_enabled() const noexcept {
    return sweep_linear_.has_value();
  }
  // The sidecars; FCM_REQUIRE the sweep is enabled.
  const sketch::LinearCounting& sweep_linear() const;
  const sketch::HyperLogLog& sweep_hll() const;

  // --- control plane ------------------------------------------------------
  struct Report {
    control::FlowSizeDistribution fsd;
    double entropy = 0.0;
    double estimated_flows = 0.0;
    double cardinality = 0.0;
  };
  // Collects the sketch, converts to virtual counters, runs EM and derives
  // the generic statistics (§4). Expensive; run per measurement epoch.
  Report analyze() const;

  // Heavy-change detection across two collected epochs (§4.4): candidates
  // default to the union of both frameworks' heavy-hitter reports.
  static std::vector<flow::FlowKey> heavy_changes(const FcmFramework& window_a,
                                                  const FcmFramework& window_b,
                                                  std::uint64_t threshold);

  // Merges `other`'s data plane into this framework (FcmSketch/FcmTopK
  // merge; see DESIGN.md §7). Both frameworks must have been built from
  // equivalent Options — same FcmConfig, Top-K geometry, count mode, and
  // heavy-hitter threshold (ContractViolation otherwise). For the plain-FCM
  // data plane the merged state is bit-exact the state of one framework fed
  // both packet streams; FCM+TopK merges the heavy part approximately but
  // never underestimates. The runtime's shard replicas merge through this.
  void merge(const FcmFramework& other);

  // Lifts the heavy-hitter threshold to `threshold` (e.g. from a per-shard
  // ceil(T/N) back to the global T after merging) and prunes recorded
  // candidates against the current counters.
  void requalify_heavy_hitters(std::uint64_t threshold);

  // The underlying FCM sketch (the data-plane structure behind the facade);
  // the TopK variant exposes the sketch part. Read-only: used by the
  // control plane, the sharded runtime's equivalence tests, and benches.
  const core::FcmSketch& sketch() const { return active_sketch(); }

  // Resets the data plane for the next measurement window.
  void reset();

  const Options& options() const noexcept { return options_; }
  std::size_t memory_bytes() const;

  // --- observability (DESIGN.md §8) ---------------------------------------
  // Overflow-promotion events in the active sketch's trees and how often
  // linear counting hit its full-table guard. Plain counters inside the data
  // plane (no atomics on the hot path); the sharded runtime and the benches
  // scrape them into the obs::MetricsRegistry at epoch boundaries.
  std::uint64_t overflow_promotion_count() const {
    return active_sketch().overflow_promotion_count();
  }
  std::uint64_t cardinality_saturation_count() const {
    return active_sketch().cardinality_saturation_count();
  }

  // Deep invariants of the active data plane (sketch trees, and the vote
  // table when the Top-K filter is enabled).
  void check_invariants() const;

  // Frameworks are copyable: keep a snapshot per epoch for heavy change.
  FcmFramework(const FcmFramework&) = default;
  FcmFramework& operator=(const FcmFramework&) = default;

 private:
  friend class ::fcm::agg::WireCodec;

  const core::FcmSketch& active_sketch() const;

  // Per-key sidecar update for the scalar entry points (process(key),
  // process_weighted); batched ingest goes through sweep_block instead.
  void sweep_update(flow::FlowKey key);
  // BlockSweep body: folds tree-0's raw hashes into the LinearCounting
  // bitmap and — after computing the aux hashes through the same tiered
  // batch kernel — the HyperLogLog registers.
  void sweep_block(std::span<const flow::FlowKey> keys,
                   std::span<const std::uint32_t> tree0_hashes);
  static void sweep_block_thunk(void* ctx, std::span<const flow::FlowKey> keys,
                                std::span<const std::uint32_t> tree0_hashes);

  Options options_;
  std::optional<core::FcmSketch> plain_;
  std::optional<core::FcmTopK> with_topk_;
  // Single-pass sweep sidecars (engaged iff Options::single_pass_sweep):
  // constructed over tree-0's hash function so sweep_block(tree0 hashes)
  // and sweep_update(key) produce bit-identical state.
  std::optional<sketch::LinearCounting> sweep_linear_;
  std::optional<sketch::HyperLogLog> sweep_hll_;
  // The HLL's second hash function (seed ^ HyperLogLog::kAuxSeedXor),
  // batched through the kernel tiers in sweep_block.
  common::SeededHash sweep_aux_hash_;
};

}  // namespace fcm::framework
