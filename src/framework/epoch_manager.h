// Epoch (measurement-window) management — the "Collect" loop of Figure 1.
//
// The data plane accumulates one epoch; `rotate()` closes it: the sketch is
// snapshotted for later heavy-change comparison, the control-plane analysis
// runs (§4), heavy changes against the previous epoch are computed (§4.4),
// and the data plane is reset for the next window. A bounded history of
// snapshots is retained so applications can query past windows.
//
// Threading: single-owner, like FcmFramework itself — one thread drives the
// whole Collect loop. The contract is expressed as the owner_role_ capability
// (common/thread_annotations.h): every member is FCM_GUARDED_BY it and every
// entry point asserts it, so under Clang's -Wthread-safety any future attempt
// to share an EpochManager across threads without external synchronization
// is a compile error at the access site.
#pragma once

#include <deque>

#include "common/thread_annotations.h"
#include "framework/fcm_framework.h"

namespace fcm::framework {

class EpochManager {
 public:
  struct Options {
    FcmFramework::Options framework;
    // Snapshots kept for cross-epoch queries (>= 1).
    std::size_t retained_epochs = 4;
    // 0: reuse framework.heavy_hitter_threshold for heavy-change detection.
    std::uint64_t heavy_change_threshold = 0;
    // Run the (expensive) EM analysis at each rotation.
    bool analyze_on_rotate = true;
  };

  struct EpochSummary {
    std::size_t index = 0;
    std::uint64_t packets = 0;
    double cardinality = 0.0;
    std::vector<flow::FlowKey> heavy_hitters;
    // Against the previous epoch; empty for the first epoch.
    std::vector<flow::FlowKey> heavy_changes;
    // Populated when analyze_on_rotate is set.
    FcmFramework::Report report;
  };

  explicit EpochManager(Options options);

  // --- current epoch's data plane ---
  void process(const flow::Packet& packet);
  void process(std::span<const flow::Packet> packets);
  std::uint64_t flow_size(flow::FlowKey key) const {
    owner_role_.assert_held();
    return current_.flow_size(key);
  }

  // Closes the current epoch and starts the next one.
  EpochSummary rotate();

  std::size_t epochs_completed() const noexcept {
    owner_role_.assert_held();
    return next_index_;
  }

  // Snapshots of the most recent closed epochs, oldest first.
  const std::deque<FcmFramework>& history() const noexcept {
    owner_role_.assert_held();
    return history_;
  }

 private:
  // The single owning thread (see the header comment).
  common::ThreadRole owner_role_;
  Options options_;
  FcmFramework current_ FCM_GUARDED_BY(owner_role_);
  std::deque<FcmFramework> history_ FCM_GUARDED_BY(owner_role_);
  std::uint64_t packets_in_epoch_ FCM_GUARDED_BY(owner_role_) = 0;
  std::size_t next_index_ FCM_GUARDED_BY(owner_role_) = 0;
};

}  // namespace fcm::framework
