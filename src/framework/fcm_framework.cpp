#include "framework/fcm_framework.h"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.h"
#include "obs/metrics_registry.h"

namespace fcm::framework {

FcmFramework::FcmFramework(Options options) : options_(std::move(options)) {
  FCM_REQUIRE(
      !(options_.count_mode == CountMode::kBytes && options_.topk_entries > 0),
      "FcmFramework: byte counting requires the plain-FCM data plane");
  // Options::metrics is the single telemetry knob for the whole control
  // plane: thread it into the EM config so analyze()'s estimator honors it
  // (nullptr == fully uninstrumented, no global-registry fallback).
  options_.em.metrics = options_.metrics;
  if (options_.topk_entries > 0) {
    core::FcmTopK::Config config;
    config.fcm = options_.fcm;
    config.topk_entries = options_.topk_entries;
    with_topk_.emplace(config);
    if (options_.heavy_hitter_threshold > 0) {
      with_topk_->set_heavy_hitter_threshold(options_.heavy_hitter_threshold);
    }
  } else {
    plain_.emplace(options_.fcm);
    if (options_.heavy_hitter_threshold > 0) {
      plain_->set_heavy_hitter_threshold(options_.heavy_hitter_threshold);
    }
  }
  if (options_.single_pass_sweep) {
    FCM_REQUIRE(options_.topk_entries == 0,
                "FcmFramework: the single-pass sweep requires the plain-FCM "
                "data plane (the Top-K filter diverts the key stream)");
    // The sidecars ride tree-0's hash function: the ingest kernel computes
    // that hash anyway, so sweep_block reuses it instead of re-hashing.
    const common::SeededHash h0 = plain_->tree(0).hash();
    sweep_linear_.emplace(options_.sweep_linear_bits, h0);
    sweep_hll_.emplace(options_.sweep_hll_registers, h0);
    sweep_aux_hash_ =
        common::SeededHash(h0.seed() ^ sketch::HyperLogLog::kAuxSeedXor);
  }
}

const core::FcmSketch& FcmFramework::active_sketch() const {
  return with_topk_ ? with_topk_->sketch() : *plain_;
}

void FcmFramework::process(flow::FlowKey key) {
  if (with_topk_) {
    with_topk_->update(key);
  } else {
    plain_->update(key);
  }
  if (sweep_linear_) sweep_update(key);
}

void FcmFramework::process(const flow::Packet& packet) {
  if (options_.count_mode == CountMode::kBytes) {
    plain_->add(packet.key, packet.bytes);
    // Cardinality is per-flow, not per-byte: one sidecar update regardless
    // of the packet's size (idempotent anyway — distinct-set semantics).
    if (sweep_linear_) sweep_update(packet.key);
  } else {
    process(packet.key);
  }
}

void FcmFramework::process(std::span<const flow::Packet> packets) {
  if (options_.count_mode == CountMode::kBytes) {
    // Byte counting adds a data-dependent increment per packet; the batched
    // kernel is per-packet (+1) only.
    for (const flow::Packet& packet : packets) process(packet);
    return;
  }
  // Strip keys into a stack block and run the batched kernel on it; the
  // copy is cheap next to the hashing it unlocks.
  flow::FlowKey keys[common::kBatchBlock];
  for (std::size_t base = 0; base < packets.size(); base += common::kBatchBlock) {
    const std::size_t n = std::min(common::kBatchBlock, packets.size() - base);
    for (std::size_t i = 0; i < n; ++i) keys[i] = packets[base + i].key;
    process_batch(std::span<const flow::FlowKey>(keys, n));
  }
}

void FcmFramework::process_batch(std::span<const flow::FlowKey> keys) {
  if (with_topk_) {
    with_topk_->add_batch(keys);
    return;
  }
  if (!sweep_linear_) {
    plain_->add_batch(keys);
    return;
  }
  // Single-pass sweep: the sketch hands every staged block (keys + tree-0
  // raw hashes) to sweep_block, so the sidecars ride the same kernel sweep.
  plain_->add_batch(keys,
                    core::FcmSketch::BlockSweep{&sweep_block_thunk, this});
}

void FcmFramework::process_weighted(flow::FlowKey key, std::uint64_t count) {
  if (count == 0) return;
  if (with_topk_) {
    with_topk_->add_weighted(key, count);
  } else {
    plain_->add(key, count);
    // One update for the whole weighted insert: sidecars count distinct
    // flows, and N unit inserts of the same key set the same bit/register.
    if (sweep_linear_) sweep_update(key);
  }
}

void FcmFramework::sweep_update(flow::FlowKey key) {
  sweep_linear_->update(key);
  sweep_hll_->update(key);
}

void FcmFramework::sweep_block(std::span<const flow::FlowKey> keys,
                               std::span<const std::uint32_t> tree0_hashes) {
  const std::size_t n = keys.size();
  sketch::LinearCounting& lc = *sweep_linear_;
  for (std::size_t i = 0; i < n; ++i) lc.update_hash(tree0_hashes[i]);
  // The HLL needs 64 hash bits; the high half is tree-0's hash (free), the
  // low half comes from the aux hash function, batched through the same
  // kernel tier as the ingest hashing.
  std::uint32_t aux[common::kBatchBlock];
  sweep_aux_hash_.hash_batch(keys, std::span<std::uint32_t>(aux, n));
  sketch::HyperLogLog& hll = *sweep_hll_;
  for (std::size_t i = 0; i < n; ++i) {
    hll.update_hash((static_cast<std::uint64_t>(tree0_hashes[i]) << 32) |
                    aux[i]);
  }
}

void FcmFramework::sweep_block_thunk(void* ctx,
                                     std::span<const flow::FlowKey> keys,
                                     std::span<const std::uint32_t> tree0_hashes) {
  static_cast<FcmFramework*>(ctx)->sweep_block(keys, tree0_hashes);
}

std::uint64_t FcmFramework::flow_size(flow::FlowKey key) const {
  return with_topk_ ? with_topk_->query(key) : plain_->query(key);
}

double FcmFramework::cardinality() const {
  return with_topk_ ? with_topk_->estimate_cardinality()
                    : plain_->estimate_cardinality();
}

std::vector<flow::FlowKey> FcmFramework::heavy_hitters() const {
  if (with_topk_) {
    return with_topk_->heavy_hitters(options_.heavy_hitter_threshold);
  }
  const auto& set = plain_->heavy_hitters();
  return {set.begin(), set.end()};
}

FcmFramework::Report FcmFramework::analyze() const {
  // Per-epoch control-plane collection cost (DESIGN.md §8); analyze() runs
  // once per measurement window, so the registry lookups are negligible.
  // The configured sink (not the global singleton) is used so that
  // Options::metrics == nullptr really is uninstrumented — the throughput
  // bench's overhead baseline depends on that.
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry != nullptr) {
    registry
        ->counter("fcm_framework_analyze_total", {},
                  "Control-plane analyze() collections")
        .inc();
  }
  const obs::ScopedTimer timer(
      registry != nullptr
          ? &registry->histogram("fcm_framework_analyze_seconds",
                                 obs::Histogram::latency_bounds(), {},
                                 "Wall time of one control-plane analyze() "
                                 "collection")
          : nullptr);
  Report report;
  control::EmFsdEstimator em(control::convert_sketch(active_sketch()),
                             options_.em);
  report.fsd = em.run();
  if (with_topk_) {
    // Fold the filter's exact heavy flows into the recovered distribution.
    for (const auto& [key, count] : with_topk_->topk_flows()) {
      report.fsd.add_flows(static_cast<std::size_t>(with_topk_->query(key)), 1.0);
    }
  }
  report.entropy = report.fsd.entropy();
  report.estimated_flows = report.fsd.total_flows();
  report.cardinality = cardinality();
  return report;
}

std::vector<flow::FlowKey> FcmFramework::heavy_changes(
    const FcmFramework& window_a, const FcmFramework& window_b,
    std::uint64_t threshold) {
  std::vector<flow::FlowKey> candidates = window_a.heavy_hitters();
  const std::vector<flow::FlowKey> candidates_b = window_b.heavy_hitters();
  candidates.insert(candidates.end(), candidates_b.begin(), candidates_b.end());
  return control::detect_heavy_changes(
      [&](flow::FlowKey key) { return window_a.flow_size(key); },
      [&](flow::FlowKey key) { return window_b.flow_size(key); }, candidates,
      threshold);
}

void FcmFramework::merge(const FcmFramework& other) {
  FCM_REQUIRE(options_.fcm == other.options_.fcm,
              "FcmFramework::merge: mismatched FCM configs");
  FCM_REQUIRE(options_.topk_entries == other.options_.topk_entries,
              "FcmFramework::merge: mismatched Top-K geometries");
  FCM_REQUIRE(options_.count_mode == other.options_.count_mode,
              "FcmFramework::merge: mismatched count modes");
  FCM_REQUIRE(
      options_.heavy_hitter_threshold == other.options_.heavy_hitter_threshold,
      "FcmFramework::merge: mismatched heavy-hitter thresholds");
  FCM_REQUIRE(options_.single_pass_sweep == other.options_.single_pass_sweep,
              "FcmFramework::merge: mismatched single-pass sweep settings");
  if (with_topk_) {
    with_topk_->merge(*other.with_topk_);
  } else {
    plain_->merge(*other.plain_);
  }
  if (sweep_linear_) {
    // Exact sidecar merges (bitmap OR / register max): the merged state is
    // bit-identical to one framework fed both streams.
    sweep_linear_->merge(*other.sweep_linear_);
    sweep_hll_->merge(*other.sweep_hll_);
  }
}

void FcmFramework::requalify_heavy_hitters(std::uint64_t threshold) {
  options_.heavy_hitter_threshold = threshold;
  if (threshold == 0) return;
  if (with_topk_) {
    with_topk_->requalify_heavy_hitters(threshold);
  } else {
    plain_->requalify_heavy_hitters(threshold);
  }
}

void FcmFramework::reset() {
  if (with_topk_) {
    with_topk_->clear();
  } else {
    plain_->clear();
  }
  if (sweep_linear_) {
    sweep_linear_->clear();
    sweep_hll_->clear();
  }
}

const sketch::LinearCounting& FcmFramework::sweep_linear() const {
  FCM_REQUIRE(sweep_linear_.has_value(),
              "FcmFramework: single-pass sweep is not enabled");
  return *sweep_linear_;
}

const sketch::HyperLogLog& FcmFramework::sweep_hll() const {
  FCM_REQUIRE(sweep_hll_.has_value(),
              "FcmFramework: single-pass sweep is not enabled");
  return *sweep_hll_;
}

std::size_t FcmFramework::memory_bytes() const {
  return with_topk_ ? with_topk_->memory_bytes() : plain_->memory_bytes();
}

void FcmFramework::check_invariants() const {
  FCM_ASSERT(plain_.has_value() != with_topk_.has_value(),
             "FcmFramework: exactly one data-plane variant must be active");
  FCM_ASSERT(sweep_linear_.has_value() == options_.single_pass_sweep &&
                 sweep_hll_.has_value() == options_.single_pass_sweep,
             "FcmFramework: sweep sidecars out of step with options");
  if (sweep_linear_) {
    FCM_ASSERT(sweep_linear_->hash().seed() == plain_->tree(0).hash().seed(),
               "FcmFramework: sweep sidecar hash diverged from tree 0");
  }
  if (with_topk_) {
    with_topk_->check_invariants();
  } else {
    plain_->check_invariants();
  }
}

}  // namespace fcm::framework
