#include "framework/epoch_manager.h"

#include <stdexcept>

namespace fcm::framework {

EpochManager::EpochManager(Options options)
    : options_(std::move(options)), current_(options_.framework) {
  if (options_.retained_epochs == 0) {
    throw std::invalid_argument("EpochManager: must retain at least one epoch");
  }
  if (options_.heavy_change_threshold == 0) {
    options_.heavy_change_threshold = options_.framework.heavy_hitter_threshold;
  }
}

void EpochManager::process(const flow::Packet& packet) {
  owner_role_.assert_held();
  current_.process(packet);
  ++packets_in_epoch_;
}

void EpochManager::process(std::span<const flow::Packet> packets) {
  owner_role_.assert_held();
  current_.process(packets);
  packets_in_epoch_ += packets.size();
}

EpochManager::EpochSummary EpochManager::rotate() {
  owner_role_.assert_held();
  EpochSummary summary;
  summary.index = next_index_++;
  summary.packets = packets_in_epoch_;
  summary.cardinality = current_.cardinality();
  summary.heavy_hitters = current_.heavy_hitters();
  if (!history_.empty() && options_.heavy_change_threshold > 0) {
    summary.heavy_changes = FcmFramework::heavy_changes(
        history_.back(), current_, options_.heavy_change_threshold);
  }
  if (options_.analyze_on_rotate) {
    summary.report = current_.analyze();
  }

  history_.push_back(current_);  // snapshot (frameworks are copyable)
  while (history_.size() > options_.retained_epochs) history_.pop_front();

  current_.reset();
  packets_in_epoch_ = 0;
  return summary;
}

}  // namespace fcm::framework
