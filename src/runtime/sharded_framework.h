// Sharded ingestion runtime (DESIGN.md §7, block-staged hand-off §13).
//
// The paper's data plane sustains line rate because every FCM update is an
// independent O(1) register op; this runtime recovers that parallelism in
// software. Producer threads hash-partition traffic into per-shard blocks
// and hand WHOLE blocks to N shard workers over lock-free block rings
// (common/block_queue.h); each worker owns a private FcmFramework replica
// (plain FCM or FCM+TopK) and feeds popped blocks straight into the batched
// ingest kernel (FcmFramework::process_batch), so the hot path is entirely
// unsynchronized and pays one release store per ~flush_batch packets instead
// of per packet. FCM counters are linear, so at each epoch boundary the N
// shard replicas are merged into ONE logical sketch — bit-exact equal, for
// the plain-FCM plane, to the sketch a serial run would hold (FcmTree::merge)
// — and handed to the existing control plane (EM/FSD, entropy, heavy change)
// unchanged.
//
// Block staging (DESIGN.md §13): every producer keeps one OPEN block per
// shard, reserved in place inside that shard's ring (zero staging copy).
// Span ingest bulk-hashes shard indices a kBatchBlock chunk at a time
// (SeededHash::index_batch — the same vectorizable kernel the sketch hashes
// use) and scatters keys into the open blocks; a block that reaches
// flush_batch keys is published with one release store. Optional adaptive
// flush (Options::flush_interval) publishes a partial block once it has been
// open longer than the deadline, so trickle traffic reaches the workers with
// bounded latency instead of waiting for a rotation.
//
// Multi-producer ingest: Options::producer_count > 1 gives each extra
// producer thread its own IngestHandle — per-producer staging plus a private
// ring per (producer, shard) pair, so every ring stays strictly SPSC.
// Ownership rules (machine-checked per handle via its ThreadRole):
//   - exactly one thread drives each handle (and the driver thread, which
//     owns handle 0 implicitly, is the only one that may rotate/stop);
//   - secondary handles must be flushed and quiescent from before
//     rotate_async()/stop() until the rotation completes (wait_epoch
//     returns) — epoch markers travel only on the driver's rings, and a
//     worker that pops one drains the secondary rings to empty to close the
//     epoch, which is exact precisely because quiesced producers cannot be
//     mid-publish.
//
// Epoch double-buffering: each worker holds TWO replica generations, active
// and draining. rotate_async() pushes an in-band epoch marker block into
// every driver ring; a worker that pops the marker flips to the other
// generation and keeps consuming — ingest never stalls on a rotation. A
// background epoch coordinator waits until every worker has flipped, merges
// the drained generation (off the ingest path), derives the epoch report
// (cardinality, re-qualified heavy hitters, heavy changes vs. the previous
// epoch, optional EM analysis), clears the drained replicas for reuse, and
// publishes the merged framework into a bounded history.
//
// Heavy hitters under sharding: a flow split across shards can cross the
// global threshold T only in aggregate, so shard replicas record candidates
// at ceil(T / N) (pigeonhole: a flow with true count >= T has >= ceil(T/N)
// packets in some shard, and FCM never underestimates, so some shard records
// it). After the merge the coordinator re-qualifies the union against the
// merged counters at T — flows below T globally are dropped, flows that
// cross T only after merging are kept.
//
// Thread discipline (machine-checked, DESIGN.md §10): ingest(),
// rotate_async(), rotate() and stop() must all be called from ONE driver
// thread — expressed as the driver_role_ capability: the public driver entry
// points assert it, the private helpers REQUIRE it, and driver-only state is
// GUARDED_BY it. Each IngestHandle carries its own role capability guarding
// its staging state the same way. wait_epoch()/merged_epoch()/last_report()
// are safe from any thread (they only read mutex_-guarded published state).
// The destructor stops and joins all threads; workers are std::jthread, so
// teardown is exception-safe (tools/fcm_lint.py bans plain std::thread in
// src/ for exactly this reason).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/thread_annotations.h"
#include "datapath/heavy_flow_cache.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"

namespace fcm::runtime {

class ShardedFcmFramework {
 public:
  // How packets are routed to shards.
  enum class Fanout {
    // Same flow -> same shard (hash of the key). Flows are never split, so
    // per-shard heavy-hitter detection sees whole flows; load balance
    // follows the flow-size distribution.
    kHashByKey,
    // Strict round-robin (per producer). Perfect load balance; flows are
    // split across shards (merge keeps counts exact; heavy hitters rely on
    // the ceil(T/N) per-shard threshold + post-merge re-qualification).
    kRoundRobin,
  };

  struct Options {
    // Per-logical-sketch configuration; each shard replica is built from it
    // (with the heavy-hitter threshold lowered to ceil(T / shard_count)).
    framework::FcmFramework::Options framework;
    std::size_t shard_count = 4;
    // Ring capacity per (producer, shard) pair, in ITEMS; must be a power of
    // two >= 2 and >= flush_batch. The ring actually holds
    // queue_capacity / flush_batch whole blocks. Ingest applies backpressure
    // (spins) when a ring is full.
    std::size_t queue_capacity = 1 << 14;
    // Block size: keys are staged per shard directly into the in-ring block
    // and published flush_batch at a time, so one release store covers a
    // whole process_batch-sized run. Byte-count mode stages (key, bytes)
    // pairs, so it needs flush_batch >= 2.
    std::size_t flush_batch = 64;
    // Ingest handles (producer threads). Handle 0 is the driver thread's own
    // (the plain ingest() entry points); handles 1..producer_count-1 are
    // claimed with ingest_handle() and may run on other threads. Each extra
    // producer costs one ring per shard.
    std::size_t producer_count = 1;
    Fanout fanout = Fanout::kHashByKey;
    // Adaptive flush deadline: 0 (default) publishes blocks only when full
    // (or at rotation/stop). > 0 bounds staging latency — a partial block
    // older than this is published at the next ingest call on its handle, so
    // trickle traffic reaches the workers without waiting for a rotation.
    std::chrono::nanoseconds flush_interval{0};
    // Pin each shard worker to logical CPU (shard index mod hardware
    // concurrency) via common/affinity.h. A performance hint: platforms
    // without an affinity API (or restricted cpusets) run unpinned.
    bool pin_workers = false;
    // Merged epoch snapshots retained for cross-epoch queries (>= 1).
    std::size_t retained_epochs = 4;
    // 0: reuse framework.heavy_hitter_threshold for heavy-change detection.
    std::uint64_t heavy_change_threshold = 0;
    // Exact-match heavy-flow cache in FRONT of the fan-out (DESIGN.md §12):
    // 0 disables it. Hot flows are absorbed at the DRIVER — a cache hit
    // never crosses a ring at all — and are demoted as one weighted
    // block on eviction and at every rotation, so each merged epoch holds
    // exactly the traffic ingested into it (the plain-FCM merged COUNTER
    // state is bit-exact equal to a cache-off run; the on-path HH ledger is
    // trajectory-dependent but never misses a truly heavy flow — the
    // differential battery checks both). With the cache enabled,
    // EpochReport::packets still counts true
    // packets in kPackets mode, but in kBytes mode demotions collapse many
    // packets into one ring block, so `packets` counts items there.
    std::size_t cache_entries = 0;
    std::size_t cache_ways = 4;       // set associativity (see HeavyFlowCache)
    std::uint64_t cache_seed = 0xcac4e;
    // Run the (expensive) EM analysis on the merged sketch at each rotation.
    bool analyze_on_rotate = false;
    // Telemetry sink (DESIGN.md §8). Defaults to the process-global
    // registry; set to nullptr to run fully uninstrumented (the throughput
    // bench's overhead study uses that as its baseline). Authoritative for
    // the whole runtime: it is propagated into framework.metrics at
    // construction, so the control plane (analyze_on_rotate / EM) follows
    // the same knob. The registry must outlive this framework. Per-packet
    // cost is a handful of batched relaxed fetch_adds per BLOCK — measured
    // < 1% on the 8-shard ingest path.
    obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global();
    // Label value distinguishing this instance's series when several
    // sharded frameworks share one registry ("" = unlabeled; two live
    // unlabeled instances would collide on the queue-depth callback gauges,
    // which are then skipped for the second instance).
    std::string metrics_instance;
  };

  // What one epoch boundary produces, computed on the MERGED sketch — the
  // same quantities EpochManager::EpochSummary reports for the serial path.
  struct EpochReport {
    std::size_t index = 0;
    std::uint64_t packets = 0;
    // Payload bytes this epoch, tallied per shard in the same worker sweep
    // that applies the blocks (DESIGN.md §14's fold-into-one-pass rule).
    // Meaningful in kBytes mode (pairs carry the size, weighted demotions
    // carry summed bytes); 0 in kPackets mode, where sizes never cross the
    // rings. Also exported per shard as fcm_runtime_shard_bytes_total.
    std::uint64_t bytes = 0;
    double cardinality = 0.0;
    // HyperLogLog sidecar estimate when framework.single_pass_sweep is on
    // (folded into the ingest sweep; exact-merged across shards), else 0.
    double sweep_cardinality = 0.0;
    std::vector<flow::FlowKey> heavy_hitters;   // re-qualified at global T
    std::vector<flow::FlowKey> heavy_changes;   // vs. previous merged epoch
    std::optional<framework::FcmFramework::Report> analysis;
    // Telemetry derived while merging (also exported to the registry):
    double merge_seconds = 0.0;            // wall time of the N-way merge
    std::uint64_t overflow_promotions = 0; // FCM overflow trips this epoch
    // max-shard / mean-shard packet ratio (1.0 = perfectly balanced; only
    // meaningful when packets > 0 and shard_count > 1).
    double fanout_imbalance = 1.0;
  };

  // One producer's ingest endpoint: per-shard open blocks staged in place in
  // that producer's private rings. Exactly ONE thread may drive a handle
  // (its ThreadRole capability guards the staging state); see the ownership
  // rules in the file comment for how handles interact with rotation.
  class IngestHandle {
   public:
    IngestHandle(const IngestHandle&) = delete;
    IngestHandle& operator=(const IngestHandle&) = delete;

    void ingest(flow::FlowKey key);
    void ingest(const flow::Packet& packet);
    void ingest(std::span<const flow::FlowKey> keys);
    void ingest(std::span<const flow::Packet> packets);
    // Publishes every non-empty open block (partial blocks included) and
    // hands empty reserved blocks back. REQUIRED before the driver rotates
    // or stops (see ownership rules).
    void flush();

    std::size_t producer_index() const noexcept { return producer_; }

   private:
    friend class ShardedFcmFramework;

    // A block reserved in the ring for one shard, being filled in place.
    struct OpenBlock {
      flow::FlowKey* slots = nullptr;  // null => no block reserved
      std::uint32_t fill = 0;
      // Set at first staging into the block when deadline flushing or the
      // flush-latency histogram needs it.
      std::chrono::steady_clock::time_point opened{};
    };

    IngestHandle(ShardedFcmFramework& owner, std::size_t producer);

    void open_block(std::size_t shard) FCM_REQUIRES(role_);
    void publish_block(std::size_t shard, std::uint32_t kind,
                       std::uint64_t aux) FCM_REQUIRES(role_);
    void stage_unit(std::size_t shard, flow::FlowKey key) FCM_REQUIRES(role_);
    void stage_pair(std::size_t shard, flow::FlowKey key, std::uint32_t bytes)
        FCM_REQUIRES(role_);
    void stage_weighted(std::size_t shard, flow::FlowKey key,
                        std::uint64_t weight) FCM_REQUIRES(role_);
    void ingest_keys(std::span<const flow::FlowKey> keys) FCM_REQUIRES(role_);
    void ingest_packets(std::span<const flow::Packet> packets)
        FCM_REQUIRES(role_);
    std::size_t route_shard(flow::FlowKey key) FCM_REQUIRES(role_);
    // Deadline flush: publishes partial blocks older than flush_interval.
    // Checked at the end of every public ingest call on this handle.
    void maybe_deadline_flush() FCM_REQUIRES(role_);

    ShardedFcmFramework& owner_;
    const std::size_t producer_;
    // The one-thread-per-handle contract as a capability (the producer
    // analogue of driver_role_); all staging state below is guarded by it.
    common::ThreadRole role_;
    std::vector<OpenBlock> open_ FCM_GUARDED_BY(role_);
    // Per-producer round-robin cursor (kRoundRobin fanout).
    std::size_t rr_next_ FCM_GUARDED_BY(role_) = 0;
  };

  explicit ShardedFcmFramework(Options options);
  ~ShardedFcmFramework();

  ShardedFcmFramework(const ShardedFcmFramework&) = delete;
  ShardedFcmFramework& operator=(const ShardedFcmFramework&) = delete;

  // --- data plane (driver thread only) -----------------------------------
  void ingest(flow::FlowKey key);
  void ingest(const flow::Packet& packet);
  // Span overloads (DESIGN.md §9/§13): shard indices are bulk-hashed a
  // kBatchBlock chunk at a time and keys scattered into per-shard in-ring
  // blocks, so one release store on the ring covers a whole block and
  // workers feed popped blocks into FcmFramework::process_batch — the
  // batched ingest kernel end to end, with no per-item ring traffic.
  void ingest(std::span<const flow::Packet> packets);
  void ingest(std::span<const flow::FlowKey> keys);

  // Secondary producer endpoint `producer` in [1, producer_count): claim it
  // once and drive it from exactly one thread. Handle 0 is the driver's own
  // staging (used by the ingest() overloads above) and cannot be claimed —
  // it routes through the heavy-flow cache and marker protocol, which are
  // driver-only.
  IngestHandle& ingest_handle(std::size_t producer);

  // Closes the current epoch without stalling ingest: pushes epoch markers
  // and returns immediately; the coordinator thread drains, merges, and
  // publishes in the background while workers fill the other generation.
  // At most one rotation is in flight: if the previous epoch is still
  // merging, this call first waits for it (ingest from this thread pauses,
  // but the workers keep draining their rings meanwhile).
  // Secondary handles must be flushed and quiescent (ownership rules above).
  // Returns the epoch index to pass to wait_epoch().
  std::size_t rotate_async();

  // rotate_async() + wait_epoch(): the blocking, EpochManager-like rotation.
  EpochReport rotate();

  // Flushes staged items, drains and joins all threads. Implicit un-rotated
  // tail traffic is discarded with the active generation (rotate first if it
  // matters). Secondary handles must be flushed and quiescent. Idempotent;
  // called by the destructor.
  void stop();

  // --- results (any thread) ----------------------------------------------
  // Blocks until epoch `index` (a rotate_async() return value) is merged.
  EpochReport wait_epoch(std::size_t index);

  // Copy of the merged framework for a completed epoch, `back` epochs before
  // the most recent one (0 = latest). Throws ContractViolation when no such
  // epoch is retained. The copy is a full serial-equivalent FcmFramework:
  // flow_size()/cardinality()/analyze() behave exactly as if one framework
  // had ingested the whole epoch.
  framework::FcmFramework merged_epoch(std::size_t back = 0) const;

  // Merged count-query against the most recent completed epoch.
  std::uint64_t flow_size(flow::FlowKey key) const;

  std::size_t epochs_completed() const;
  std::size_t shard_count() const noexcept { return shards_.size(); }
  const Options& options() const noexcept { return options_; }

  // Per-shard ring-occupancy high-water marks as a fraction of ring blocks
  // (max across producers; approximate, see BlockQueue::high_water_blocks).
  // The scaling study's occupancy column. Safe from any thread.
  std::vector<double> queue_high_water() const;

  // Structural invariants of all shard replicas and retained merged epochs.
  // Only meaningful from the driver thread while no rotation is in flight,
  // or after stop().
  void check_invariants() const;

  // The registry series this runtime writes (all prefixed fcm_runtime_ /
  // fcm_sketch_), resolved once at construction so the hot path never takes
  // the registry lock. Null when Options::metrics == nullptr.
  struct Instruments;
  bool metrics_enabled() const noexcept { return instruments_ != nullptr; }

 private:
  struct Shard;

  void init_instruments();
  // Driver-side routing helpers delegate to handle 0's staging (the driver
  // thread owns both capabilities).
  void route_item(flow::FlowKey key, std::uint32_t count)
      FCM_REQUIRES(driver_role_);
  // Cache front end (no-ops when cache_ is null): per-item offer, epoch
  // drain into the rings, and counter publication.
  void offer_cached(flow::FlowKey key, std::uint32_t count)
      FCM_REQUIRES(driver_role_);
  void drain_cache() FCM_REQUIRES(driver_role_);
  void publish_cache_metrics() FCM_REQUIRES(driver_role_);
  void worker_loop(Shard& shard);
  void coordinator_loop();

  Options options_;
  bool byte_mode_ = false;
  // Record block open timestamps (needed by deadline flushing; also feeds
  // the flush-latency histogram). Off when flush_interval == 0 so the
  // full-block fast path never reads the clock. Set once at construction.
  bool track_block_time_ = false;
  // Flow -> shard mapping (kHashByKey): one SeededHash so the per-item path
  // (index) and the span path (index_batch) are bit-identical by
  // construction (common/hash.h pins that equivalence).
  common::SeededHash shard_hash_;
  std::uint64_t per_shard_hh_threshold_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<IngestHandle>> handles_;

  // The "one driver thread" contract as a capability: the thread that calls
  // ingest()/rotate*/stop() owns this role (asserted at those entry points),
  // and everything below it is driver-private state.
  common::ThreadRole driver_role_;
  bool stopped_ FCM_GUARDED_BY(driver_role_) = false;
  // Driver-side heavy-flow cache (null when cache_entries == 0) and the
  // cumulative counter values already pushed to the registry.
  std::unique_ptr<datapath::HeavyFlowCache> cache_ FCM_GUARDED_BY(driver_role_);
  std::uint64_t cache_published_hits_ FCM_GUARDED_BY(driver_role_) = 0;
  std::uint64_t cache_published_misses_ FCM_GUARDED_BY(driver_role_) = 0;
  std::uint64_t cache_published_evictions_ FCM_GUARDED_BY(driver_role_) = 0;
  // Producer-visible flag only; workers/coordinator use it for shutdown —
  // control state, not telemetry, so it is exempt from the raw-atomic rule.
  std::atomic<bool> stop_{false};  // fcm-lint: allow(raw-atomic)

  // Epoch machinery. All cross-thread state below is guarded by mutex_;
  // worker-side per-shard state is published via the shard's flip counter
  // in shard_flips_ (written under mutex_, so mutex acquire/release orders
  // replica access).
  mutable common::Mutex mutex_;
  std::condition_variable_any cv_;
  std::size_t rotations_requested_ FCM_GUARDED_BY(mutex_) = 0;  // markers pushed
  std::size_t epochs_merged_ FCM_GUARDED_BY(mutex_) = 0;  // merged & published
  bool coordinator_stop_ FCM_GUARDED_BY(mutex_) = false;
  // Per-shard generation-flip counters, indexed by Shard::index (kept here,
  // not in Shard, so the guarded-by relation names a capability the analysis
  // can track).
  std::vector<std::size_t> shard_flips_ FCM_GUARDED_BY(mutex_);
  std::deque<framework::FcmFramework> history_
      FCM_GUARDED_BY(mutex_);  // merged epochs, oldest first
  std::deque<EpochReport> reports_ FCM_GUARDED_BY(mutex_);  // with history_
  std::size_t history_base_ FCM_GUARDED_BY(mutex_) = 0;  // index of front

  // Declared after shards_ so the queue-depth callback gauges unregister
  // (handle destructors) before the queues they sample are destroyed.
  std::unique_ptr<Instruments> instruments_;

  // Threads last: their loops touch everything above.
  std::jthread coordinator_;
};

}  // namespace fcm::runtime
