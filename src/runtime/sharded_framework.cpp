#include "runtime/sharded_framework.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/affinity.h"
#include "common/block_queue.h"
#include "common/contracts.h"
#include "common/hash.h"

namespace fcm::runtime {

namespace {

// Block payload tags (BlockQueue header `kind`, DESIGN.md §13). The queue is
// kind-agnostic; the runtime's producer/worker pair agrees on these.
enum BlockKind : std::uint32_t {
  // `count` FlowKeys, each one packet — fed to process_batch in place.
  kUnitKeys = 0,
  // Byte-count mode: count/2 (key, byte-count) pairs interleaved in the
  // payload (byte counts are data-dependent, so the +1-only batch kernel
  // does not apply; pairs keep one ring for both modes).
  kPairs = 1,
  // One flow key in slot 0 carrying `aux` packets/bytes (a heavy-flow-cache
  // demotion). aux is the full u64 weight — no u32 chunking on the ring.
  kWeighted = 2,
  // In-band epoch marker (driver rings only; count == 0).
  kMarker = 3,
};

// Flow -> shard hash seed (any fixed constant; independent of the sketch
// hash family, which is seeded per tree from FcmConfig).
constexpr std::uint32_t kShardHashSeed = 0x51a8d5;

// Progressive backoff for spin loops (producer backpressure, idle workers,
// blocked marker pushes). Yield first; park briefly once clearly idle so a
// single-core host still makes progress.
void backoff(unsigned& spins) {
  ++spins;
  if (spins < 64) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace

// Registry series the runtime writes (DESIGN.md §8). Handles are resolved
// once at construction; every hot-path touch is a relaxed atomic on a
// cache-line-private cell, batched per BLOCK, never per packet. Queue-depth
// gauges are pull-style callbacks (sampled at scrape from
// BlockQueue::size_approx_blocks, itself acquire-ordered), so idle periods
// cost nothing.
struct ShardedFcmFramework::Instruments {
  obs::Counter* backpressure_spins = nullptr;   // producer spins on full rings
  obs::Counter* blocks_published = nullptr;     // block publications (all kinds)
  obs::Counter* partial_flushes = nullptr;      // blocks published < flush_batch
  obs::Counter* cache_hits = nullptr;           // heavy-flow cache, driver side
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_evictions = nullptr;
  obs::Counter* rotations = nullptr;            // rotate_async() calls
  obs::Counter* epochs_merged = nullptr;        // epochs published
  obs::Counter* overflow_promotions = nullptr;  // FCM overflow trips (merged)
  obs::Counter* cardinality_saturations = nullptr;
  obs::Histogram* flush_latency_seconds = nullptr;  // block open -> publish
  obs::Histogram* merge_seconds = nullptr;          // coordinator merge time
  obs::Histogram* rotation_wait_seconds = nullptr;  // driver stall per rotate
  obs::Gauge* epoch_packets = nullptr;          // last epoch's packet count
  obs::Gauge* fanout_imbalance = nullptr;       // last epoch max/mean ratio
  std::vector<obs::Counter*> shard_packets;     // one series per shard
  std::vector<obs::Counter*> shard_bytes;       // one series per shard (kBytes)
  std::vector<obs::MetricsRegistry::CallbackHandle> queue_depth_gauges;
};

struct ShardedFcmFramework::Shard {
  Shard(std::size_t shard_index,
        const framework::FcmFramework::Options& replica_options,
        std::size_t block_count, std::size_t block_size,
        std::size_t producer_count)
      : index(shard_index) {
    replicas.reserve(2);
    replicas.emplace_back(replica_options);
    replicas.emplace_back(replica_options);
    rings.reserve(producer_count);
    for (std::size_t p = 0; p < producer_count; ++p) {
      rings.push_back(std::make_unique<common::BlockQueue<flow::FlowKey>>(
          block_count, block_size));
    }
  }

  const std::size_t index;  // shard number (stripe + label value)
  // One strictly-SPSC block ring per producer; rings[0] is the driver's and
  // the only one that carries epoch markers.
  std::vector<std::unique_ptr<common::BlockQueue<flow::FlowKey>>> rings;
  // Double-buffered generations: `active` is worker-local; the coordinator
  // only touches replicas[g] after every worker has flipped away from g
  // (ordered through mutex_-guarded flip counters).
  std::vector<framework::FcmFramework> replicas;
  std::size_t active = 0;                    // worker thread only
  std::uint64_t packets_in_generation[2] = {0, 0};  // worker writes, see above
  std::uint64_t bytes_in_generation[2] = {0, 0};    // kBytes mode, same rules
  // (The flip counter lives in ShardedFcmFramework::shard_flips_, guarded by
  // its mutex_, so the analysis can name the guarding capability.)

  // Started last so every field above is constructed first; jthread joins on
  // destruction, keeping teardown exception-safe.
  std::jthread worker;
};

ShardedFcmFramework::ShardedFcmFramework(Options options)
    : options_(std::move(options)), shard_hash_(kShardHashSeed) {
  // The constructing thread owns the driver role until the instance is handed
  // to the (single) ingest thread; needed so cache_ setup below type-checks.
  driver_role_.assert_held();
  FCM_REQUIRE(options_.shard_count >= 1,
              "ShardedFcmFramework: shard_count must be >= 1");
  FCM_REQUIRE(options_.shard_count <= 256,
              "ShardedFcmFramework: shard_count implausibly large (> 256)");
  FCM_REQUIRE(options_.queue_capacity >= 2 &&
                  (options_.queue_capacity & (options_.queue_capacity - 1)) == 0,
              "ShardedFcmFramework: queue_capacity must be a power of two >= 2");
  FCM_REQUIRE(options_.flush_batch >= 1 &&
                  options_.flush_batch <= options_.queue_capacity,
              "ShardedFcmFramework: flush_batch must be in [1, queue_capacity]");
  FCM_REQUIRE(options_.producer_count >= 1 && options_.producer_count <= 64,
              "ShardedFcmFramework: producer_count must be in [1, 64]");
  FCM_REQUIRE(options_.flush_interval.count() >= 0,
              "ShardedFcmFramework: flush_interval must be >= 0");
  FCM_REQUIRE(options_.retained_epochs >= 1,
              "ShardedFcmFramework: must retain at least one epoch");
  byte_mode_ = options_.framework.count_mode ==
               framework::FcmFramework::CountMode::kBytes;
  FCM_REQUIRE(!byte_mode_ || options_.flush_batch >= 2,
              "ShardedFcmFramework: byte-count mode stages (key, bytes) pairs "
              "and needs flush_batch >= 2");
  track_block_time_ = options_.flush_interval.count() > 0;
  if (options_.heavy_change_threshold == 0) {
    options_.heavy_change_threshold = options_.framework.heavy_hitter_threshold;
  }
  // Options::metrics is authoritative for the whole runtime: propagate it
  // into the replica/merged framework options so analyze_on_rotate's EM run
  // writes to the configured registry — and to NOTHING when metrics ==
  // nullptr (the advertised fully-uninstrumented mode).
  options_.framework.metrics = options_.metrics;

  // Shard replicas record heavy-hitter candidates at ceil(T / N): a flow
  // with true global count >= T has >= ceil(T/N) packets in some shard, and
  // FCM never underestimates, so the candidate union cannot miss it. The
  // coordinator re-qualifies at T after the merge.
  framework::FcmFramework::Options replica_options = options_.framework;
  const std::uint64_t global_t = options_.framework.heavy_hitter_threshold;
  if (global_t > 0) {
    per_shard_hh_threshold_ =
        (global_t + options_.shard_count - 1) / options_.shard_count;
    replica_options.heavy_hitter_threshold = per_shard_hh_threshold_;
  }

  // queue_capacity is specified in items for continuity with the item-ring
  // era; the block ring holds capacity/flush_batch whole blocks (>= 1 by the
  // flush_batch <= queue_capacity contract above).
  const std::size_t block_count = options_.queue_capacity / options_.flush_batch;

  shards_.reserve(options_.shard_count);
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(s, replica_options, block_count,
                                              options_.flush_batch,
                                              options_.producer_count));
  }
  handles_.reserve(options_.producer_count);
  for (std::size_t p = 0; p < options_.producer_count; ++p) {
    handles_.push_back(
        std::unique_ptr<IngestHandle>(new IngestHandle(*this, p)));
  }
  if (options_.cache_entries > 0) {
    datapath::HeavyFlowCache::Options cache_options;
    cache_options.entries = options_.cache_entries;
    cache_options.ways = options_.cache_ways;
    cache_options.seed = options_.cache_seed;
    cache_ = std::make_unique<datapath::HeavyFlowCache>(cache_options);
  }
  {
    // No thread can contend yet, but shard_flips_ is guarded state; the
    // uncontended lock keeps the analysis sound (and is free).
    common::MutexLock lock(mutex_);
    shard_flips_.assign(options_.shard_count, 0);
  }
  init_instruments();
  // Start threads only after every shard (and the instruments the worker
  // loops read) exists.
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->worker = std::jthread([this, raw] { worker_loop(*raw); });
  }
  coordinator_ = std::jthread([this] { coordinator_loop(); });
}

void ShardedFcmFramework::init_instruments() {
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr) return;
  auto base_labels = [&]() -> std::vector<obs::MetricLabel> {
    if (options_.metrics_instance.empty()) return {};
    return {{"instance", options_.metrics_instance}};
  };
  auto shard_labels = [&](std::size_t s) {
    std::vector<obs::MetricLabel> labels = base_labels();
    labels.push_back({"shard", std::to_string(s)});
    return labels;
  };

  auto instruments = std::make_unique<Instruments>();
  instruments->backpressure_spins = &registry->counter(
      "fcm_runtime_backpressure_spins_total", base_labels(),
      "Producer spin iterations while a shard ring was full");
  instruments->blocks_published = &registry->counter(
      "fcm_runtime_blocks_published_total", base_labels(),
      "Staged blocks published to shard rings (all producers, all kinds)");
  instruments->partial_flushes = &registry->counter(
      "fcm_runtime_partial_flushes_total", base_labels(),
      "Blocks published before reaching flush_batch keys (deadline flush, "
      "rotation, weighted hand-off)");
  if (options_.cache_entries > 0) {
    instruments->cache_hits = &registry->counter(
        "fcm_datapath_cache_hits_total", base_labels(),
        "Packets absorbed exactly by the driver-side heavy-flow cache");
    instruments->cache_misses = &registry->counter(
        "fcm_datapath_cache_misses_total", base_labels(),
        "Packets that installed or displaced a heavy-flow cache entry");
    instruments->cache_evictions = &registry->counter(
        "fcm_datapath_cache_evictions_total", base_labels(),
        "Flows demoted from the heavy-flow cache into their shard");
  }
  instruments->rotations = &registry->counter(
      "fcm_runtime_rotations_total", base_labels(),
      "Epoch rotations requested (rotate_async calls)");
  instruments->epochs_merged = &registry->counter(
      "fcm_runtime_epochs_merged_total", base_labels(),
      "Epochs fully merged and published by the coordinator");
  instruments->overflow_promotions = &registry->counter(
      "fcm_sketch_overflow_promotions_total", base_labels(),
      "FCM tree nodes tripped into overflow (promotion to parent stage)");
  instruments->cardinality_saturations = &registry->counter(
      "fcm_sketch_cardinality_saturations_total", base_labels(),
      "Linear-counting cardinality estimates that hit the full-table guard");
  instruments->flush_latency_seconds = &registry->histogram(
      "fcm_runtime_flush_latency_seconds", obs::Histogram::latency_bounds(),
      base_labels(), "Block residency from open to publish");
  instruments->merge_seconds = &registry->histogram(
      "fcm_runtime_merge_seconds", obs::Histogram::latency_bounds(),
      base_labels(), "Coordinator N-way merge + requalify wall time");
  instruments->rotation_wait_seconds = &registry->histogram(
      "fcm_runtime_rotation_wait_seconds", obs::Histogram::latency_bounds(),
      base_labels(),
      "Driver stall in rotate_async waiting for the previous epoch's merge");
  instruments->epoch_packets = &registry->gauge(
      "fcm_runtime_epoch_packets", base_labels(),
      "Packets absorbed by the most recently merged epoch");
  instruments->fanout_imbalance = &registry->gauge(
      "fcm_runtime_fanout_imbalance", base_labels(),
      "Max-shard over mean-shard packets in the last epoch (1.0 = balanced)");
  instruments->shard_packets.reserve(shards_.size());
  instruments->shard_bytes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    instruments->shard_packets.push_back(&registry->counter(
        "fcm_runtime_shard_packets_total", shard_labels(shard->index),
        "Packets ingested per shard worker"));
    instruments->shard_bytes.push_back(&registry->counter(
        "fcm_runtime_shard_bytes_total", shard_labels(shard->index),
        "Payload bytes ingested per shard worker (kBytes mode; tallied in "
        "the block-apply sweep, batched per block)"));
  }
  // Pull-style occupancy gauges. Two live instances sharing one registry
  // without distinct metrics_instance labels would collide here; the later
  // instance simply runs without queue-depth gauges.
  try {
    for (const auto& shard : shards_) {
      Shard* raw = shard.get();
      instruments->queue_depth_gauges.push_back(registry->gauge_callback(
          "fcm_runtime_queue_depth", shard_labels(raw->index),
          [raw, this] {
            std::size_t blocks = 0;
            for (const auto& ring : raw->rings) {
              blocks += ring->size_approx_blocks();
            }
            return static_cast<double>(blocks * options_.flush_batch);
          },
          "Ring occupancy in staged items, summed over producers (sampled at "
          "scrape)"));
      instruments->queue_depth_gauges.push_back(registry->gauge_callback(
          "fcm_runtime_queue_high_water_blocks", shard_labels(raw->index),
          [raw] {
            std::size_t high = 0;
            for (const auto& ring : raw->rings) {
              high = std::max(high, ring->high_water_blocks());
            }
            return static_cast<double>(high);
          },
          "Peak ring occupancy in blocks (max across producers)"));
    }
  } catch (const std::logic_error&) {
    instruments->queue_depth_gauges.clear();
  }
  instruments_ = std::move(instruments);
}

ShardedFcmFramework::~ShardedFcmFramework() { stop(); }

// --- ingest handles (block staging) ------------------------------------------

ShardedFcmFramework::IngestHandle::IngestHandle(ShardedFcmFramework& owner,
                                                std::size_t producer)
    : owner_(owner), producer_(producer) {
  role_.assert_held();  // constructing thread; real owner asserts per call
  open_.resize(owner_.shards_.size());
}

ShardedFcmFramework::IngestHandle& ShardedFcmFramework::ingest_handle(
    std::size_t producer) {
  FCM_REQUIRE(producer >= 1 && producer < handles_.size(),
              "ShardedFcmFramework: secondary producer index out of range "
              "(handle 0 is the driver's own; see Options::producer_count)");
  return *handles_[producer];
}

void ShardedFcmFramework::IngestHandle::open_block(std::size_t shard) {
  auto& ring = *owner_.shards_[shard]->rings[producer_];
  ring.assume_producer();  // this handle's thread IS the ring's producer
  OpenBlock& open = open_[shard];
  flow::FlowKey* slots = ring.try_open();
  if (slots == nullptr) [[unlikely]] {
    unsigned spins = 0;
    do {
      backoff(spins);  // ring full: backpressure
      slots = ring.try_open();
    } while (slots == nullptr);
    if (owner_.instruments_ != nullptr) {
      owner_.instruments_->backpressure_spins->inc_at(shard, spins);
    }
  }
  open.slots = slots;
  open.fill = 0;
  if (owner_.track_block_time_) open.opened = std::chrono::steady_clock::now();
}

void ShardedFcmFramework::IngestHandle::publish_block(std::size_t shard,
                                                      std::uint32_t kind,
                                                      std::uint64_t aux) {
  OpenBlock& open = open_[shard];
  auto& ring = *owner_.shards_[shard]->rings[producer_];
  ring.assume_producer();
  ring.publish(open.fill, kind, aux);
  if (owner_.instruments_ != nullptr) {
    Instruments& ins = *owner_.instruments_;
    ins.blocks_published->inc_at(shard);
    if (open.fill < owner_.options_.flush_batch) {
      ins.partial_flushes->inc_at(shard);
    }
    if (ins.flush_latency_seconds != nullptr && owner_.track_block_time_) {
      ins.flush_latency_seconds->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        open.opened)
              .count());
    }
  }
  open.slots = nullptr;
  open.fill = 0;
}

void ShardedFcmFramework::IngestHandle::stage_unit(std::size_t shard,
                                                   flow::FlowKey key) {
  OpenBlock& open = open_[shard];
  if (open.slots == nullptr) [[unlikely]] open_block(shard);
  open.slots[open.fill++] = key;
  if (open.fill == owner_.options_.flush_batch) {
    publish_block(shard, kUnitKeys, 0);
  }
}

void ShardedFcmFramework::IngestHandle::stage_pair(std::size_t shard,
                                                   flow::FlowKey key,
                                                   std::uint32_t bytes) {
  OpenBlock& open = open_[shard];
  // flush_batch may be odd: a pair never splits across blocks, so publish a
  // fill_batch-1 partial first when only one slot is left.
  if (open.slots != nullptr &&
      open.fill + 2 > owner_.options_.flush_batch) [[unlikely]] {
    publish_block(shard, kPairs, 0);
  }
  if (open.slots == nullptr) [[unlikely]] open_block(shard);
  open.slots[open.fill] = key;
  open.slots[open.fill + 1] = std::bit_cast<flow::FlowKey>(bytes);
  open.fill += 2;
  if (open.fill + 2 > owner_.options_.flush_batch) {
    publish_block(shard, kPairs, 0);
  }
}

void ShardedFcmFramework::IngestHandle::stage_weighted(std::size_t shard,
                                                       flow::FlowKey key,
                                                       std::uint64_t weight) {
  // Keep per-shard arrival order: close out any staged traffic first, then
  // publish the weight as a single-key block with the full u64 in aux.
  OpenBlock& open = open_[shard];
  if (open.slots != nullptr && open.fill > 0) {
    publish_block(shard, owner_.byte_mode_ ? kPairs : kUnitKeys, 0);
  }
  if (open.slots == nullptr) open_block(shard);
  open.slots[0] = key;
  open.fill = 1;
  publish_block(shard, kWeighted, weight);
}

std::size_t ShardedFcmFramework::IngestHandle::route_shard(flow::FlowKey key) {
  const std::size_t shard_count = owner_.shards_.size();
  if (shard_count == 1) return 0;
  if (owner_.options_.fanout == Fanout::kHashByKey) {
    return owner_.shard_hash_.index(key, shard_count);
  }
  const std::size_t shard = rr_next_;
  rr_next_ = rr_next_ + 1 == shard_count ? 0 : rr_next_ + 1;
  return shard;
}

void ShardedFcmFramework::IngestHandle::ingest_keys(
    std::span<const flow::FlowKey> keys) {
  const std::size_t shard_count = owner_.shards_.size();
  const std::size_t block = owner_.options_.flush_batch;
  if (shard_count == 1) {
    // Single shard: no routing hash at all — memcpy runs straight into the
    // in-ring block. This is the path the 1-shard-vs-serial floor measures.
    std::span<const flow::FlowKey> rest = keys;
    OpenBlock& open = open_[0];
    while (!rest.empty()) {
      if (open.slots == nullptr) open_block(0);
      const std::size_t room = block - open.fill;
      const std::size_t n = std::min(room, rest.size());
      std::memcpy(open.slots + open.fill, rest.data(),
                  n * sizeof(flow::FlowKey));
      open.fill += common::checked_narrow<std::uint32_t>(n);
      rest = rest.subspan(n);
      if (open.fill == block) publish_block(0, kUnitKeys, 0);
    }
  } else if (owner_.options_.fanout == Fanout::kHashByKey) {
    // Bulk shard hashing: one vectorizable index_batch per kBatchBlock chunk
    // (bit-identical to the per-item route_shard above), then scatter into
    // the per-shard open blocks.
    std::uint32_t shard_index[common::kBatchBlock];
    std::span<const flow::FlowKey> rest = keys;
    while (!rest.empty()) {
      const std::size_t n = std::min(rest.size(), common::kBatchBlock);
      const std::span<const flow::FlowKey> chunk = rest.first(n);
      owner_.shard_hash_.index_batch(
          chunk, shard_count, std::span<std::uint32_t>(shard_index, n));
      for (std::size_t i = 0; i < n; ++i) {
        stage_unit(shard_index[i], chunk[i]);
      }
      rest = rest.subspan(n);
    }
  } else {
    for (const flow::FlowKey key : keys) stage_unit(route_shard(key), key);
  }
  maybe_deadline_flush();
}

void ShardedFcmFramework::IngestHandle::ingest_packets(
    std::span<const flow::Packet> packets) {
  if (owner_.byte_mode_) {
    for (const flow::Packet& packet : packets) {
      // count == 0 is reserved (a marker-like empty pair makes no sense).
      FCM_REQUIRE(packet.bytes > 0,
                  "ShardedFcmFramework: zero-byte packet in byte-count mode");
      stage_pair(route_shard(packet.key), packet.key, packet.bytes);
    }
  } else {
    for (const flow::Packet& packet : packets) {
      stage_unit(route_shard(packet.key), packet.key);
    }
  }
  maybe_deadline_flush();
}

void ShardedFcmFramework::IngestHandle::maybe_deadline_flush() {
  if (owner_.options_.flush_interval.count() == 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < open_.size(); ++s) {
    OpenBlock& open = open_[s];
    if (open.slots != nullptr && open.fill > 0 &&
        now - open.opened >= owner_.options_.flush_interval) {
      publish_block(s, owner_.byte_mode_ ? kPairs : kUnitKeys, 0);
    }
  }
}

void ShardedFcmFramework::IngestHandle::flush() {
  role_.assert_held();
  for (std::size_t s = 0; s < open_.size(); ++s) {
    OpenBlock& open = open_[s];
    if (open.slots == nullptr) continue;
    if (open.fill > 0) {
      publish_block(s, owner_.byte_mode_ ? kPairs : kUnitKeys, 0);
    } else {
      // Reserved but never filled: hand the slot back without publishing.
      auto& ring = *owner_.shards_[s]->rings[producer_];
      ring.assume_producer();
      ring.abandon();
      open.slots = nullptr;
    }
  }
}

void ShardedFcmFramework::IngestHandle::ingest(flow::FlowKey key) {
  role_.assert_held();
  FCM_ASSERT(!owner_.stop_.load(std::memory_order_acquire),
             "ShardedFcmFramework: handle ingest after stop()");
  stage_unit(route_shard(key), key);
  maybe_deadline_flush();
}

void ShardedFcmFramework::IngestHandle::ingest(const flow::Packet& packet) {
  role_.assert_held();
  FCM_ASSERT(!owner_.stop_.load(std::memory_order_acquire),
             "ShardedFcmFramework: handle ingest after stop()");
  ingest_packets(std::span<const flow::Packet>(&packet, 1));
}

void ShardedFcmFramework::IngestHandle::ingest(
    std::span<const flow::FlowKey> keys) {
  role_.assert_held();
  FCM_ASSERT(!owner_.stop_.load(std::memory_order_acquire),
             "ShardedFcmFramework: handle ingest after stop()");
  ingest_keys(keys);
}

void ShardedFcmFramework::IngestHandle::ingest(
    std::span<const flow::Packet> packets) {
  role_.assert_held();
  FCM_ASSERT(!owner_.stop_.load(std::memory_order_acquire),
             "ShardedFcmFramework: handle ingest after stop()");
  ingest_packets(packets);
}

// --- data plane (driver thread) --------------------------------------------

void ShardedFcmFramework::route_item(flow::FlowKey key, std::uint32_t count) {
  IngestHandle& handle = *handles_[0];
  handle.role_.assert_held();  // the driver thread IS producer 0
  if (byte_mode_) {
    handle.stage_pair(handle.route_shard(key), key, count);
  } else if (count == 1) {
    handle.stage_unit(handle.route_shard(key), key);
  } else {
    handle.stage_weighted(handle.route_shard(key), key, count);
  }
}

void ShardedFcmFramework::offer_cached(flow::FlowKey key, std::uint32_t count) {
  const datapath::HeavyFlowCache::Result result = cache_->offer(key, count);
  switch (result.outcome) {
    case datapath::HeavyFlowCache::Result::Outcome::kHit:
    case datapath::HeavyFlowCache::Result::Outcome::kInserted:
      return;  // absorbed at the driver; nothing crosses a ring
    case datapath::HeavyFlowCache::Result::Outcome::kEvicted: {
      IngestHandle& handle = *handles_[0];
      handle.role_.assert_held();
      handle.stage_weighted(handle.route_shard(result.evicted_key),
                            result.evicted_key, result.evicted_count);
      return;
    }
    case datapath::HeavyFlowCache::Result::Outcome::kBypass:
      route_item(key, count);  // flow 0: the cache's empty-slot sentinel
      return;
  }
}

void ShardedFcmFramework::drain_cache() {
  if (cache_ == nullptr) return;
  // Counters first: clear() resets the cache's cumulative ledger, so the
  // published baselines reset with it below.
  publish_cache_metrics();
  // Collect, then route from THIS scope (not a lambda) so the thread-safety
  // analysis sees the driver capability at every staging call site.
  std::vector<std::pair<flow::FlowKey, std::uint64_t>> resident;
  resident.reserve(cache_->resident_flows());
  cache_->for_each([&resident](flow::FlowKey key, std::uint64_t count) {
    resident.emplace_back(key, count);
  });
  cache_->clear();
  cache_published_hits_ = cache_published_misses_ = cache_published_evictions_ = 0;
  IngestHandle& handle = *handles_[0];
  handle.role_.assert_held();
  for (const auto& [key, count] : resident) {
    handle.stage_weighted(handle.route_shard(key), key, count);
  }
}

void ShardedFcmFramework::publish_cache_metrics() {
  if (cache_ == nullptr || instruments_ == nullptr) return;
  instruments_->cache_hits->inc(cache_->hits() - cache_published_hits_);
  instruments_->cache_misses->inc(cache_->misses() - cache_published_misses_);
  instruments_->cache_evictions->inc(cache_->evictions() -
                                     cache_published_evictions_);
  cache_published_hits_ = cache_->hits();
  cache_published_misses_ = cache_->misses();
  cache_published_evictions_ = cache_->evictions();
}

void ShardedFcmFramework::ingest(flow::FlowKey key) {
  driver_role_.assert_held();
  FCM_ASSERT(!stopped_, "ShardedFcmFramework: ingest after stop()");
  IngestHandle& handle = *handles_[0];
  handle.role_.assert_held();
  if (cache_ != nullptr) {
    offer_cached(key, 1);
  } else {
    handle.stage_unit(handle.route_shard(key), key);
  }
  handle.maybe_deadline_flush();
}

void ShardedFcmFramework::ingest(const flow::Packet& packet) {
  driver_role_.assert_held();
  FCM_ASSERT(!stopped_, "ShardedFcmFramework: ingest after stop()");
  std::uint32_t count = 1;
  if (byte_mode_) {
    // count == 0 is reserved.
    FCM_REQUIRE(packet.bytes > 0,
                "ShardedFcmFramework: zero-byte packet in byte-count mode");
    count = packet.bytes;
  }
  IngestHandle& handle = *handles_[0];
  handle.role_.assert_held();
  if (cache_ != nullptr) {
    offer_cached(packet.key, count);
  } else {
    route_item(packet.key, count);
  }
  handle.maybe_deadline_flush();
}

void ShardedFcmFramework::ingest(std::span<const flow::Packet> packets) {
  driver_role_.assert_held();
  FCM_ASSERT(!stopped_, "ShardedFcmFramework: ingest after stop()");
  IngestHandle& handle = *handles_[0];
  handle.role_.assert_held();
  if (cache_ == nullptr) {
    handle.ingest_packets(packets);
    return;
  }
  if (byte_mode_) {
    for (const flow::Packet& packet : packets) {
      FCM_REQUIRE(packet.bytes > 0,
                  "ShardedFcmFramework: zero-byte packet in byte-count mode");
      offer_cached(packet.key, packet.bytes);
    }
  } else {
    for (const flow::Packet& packet : packets) offer_cached(packet.key, 1);
  }
  handle.maybe_deadline_flush();
}

void ShardedFcmFramework::ingest(std::span<const flow::FlowKey> keys) {
  driver_role_.assert_held();
  FCM_ASSERT(!stopped_, "ShardedFcmFramework: ingest after stop()");
  IngestHandle& handle = *handles_[0];
  handle.role_.assert_held();
  if (cache_ == nullptr) {
    handle.ingest_keys(keys);
    return;
  }
  for (const flow::FlowKey key : keys) offer_cached(key, 1);
  handle.maybe_deadline_flush();
}

// --- epoch rotation ---------------------------------------------------------

std::size_t ShardedFcmFramework::rotate_async() {
  driver_role_.assert_held();
  FCM_REQUIRE(!stopped_, "ShardedFcmFramework: rotate after stop()");
  // At most one rotation in flight: the generation we are about to expose to
  // the workers must be fully merged and cleared first. The stall (zero in
  // steady state, positive when merging cannot keep up with rotation
  // frequency) is exported as fcm_runtime_rotation_wait_seconds.
  {
    const obs::ScopedTimer wait_timer(
        instruments_ ? instruments_->rotation_wait_seconds : nullptr);
    common::MutexLock lock(mutex_);
    while (epochs_merged_ != rotations_requested_) cv_.wait(lock);
  }
  if (instruments_ != nullptr) instruments_->rotations->inc();
  // Cache contents belong to the epoch being closed: demote every resident
  // flow into its shard BEFORE the markers, so the merged epoch conserves
  // totals exactly (each flow's units reach the sketch ahead of the flip).
  drain_cache();
  // Publish the driver's partial blocks; secondary handles must already be
  // flushed and quiescent (ownership rules in the class comment) — the
  // workers drain their rings to empty when they pop the marker below.
  IngestHandle& handle = *handles_[0];
  handle.role_.assert_held();
  handle.flush();
  for (auto& shard : shards_) {
    auto& ring = *shard->rings[0];
    ring.assume_producer();
    flow::FlowKey* slots = ring.try_open();
    unsigned spins = 0;
    while (slots == nullptr) {
      backoff(spins);
      slots = ring.try_open();
    }
    ring.publish(0, kMarker, 0);
  }
  std::size_t epoch;
  {
    common::MutexLock lock(mutex_);
    epoch = rotations_requested_++;
  }
  cv_.notify_all();
  return epoch;
}

ShardedFcmFramework::EpochReport ShardedFcmFramework::rotate() {
  return wait_epoch(rotate_async());
}

ShardedFcmFramework::EpochReport ShardedFcmFramework::wait_epoch(
    std::size_t index) {
  common::MutexLock lock(mutex_);
  while (epochs_merged_ <= index) cv_.wait(lock);
  FCM_REQUIRE(index >= history_base_,
              "ShardedFcmFramework: epoch " + std::to_string(index) +
                  " no longer retained");
  return reports_[index - history_base_];
}

// --- worker -----------------------------------------------------------------

void ShardedFcmFramework::worker_loop(Shard& shard) {
  if (options_.pin_workers) {
    // Best-effort: false (no affinity API / restricted cpuset) runs unpinned.
    common::pin_current_thread(shard.index);
  }
  // Applies one published block to the active generation. Unit-key blocks
  // feed the batched kernel IN PLACE from ring memory — the span is only
  // valid until release(), which every caller performs right after.
  std::uint64_t data_items = 0;
  std::uint64_t data_bytes = 0;
  const auto apply_block =
      [&](const common::BlockQueue<flow::FlowKey>::View& view) {
        switch (view.kind) {
          case kUnitKeys:
            shard.replicas[shard.active].process_batch(
                std::span<const flow::FlowKey>(view.data, view.count));
            shard.packets_in_generation[shard.active] += view.count;
            data_items += view.count;
            break;
          case kPairs: {
            // Byte accounting folds into the same decode loop that feeds the
            // replica — no second sweep over the block (DESIGN.md §14).
            std::uint64_t block_bytes = 0;
            for (std::uint32_t i = 0; i + 1 < view.count; i += 2) {
              const auto bytes = std::bit_cast<std::uint32_t>(view.data[i + 1]);
              shard.replicas[shard.active].process(
                  flow::Packet{view.data[i], bytes, 0});
              block_bytes += bytes;
            }
            shard.packets_in_generation[shard.active] += view.count / 2;
            shard.bytes_in_generation[shard.active] += block_bytes;
            data_items += view.count / 2;
            data_bytes += block_bytes;
            break;
          }
          case kWeighted: {
            shard.replicas[shard.active].process_weighted(view.data[0],
                                                          view.aux);
            // In byte mode a demotion is one ring item (see Options docs);
            // in packet mode it carries `aux` packets.
            const std::uint64_t units = byte_mode_ ? 1 : view.aux;
            shard.packets_in_generation[shard.active] += units;
            data_items += units;
            if (byte_mode_) {
              shard.bytes_in_generation[shard.active] += view.aux;
              data_bytes += view.aux;
            }
            break;
          }
          default:
            FCM_ASSERT(false, "ShardedFcmFramework: unknown block kind");
        }
      };
  const auto publish_data_items = [&] {
    if (data_items > 0 && instruments_ != nullptr) {
      // Per-block, not per-packet: one relaxed fetch_add on this worker's
      // own cache-line-aligned cell covers a whole block run.
      instruments_->shard_packets[shard.index]->inc_at(shard.index, data_items);
      if (data_bytes > 0) {
        instruments_->shard_bytes[shard.index]->inc_at(shard.index, data_bytes);
      }
    }
    data_items = 0;
    data_bytes = 0;
  };
  // Drains one secondary ring to empty; returns true if anything was popped.
  const auto drain_ring = [&](common::BlockQueue<flow::FlowKey>& ring) {
    ring.assume_consumer();
    common::BlockQueue<flow::FlowKey>::View view;
    bool popped = false;
    while (ring.try_front(view)) {
      apply_block(view);
      ring.release();
      popped = true;
    }
    return popped;
  };

  auto& driver_ring = *shard.rings[0];
  driver_ring.assume_consumer();  // this worker IS each ring's single consumer
  unsigned spins = 0;
  for (;;) {
    bool any = false;
    common::BlockQueue<flow::FlowKey>::View view;
    // The driver ring carries data AND epoch markers.
    while (driver_ring.try_front(view)) {
      any = true;
      if (view.kind == kMarker) {
        // Epoch boundary. Secondary producers are quiesced across rotation
        // (ownership rules), so draining their rings to empty hands the
        // closing generation exactly its traffic. Then flip and publish the
        // flip: the mutex makes every replica write above happen-before the
        // coordinator's reads once it observes the new flip count.
        for (std::size_t p = 1; p < shard.rings.size(); ++p) {
          drain_ring(*shard.rings[p]);
        }
        publish_data_items();
        {
          common::MutexLock lock(mutex_);
          shard.active ^= 1;
          ++shard_flips_[shard.index];
        }
        cv_.notify_all();
      } else {
        apply_block(view);
      }
      driver_ring.release();
    }
    for (std::size_t p = 1; p < shard.rings.size(); ++p) {
      any |= drain_ring(*shard.rings[p]);
    }
    publish_data_items();
    if (!any) {
      // Check AFTER a failed drain so rings filled before stop() empty out.
      if (stop_.load(std::memory_order_acquire)) return;
      backoff(spins);
    } else {
      spins = 0;
    }
  }
}

// --- coordinator ------------------------------------------------------------

void ShardedFcmFramework::coordinator_loop() {
  for (;;) {
    std::size_t epoch;
    {
      // Explicit while-loops (not wait-with-predicate): the guarded reads
      // stay in THIS function's scope, where the analysis can see the lock.
      common::MutexLock lock(mutex_);
      while (!coordinator_stop_ && rotations_requested_ == epochs_merged_) {
        cv_.wait(lock);
      }
      if (coordinator_stop_ && rotations_requested_ == epochs_merged_) return;
      epoch = epochs_merged_;
      // Wait until every worker has flipped past this epoch's marker; the
      // drained generation is then exclusively ours (the workers write the
      // other one until the NEXT marker, which rotate_async() refuses to
      // push before we finish).
      while (!std::all_of(shard_flips_.begin(), shard_flips_.end(),
                          [epoch](std::size_t flips) { return flips > epoch; })) {
        cv_.wait(lock);
      }
    }
    // Drained generation index: workers start on 0 and flip once per epoch.
    const std::size_t gen = epoch % 2;

    // Merge off the ingest path. Shard replicas share identical options
    // (including the per-shard threshold), so FcmFramework::merge applies;
    // re-qualify the heavy-hitter union at the global threshold afterwards.
    const auto merge_start = std::chrono::steady_clock::now();
    framework::FcmFramework merged = shards_[0]->replicas[gen];
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      merged.merge(shards_[s]->replicas[gen]);
    }
    const std::uint64_t global_t = options_.framework.heavy_hitter_threshold;
    if (global_t > 0) merged.requalify_heavy_hitters(global_t);
    const double merge_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      merge_start)
            .count();
    FCM_CHECKED_ONLY(merged.check_invariants());

    EpochReport report;
    report.index = epoch;
    report.merge_seconds = merge_seconds;
    std::uint64_t max_shard_packets = 0;
    for (auto& shard : shards_) {
      report.packets += shard->packets_in_generation[gen];
      report.bytes += shard->bytes_in_generation[gen];
      max_shard_packets =
          std::max(max_shard_packets, shard->packets_in_generation[gen]);
      shard->packets_in_generation[gen] = 0;
      shard->bytes_in_generation[gen] = 0;
      shard->replicas[gen].reset();  // ready for the epoch after next
    }
    if (report.packets > 0) {
      const double mean = static_cast<double>(report.packets) /
                          static_cast<double>(shards_.size());
      report.fanout_imbalance = static_cast<double>(max_shard_packets) / mean;
    }
    // The merged replica's counters are per-epoch (shard replicas reset
    // above), so they are exactly this epoch's deltas.
    report.overflow_promotions = merged.overflow_promotion_count();
    report.cardinality = merged.cardinality();
    if (merged.single_pass_sweep_enabled()) {
      report.sweep_cardinality = merged.sweep_hll().estimate();
    }
    report.heavy_hitters = merged.heavy_hitters();
    if (instruments_ != nullptr) {
      instruments_->merge_seconds->observe(merge_seconds);
      instruments_->overflow_promotions->inc(report.overflow_promotions);
      instruments_->cardinality_saturations->inc(
          merged.cardinality_saturation_count());
      instruments_->epoch_packets->set(static_cast<double>(report.packets));
      instruments_->fanout_imbalance->set(report.fanout_imbalance);
    }
    if (options_.heavy_change_threshold > 0) {
      // Take the pointer under the lock, compute outside it: history_ only
      // mutates on this thread, so the back() element stays valid (and
      // unread by anyone else) after the lock drops.
      const framework::FcmFramework* previous = nullptr;
      {
        common::MutexLock lock(mutex_);
        if (!history_.empty()) previous = &history_.back();
      }
      if (previous != nullptr) {
        report.heavy_changes = framework::FcmFramework::heavy_changes(
            *previous, merged, options_.heavy_change_threshold);
      }
    }
    if (options_.analyze_on_rotate) report.analysis = merged.analyze();

    {
      common::MutexLock lock(mutex_);
      history_.push_back(std::move(merged));
      reports_.push_back(std::move(report));
      while (history_.size() > options_.retained_epochs) {
        history_.pop_front();
        reports_.pop_front();
        ++history_base_;
      }
      ++epochs_merged_;
    }
    if (instruments_ != nullptr) instruments_->epochs_merged->inc();
    cv_.notify_all();
  }
}

// --- shutdown ---------------------------------------------------------------

void ShardedFcmFramework::stop() {
  driver_role_.assert_held();
  if (stopped_) return;
  drain_cache();  // un-rotated tail: hand it to the workers like a flush
  {
    // Secondary handles must already be flushed by their owning threads
    // (ownership rules); the driver can only flush its own staging.
    IngestHandle& handle = *handles_[0];
    handle.role_.assert_held();
    handle.flush();
  }
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  {
    common::MutexLock lock(mutex_);
    // Workers have drained every ring (markers included), so all requested
    // epochs will be merged; wait for the coordinator to catch up, then
    // release it.
    while (epochs_merged_ != rotations_requested_) cv_.wait(lock);
    coordinator_stop_ = true;
  }
  cv_.notify_all();
  if (coordinator_.joinable()) coordinator_.join();
  stopped_ = true;
}

// --- results ----------------------------------------------------------------

framework::FcmFramework ShardedFcmFramework::merged_epoch(
    std::size_t back) const {
  common::MutexLock lock(mutex_);
  FCM_REQUIRE(back < history_.size(),
              "ShardedFcmFramework: no merged epoch " + std::to_string(back) +
                  " epochs back (retained: " + std::to_string(history_.size()) +
                  ")");
  return history_[history_.size() - 1 - back];
}

std::uint64_t ShardedFcmFramework::flow_size(flow::FlowKey key) const {
  common::MutexLock lock(mutex_);
  FCM_REQUIRE(!history_.empty(),
              "ShardedFcmFramework: flow_size before the first rotation");
  return history_.back().flow_size(key);
}

std::size_t ShardedFcmFramework::epochs_completed() const {
  common::MutexLock lock(mutex_);
  return epochs_merged_;
}

std::vector<double> ShardedFcmFramework::queue_high_water() const {
  std::vector<double> high_water;
  high_water.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::size_t high = 0;
    for (const auto& ring : shard->rings) {
      high = std::max(high, ring->high_water_blocks());
    }
    high_water.push_back(static_cast<double>(high) /
                         static_cast<double>(shard->rings[0]->block_count()));
  }
  return high_water;
}

void ShardedFcmFramework::check_invariants() const {
  // Documented as driver-thread-only (it reads stopped_ and, once stopped,
  // the shard replicas themselves).
  driver_role_.assert_held();
  common::MutexLock lock(mutex_);
  FCM_ASSERT(epochs_merged_ <= rotations_requested_,
             "ShardedFcmFramework: merged more epochs than were requested");
  FCM_ASSERT(history_.size() == reports_.size(),
             "ShardedFcmFramework: history/report deques diverged");
  FCM_ASSERT(history_.size() <= options_.retained_epochs,
             "ShardedFcmFramework: retained more epochs than configured");
  for (const auto& merged : history_) merged.check_invariants();
  if (cache_ != nullptr) cache_->check_invariants();
  if (stopped_) {
    for (const auto& shard : shards_) {
      for (const auto& replica : shard->replicas) replica.check_invariants();
    }
  }
}

}  // namespace fcm::runtime
