#include "runtime/sharded_framework.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/hash.h"
#include "common/spsc_queue.h"

namespace fcm::runtime {

namespace {

// Worker-side dequeue batch.
constexpr std::size_t kPopBatch = 256;

// Progressive backoff for spin loops (producer backpressure, idle workers,
// blocked marker pushes). Yield first; park briefly once clearly idle so a
// single-core host still makes progress.
void backoff(unsigned& spins) {
  ++spins;
  if (spins < 64) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace

// One ring-buffer slot. count == 0 is the in-band epoch marker; packet items
// carry count == 1 (packet mode) or the packet's byte size (byte mode, which
// ingest() guards to be positive).
struct Item {
  flow::FlowKey key{};
  std::uint32_t count = 0;
};

// Registry series the runtime writes (DESIGN.md §8). Handles are resolved
// once at construction; every hot-path touch is a relaxed atomic on a
// cache-line-private cell. Queue-depth gauges are pull-style callbacks
// (sampled at scrape from SpscQueue::size_approx, itself acquire-ordered),
// so idle periods cost nothing.
struct ShardedFcmFramework::Instruments {
  obs::Counter* backpressure_spins = nullptr;   // producer spins on full rings
  obs::Counter* cache_hits = nullptr;           // heavy-flow cache, driver side
  obs::Counter* cache_misses = nullptr;
  obs::Counter* cache_evictions = nullptr;
  obs::Counter* rotations = nullptr;            // rotate_async() calls
  obs::Counter* epochs_merged = nullptr;        // epochs published
  obs::Counter* overflow_promotions = nullptr;  // FCM overflow trips (merged)
  obs::Counter* cardinality_saturations = nullptr;
  obs::Histogram* merge_seconds = nullptr;          // coordinator merge time
  obs::Histogram* rotation_wait_seconds = nullptr;  // driver stall per rotate
  obs::Gauge* epoch_packets = nullptr;          // last epoch's packet count
  obs::Gauge* fanout_imbalance = nullptr;       // last epoch max/mean ratio
  std::vector<obs::Counter*> shard_packets;     // one series per shard
  std::vector<obs::MetricsRegistry::CallbackHandle> queue_depth_gauges;
};

struct ShardedFcmFramework::Shard {
  Shard(std::size_t shard_index,
        const framework::FcmFramework::Options& replica_options,
        std::size_t queue_capacity, std::size_t flush_batch)
      : index(shard_index), queue(queue_capacity) {
    replicas.reserve(2);
    replicas.emplace_back(replica_options);
    replicas.emplace_back(replica_options);
    staging.reserve(flush_batch);
  }

  const std::size_t index;  // shard number (stripe + label value)
  common::SpscQueue<Item> queue;
  // Double-buffered generations: `active` is worker-local; the coordinator
  // only touches replicas[g] after every worker has flipped away from g
  // (ordered through mutex_-guarded flip counters).
  std::vector<framework::FcmFramework> replicas;
  std::size_t active = 0;                    // worker thread only
  std::uint64_t packets_in_generation[2] = {0, 0};  // worker writes, see above
  // (The flip counter lives in ShardedFcmFramework::shard_flips_, guarded by
  // its mutex_, so the analysis can name the guarding capability.)

  std::vector<Item> staging;  // driver thread only

  // Started last so every field above is constructed first; jthread joins on
  // destruction, keeping teardown exception-safe.
  std::jthread worker;
};

ShardedFcmFramework::ShardedFcmFramework(Options options)
    : options_(std::move(options)) {
  // The constructing thread owns the driver role until the instance is handed
  // to the (single) ingest thread; needed so cache_ setup below type-checks.
  driver_role_.assert_held();
  FCM_REQUIRE(options_.shard_count >= 1,
              "ShardedFcmFramework: shard_count must be >= 1");
  FCM_REQUIRE(options_.shard_count <= 256,
              "ShardedFcmFramework: shard_count implausibly large (> 256)");
  FCM_REQUIRE(options_.queue_capacity >= 2 &&
                  (options_.queue_capacity & (options_.queue_capacity - 1)) == 0,
              "ShardedFcmFramework: queue_capacity must be a power of two >= 2");
  FCM_REQUIRE(options_.flush_batch >= 1 &&
                  options_.flush_batch <= options_.queue_capacity,
              "ShardedFcmFramework: flush_batch must be in [1, queue_capacity]");
  FCM_REQUIRE(options_.retained_epochs >= 1,
              "ShardedFcmFramework: must retain at least one epoch");
  if (options_.heavy_change_threshold == 0) {
    options_.heavy_change_threshold = options_.framework.heavy_hitter_threshold;
  }
  // Options::metrics is authoritative for the whole runtime: propagate it
  // into the replica/merged framework options so analyze_on_rotate's EM run
  // writes to the configured registry — and to NOTHING when metrics ==
  // nullptr (the advertised fully-uninstrumented mode).
  options_.framework.metrics = options_.metrics;

  // Shard replicas record heavy-hitter candidates at ceil(T / N): a flow
  // with true global count >= T has >= ceil(T/N) packets in some shard, and
  // FCM never underestimates, so the candidate union cannot miss it. The
  // coordinator re-qualifies at T after the merge.
  framework::FcmFramework::Options replica_options = options_.framework;
  const std::uint64_t global_t = options_.framework.heavy_hitter_threshold;
  if (global_t > 0) {
    per_shard_hh_threshold_ =
        (global_t + options_.shard_count - 1) / options_.shard_count;
    replica_options.heavy_hitter_threshold = per_shard_hh_threshold_;
  }

  shards_.reserve(options_.shard_count);
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        s, replica_options, options_.queue_capacity, options_.flush_batch));
  }
  if (options_.cache_entries > 0) {
    datapath::HeavyFlowCache::Options cache_options;
    cache_options.entries = options_.cache_entries;
    cache_options.ways = options_.cache_ways;
    cache_options.seed = options_.cache_seed;
    cache_ = std::make_unique<datapath::HeavyFlowCache>(cache_options);
  }
  {
    // No thread can contend yet, but shard_flips_ is guarded state; the
    // uncontended lock keeps the analysis sound (and is free).
    common::MutexLock lock(mutex_);
    shard_flips_.assign(options_.shard_count, 0);
  }
  init_instruments();
  // Start threads only after every shard (and the instruments the worker
  // loops read) exists.
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->worker = std::jthread([this, raw] { worker_loop(*raw); });
  }
  coordinator_ = std::jthread([this] { coordinator_loop(); });
}

void ShardedFcmFramework::init_instruments() {
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr) return;
  auto base_labels = [&]() -> std::vector<obs::MetricLabel> {
    if (options_.metrics_instance.empty()) return {};
    return {{"instance", options_.metrics_instance}};
  };
  auto shard_labels = [&](std::size_t s) {
    std::vector<obs::MetricLabel> labels = base_labels();
    labels.push_back({"shard", std::to_string(s)});
    return labels;
  };

  auto instruments = std::make_unique<Instruments>();
  instruments->backpressure_spins = &registry->counter(
      "fcm_runtime_backpressure_spins_total", base_labels(),
      "Producer spin iterations while a shard ring was full");
  if (options_.cache_entries > 0) {
    instruments->cache_hits = &registry->counter(
        "fcm_datapath_cache_hits_total", base_labels(),
        "Packets absorbed exactly by the driver-side heavy-flow cache");
    instruments->cache_misses = &registry->counter(
        "fcm_datapath_cache_misses_total", base_labels(),
        "Packets that installed or displaced a heavy-flow cache entry");
    instruments->cache_evictions = &registry->counter(
        "fcm_datapath_cache_evictions_total", base_labels(),
        "Flows demoted from the heavy-flow cache into their shard");
  }
  instruments->rotations = &registry->counter(
      "fcm_runtime_rotations_total", base_labels(),
      "Epoch rotations requested (rotate_async calls)");
  instruments->epochs_merged = &registry->counter(
      "fcm_runtime_epochs_merged_total", base_labels(),
      "Epochs fully merged and published by the coordinator");
  instruments->overflow_promotions = &registry->counter(
      "fcm_sketch_overflow_promotions_total", base_labels(),
      "FCM tree nodes tripped into overflow (promotion to parent stage)");
  instruments->cardinality_saturations = &registry->counter(
      "fcm_sketch_cardinality_saturations_total", base_labels(),
      "Linear-counting cardinality estimates that hit the full-table guard");
  instruments->merge_seconds = &registry->histogram(
      "fcm_runtime_merge_seconds", obs::Histogram::latency_bounds(),
      base_labels(), "Coordinator N-way merge + requalify wall time");
  instruments->rotation_wait_seconds = &registry->histogram(
      "fcm_runtime_rotation_wait_seconds", obs::Histogram::latency_bounds(),
      base_labels(),
      "Driver stall in rotate_async waiting for the previous epoch's merge");
  instruments->epoch_packets = &registry->gauge(
      "fcm_runtime_epoch_packets", base_labels(),
      "Packets absorbed by the most recently merged epoch");
  instruments->fanout_imbalance = &registry->gauge(
      "fcm_runtime_fanout_imbalance", base_labels(),
      "Max-shard over mean-shard packets in the last epoch (1.0 = balanced)");
  instruments->shard_packets.reserve(shards_.size());
  for (const auto& shard : shards_) {
    instruments->shard_packets.push_back(&registry->counter(
        "fcm_runtime_shard_packets_total", shard_labels(shard->index),
        "Packets ingested per shard worker"));
  }
  // Pull-style occupancy gauges. Two live instances sharing one registry
  // without distinct metrics_instance labels would collide here; the later
  // instance simply runs without queue-depth gauges.
  try {
    for (const auto& shard : shards_) {
      Shard* raw = shard.get();
      instruments->queue_depth_gauges.push_back(registry->gauge_callback(
          "fcm_runtime_queue_depth", shard_labels(raw->index),
          [raw] { return static_cast<double>(raw->queue.size_approx()); },
          "SPSC ring occupancy (sampled at scrape)"));
    }
  } catch (const std::logic_error&) {
    instruments->queue_depth_gauges.clear();
  }
  instruments_ = std::move(instruments);
}

ShardedFcmFramework::~ShardedFcmFramework() { stop(); }

// --- data plane (driver thread) --------------------------------------------

void ShardedFcmFramework::route(flow::FlowKey key, std::uint32_t count) {
  std::size_t shard_index;
  if (options_.fanout == Fanout::kHashByKey) {
    shard_index = static_cast<std::size_t>(common::mix64(key.value)) %
                  shards_.size();
  } else {
    shard_index = rr_next_;
    rr_next_ = rr_next_ + 1 == shards_.size() ? 0 : rr_next_ + 1;
  }
  Shard& shard = *shards_[shard_index];
  shard.staging.push_back(Item{key, count});
  if (shard.staging.size() >= options_.flush_batch) flush_shard(shard);
}

void ShardedFcmFramework::flush_shard(Shard& shard) {
  shard.queue.assume_producer();  // the driver IS the single SPSC producer
  std::span<const Item> pending(shard.staging);
  unsigned spins = 0;
  while (!pending.empty()) {
    const std::size_t pushed = shard.queue.try_push_bulk(pending);
    pending = pending.subspan(pushed);
    if (!pending.empty()) backoff(spins);  // ring full: backpressure
  }
  if (spins > 0 && instruments_ != nullptr) {
    // One relaxed add per *stalled* flush — the uncontended path records
    // nothing.
    instruments_->backpressure_spins->inc_at(shard.index, spins);
  }
  shard.staging.clear();
}

void ShardedFcmFramework::flush_all() {
  for (auto& shard : shards_) {
    if (!shard->staging.empty()) flush_shard(*shard);
  }
}

void ShardedFcmFramework::route_weighted(flow::FlowKey key,
                                         std::uint64_t count) {
  // Ring items carry a u32 count (0 is the epoch marker); oversized demotions
  // split into saturated chunks. kHashByKey sends every chunk to the flow's
  // shard, so per-shard heavy-hitter detection still sees the whole count.
  constexpr std::uint64_t kMaxItemCount = 0xffffffff;
  while (count > kMaxItemCount) {
    route(key, common::checked_narrow<std::uint32_t>(kMaxItemCount));
    count -= kMaxItemCount;
  }
  if (count > 0) route(key, common::checked_narrow<std::uint32_t>(count));
}

void ShardedFcmFramework::offer_cached(flow::FlowKey key, std::uint32_t count) {
  const datapath::HeavyFlowCache::Result result = cache_->offer(key, count);
  switch (result.outcome) {
    case datapath::HeavyFlowCache::Result::Outcome::kHit:
    case datapath::HeavyFlowCache::Result::Outcome::kInserted:
      return;  // absorbed at the driver; nothing crosses a ring
    case datapath::HeavyFlowCache::Result::Outcome::kEvicted:
      route_weighted(result.evicted_key, result.evicted_count);
      return;
    case datapath::HeavyFlowCache::Result::Outcome::kBypass:
      route(key, count);  // flow 0: the cache's empty-slot sentinel
      return;
  }
}

void ShardedFcmFramework::drain_cache() {
  if (cache_ == nullptr) return;
  // Counters first: clear() resets the cache's cumulative ledger, so the
  // published baselines reset with it below.
  publish_cache_metrics();
  // Collect, then route from THIS scope (not a lambda) so the thread-safety
  // analysis sees the driver capability at every route_weighted call site.
  std::vector<std::pair<flow::FlowKey, std::uint64_t>> resident;
  resident.reserve(cache_->resident_flows());
  cache_->for_each([&resident](flow::FlowKey key, std::uint64_t count) {
    resident.emplace_back(key, count);
  });
  cache_->clear();
  cache_published_hits_ = cache_published_misses_ = cache_published_evictions_ = 0;
  for (const auto& [key, count] : resident) route_weighted(key, count);
}

void ShardedFcmFramework::publish_cache_metrics() {
  if (cache_ == nullptr || instruments_ == nullptr) return;
  instruments_->cache_hits->inc(cache_->hits() - cache_published_hits_);
  instruments_->cache_misses->inc(cache_->misses() - cache_published_misses_);
  instruments_->cache_evictions->inc(cache_->evictions() -
                                     cache_published_evictions_);
  cache_published_hits_ = cache_->hits();
  cache_published_misses_ = cache_->misses();
  cache_published_evictions_ = cache_->evictions();
}

void ShardedFcmFramework::ingest(flow::FlowKey key) {
  driver_role_.assert_held();
  FCM_ASSERT(!stopped_, "ShardedFcmFramework: ingest after stop()");
  if (cache_ != nullptr) {
    offer_cached(key, 1);
  } else {
    route(key, 1);
  }
}

void ShardedFcmFramework::ingest(const flow::Packet& packet) {
  driver_role_.assert_held();
  FCM_ASSERT(!stopped_, "ShardedFcmFramework: ingest after stop()");
  std::uint32_t count = 1;
  if (options_.framework.count_mode ==
      framework::FcmFramework::CountMode::kBytes) {
    // count == 0 is reserved for the in-band epoch marker.
    FCM_REQUIRE(packet.bytes > 0,
                "ShardedFcmFramework: zero-byte packet in byte-count mode");
    count = packet.bytes;
  }
  if (cache_ != nullptr) {
    offer_cached(packet.key, count);
  } else {
    route(packet.key, count);
  }
}

void ShardedFcmFramework::ingest(std::span<const flow::Packet> packets) {
  driver_role_.assert_held();
  FCM_ASSERT(!stopped_, "ShardedFcmFramework: ingest after stop()");
  const bool byte_mode = options_.framework.count_mode ==
                         framework::FcmFramework::CountMode::kBytes;
  const bool cached = cache_ != nullptr;
  if (byte_mode) {
    for (const flow::Packet& packet : packets) {
      // count == 0 is reserved for the in-band epoch marker.
      FCM_REQUIRE(packet.bytes > 0,
                  "ShardedFcmFramework: zero-byte packet in byte-count mode");
      if (cached) {
        offer_cached(packet.key, packet.bytes);
      } else {
        route(packet.key, packet.bytes);
      }
    }
  } else if (cached) {
    for (const flow::Packet& packet : packets) offer_cached(packet.key, 1);
  } else {
    for (const flow::Packet& packet : packets) route(packet.key, 1);
  }
}

void ShardedFcmFramework::ingest(std::span<const flow::FlowKey> keys) {
  driver_role_.assert_held();
  FCM_ASSERT(!stopped_, "ShardedFcmFramework: ingest after stop()");
  if (cache_ != nullptr) {
    for (const flow::FlowKey key : keys) offer_cached(key, 1);
  } else {
    for (const flow::FlowKey key : keys) route(key, 1);
  }
}

// --- epoch rotation ---------------------------------------------------------

std::size_t ShardedFcmFramework::rotate_async() {
  driver_role_.assert_held();
  FCM_REQUIRE(!stopped_, "ShardedFcmFramework: rotate after stop()");
  // At most one rotation in flight: the generation we are about to expose to
  // the workers must be fully merged and cleared first. The stall (zero in
  // steady state, positive when merging cannot keep up with rotation
  // frequency) is exported as fcm_runtime_rotation_wait_seconds.
  {
    const obs::ScopedTimer wait_timer(
        instruments_ ? instruments_->rotation_wait_seconds : nullptr);
    common::MutexLock lock(mutex_);
    while (epochs_merged_ != rotations_requested_) cv_.wait(lock);
  }
  if (instruments_ != nullptr) instruments_->rotations->inc();
  // Cache contents belong to the epoch being closed: demote every resident
  // flow into its shard BEFORE the markers, so the merged epoch conserves
  // totals exactly (each flow's units reach the sketch ahead of the flip).
  drain_cache();
  flush_all();
  const Item marker{};  // count == 0
  for (auto& shard : shards_) {
    shard->queue.assume_producer();
    unsigned spins = 0;
    while (!shard->queue.try_push(marker)) backoff(spins);
  }
  std::size_t epoch;
  {
    common::MutexLock lock(mutex_);
    epoch = rotations_requested_++;
  }
  cv_.notify_all();
  return epoch;
}

ShardedFcmFramework::EpochReport ShardedFcmFramework::rotate() {
  return wait_epoch(rotate_async());
}

ShardedFcmFramework::EpochReport ShardedFcmFramework::wait_epoch(
    std::size_t index) {
  common::MutexLock lock(mutex_);
  while (epochs_merged_ <= index) cv_.wait(lock);
  FCM_REQUIRE(index >= history_base_,
              "ShardedFcmFramework: epoch " + std::to_string(index) +
                  " no longer retained");
  return reports_[index - history_base_];
}

// --- worker -----------------------------------------------------------------

void ShardedFcmFramework::worker_loop(Shard& shard) {
  shard.queue.assume_consumer();  // this worker IS the single SPSC consumer
  const bool byte_mode = options_.framework.count_mode ==
                         framework::FcmFramework::CountMode::kBytes;
  std::vector<Item> batch(kPopBatch);
  // Packet-mode keys accumulated from the current pop batch, consumed through
  // the batched ingest kernel (FcmFramework::process_batch). Must drain before
  // a generation flip: the pending keys belong to the epoch being closed.
  flow::FlowKey keys[kPopBatch];
  std::size_t pending = 0;
  std::uint64_t data_items = 0;  // batched into one relaxed add below
  const auto drain = [&] {
    if (pending == 0) return;
    shard.replicas[shard.active].process_batch(
        std::span<const flow::FlowKey>(keys, pending));
    shard.packets_in_generation[shard.active] += pending;
    data_items += pending;
    pending = 0;
  };
  unsigned spins = 0;
  for (;;) {
    const std::size_t n = shard.queue.try_pop_bulk(std::span<Item>(batch));
    if (n == 0) {
      // Check AFTER a failed pop so a queue filled before stop() is drained.
      if (stop_.load(std::memory_order_acquire)) return;
      backoff(spins);
      continue;
    }
    spins = 0;
    data_items = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Item item = batch[i];
      if (item.count == 0) {
        // Epoch marker: drain pending keys into the closing generation, then
        // flip to the other one and publish the flip. The mutex makes every
        // replica write above happen-before the coordinator's reads once it
        // observes the new flip count.
        drain();
        {
          common::MutexLock lock(mutex_);
          shard.active ^= 1;
          ++shard_flips_[shard.index];
        }
        cv_.notify_all();
        continue;
      }
      if (byte_mode) {
        // Byte counts are data-dependent; the batched kernel is +1-only.
        shard.replicas[shard.active].process(
            flow::Packet{item.key, item.count, 0});
        ++shard.packets_in_generation[shard.active];
        ++data_items;
      } else if (item.count == 1) {
        keys[pending++] = item.key;
      } else {
        // Weighted item: a heavy-flow-cache demotion carrying `count`
        // packets of one flow. Keep sketch-write order: drain the pending
        // +1 run first, then apply the bulk add.
        drain();
        shard.replicas[shard.active].process_weighted(item.key, item.count);
        shard.packets_in_generation[shard.active] += item.count;
        data_items += item.count;
      }
    }
    drain();
    if (data_items > 0 && instruments_ != nullptr) {
      // Per-batch, not per-packet: one relaxed fetch_add on this worker's
      // own cache-line-aligned cell covers up to kPopBatch packets.
      instruments_->shard_packets[shard.index]->inc_at(shard.index, data_items);
    }
  }
}

// --- coordinator ------------------------------------------------------------

void ShardedFcmFramework::coordinator_loop() {
  for (;;) {
    std::size_t epoch;
    {
      // Explicit while-loops (not wait-with-predicate): the guarded reads
      // stay in THIS function's scope, where the analysis can see the lock.
      common::MutexLock lock(mutex_);
      while (!coordinator_stop_ && rotations_requested_ == epochs_merged_) {
        cv_.wait(lock);
      }
      if (coordinator_stop_ && rotations_requested_ == epochs_merged_) return;
      epoch = epochs_merged_;
      // Wait until every worker has flipped past this epoch's marker; the
      // drained generation is then exclusively ours (the workers write the
      // other one until the NEXT marker, which rotate_async() refuses to
      // push before we finish).
      while (!std::all_of(shard_flips_.begin(), shard_flips_.end(),
                          [epoch](std::size_t flips) { return flips > epoch; })) {
        cv_.wait(lock);
      }
    }
    // Drained generation index: workers start on 0 and flip once per epoch.
    const std::size_t gen = epoch % 2;

    // Merge off the ingest path. Shard replicas share identical options
    // (including the per-shard threshold), so FcmFramework::merge applies;
    // re-qualify the heavy-hitter union at the global threshold afterwards.
    const auto merge_start = std::chrono::steady_clock::now();
    framework::FcmFramework merged = shards_[0]->replicas[gen];
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      merged.merge(shards_[s]->replicas[gen]);
    }
    const std::uint64_t global_t = options_.framework.heavy_hitter_threshold;
    if (global_t > 0) merged.requalify_heavy_hitters(global_t);
    const double merge_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      merge_start)
            .count();
    FCM_CHECKED_ONLY(merged.check_invariants());

    EpochReport report;
    report.index = epoch;
    report.merge_seconds = merge_seconds;
    std::uint64_t max_shard_packets = 0;
    for (auto& shard : shards_) {
      report.packets += shard->packets_in_generation[gen];
      max_shard_packets =
          std::max(max_shard_packets, shard->packets_in_generation[gen]);
      shard->packets_in_generation[gen] = 0;
      shard->replicas[gen].reset();  // ready for the epoch after next
    }
    if (report.packets > 0) {
      const double mean = static_cast<double>(report.packets) /
                          static_cast<double>(shards_.size());
      report.fanout_imbalance = static_cast<double>(max_shard_packets) / mean;
    }
    // The merged replica's counters are per-epoch (shard replicas reset
    // above), so they are exactly this epoch's deltas.
    report.overflow_promotions = merged.overflow_promotion_count();
    report.cardinality = merged.cardinality();
    report.heavy_hitters = merged.heavy_hitters();
    if (instruments_ != nullptr) {
      instruments_->merge_seconds->observe(merge_seconds);
      instruments_->overflow_promotions->inc(report.overflow_promotions);
      instruments_->cardinality_saturations->inc(
          merged.cardinality_saturation_count());
      instruments_->epoch_packets->set(static_cast<double>(report.packets));
      instruments_->fanout_imbalance->set(report.fanout_imbalance);
    }
    if (options_.heavy_change_threshold > 0) {
      // Take the pointer under the lock, compute outside it: history_ only
      // mutates on this thread, so the back() element stays valid (and
      // unread by anyone else) after the lock drops.
      const framework::FcmFramework* previous = nullptr;
      {
        common::MutexLock lock(mutex_);
        if (!history_.empty()) previous = &history_.back();
      }
      if (previous != nullptr) {
        report.heavy_changes = framework::FcmFramework::heavy_changes(
            *previous, merged, options_.heavy_change_threshold);
      }
    }
    if (options_.analyze_on_rotate) report.analysis = merged.analyze();

    {
      common::MutexLock lock(mutex_);
      history_.push_back(std::move(merged));
      reports_.push_back(std::move(report));
      while (history_.size() > options_.retained_epochs) {
        history_.pop_front();
        reports_.pop_front();
        ++history_base_;
      }
      ++epochs_merged_;
    }
    if (instruments_ != nullptr) instruments_->epochs_merged->inc();
    cv_.notify_all();
  }
}

// --- shutdown ---------------------------------------------------------------

void ShardedFcmFramework::stop() {
  driver_role_.assert_held();
  if (stopped_) return;
  drain_cache();  // un-rotated tail: hand it to the workers like flush_all()
  flush_all();
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  {
    common::MutexLock lock(mutex_);
    // Workers have drained every ring (markers included), so all requested
    // epochs will be merged; wait for the coordinator to catch up, then
    // release it.
    while (epochs_merged_ != rotations_requested_) cv_.wait(lock);
    coordinator_stop_ = true;
  }
  cv_.notify_all();
  if (coordinator_.joinable()) coordinator_.join();
  stopped_ = true;
}

// --- results ----------------------------------------------------------------

framework::FcmFramework ShardedFcmFramework::merged_epoch(
    std::size_t back) const {
  common::MutexLock lock(mutex_);
  FCM_REQUIRE(back < history_.size(),
              "ShardedFcmFramework: no merged epoch " + std::to_string(back) +
                  " epochs back (retained: " + std::to_string(history_.size()) +
                  ")");
  return history_[history_.size() - 1 - back];
}

std::uint64_t ShardedFcmFramework::flow_size(flow::FlowKey key) const {
  common::MutexLock lock(mutex_);
  FCM_REQUIRE(!history_.empty(),
              "ShardedFcmFramework: flow_size before the first rotation");
  return history_.back().flow_size(key);
}

std::size_t ShardedFcmFramework::epochs_completed() const {
  common::MutexLock lock(mutex_);
  return epochs_merged_;
}

void ShardedFcmFramework::check_invariants() const {
  // Documented as driver-thread-only (it reads stopped_ and, once stopped,
  // the shard replicas themselves).
  driver_role_.assert_held();
  common::MutexLock lock(mutex_);
  FCM_ASSERT(epochs_merged_ <= rotations_requested_,
             "ShardedFcmFramework: merged more epochs than were requested");
  FCM_ASSERT(history_.size() == reports_.size(),
             "ShardedFcmFramework: history/report deques diverged");
  FCM_ASSERT(history_.size() <= options_.retained_epochs,
             "ShardedFcmFramework: retained more epochs than configured");
  for (const auto& merged : history_) merged.check_invariants();
  if (cache_ != nullptr) cache_->check_invariants();
  if (stopped_) {
    for (const auto& shard : shards_) {
      for (const auto& replica : shard->replicas) replica.check_invariants();
    }
  }
}

}  // namespace fcm::runtime
