#include "obs/metrics_logger.h"

#include <algorithm>
#include <stdexcept>

namespace fcm::obs {

namespace {

// JSON-lines wants one object per line; the pretty exporter is collapsed by
// dropping newlines and the indentation that follows them.
std::string compact_json(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  bool skipping_indent = false;
  for (const char c : pretty) {
    if (c == '\n') {
      skipping_indent = true;
      continue;
    }
    if (skipping_indent && c == ' ') continue;
    skipping_indent = false;
    out += c;
  }
  return out;
}

}  // namespace

MetricsLogger::MetricsLogger(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.path.empty()) {
    throw std::invalid_argument("obs::MetricsLogger: path must be non-empty");
  }
  options_.interval = std::max(options_.interval, std::chrono::milliseconds(1));
  {
    // Nothing can contend yet (the thread starts below), but out_ is guarded
    // state, so take the lock for the analysis — uncontended, so free.
    common::MutexLock lock(mutex_);
    out_.open(options_.path, std::ios::app);
    if (!out_) {
      throw std::runtime_error("obs::MetricsLogger: cannot open " +
                               options_.path);
    }
  }
  thread_ = std::jthread([this](const std::stop_token& token) { run(token); });
}

MetricsLogger::~MetricsLogger() { stop(); }

void MetricsLogger::run(const std::stop_token& token) {
  common::MutexLock lock(mutex_);
  while (!token.stop_requested()) {
    // Stop-token-aware timed wait (the predicate is never satisfied, so this
    // returns after `interval` or as soon as stop is requested).
    cv_.wait_for(lock, token, options_.interval, [] { return false; });
    if (token.stop_requested()) break;
    write_snapshot();
  }
}

void MetricsLogger::write_snapshot() {
  // Called with mutex_ held.
  const MetricsSnapshot snap = registry_.snapshot();
  if (options_.format == Format::kJsonLines) {
    out_ << compact_json(snap.to_json()) << "\n";
  } else {
    out_ << snap.to_prometheus() << "\n";
  }
  out_.flush();
  ++snapshots_written_;
}

void MetricsLogger::stop() {
  {
    common::MutexLock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  thread_.request_stop();
  cv_.notify_all();
  thread_.join();
  common::MutexLock lock(mutex_);
  if (options_.flush_on_stop) write_snapshot();
  out_.close();
}

std::size_t MetricsLogger::snapshots_written() const {
  common::MutexLock lock(mutex_);
  return snapshots_written_;
}

}  // namespace fcm::obs
