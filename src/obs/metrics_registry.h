// Observability layer (DESIGN.md §8): a lock-free, header-light metrics
// subsystem for the whole stack.
//
// Hot-path discipline: instrumented code holds raw Counter/Gauge/Histogram
// handles (stable addresses inside the registry) and touches ONLY
// relaxed-order atomics — no locks, no allocation, no shared cache line
// between writer threads. Counters are striped across cache-line-aligned
// cells (one writer thread ~ one cell), so N shard workers incrementing the
// same logical counter never contend. Aggregation happens on scrape:
// snapshot() sums the cells under the registry mutex, which only writers of
// NEW metrics ever take. That makes scrape-while-ingest data-race-free by
// construction (CI's FCM_SANITIZE=thread job covers it in test_obs).
//
// The registry is the ONLY sanctioned home for cross-thread telemetry state:
// tools/fcm_lint.py bans raw std::atomic outside src/common/ and src/obs/ so
// ad-hoc counters cannot creep back into the sketch layers.
//
// Exporters: snapshot() returns a plain-data Snapshot with to_json()
// ("fcm.metrics.v1" schema, consumed by the benches' --metrics-json flag and
// the golden-schema test) and to_prometheus() (text exposition format 0.0.4).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace fcm::obs {

// Cache-line size; matches common::kCacheLineBytes (the header-only
// annotation header above is the only common/ dependency this header takes,
// so it stays includable from the layers below common/).
inline constexpr std::size_t kObsCacheLineBytes = 64;

// Writer stripes per counter. Power of two; 16 covers the runtime's maximum
// useful shard fan-out on one socket without bloating each counter past 1KB.
inline constexpr std::size_t kMetricStripes = 16;

namespace detail {

struct alignas(kObsCacheLineBytes) Cell {
  std::atomic<std::uint64_t> value{0};
};

// Stable per-thread stripe index, so unpinned callers (tests, examples)
// still spread across cells.
inline std::size_t this_thread_stripe() noexcept {
  static thread_local const std::size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kMetricStripes - 1);
  return stripe;
}

// fetch_add for doubles via CAS (std::atomic<double>::fetch_add is C++20 but
// a CAS loop is portable across the toolchains CI builds with). Relaxed is
// correct: metric values are monotone telemetry, not synchronization.
inline void atomic_add_double(std::atomic<std::uint64_t>& bits,
                              double delta) noexcept {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(observed);
    const std::uint64_t desired = std::bit_cast<std::uint64_t>(current + delta);
    if (bits.compare_exchange_weak(observed, desired,
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace detail

// Monotone event counter. inc() is wait-free: one relaxed fetch_add on a
// cache-line-private cell.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    inc_at(detail::this_thread_stripe(), n);
  }
  // Explicit stripe for pinned writers (the runtime passes its shard index
  // so each worker owns one cell outright).
  void inc_at(std::size_t stripe, std::uint64_t n = 1) noexcept {
    cells_[stripe & (kMetricStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::array<detail::Cell, kMetricStripes> cells_;
};

// Last-write-wins instantaneous value. Single cell: gauges are set from one
// site at a time (scrape reads are relaxed atomic loads either way).
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  void add(double delta) noexcept { detail::atomic_add_double(bits_, delta); }
  double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { set(0.0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

// Fixed-bucket histogram: `bounds` are ascending upper edges; observations
// above the last bound land in the implicit +Inf bucket. observe() is one
// linear scan over <= 16 doubles plus two relaxed atomic adds — used for
// merge/EM/analyze latencies (per-event, never per-packet).
class Histogram {
 public:
  void observe(double v) noexcept {
    std::size_t bucket = bounds_.size();
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    counts_[bucket].value.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add_double(sum_bits_, v);
  }

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  // Per-bucket (non-cumulative) counts; size() == bounds().size() + 1, the
  // final entry being the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      out[i] = counts_[i].value.load(std::memory_order_relaxed);
    }
    return out;
  }
  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : counts_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  double sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept {
    for (auto& cell : counts_) cell.value.store(0, std::memory_order_relaxed);
    sum_bits_.store(std::bit_cast<std::uint64_t>(0.0),
                    std::memory_order_relaxed);
  }

  // Exponential bucket edges: start, start*factor, ... (`count` edges).
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  // The default latency ladder: 1us .. ~67s in x4 steps.
  static std::vector<double> latency_bounds() {
    return exponential_bounds(1e-6, 4.0, 13);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;
  std::vector<detail::Cell> counts_;  // bounds_.size() + 1 (+Inf last)
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One (key, value) label pair; a metric series is identified by
// (name, labels). Example: {"shard", "3"}.
struct MetricLabel {
  std::string key;
  std::string value;
};

// Plain-data scrape result; see to_json()/to_prometheus().
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;  // non-cumulative, +Inf last
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  struct Sample {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<MetricLabel> labels;
    double value = 0.0;  // counter / gauge
    std::optional<HistogramData> histogram;
  };

  std::vector<Sample> samples;

  // {"schema": "fcm.metrics.v1", "metrics": [...]}.
  std::string to_json() const;
  // Prometheus text exposition format (cumulative _bucket/_sum/_count for
  // histograms).
  std::string to_prometheus() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-global default registry; every built-in instrumentation site
  // writes here unless handed an explicit registry.
  static MetricsRegistry& global();

  // Get-or-create; the returned reference is stable for the registry's
  // lifetime. Re-registering the same (name, labels) returns the same
  // object; re-registering under a different kind is a logic error and
  // throws std::logic_error.
  Counter& counter(const std::string& name,
                   std::vector<MetricLabel> labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, std::vector<MetricLabel> labels = {},
               const std::string& help = "");
  // `bounds` must be ascending; only consulted on first registration.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       std::vector<MetricLabel> labels = {},
                       const std::string& help = "");

  // A gauge whose value is pulled at scrape time (e.g. SPSC queue
  // occupancy). The callback runs under the registry mutex and must be
  // cheap and thread-safe. The returned handle unregisters on destruction —
  // destroy it before anything the callback reads.
  class CallbackHandle {
   public:
    CallbackHandle() = default;
    CallbackHandle(CallbackHandle&& other) noexcept { swap(other); }
    CallbackHandle& operator=(CallbackHandle&& other) noexcept {
      release();
      swap(other);
      return *this;
    }
    CallbackHandle(const CallbackHandle&) = delete;
    CallbackHandle& operator=(const CallbackHandle&) = delete;
    ~CallbackHandle() { release(); }
    void release();

   private:
    friend class MetricsRegistry;
    CallbackHandle(MetricsRegistry* registry, std::size_t index)
        : registry_(registry), index_(index) {}
    void swap(CallbackHandle& other) noexcept {
      std::swap(registry_, other.registry_);
      std::swap(index_, other.index_);
    }
    MetricsRegistry* registry_ = nullptr;
    std::size_t index_ = 0;
  };
  [[nodiscard]] CallbackHandle gauge_callback(const std::string& name,
                                              std::vector<MetricLabel> labels,
                                              std::function<double()> fn,
                                              const std::string& help = "");

  // Aggregates every registered series. Safe to call from any thread while
  // writers are hot (the acceptance gate for the sharded runtime).
  MetricsSnapshot snapshot() const;

  // Zeroes every counter/gauge/histogram (callback gauges are pull-only and
  // unaffected). For tests and bench warm-up isolation; concurrent writers
  // simply land in the fresh epoch.
  void reset_values();

  std::size_t series_count() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    std::vector<MetricLabel> labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  // callback gauges only
  };

  // Requires mutex_ held. Lookup, kind check, and (in the callers) value
  // construction all happen inside one critical section so snapshot() and
  // concurrent same-series registrations never see a half-built Entry.
  Entry& find_or_create_locked(const std::string& name,
                               std::vector<MetricLabel> labels,
                               MetricKind kind, const std::string& help)
      FCM_REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  // Deque-like stability: entries are never moved after creation.
  std::vector<std::unique_ptr<Entry>> entries_ FCM_GUARDED_BY(mutex_);
};

// Scoped wall-clock timer feeding a histogram in seconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

}  // namespace fcm::obs
