#include "obs/metrics_registry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace fcm::obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// Shortest round-trippable double formatting (so bucket edges render as
// "0.1", not "0.10000000000000001"). Finite values only; non-finite handling
// is exporter-specific — see fmt_double_json / fmt_double_prom.
std::string fmt_double(double v) {
  char buffer[64];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, v);
    if (std::strtod(buffer, nullptr) == v) break;
  }
  return buffer;
}

// JSON has no NaN/Inf literal, so a non-finite value (a pathological gauge
// callback, say) is emitted as null — visibly broken in scraped data rather
// than silently rewritten to a legitimate-looking number.
std::string fmt_double_json(double v) {
  if (!std::isfinite(v)) return "null";
  return fmt_double(v);
}

// The Prometheus text exposition format supports NaN/+Inf/-Inf spellings;
// pass them through so bad gauges stay distinguishable from real zeros.
std::string fmt_double_prom(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return fmt_double(v);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_labels_json(const std::vector<MetricLabel>& labels) {
  std::string out = "{";
  bool first = true;
  for (const MetricLabel& label : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(label.key) + "\": \"" + json_escape(label.value) +
           "\"";
  }
  out += "}";
  return out;
}

// Label-VALUE escaping per the Prometheus text exposition format 0.0.4:
// backslash, double-quote and newline must be escaped or the line is
// unparseable (e.g. a metrics_instance containing '"').
std::string prom_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Prometheus label block, optionally with an extra `le` pair (histograms).
std::string render_labels_prom(const std::vector<MetricLabel>& labels,
                               const std::string& extra_key = "",
                               const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const MetricLabel& label : labels) {
    if (!first) out += ",";
    first = false;
    out += label.key + "=\"" + prom_escape_label(label.value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + prom_escape_label(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string series_key(const std::string& name,
                       const std::vector<MetricLabel>& labels) {
  std::string key = name;
  for (const MetricLabel& label : labels) {
    key += '\x1f';
    key += label.key;
    key += '\x1e';
    key += label.value;
  }
  return key;
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i - 1] >= bounds_[i]) {
      throw std::logic_error(
          "obs::Histogram: bucket bounds must be strictly ascending");
    }
  }
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::logic_error(
        "obs::Histogram::exponential_bounds: need start > 0, factor > 1, "
        "count >= 1");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

// --- MetricsSnapshot exporters ----------------------------------------------

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"fcm.metrics.v1\",\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    out << "    {\"name\": \"" << json_escape(s.name) << "\", \"kind\": \""
        << kind_name(s.kind) << "\", \"labels\": "
        << render_labels_json(s.labels);
    if (s.kind == MetricKind::kHistogram && s.histogram.has_value()) {
      const HistogramData& h = *s.histogram;
      out << ", \"count\": " << h.count
          << ", \"sum\": " << fmt_double_json(h.sum) << ", \"buckets\": [";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
        cumulative += h.bucket_counts[b];
        if (b > 0) out << ", ";
        out << "{\"le\": ";
        if (b < h.bounds.size()) {
          // `le` is a quoted string, so the Prometheus spellings (including
          // "+Inf" for an infinite edge) are safe here too.
          out << "\"" << fmt_double_prom(h.bounds[b]) << "\"";
        } else {
          out << "\"+Inf\"";
        }
        out << ", \"count\": " << cumulative << "}";
      }
      out << "]";
    } else {
      out << ", \"value\": " << fmt_double_json(s.value);
    }
    out << "}";
    if (i + 1 < samples.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream out;
  std::string last_name;
  for (const Sample& s : samples) {
    if (s.name != last_name) {
      if (!s.help.empty()) out << "# HELP " << s.name << " " << s.help << "\n";
      out << "# TYPE " << s.name << " " << kind_name(s.kind) << "\n";
      last_name = s.name;
    }
    if (s.kind == MetricKind::kHistogram && s.histogram.has_value()) {
      const HistogramData& h = *s.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
        cumulative += h.bucket_counts[b];
        const std::string le =
            b < h.bounds.size() ? fmt_double_prom(h.bounds[b]) : "+Inf";
        out << s.name << "_bucket" << render_labels_prom(s.labels, "le", le)
            << " " << cumulative << "\n";
      }
      out << s.name << "_sum" << render_labels_prom(s.labels) << " "
          << fmt_double_prom(h.sum) << "\n";
      out << s.name << "_count" << render_labels_prom(s.labels) << " "
          << h.count << "\n";
    } else {
      out << s.name << render_labels_prom(s.labels) << " "
          << fmt_double_prom(s.value) << "\n";
    }
  }
  return out.str();
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// mutex_ must be held by the caller. The whole get-or-create — lookup, kind
// check, AND construction of the Counter/Gauge/Histogram value object (via
// `make_value`) — happens inside one critical section, so snapshot() and
// concurrent registrations of the same series can never observe an Entry
// whose value object is still being wired up (the registry's documented
// snapshot-while-hot safety contract depends on this).
MetricsRegistry::Entry& MetricsRegistry::find_or_create_locked(
    const std::string& name, std::vector<MetricLabel> labels, MetricKind kind,
    const std::string& help) {
  const std::string key = series_key(name, labels);
  for (const auto& entry : entries_) {
    if (entry->name == name && series_key(entry->name, entry->labels) == key) {
      if (entry->kind != kind) {
        throw std::logic_error("obs::MetricsRegistry: metric '" + name +
                               "' re-registered as a different kind");
      }
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  entry->labels = std::move(labels);
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  std::vector<MetricLabel> labels,
                                  const std::string& help) {
  common::MutexLock lock(mutex_);
  Entry& entry =
      find_or_create_locked(name, std::move(labels), MetricKind::kCounter, help);
  if (!entry.counter) entry.counter.reset(new Counter());
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              std::vector<MetricLabel> labels,
                              const std::string& help) {
  common::MutexLock lock(mutex_);
  Entry& entry =
      find_or_create_locked(name, std::move(labels), MetricKind::kGauge, help);
  if (entry.callback) {
    throw std::logic_error("obs::MetricsRegistry: gauge '" + name +
                           "' is already a callback gauge");
  }
  if (!entry.gauge) entry.gauge.reset(new Gauge());
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      std::vector<MetricLabel> labels,
                                      const std::string& help) {
  common::MutexLock lock(mutex_);
  Entry& entry = find_or_create_locked(name, std::move(labels),
                                       MetricKind::kHistogram, help);
  if (!entry.histogram) {
    entry.histogram.reset(new Histogram(std::move(bounds)));
  }
  return *entry.histogram;
}

MetricsRegistry::CallbackHandle MetricsRegistry::gauge_callback(
    const std::string& name, std::vector<MetricLabel> labels,
    std::function<double()> fn, const std::string& help) {
  // Get-or-create and callback installation under ONE lock acquisition: a
  // concurrent gauge()/gauge_callback() on the same name either runs fully
  // before this (and the guard below throws) or fully after (and sees the
  // installed callback) — no interleaving window.
  common::MutexLock lock(mutex_);
  Entry& entry =
      find_or_create_locked(name, std::move(labels), MetricKind::kGauge, help);
  if (entry.gauge || entry.callback) {
    throw std::logic_error("obs::MetricsRegistry: gauge '" + name +
                           "' already registered");
  }
  entry.callback = std::move(fn);
  std::size_t index = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].get() == &entry) {
      index = i;
      break;
    }
  }
  return CallbackHandle(this, index);
}

void MetricsRegistry::CallbackHandle::release() {
  if (registry_ == nullptr) return;
  common::MutexLock lock(registry_->mutex_);
  registry_->entries_[index_]->callback = nullptr;
  registry_ = nullptr;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  common::MutexLock lock(mutex_);
  snap.samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricsSnapshot::Sample sample;
    sample.name = entry->name;
    sample.help = entry->help;
    sample.kind = entry->kind;
    sample.labels = entry->labels;
    switch (entry->kind) {
      case MetricKind::kCounter:
        if (!entry->counter) continue;  // defensive: never constructed
        sample.value = static_cast<double>(entry->counter->value());
        break;
      case MetricKind::kGauge:
        if (entry->callback) {
          sample.value = entry->callback();
        } else if (entry->gauge) {
          sample.value = entry->gauge->value();
        } else {
          continue;  // callback gauge whose handle was released
        }
        break;
      case MetricKind::kHistogram: {
        if (!entry->histogram) continue;  // defensive: never constructed
        MetricsSnapshot::HistogramData data;
        data.bounds = entry->histogram->bounds();
        data.bucket_counts = entry->histogram->bucket_counts();
        data.count = 0;
        for (const std::uint64_t c : data.bucket_counts) data.count += c;
        data.sum = entry->histogram->sum();
        sample.histogram = std::move(data);
        break;
      }
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  common::MutexLock lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->counter) entry->counter->reset();
    if (entry->gauge) entry->gauge->reset();
    if (entry->histogram) entry->histogram->reset();
  }
}

std::size_t MetricsRegistry::series_count() const {
  common::MutexLock lock(mutex_);
  return entries_.size();
}

// --- ScopedTimer -------------------------------------------------------------

namespace {
std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedTimer::ScopedTimer(Histogram* histogram) noexcept
    : histogram_(histogram), start_ns_(histogram ? now_ns() : 0) {}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->observe(static_cast<double>(now_ns() - start_ns_) * 1e-9);
}

}  // namespace fcm::obs
