// Periodic metrics export for long-running ingest (DESIGN.md §8).
//
// A background jthread scrapes a MetricsRegistry every `interval` and
// appends the snapshot to a file (JSON-lines: one compacted "fcm.metrics.v1"
// object per line) or the Prometheus text format. stop() / destruction is
// prompt: the sleep is a stop_token-aware condition wait, not a plain
// sleep_for.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <fstream>
#include <string>
#include <thread>

#include "common/thread_annotations.h"
#include "obs/metrics_registry.h"

namespace fcm::obs {

class MetricsLogger {
 public:
  enum class Format { kJsonLines, kPrometheus };

  struct Options {
    std::string path;  // appended to; must be non-empty
    std::chrono::milliseconds interval{1000};
    Format format = Format::kJsonLines;
    // Also write one final snapshot on stop(), so short runs still record.
    bool flush_on_stop = true;
  };

  MetricsLogger(MetricsRegistry& registry, Options options);
  ~MetricsLogger();

  MetricsLogger(const MetricsLogger&) = delete;
  MetricsLogger& operator=(const MetricsLogger&) = delete;

  // Idempotent; joins the logger thread.
  void stop();

  std::size_t snapshots_written() const;

 private:
  void write_snapshot() FCM_REQUIRES(mutex_);
  void run(const std::stop_token& token);

  MetricsRegistry& registry_;
  Options options_;
  mutable common::Mutex mutex_;
  std::condition_variable_any cv_;
  std::ofstream out_ FCM_GUARDED_BY(mutex_);
  std::size_t snapshots_written_ FCM_GUARDED_BY(mutex_) = 0;
  bool stopped_ FCM_GUARDED_BY(mutex_) = false;
  std::jthread thread_;
};

}  // namespace fcm::obs
