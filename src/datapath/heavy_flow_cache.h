// Exact-match heavy-flow cache: the OVS-EMC-shaped front end from ROADMAP
// open item 2 and the FPGA sketch-acceleration paper (PAPERS.md) — hot flows
// are counted exactly in a small set-associative table and never touch the
// multi-tree FCM walk; cold flows churn through the table and are DEMOTED
// into the backing sketch on eviction, so no packet is ever dropped from the
// measurement (conservation is a tested invariant, not a hope).
//
// Eviction is smallest-count-in-set: a newly arriving flow always installs
// (recency), displacing the set's lightest entry (frequency). Hot flows
// accumulate large exact counts and become practically unevictable; the
// Zipf tail keeps displacing itself. The caller owns what to do with the
// eviction (Result::kEvicted) and with the resident counts at an epoch
// boundary (drain()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "flow/flow_key.h"

namespace fcm::datapath {

class HeavyFlowCache {
 public:
  struct Options {
    // Total entries; must be a power of two >= `ways`. 8192 x 8-byte entries
    // is L1/L2-resident, the regime where the exact path beats the sketch.
    std::size_t entries = 8192;
    // Set associativity; must divide `entries` and be >= 1. 4 mirrors the
    // EMC's probe depth: enough conflict tolerance, still branch-cheap.
    std::size_t ways = 4;
    std::uint64_t seed = 0xcac4e;
  };

  struct Result {
    enum class Outcome : std::uint8_t {
      kHit,       // resident flow; count absorbed exactly
      kInserted,  // new flow installed into an empty way
      kEvicted,   // new flow installed; evicted_* must go to the sketch
      kBypass,    // key 0 (the empty-slot sentinel): caller feeds the sketch
    };
    Outcome outcome = Outcome::kBypass;
    flow::FlowKey evicted_key{};
    std::uint64_t evicted_count = 0;
  };

  explicit HeavyFlowCache(Options options);

  // Offers `count` units (packets or bytes) of `key`. Never allocates; safe
  // on the per-packet hot path.
  Result offer(flow::FlowKey key, std::uint64_t count);

  // Exact count of a resident flow; 0 when absent (key 0 is never resident).
  std::uint64_t count_of(flow::FlowKey key) const;

  // Visits every resident (key, count) pair — epoch folding walks this.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (const Entry& entry : table_) {
      if (entry.key.value != 0) visit(entry.key, entry.count);
    }
  }

  // for_each + clear in one sweep: hands every resident flow to `visit` for
  // demotion into the sketch and empties the table (epoch rotation).
  template <typename Visitor>
  void drain(Visitor&& visit) {
    for (Entry& entry : table_) {
      if (entry.key.value != 0) {
        evicted_units_ += entry.count;  // keeps the conservation ledger exact
        visit(entry.key, entry.count);
        entry = Entry{};
      }
    }
  }

  void clear();

  // Conservation bookkeeping: units accepted (hits + installs), units handed
  // back through evictions, and units currently resident. At all times
  // offered_units() == evicted_units() + resident_units() + bypassed units
  // routed by the caller (check_invariants asserts the cache-side part).
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t offered_units() const noexcept { return offered_units_; }
  std::uint64_t evicted_units() const noexcept { return evicted_units_; }
  std::uint64_t resident_units() const;
  std::size_t resident_flows() const;

  std::size_t entry_count() const noexcept { return table_.size(); }
  std::size_t memory_bytes() const { return table_.size() * sizeof(Entry); }
  const Options& options() const noexcept { return options_; }

  // Deep invariants: sentinel slots carry no count, occupied slots a nonzero
  // one, and the unit ledger balances (offered == resident + evicted).
  void check_invariants() const;

 private:
  struct Entry {
    flow::FlowKey key{};  // key.value == 0 means empty
    std::uint64_t count = 0;
  };

  std::size_t set_base(flow::FlowKey key) const {
    // Set index via bob-hash + fast-range over the number of sets; each set
    // is `ways` consecutive entries (one or two cache lines).
    return common::fast_range32(common::bob_hash_u32(key.value, seed_low_),
                                sets_) * options_.ways;
  }

  Options options_;
  std::uint32_t seed_low_ = 0;
  std::size_t sets_ = 0;
  std::vector<Entry> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t offered_units_ = 0;
  std::uint64_t evicted_units_ = 0;
};

}  // namespace fcm::datapath
