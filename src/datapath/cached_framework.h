// HeavyFlowCache in front of an FcmFramework — the serial composition of the
// datapath (DESIGN.md §12). Hot flows are absorbed exactly by the cache and
// never pay the multi-tree walk; evicted (cold) flows are demoted into the
// sketch as weighted adds. Queries see ONE coherent view:
//
//   - flow_size(f)  = exact resident count + sketch estimate. The sketch
//     holds a subset of the true traffic and never underestimates what it
//     holds, so truth(f) <= flow_size(f) <= a cache-off framework's estimate
//     (pointwise sandwich; the differential battery in
//     tests/test_datapath_differential.cpp proves both inequalities).
//   - snapshot() folds the cache into a COPY of the framework, yielding a
//     plain FcmFramework whose per-leaf counter sums equal a cache-off run's
//     bit for bit (FCM counters are order-independent sums), so epoch
//     pipelines (merge, EM/WMRE, heavy change) consume it unchanged. The
//     bit-exact claim covers the COUNTER state; the on-path heavy-hitter
//     ledger records flows when their own add crosses T and the cache
//     reschedules adds, so that ledger is trajectory-dependent (it still
//     never misses a truly heavy flow — the differential battery pins this).
//   - heavy_hitters() unions sketch-side detections with resident flows
//     whose combined count crosses the threshold, so a hot flow that never
//     touches the sketch is still reported.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "datapath/heavy_flow_cache.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"

namespace fcm::datapath {

class CachedFramework {
 public:
  struct Options {
    framework::FcmFramework::Options framework;
    HeavyFlowCache::Options cache;
    // Authoritative telemetry knob, propagated into framework.metrics like
    // the sharded runtime does; nullptr = fully uninstrumented.
    obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global();
    std::string metrics_instance;
  };

  explicit CachedFramework(Options options);

  // --- data plane ---------------------------------------------------------
  void process(flow::FlowKey key);
  void process(const flow::Packet& packet);  // kBytes mode adds packet.bytes
  void process(std::span<const flow::Packet> packets);
  void process_batch(std::span<const flow::FlowKey> keys);

  // --- queries (combined cache + sketch view) -----------------------------
  std::uint64_t flow_size(flow::FlowKey key) const;
  std::vector<flow::FlowKey> heavy_hitters() const;

  // Cache folded into a copy of the framework: a self-contained serial
  // FcmFramework for the epoch pipeline (merge/analyze/WireCodec). Costs a
  // full sketch copy; call per epoch, not per packet. Also publishes cache
  // counters to the registry.
  framework::FcmFramework snapshot() const;
  framework::FcmFramework::Report analyze() const { return snapshot().analyze(); }
  double cardinality() const { return snapshot().cardinality(); }

  void reset();

  const HeavyFlowCache& cache() const noexcept { return cache_; }
  const framework::FcmFramework& framework() const noexcept { return framework_; }
  const Options& options() const noexcept { return options_; }
  std::size_t memory_bytes() const {
    return framework_.memory_bytes() + cache_.memory_bytes();
  }

  // Pushes hit/miss/eviction deltas and the resident gauge to the registry.
  // The hot path touches no atomics; deltas accumulate in the cache's plain
  // counters and land here (also called by snapshot()).
  void publish_metrics() const;

  void check_invariants() const;

 private:
  struct Instruments {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* resident_flows = nullptr;
  };

  void offer(flow::FlowKey key, std::uint64_t count);

  Options options_;
  framework::FcmFramework framework_;
  HeavyFlowCache cache_;
  Instruments instruments_;
  // Last published cumulative values (publish_metrics emits deltas).
  mutable std::uint64_t published_hits_ = 0;
  mutable std::uint64_t published_misses_ = 0;
  mutable std::uint64_t published_evictions_ = 0;
};

}  // namespace fcm::datapath
