#include "datapath/cached_framework.h"

#include <unordered_set>

#include "common/contracts.h"

namespace fcm::datapath {

CachedFramework::CachedFramework(Options options)
    : options_(std::move(options)),
      framework_([&] {
        // One telemetry knob for the whole composition (the sharded runtime
        // sets the same precedent): Options::metrics overrides the nested
        // framework's sink.
        options_.framework.metrics = options_.metrics;
        return options_.framework;
      }()),
      cache_(options_.cache) {
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr) return;
  std::vector<obs::MetricLabel> labels;
  if (!options_.metrics_instance.empty()) {
    labels.push_back({"instance", options_.metrics_instance});
  }
  instruments_.hits = &registry->counter(
      "fcm_datapath_cache_hits_total", labels,
      "Packets absorbed exactly by the heavy-flow cache");
  instruments_.misses = &registry->counter(
      "fcm_datapath_cache_misses_total", labels,
      "Packets that installed or displaced a heavy-flow cache entry");
  instruments_.evictions = &registry->counter(
      "fcm_datapath_cache_evictions_total", labels,
      "Flows demoted from the heavy-flow cache into the sketch");
  instruments_.resident_flows = &registry->gauge(
      "fcm_datapath_cache_resident_flows", labels,
      "Flows currently held exactly in the heavy-flow cache");
}

void CachedFramework::offer(flow::FlowKey key, std::uint64_t count) {
  if (count == 0) return;  // kBytes mode: a zero-byte packet adds nothing
  const HeavyFlowCache::Result result = cache_.offer(key, count);
  switch (result.outcome) {
    case HeavyFlowCache::Result::Outcome::kHit:
    case HeavyFlowCache::Result::Outcome::kInserted:
      return;
    case HeavyFlowCache::Result::Outcome::kEvicted:
      framework_.process_weighted(result.evicted_key, result.evicted_count);
      return;
    case HeavyFlowCache::Result::Outcome::kBypass:
      // Flow 0 (the cache's empty-slot sentinel) always takes the sketch.
      framework_.process_weighted(key, count);
      return;
  }
}

void CachedFramework::process(flow::FlowKey key) { offer(key, 1); }

void CachedFramework::process(const flow::Packet& packet) {
  if (options_.framework.count_mode ==
      framework::FcmFramework::CountMode::kBytes) {
    offer(packet.key, packet.bytes);
  } else {
    offer(packet.key, 1);
  }
}

void CachedFramework::process(std::span<const flow::Packet> packets) {
  if (options_.framework.count_mode ==
      framework::FcmFramework::CountMode::kBytes) {
    for (const flow::Packet& packet : packets) offer(packet.key, packet.bytes);
  } else {
    for (const flow::Packet& packet : packets) offer(packet.key, 1);
  }
}

void CachedFramework::process_batch(std::span<const flow::FlowKey> keys) {
  // No bulk kernel here on purpose: a hit is one hash + one increment —
  // already cheaper than the batched tree walk it replaces — and misses are
  // weighted demotions, which the batch kernel (+1-only) cannot express.
  for (const flow::FlowKey key : keys) offer(key, 1);
}

std::uint64_t CachedFramework::flow_size(flow::FlowKey key) const {
  return cache_.count_of(key) + framework_.flow_size(key);
}

std::vector<flow::FlowKey> CachedFramework::heavy_hitters() const {
  std::unordered_set<flow::FlowKey> merged;
  for (const flow::FlowKey key : framework_.heavy_hitters()) merged.insert(key);
  const std::uint64_t threshold = options_.framework.heavy_hitter_threshold;
  if (threshold > 0) {
    cache_.for_each([&](flow::FlowKey key, std::uint64_t count) {
      // Combined estimate: the resident exact count plus whatever earlier
      // demotions of this flow left in the sketch.
      if (count + framework_.flow_size(key) >= threshold) merged.insert(key);
    });
  }
  return {merged.begin(), merged.end()};
}

framework::FcmFramework CachedFramework::snapshot() const {
  publish_metrics();
  framework::FcmFramework folded = framework_;
  cache_.for_each([&](flow::FlowKey key, std::uint64_t count) {
    folded.process_weighted(key, count);
  });
  return folded;
}

void CachedFramework::reset() {
  publish_metrics();
  framework_.reset();
  cache_.clear();
  published_hits_ = published_misses_ = published_evictions_ = 0;
}

void CachedFramework::publish_metrics() const {
  if (instruments_.hits == nullptr) return;
  instruments_.hits->inc(cache_.hits() - published_hits_);
  instruments_.misses->inc(cache_.misses() - published_misses_);
  instruments_.evictions->inc(cache_.evictions() - published_evictions_);
  instruments_.resident_flows->set(
      static_cast<double>(cache_.resident_flows()));
  published_hits_ = cache_.hits();
  published_misses_ = cache_.misses();
  published_evictions_ = cache_.evictions();
}

void CachedFramework::check_invariants() const {
  framework_.check_invariants();
  cache_.check_invariants();
  FCM_ASSERT(published_hits_ <= cache_.hits() &&
                 published_misses_ <= cache_.misses() &&
                 published_evictions_ <= cache_.evictions(),
             "CachedFramework: published counters ahead of the cache ledger");
}

}  // namespace fcm::datapath
