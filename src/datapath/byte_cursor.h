// Bounds-checked cursor over a read-only byte buffer — the ONLY sanctioned
// way to index capture bytes in src/datapath (tools/fcm_lint.py rule
// "datapath-bounds" bans raw pointer arithmetic and memcpy/reinterpret_cast
// everywhere else in this directory; this header is the audited exception).
//
// Same hostile-input posture as agg::WireReader (DESIGN.md §11): every read
// is preceded by an explicit capacity check, multi-byte integers are
// assembled byte by byte in the requested endianness (no type punning, no
// alignment assumptions), and overrunning reads throw ContractViolation.
// Parsers that must not throw on malformed input (the per-packet paths) call
// can_read() first and turn shortfalls into typed outcomes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/contracts.h"

namespace fcm::datapath {

class ByteCursor {
 public:
  constexpr ByteCursor() = default;
  explicit constexpr ByteCursor(std::span<const std::byte> data) : data_(data) {}

  constexpr std::size_t offset() const noexcept { return pos_; }
  constexpr std::size_t size() const noexcept { return data_.size(); }
  constexpr std::size_t remaining() const noexcept { return data_.size() - pos_; }
  constexpr bool can_read(std::size_t bytes) const noexcept {
    return bytes <= remaining();
  }

  void skip(std::size_t bytes) {
    FCM_REQUIRE(can_read(bytes), "ByteCursor: skip past end of buffer");
    pos_ += bytes;
  }

  // Carves the next `bytes` as an independent cursor (e.g. one capture block)
  // and advances past them — downstream reads cannot escape the carved range.
  ByteCursor sub(std::size_t bytes) {
    FCM_REQUIRE(can_read(bytes), "ByteCursor: sub-range past end of buffer");
    ByteCursor sub_cursor(data_.subspan(pos_, bytes));
    pos_ += bytes;
    return sub_cursor;
  }

  // Checked view of the next `bytes` without consuming them.
  std::span<const std::byte> peek_bytes(std::size_t bytes) const {
    FCM_REQUIRE(can_read(bytes), "ByteCursor: peek past end of buffer");
    return data_.subspan(pos_, bytes);
  }

  std::span<const std::byte> bytes(std::size_t count) {
    FCM_REQUIRE(can_read(count), "ByteCursor: read past end of buffer");
    std::span<const std::byte> view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }

  std::uint8_t u8() {
    FCM_REQUIRE(can_read(1), "ByteCursor: u8 past end of buffer");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16le() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
  }
  std::uint16_t u16be() {
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
  }
  std::uint16_t u16(bool big_endian) { return big_endian ? u16be() : u16le(); }

  std::uint32_t u32le() {
    const std::uint32_t lo = u16le();
    return lo | (static_cast<std::uint32_t>(u16le()) << 16);
  }
  std::uint32_t u32be() {
    const std::uint32_t hi = u16be();
    return (hi << 16) | u16be();
  }
  std::uint32_t u32(bool big_endian) { return big_endian ? u32be() : u32le(); }

  std::uint64_t u64(bool big_endian) {
    const std::uint64_t first = u32(big_endian);
    const std::uint64_t second = u32(big_endian);
    return big_endian ? (first << 32) | second : first | (second << 32);
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace fcm::datapath
