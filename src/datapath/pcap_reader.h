// Capture-file reader: classic pcap (microsecond and nanosecond magics, both
// byte orders) and pcapng (SHB/IDB/EPB/SPB, both byte orders, per-interface
// if_tsresol). Input is HOSTILE (DESIGN.md §12): the reader never trusts a
// length field before checking it against the bytes actually present, all
// indexing goes through ByteCursor, and malformed input surfaces as typed
// outcomes — a PcapError for structural damage that precedes any packet
// (bad magic, truncated global header, absurd snaplen), per-record counters
// plus skip/terminate decisions for damage encountered mid-stream. Nothing
// in here is undefined behavior on any byte sequence (the hostile-capture
// suite in tests/test_pcap.cpp sweeps every truncation prefix and seeded
// corruption under ASan/UBSan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "datapath/byte_cursor.h"

namespace fcm::datapath {

// Structural (whole-file) corruption: unknown magic, truncated file header,
// unsupported version, absurd snaplen. Thrown before any packet is produced;
// mid-stream damage is reported through RecordOutcome/CaptureStats instead.
class PcapError : public std::runtime_error {
 public:
  explicit PcapError(const std::string& what) : std::runtime_error(what) {}
};

// One captured record, viewing the reader's underlying buffer (valid while
// the buffer outlives the reader).
struct RawRecord {
  std::span<const std::byte> bytes;  // captured bytes (caplen long)
  std::uint64_t timestamp_ns = 0;
  std::uint32_t original_length = 0;  // on-the-wire length (>= bytes.size())
  std::uint32_t link_type = 0;        // LINKTYPE_* of the capturing interface
};

// What next() found. kTruncated and kMalformedTerminal end the stream (the
// reader cannot resync); recoverable per-record damage is skipped internally
// and counted in CaptureStats, so callers only ever see these four.
enum class RecordOutcome : std::uint8_t {
  kRecord,             // `out` holds a packet
  kEndOfCapture,       // clean end of input
  kTruncated,          // record header or body cut off by end of input
  kMalformedTerminal,  // structurally inconsistent lengths; cannot resync
};

const char* to_string(RecordOutcome outcome);

struct CaptureStats {
  std::uint64_t records = 0;            // delivered packets
  std::uint64_t truncated = 0;          // stream ended inside a record/block
  std::uint64_t malformed_skipped = 0;  // bad record skipped (resync possible)
  std::uint64_t malformed_terminal = 0; // bad record ended the stream
  std::uint64_t blocks_skipped = 0;     // pcapng non-packet/unknown blocks
};

// Well-known LINKTYPE_* values the packet parser understands; the reader
// passes any value through (an exotic link type is a per-packet parser
// outcome, not a capture error).
inline constexpr std::uint32_t kLinkTypeNull = 0;
inline constexpr std::uint32_t kLinkTypeEthernet = 1;
inline constexpr std::uint32_t kLinkTypeRawIp = 101;
inline constexpr std::uint32_t kLinkTypeLoop = 108;

class PcapReader {
 public:
  // Sanity ceiling for per-record capture lengths and file snaplens; real
  // snaplens top out at 256 KiB, so anything past 64 MiB is corruption.
  static constexpr std::uint32_t kMaxCaptureLength = 1u << 26;

  // Sniffs the format from `data` (which must outlive the reader). Throws
  // PcapError when the input cannot be a capture file at all.
  explicit PcapReader(std::span<const std::byte> data);

  // Pulls the next packet. Returns kRecord and fills `out`, or a terminal
  // outcome (see RecordOutcome). Recoverable damage is skipped silently and
  // counted; call stats() for the tally.
  RecordOutcome next(RawRecord& out);

  const CaptureStats& stats() const noexcept { return stats_; }
  bool is_pcapng() const noexcept { return format_ == Format::kPcapNg; }
  bool big_endian() const noexcept { return big_endian_; }

 private:
  enum class Format : std::uint8_t { kClassic, kPcapNg };

  struct Interface {
    std::uint32_t link_type = kLinkTypeEthernet;
    std::uint32_t snaplen = 0;  // 0 = unlimited
    // Ticks per second of EPB timestamps (if_tsresol; default 10^6).
    std::uint64_t ticks_per_second = 1'000'000;
  };

  void parse_classic_header();
  void parse_section_header(ByteCursor block_body, bool first_section);
  RecordOutcome next_classic(RawRecord& out);
  RecordOutcome next_pcapng(RawRecord& out);
  bool parse_interface_block(ByteCursor body);
  bool parse_enhanced_packet(ByteCursor body, std::size_t body_size,
                             RawRecord& out);
  bool parse_simple_packet(ByteCursor body, std::size_t body_size,
                           RawRecord& out);

  ByteCursor cursor_;
  Format format_ = Format::kClassic;
  bool big_endian_ = false;
  bool nanosecond_ = false;       // classic: magic selects ns sub-second units
  bool terminated_ = false;       // a terminal outcome was already returned
  bool section_seen_ = false;     // pcapng: at least one SHB fully parsed
  std::uint32_t snaplen_ = 0;     // classic global header snaplen
  std::uint32_t link_type_ = kLinkTypeEthernet;  // classic global link type
  std::vector<Interface> interfaces_;            // pcapng, per current section
  CaptureStats stats_;
};

}  // namespace fcm::datapath
