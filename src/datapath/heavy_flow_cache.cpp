#include "datapath/heavy_flow_cache.h"

#include "common/contracts.h"

namespace fcm::datapath {

HeavyFlowCache::HeavyFlowCache(Options options) : options_(options) {
  FCM_REQUIRE(options_.ways >= 1, "HeavyFlowCache: ways must be >= 1");
  FCM_REQUIRE(options_.entries >= options_.ways &&
                  options_.entries % options_.ways == 0,
              "HeavyFlowCache: entries must be a positive multiple of ways");
  FCM_REQUIRE((options_.entries & (options_.entries - 1)) == 0,
              "HeavyFlowCache: entries must be a power of two");
  seed_low_ = static_cast<std::uint32_t>(options_.seed ^ (options_.seed >> 32));
  sets_ = options_.entries / options_.ways;
  table_.assign(options_.entries, Entry{});
}

HeavyFlowCache::Result HeavyFlowCache::offer(flow::FlowKey key,
                                             std::uint64_t count) {
  // FlowKey{0} doubles as the empty-slot sentinel (same convention as
  // TopKFilter): installing it would alias an empty way, so flow 0 always
  // takes the sketch path. The caller routes it; nothing is lost.
  if (key.value == 0) return Result{};
  const std::size_t base = set_base(key);
  std::size_t victim = base;
  for (std::size_t way = 0; way < options_.ways; ++way) {
    Entry& entry = table_[base + way];
    if (entry.key == key) {
      entry.count += count;
      ++hits_;
      offered_units_ += count;
      return Result{Result::Outcome::kHit, {}, 0};
    }
    if (entry.key.value == 0) {
      // First empty way wins; no eviction needed.
      entry.key = key;
      entry.count = count;
      ++misses_;
      offered_units_ += count;
      return Result{Result::Outcome::kInserted, {}, 0};
    }
    if (entry.count < table_[victim].count) victim = base + way;
  }
  // Set full: displace the lightest entry. The new flow starts its exact
  // count here; the victim's exact count is handed back for demotion.
  Entry& entry = table_[victim];
  Result result{Result::Outcome::kEvicted, entry.key, entry.count};
  entry.key = key;
  entry.count = count;
  ++misses_;
  ++evictions_;
  offered_units_ += count;
  evicted_units_ += result.evicted_count;
  return result;
}

std::uint64_t HeavyFlowCache::count_of(flow::FlowKey key) const {
  if (key.value == 0) return 0;
  const std::size_t base = set_base(key);
  for (std::size_t way = 0; way < options_.ways; ++way) {
    const Entry& entry = table_[base + way];
    if (entry.key == key) return entry.count;
  }
  return 0;
}

void HeavyFlowCache::clear() {
  table_.assign(options_.entries, Entry{});
  hits_ = misses_ = evictions_ = 0;
  offered_units_ = evicted_units_ = 0;
}

std::uint64_t HeavyFlowCache::resident_units() const {
  std::uint64_t total = 0;
  for (const Entry& entry : table_) total += entry.count;
  return total;
}

std::size_t HeavyFlowCache::resident_flows() const {
  std::size_t flows = 0;
  for (const Entry& entry : table_) flows += entry.key.value != 0 ? 1 : 0;
  return flows;
}

void HeavyFlowCache::check_invariants() const {
  FCM_ASSERT(table_.size() == options_.entries,
             "HeavyFlowCache: table size drifted from configuration");
  std::uint64_t resident = 0;
  for (const Entry& entry : table_) {
    if (entry.key.value == 0) {
      FCM_ASSERT(entry.count == 0, "HeavyFlowCache: empty slot carries count");
    } else {
      FCM_ASSERT(entry.count > 0, "HeavyFlowCache: resident flow with zero count");
      resident += entry.count;
    }
  }
  // Conservation ledger: everything accepted is either still resident or was
  // handed back to the caller for demotion. (drain()/clear() reset both
  // sides together.)
  FCM_ASSERT(offered_units_ == resident + evicted_units_,
             "HeavyFlowCache: unit ledger out of balance");
  FCM_ASSERT(hits_ + misses_ >= evictions_,
             "HeavyFlowCache: more evictions than offers");
}

}  // namespace fcm::datapath
