// L2-L4 header parser: captured bytes -> flow::FiveTuple. Covers Ethernet
// (with stacked 802.1Q/802.1ad VLAN tags), IPv4 (IHL-validated), IPv6 (with
// a bounded extension-header walk), TCP/UDP ports, and an ICMP/other-protocol
// fallback that keys on addresses alone. Raw-IP and BSD loopback link types
// are handled for completeness.
//
// Hostile-input posture (DESIGN.md §12): the packet is untrusted bytes. Every
// header field is range-checked against the CAPTURED length through
// ByteCursor before use; a packet that fails any check yields a typed
// ParseOutcome (counted by the ingest layer) instead of a crash, a throw, or
// a bogus tuple. parse_packet never throws and never reads out of bounds.
#pragma once

#include <cstdint>

#include "datapath/pcap_reader.h"
#include "flow/flow_key.h"

namespace fcm::datapath {

enum class ParseOutcome : std::uint8_t {
  kOk = 0,
  kUnsupportedLinkType,   // link type the parser has no decoder for
  kUnsupportedEtherType,  // non-IP payload (ARP, LLDP, ...) — not an error
  kTruncatedLink,         // capture ends inside the L2 header
  kBadIpHeader,           // IHL < 20 bytes, version mismatch, overlapping
                          // lengths (total_length < header), bad ext chain
  kTruncatedIp,           // capture ends inside the IP header
  kBadTransportHeader,    // TCP data offset < 20 bytes / UDP length < 8
  kTruncatedTransport,    // capture ends inside the TCP/UDP header
  kOutcomeCount,          // sentinel: number of outcomes (for counters)
};

inline constexpr std::size_t kParseOutcomeCount =
    static_cast<std::size_t>(ParseOutcome::kOutcomeCount);

const char* to_string(ParseOutcome outcome);

struct ParsedPacket {
  flow::FiveTuple tuple;
  std::uint64_t timestamp_ns = 0;
  std::uint32_t wire_bytes = 0;  // original on-the-wire length
  std::uint8_t ip_version = 0;   // 4 or 6
};

// Decodes one captured record. Returns kOk and fills `out` completely, or a
// typed failure outcome (out is unspecified). For IPv6, src_ip/dst_ip carry
// a deterministic 32-bit fold of the 128-bit addresses so v6 flows share the
// FlowKey keyspace (documented in DESIGN.md §12). Fragments with a nonzero
// offset and non-TCP/UDP protocols parse kOk with ports 0.
ParseOutcome parse_packet(const RawRecord& record, ParsedPacket& out);

}  // namespace fcm::datapath
