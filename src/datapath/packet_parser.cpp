#include "datapath/packet_parser.h"

#include "common/hash.h"
#include "datapath/byte_cursor.h"

namespace fcm::datapath {

namespace {

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kEtherTypeIpv6 = 0x86DD;
constexpr std::uint16_t kEtherTypeVlan = 0x8100;   // 802.1Q
constexpr std::uint16_t kEtherTypeQinQ = 0x88A8;   // 802.1ad
constexpr std::uint16_t kEtherTypeVlan9100 = 0x9100;  // legacy QinQ

constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;

bool is_vlan(std::uint16_t ether_type) {
  return ether_type == kEtherTypeVlan || ether_type == kEtherTypeQinQ ||
         ether_type == kEtherTypeVlan9100;
}

// Deterministic 32-bit fold of a 128-bit IPv6 address (big-endian halves
// mixed through mix64) so v6 flows live in the same FlowKey space as v4.
std::uint32_t fold_ipv6_address(ByteCursor& cursor) {
  std::uint64_t high = 0;
  std::uint64_t low = 0;
  for (int i = 0; i < 8; ++i) high = (high << 8) | cursor.u8();
  for (int i = 0; i < 8; ++i) low = (low << 8) | cursor.u8();
  const std::uint64_t mixed = common::mix64(high ^ common::mix64(low));
  return static_cast<std::uint32_t>(mixed ^ (mixed >> 32));
}

// Transport layer. `protocol` is the final IP next-header; non-TCP/UDP
// protocols (ICMP and everything else) key on addresses alone: ports stay 0.
ParseOutcome parse_transport(ByteCursor cursor, std::uint8_t protocol,
                             flow::FiveTuple& tuple) {
  switch (protocol) {
    case kProtoTcp: {
      if (!cursor.can_read(20)) return ParseOutcome::kTruncatedTransport;
      tuple.src_port = cursor.u16be();
      tuple.dst_port = cursor.u16be();
      cursor.skip(8);  // sequence + ack numbers
      const unsigned data_offset_words = cursor.u8() >> 4;
      if (data_offset_words < 5) return ParseOutcome::kBadTransportHeader;
      return ParseOutcome::kOk;
    }
    case kProtoUdp: {
      if (!cursor.can_read(8)) return ParseOutcome::kTruncatedTransport;
      tuple.src_port = cursor.u16be();
      tuple.dst_port = cursor.u16be();
      const std::uint16_t udp_length = cursor.u16be();
      if (udp_length < 8) return ParseOutcome::kBadTransportHeader;
      return ParseOutcome::kOk;
    }
    default:
      return ParseOutcome::kOk;  // ICMP & friends: address-keyed flow
  }
}

ParseOutcome parse_ipv4(ByteCursor cursor, ParsedPacket& out) {
  if (!cursor.can_read(20)) return ParseOutcome::kTruncatedIp;
  const std::uint8_t version_ihl = cursor.u8();
  if ((version_ihl >> 4) != 4) return ParseOutcome::kBadIpHeader;
  const std::size_t header_length = (version_ihl & 0x0f) * std::size_t{4};
  if (header_length < 20) return ParseOutcome::kBadIpHeader;  // zero/short IHL
  cursor.skip(1);  // DSCP/ECN
  const std::uint16_t total_length = cursor.u16be();
  // A datagram shorter than its own header means the "payload" would overlap
  // the header bytes — classic crafted-packet territory.
  if (total_length < header_length) return ParseOutcome::kBadIpHeader;
  cursor.skip(2);  // identification
  const std::uint16_t flags_fragment = cursor.u16be();
  cursor.skip(1);  // TTL
  const std::uint8_t protocol = cursor.u8();
  cursor.skip(2);  // header checksum
  out.tuple.src_ip = cursor.u32be();
  out.tuple.dst_ip = cursor.u32be();
  out.tuple.protocol = protocol;
  out.ip_version = 4;
  const std::size_t options_length = header_length - 20;
  if (!cursor.can_read(options_length)) return ParseOutcome::kTruncatedIp;
  cursor.skip(options_length);
  if ((flags_fragment & 0x1fff) != 0) {
    return ParseOutcome::kOk;  // non-first fragment: no L4 header on the wire
  }
  return parse_transport(cursor, protocol, out.tuple);
}

ParseOutcome parse_ipv6(ByteCursor cursor, ParsedPacket& out) {
  if (!cursor.can_read(40)) return ParseOutcome::kTruncatedIp;
  const std::uint32_t version_class_label = cursor.u32be();
  if ((version_class_label >> 28) != 6) return ParseOutcome::kBadIpHeader;
  cursor.skip(2);  // payload length (capture may be sliced; not trusted)
  std::uint8_t next_header = cursor.u8();
  cursor.skip(1);  // hop limit
  out.tuple.src_ip = fold_ipv6_address(cursor);
  out.tuple.dst_ip = fold_ipv6_address(cursor);
  out.ip_version = 6;
  // Bounded extension-header walk; a longer chain than this is either an
  // attack or garbage.
  for (int depth = 0; depth < 8; ++depth) {
    switch (next_header) {
      case 0:     // hop-by-hop options
      case 43:    // routing
      case 60: {  // destination options
        if (!cursor.can_read(2)) return ParseOutcome::kTruncatedIp;
        const std::uint8_t following = cursor.u8();
        const std::size_t extension_length =
            (static_cast<std::size_t>(cursor.u8()) + 1) * 8;
        if (!cursor.can_read(extension_length - 2)) {
          return ParseOutcome::kTruncatedIp;
        }
        cursor.skip(extension_length - 2);
        next_header = following;
        continue;
      }
      case 44: {  // fragment (fixed 8 bytes)
        if (!cursor.can_read(8)) return ParseOutcome::kTruncatedIp;
        const std::uint8_t following = cursor.u8();
        cursor.skip(1);  // reserved
        const std::uint16_t offset_flags = cursor.u16be();
        cursor.skip(4);  // identification
        out.tuple.protocol = following;
        if ((offset_flags >> 3) != 0) {
          return ParseOutcome::kOk;  // non-first fragment: no L4 header
        }
        next_header = following;
        continue;
      }
      case 59:  // no next header
        out.tuple.protocol = next_header;
        return ParseOutcome::kOk;
      default:
        out.tuple.protocol = next_header;
        return parse_transport(cursor, next_header, out.tuple);
    }
  }
  return ParseOutcome::kBadIpHeader;  // absurd extension chain
}

ParseOutcome parse_raw_ip(ByteCursor cursor, ParsedPacket& out) {
  if (!cursor.can_read(1)) return ParseOutcome::kTruncatedIp;
  const std::uint8_t version = ByteCursor(cursor.peek_bytes(1)).u8() >> 4;
  if (version == 4) return parse_ipv4(cursor, out);
  if (version == 6) return parse_ipv6(cursor, out);
  return ParseOutcome::kBadIpHeader;
}

}  // namespace

const char* to_string(ParseOutcome outcome) {
  switch (outcome) {
    case ParseOutcome::kOk: return "ok";
    case ParseOutcome::kUnsupportedLinkType: return "unsupported-link-type";
    case ParseOutcome::kUnsupportedEtherType: return "unsupported-ether-type";
    case ParseOutcome::kTruncatedLink: return "truncated-link";
    case ParseOutcome::kBadIpHeader: return "bad-ip-header";
    case ParseOutcome::kTruncatedIp: return "truncated-ip";
    case ParseOutcome::kBadTransportHeader: return "bad-transport-header";
    case ParseOutcome::kTruncatedTransport: return "truncated-transport";
    case ParseOutcome::kOutcomeCount: break;
  }
  return "unknown";
}

ParseOutcome parse_packet(const RawRecord& record, ParsedPacket& out) {
  out = ParsedPacket{};
  out.timestamp_ns = record.timestamp_ns;
  out.wire_bytes = record.original_length;
  ByteCursor cursor(record.bytes);
  switch (record.link_type) {
    case kLinkTypeEthernet: {
      if (!cursor.can_read(14)) return ParseOutcome::kTruncatedLink;
      cursor.skip(12);  // dst + src MAC
      std::uint16_t ether_type = cursor.u16be();
      for (int tags = 0; tags < 4 && is_vlan(ether_type); ++tags) {
        if (!cursor.can_read(4)) return ParseOutcome::kTruncatedLink;
        cursor.skip(2);  // PCP/DEI/VID
        ether_type = cursor.u16be();
      }
      if (is_vlan(ether_type)) return ParseOutcome::kBadIpHeader;  // tag bomb
      if (ether_type == kEtherTypeIpv4) return parse_ipv4(cursor, out);
      if (ether_type == kEtherTypeIpv6) return parse_ipv6(cursor, out);
      return ParseOutcome::kUnsupportedEtherType;
    }
    case kLinkTypeRawIp:
      return parse_raw_ip(cursor, out);
    case kLinkTypeNull:
    case kLinkTypeLoop: {
      // 4-byte AF_* family header in the CAPTURING host's byte order; accept
      // either (the values are small, so the swapped form is unambiguous).
      if (!cursor.can_read(4)) return ParseOutcome::kTruncatedLink;
      std::uint32_t family = cursor.u32le();
      if (family > 0xffff) {
        family = (family >> 24) | ((family >> 8) & 0xff00);
      }
      if (family == 2) return parse_ipv4(cursor, out);
      if (family == 24 || family == 28 || family == 30) {
        return parse_ipv6(cursor, out);
      }
      return ParseOutcome::kUnsupportedEtherType;
    }
    default:
      return ParseOutcome::kUnsupportedLinkType;
  }
}

}  // namespace fcm::datapath
