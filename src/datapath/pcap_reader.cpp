#include "datapath/pcap_reader.h"

#include <algorithm>

namespace fcm::datapath {

namespace {

// Classic pcap magics, as read little-endian from the first four bytes.
constexpr std::uint32_t kMagicMicroLe = 0xa1b2c3d4;
constexpr std::uint32_t kMagicMicroBe = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanoLe = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanoBe = 0x4d3cb2a1;

// pcapng block types. The SHB type is a byte palindrome (0A 0D 0D 0A), so it
// reads the same in either byte order — exactly why the format chose it.
constexpr std::uint32_t kBlockSectionHeader = 0x0A0D0D0A;
constexpr std::uint32_t kBlockInterface = 0x00000001;
constexpr std::uint32_t kBlockSimplePacket = 0x00000003;
constexpr std::uint32_t kBlockEnhancedPacket = 0x00000006;

// SHB byte-order magic as read little-endian: a little-endian section stores
// 2B 3C 4D 1A... i.e. reads back 0x1A2B3C4D; a big-endian one 0x4D3C2B1A.
constexpr std::uint32_t kByteOrderLe = 0x1A2B3C4D;
constexpr std::uint32_t kByteOrderBe = 0x4D3C2B1A;

constexpr std::uint64_t kNanosPerSecond = 1'000'000'000;

std::uint64_t ticks_to_nanos(std::uint64_t ticks, std::uint64_t ticks_per_second) {
  if (ticks_per_second == kNanosPerSecond) return ticks;
  // 128-bit intermediate: exact for every resolution if_tsresol can express.
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(ticks) *
                                    kNanosPerSecond / ticks_per_second);
}

}  // namespace

const char* to_string(RecordOutcome outcome) {
  switch (outcome) {
    case RecordOutcome::kRecord: return "record";
    case RecordOutcome::kEndOfCapture: return "end-of-capture";
    case RecordOutcome::kTruncated: return "truncated";
    case RecordOutcome::kMalformedTerminal: return "malformed-terminal";
  }
  return "unknown";
}

PcapReader::PcapReader(std::span<const std::byte> data) : cursor_(data) {
  FCM_REQUIRE(!data.empty(), "PcapReader: empty capture buffer");
  if (!cursor_.can_read(4)) throw PcapError("pcap: shorter than any magic");
  const std::uint32_t magic = ByteCursor(cursor_.peek_bytes(4)).u32le();
  switch (magic) {
    case kMagicMicroLe: big_endian_ = false; nanosecond_ = false; break;
    case kMagicMicroBe: big_endian_ = true; nanosecond_ = false; break;
    case kMagicNanoLe: big_endian_ = false; nanosecond_ = true; break;
    case kMagicNanoBe: big_endian_ = true; nanosecond_ = true; break;
    case kBlockSectionHeader:
      format_ = Format::kPcapNg;
      // Byte order comes from the SHB body, parsed by the first next().
      return;
    default:
      throw PcapError("pcap: unrecognized magic number");
  }
  parse_classic_header();
}

void PcapReader::parse_classic_header() {
  if (!cursor_.can_read(24)) throw PcapError("pcap: truncated global header");
  cursor_.skip(4);  // magic, already sniffed
  const std::uint16_t version_major = cursor_.u16(big_endian_);
  cursor_.skip(2 + 4 + 4);  // version_minor, thiszone, sigfigs
  snaplen_ = cursor_.u32(big_endian_);
  link_type_ = cursor_.u32(big_endian_);
  if (version_major != 2) {
    throw PcapError("pcap: unsupported major version");
  }
  if (snaplen_ > kMaxCaptureLength) {
    throw PcapError("pcap: absurd snaplen in global header");
  }
}

RecordOutcome PcapReader::next(RawRecord& out) {
  if (terminated_) return RecordOutcome::kEndOfCapture;
  const RecordOutcome outcome = format_ == Format::kPcapNg
                                    ? next_pcapng(out)
                                    : next_classic(out);
  if (outcome != RecordOutcome::kRecord) terminated_ = true;
  return outcome;
}

RecordOutcome PcapReader::next_classic(RawRecord& out) {
  for (;;) {
    if (cursor_.remaining() == 0) return RecordOutcome::kEndOfCapture;
    if (!cursor_.can_read(16)) {
      ++stats_.truncated;
      return RecordOutcome::kTruncated;
    }
    const std::uint64_t seconds = cursor_.u32(big_endian_);
    const std::uint64_t subsecond = cursor_.u32(big_endian_);
    const std::uint32_t capture_length = cursor_.u32(big_endian_);
    const std::uint32_t original_length = cursor_.u32(big_endian_);
    if (capture_length > kMaxCaptureLength) {
      // The length itself is garbage, so there is no trustworthy way to find
      // the next record boundary.
      ++stats_.malformed_terminal;
      return RecordOutcome::kMalformedTerminal;
    }
    if (!cursor_.can_read(capture_length)) {
      ++stats_.truncated;
      return RecordOutcome::kTruncated;
    }
    const std::uint64_t subsecond_limit =
        nanosecond_ ? kNanosPerSecond : 1'000'000;
    const bool oversized = snaplen_ > 0 && capture_length > snaplen_;
    if (oversized || subsecond >= subsecond_limit ||
        original_length < capture_length) {
      // Internally inconsistent but length-delimited: skip and resync.
      ++stats_.malformed_skipped;
      cursor_.skip(capture_length);
      continue;
    }
    out.bytes = cursor_.bytes(capture_length);
    out.timestamp_ns = seconds * kNanosPerSecond +
                       (nanosecond_ ? subsecond : subsecond * 1000);
    out.original_length = original_length;
    out.link_type = link_type_;
    ++stats_.records;
    return RecordOutcome::kRecord;
  }
}

void PcapReader::parse_section_header(ByteCursor body, bool first_section) {
  // Caller validated the byte-order magic; body starts right after it.
  const std::uint16_t version_major = body.u16(big_endian_);
  if (version_major != 1) {
    if (first_section) throw PcapError("pcapng: unsupported major version");
    ++stats_.malformed_skipped;
  }
  // A new section resets interface state (IDs are section-scoped).
  interfaces_.clear();
}

bool PcapReader::parse_interface_block(ByteCursor body) {
  if (!body.can_read(8)) return false;
  Interface iface;
  iface.link_type = body.u16(big_endian_);
  body.skip(2);  // reserved
  iface.snaplen = std::min(body.u32(big_endian_), kMaxCaptureLength);
  // Option walk, only for if_tsresol (code 9). Options are TLVs padded to 4;
  // any inconsistency just ends the walk (defaults stay in force).
  while (body.can_read(4)) {
    const std::uint16_t code = body.u16(big_endian_);
    const std::uint16_t length = body.u16(big_endian_);
    if (code == 0) break;  // opt_endofopt
    const std::size_t padded = (static_cast<std::size_t>(length) + 3) & ~std::size_t{3};
    if (!body.can_read(padded)) break;
    if (code == 9 && length == 1) {
      const std::uint8_t resolution = ByteCursor(body.peek_bytes(1)).u8();
      if ((resolution & 0x80) != 0) {
        const unsigned exponent = resolution & 0x7f;
        if (exponent <= 30) iface.ticks_per_second = std::uint64_t{1} << exponent;
      } else if (resolution <= 9) {
        std::uint64_t ticks = 1;
        for (unsigned i = 0; i < resolution; ++i) ticks *= 10;
        iface.ticks_per_second = ticks;
      }
      // Finer-than-nanosecond (or nonsense) resolutions keep the default.
    }
    body.skip(padded);
  }
  interfaces_.push_back(iface);
  return true;
}

bool PcapReader::parse_enhanced_packet(ByteCursor body, std::size_t body_size,
                                       RawRecord& out) {
  if (body_size < 20) return false;
  const std::uint32_t interface_id = body.u32(big_endian_);
  const std::uint64_t ticks_high = body.u32(big_endian_);
  const std::uint64_t ticks_low = body.u32(big_endian_);
  const std::uint32_t capture_length = body.u32(big_endian_);
  const std::uint32_t original_length = body.u32(big_endian_);
  if (interface_id >= interfaces_.size()) return false;
  if (capture_length > kMaxCaptureLength) return false;
  if (!body.can_read(capture_length)) return false;  // claims more than block holds
  if (original_length < capture_length) return false;
  const Interface& iface = interfaces_[interface_id];
  out.bytes = body.bytes(capture_length);
  out.timestamp_ns =
      ticks_to_nanos((ticks_high << 32) | ticks_low, iface.ticks_per_second);
  out.original_length = original_length;
  out.link_type = iface.link_type;
  return true;
}

bool PcapReader::parse_simple_packet(ByteCursor body, std::size_t body_size,
                                     RawRecord& out) {
  if (body_size < 4) return false;
  if (interfaces_.empty()) return false;  // SPB implies interface 0 exists
  const std::uint32_t original_length = body.u32(big_endian_);
  const Interface& iface = interfaces_.front();
  std::uint32_t capture_length = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(original_length, body.remaining()));
  if (iface.snaplen > 0) capture_length = std::min(capture_length, iface.snaplen);
  out.bytes = body.bytes(capture_length);
  out.timestamp_ns = 0;  // SPBs carry no timestamp
  out.original_length = original_length;
  out.link_type = iface.link_type;
  return true;
}

RecordOutcome PcapReader::next_pcapng(RawRecord& out) {
  for (;;) {
    if (cursor_.remaining() == 0) return RecordOutcome::kEndOfCapture;
    if (!cursor_.can_read(12)) {
      ++stats_.truncated;
      return RecordOutcome::kTruncated;
    }
    ByteCursor head(cursor_.peek_bytes(12));
    const std::uint32_t type_le = head.u32le();
    const std::uint32_t length_word_le = head.u32le();
    const bool is_section_header = type_le == kBlockSectionHeader;
    if (is_section_header) {
      // Byte order is (re)established by the byte-order magic at offset 8;
      // only then can the length word be interpreted.
      const std::uint32_t order_magic_le = head.u32le();
      if (order_magic_le == kByteOrderLe) {
        big_endian_ = false;
      } else if (order_magic_le == kByteOrderBe) {
        big_endian_ = true;
      } else {
        ++stats_.malformed_terminal;
        return RecordOutcome::kMalformedTerminal;
      }
    }
    const std::uint32_t total_length =
        big_endian_ ? (length_word_le >> 24) | ((length_word_le >> 8) & 0xff00) |
                          ((length_word_le << 8) & 0xff0000) |
                          (length_word_le << 24)
                    : length_word_le;
    const std::size_t minimum = is_section_header ? 28 : 12;
    if (total_length < minimum || total_length % 4 != 0 ||
        total_length > kMaxCaptureLength) {
      ++stats_.malformed_terminal;
      return RecordOutcome::kMalformedTerminal;
    }
    if (!cursor_.can_read(total_length)) {
      ++stats_.truncated;
      return RecordOutcome::kTruncated;
    }
    ByteCursor block = cursor_.sub(total_length);
    block.skip(8);  // type + leading length
    const std::size_t body_size = total_length - 12;
    ByteCursor body = block.sub(body_size);
    if (block.u32(big_endian_) != total_length) {
      // Leading/trailing length mismatch: the stream's framing is gone.
      ++stats_.malformed_terminal;
      return RecordOutcome::kMalformedTerminal;
    }
    const std::uint32_t type =
        big_endian_ ? (type_le >> 24) | ((type_le >> 8) & 0xff00) |
                          ((type_le << 8) & 0xff0000) | (type_le << 24)
                    : type_le;
    if (is_section_header) {
      body.skip(4);  // byte-order magic, validated above
      parse_section_header(body, !section_seen_);
      section_seen_ = true;
      continue;
    }
    switch (type) {
      case kBlockInterface:
        if (!parse_interface_block(body)) ++stats_.malformed_skipped;
        continue;
      case kBlockEnhancedPacket:
        if (parse_enhanced_packet(body, body_size, out)) {
          ++stats_.records;
          return RecordOutcome::kRecord;
        }
        ++stats_.malformed_skipped;
        continue;
      case kBlockSimplePacket:
        if (parse_simple_packet(body, body_size, out)) {
          ++stats_.records;
          return RecordOutcome::kRecord;
        }
        ++stats_.malformed_skipped;
        continue;
      default:
        ++stats_.blocks_skipped;
        continue;
    }
  }
}

}  // namespace fcm::datapath
