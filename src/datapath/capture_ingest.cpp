#include "datapath/capture_ingest.h"

#include <fstream>
#include <stdexcept>

namespace fcm::datapath {

DecodedCapture decode_capture(std::span<const std::byte> data) {
  DecodedCapture decoded;
  PcapReader reader(data);
  RawRecord record;
  for (;;) {
    const RecordOutcome outcome = reader.next(record);
    if (outcome != RecordOutcome::kRecord) {
      decoded.stats.capture_end = outcome;
      break;
    }
    ParsedPacket parsed;
    const ParseOutcome parse_outcome = parse_packet(record, parsed);
    ++decoded.stats.parse_outcomes[static_cast<std::size_t>(parse_outcome)];
    if (parse_outcome != ParseOutcome::kOk) continue;
    ++decoded.stats.parsed;
    decoded.trace.append(flow::Packet{parsed.tuple.source_key(),
                                      parsed.wire_bytes, parsed.timestamp_ns});
    decoded.tuples.push_back(parsed.tuple);
  }
  decoded.stats.capture = reader.stats();
  return decoded;
}

DecodedCapture load_capture(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw std::runtime_error("load_capture: cannot open " + path);
  const std::streamsize size = file.tellg();
  file.seekg(0, std::ios::beg);
  std::vector<char> raw(static_cast<std::size_t>(size));
  if (size > 0 && !file.read(raw.data(), size)) {
    throw std::runtime_error("load_capture: short read on " + path);
  }
  return decode_capture(std::as_bytes(std::span<const char>(raw)));
}

void export_metrics(const DecodeStats& stats, obs::MetricsRegistry* registry,
                    const std::string& instance) {
  if (registry == nullptr) return;
  auto labels = [&](const char* name,
                    const char* value) -> std::vector<obs::MetricLabel> {
    std::vector<obs::MetricLabel> result;
    if (!instance.empty()) result.push_back({"instance", instance});
    if (value != nullptr) result.push_back({name, value});
    return result;
  };
  registry
      ->counter("fcm_datapath_packets_total", labels(nullptr, nullptr),
                "Capture records decoded into trace packets")
      .inc(stats.parsed);
  registry
      ->counter("fcm_datapath_capture_truncated_total", labels(nullptr, nullptr),
                "Capture records lost to end-of-input truncation")
      .inc(stats.capture.truncated);
  registry
      ->counter("fcm_datapath_capture_malformed_total", labels(nullptr, nullptr),
                "Capture records skipped or terminal due to corrupt framing")
      .inc(stats.capture.malformed_skipped + stats.capture.malformed_terminal);
  // Per-outcome parse failures, labeled by the typed outcome name.
  for (std::size_t i = 1; i < stats.parse_outcomes.size(); ++i) {
    if (stats.parse_outcomes[i] == 0) continue;
    registry
        ->counter("fcm_datapath_parse_failures_total",
                  labels("outcome", to_string(static_cast<ParseOutcome>(i))),
                  "Captured packets the L2-L4 parser rejected, by outcome")
        .inc(stats.parse_outcomes[i]);
  }
}

}  // namespace fcm::datapath
