// Capture bytes -> flow::Trace: the glue between the pcap reader, the packet
// parser, and everything downstream that already consumes traces (frameworks,
// benches, golden-metric tests). Parse failures are COUNTED per typed outcome
// and skipped — a capture full of garbage decodes to a short trace plus an
// honest ledger, never a crash (DESIGN.md §12).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "datapath/packet_parser.h"
#include "datapath/pcap_reader.h"
#include "flow/trace.h"
#include "obs/metrics_registry.h"

namespace fcm::datapath {

struct DecodeStats {
  CaptureStats capture;                 // reader-level ledger
  RecordOutcome capture_end = RecordOutcome::kEndOfCapture;  // how it ended
  std::uint64_t parsed = 0;             // records decoded into trace packets
  // Per-outcome parse tally (index = ParseOutcome; kOk counts into parsed).
  std::array<std::uint64_t, kParseOutcomeCount> parse_outcomes{};

  std::uint64_t parse_failures() const {
    std::uint64_t failures = 0;
    for (std::size_t i = 1; i < parse_outcomes.size(); ++i) {
      failures += parse_outcomes[i];
    }
    return failures;
  }
};

struct DecodedCapture {
  flow::Trace trace;                    // key = FiveTuple::source_key()
  std::vector<flow::FiveTuple> tuples;  // parallel to trace.packets()
  DecodeStats stats;
};

// Decodes an in-memory capture. Packet bytes are the ORIGINAL wire length
// (so kBytes-mode frameworks measure real traffic volume even for sliced
// captures). Throws PcapError only for structural pre-packet damage; every
// mid-stream problem lands in stats.
DecodedCapture decode_capture(std::span<const std::byte> data);

// Reads `path` fully and decodes it. Throws std::runtime_error on I/O
// failure, PcapError as above.
DecodedCapture load_capture(const std::string& path);

// Publishes the decode ledger as fcm_datapath_* counters (hit the same
// registry the frameworks use; instance label optional, "" = unlabeled).
void export_metrics(const DecodeStats& stats, obs::MetricsRegistry* registry,
                    const std::string& instance = "");

}  // namespace fcm::datapath
