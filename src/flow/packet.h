// A measurement-plane view of a packet: just what sketches consume.
#pragma once

#include <cstdint>

#include "flow/flow_key.h"

namespace fcm::flow {

struct Packet {
  FlowKey key;
  std::uint32_t bytes = 0;       // payload size; counts can be packets or bytes
  std::uint64_t timestamp_ns = 0;
};

}  // namespace fcm::flow
