#include "flow/trace_io.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fcm::flow {
namespace {

constexpr char kMagic[8] = {'F', 'C', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

struct Record {
  std::uint32_t key;
  std::uint32_t bytes;
  std::uint64_t timestamp_ns;
};
static_assert(sizeof(Record) == 16);

template <typename T>
void write_value(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
void read_value(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("trace file truncated");
}

}  // namespace

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  write_value(out, kVersion);
  write_value(out, std::uint32_t{0});  // reserved
  write_value(out, static_cast<std::uint64_t>(trace.size()));
  for (const Packet& p : trace.packets()) {
    const Record record{p.key.value, p.bytes, p.timestamp_ns};
    write_value(out, record);
  }
  if (!out) throw std::runtime_error("short write to trace file: " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an FCM trace file: " + path);
  }
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  read_value(in, version);
  read_value(in, reserved);
  if (version != kVersion) {
    throw std::runtime_error("unsupported trace file version: " + path);
  }
  std::uint64_t count = 0;
  read_value(in, count);
  // Validate the header count against the actual file size BEFORE reserving:
  // a corrupt/hostile count (e.g. 2^60) would otherwise turn into a
  // multi-exabyte reserve() — std::bad_alloc at best, an OOM-killed process
  // at worst (found by test_trace_io's corrupt-header suite).
  const std::streampos body_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos file_end = in.tellg();
  if (body_start == std::streampos(-1) || file_end == std::streampos(-1)) {
    throw std::runtime_error("cannot determine trace file size: " + path);
  }
  const auto body_bytes =
      static_cast<std::uint64_t>(file_end - body_start);
  if (count > body_bytes / sizeof(Record)) {
    throw std::runtime_error("trace file truncated or corrupt header: " + path +
                             " declares more records than the file holds");
  }
  in.seekg(body_start);
  std::vector<Packet> packets;
  packets.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Record record{};
    read_value(in, record);
    packets.push_back(Packet{FlowKey{record.key}, record.bytes, record.timestamp_ns});
  }
  return Trace(std::move(packets));
}

std::optional<Trace> load_trace_from_env() {
  // getenv is read-only here and nothing in the tree calls setenv, so the
  // data race concurrency-mt-unsafe guards against cannot occur.
  const char* path = std::getenv("FCM_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (path == nullptr || *path == '\0') return std::nullopt;
  return load_trace(path);
}

}  // namespace fcm::flow
