// Flow identifiers.
//
// The paper's evaluation keys flows by source IP (§7.2); applications may use
// the full 5-tuple. Both are provided. FlowKey is the 32-bit source-IP key
// used throughout the evaluation; FiveTuple converts down to it.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"

namespace fcm::flow {

// 32-bit flow key (source IPv4 address in the paper's setup).
struct FlowKey {
  std::uint32_t value = 0;

  constexpr auto operator<=>(const FlowKey&) const = default;
};

// Full transport 5-tuple, for applications that need finer granularity.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  constexpr auto operator<=>(const FiveTuple&) const = default;

  // The evaluation key: source host.
  constexpr FlowKey source_key() const noexcept { return FlowKey{src_ip}; }
};

// Dotted-quad rendering, for logs and examples.
std::string to_string(FlowKey key);

}  // namespace fcm::flow

template <>
struct std::hash<fcm::flow::FlowKey> {
  std::size_t operator()(const fcm::flow::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(fcm::common::mix64(k.value));
  }
};

template <>
struct std::hash<fcm::flow::FiveTuple> {
  std::size_t operator()(const fcm::flow::FiveTuple& t) const noexcept {
    std::uint64_t a = (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip;
    std::uint64_t b = (static_cast<std::uint64_t>(t.src_port) << 24) |
                      (static_cast<std::uint64_t>(t.dst_port) << 8) | t.protocol;
    return static_cast<std::size_t>(fcm::common::mix64(a ^ fcm::common::mix64(b)));
  }
};
