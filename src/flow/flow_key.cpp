#include "flow/flow_key.h"

namespace fcm::flow {

std::string to_string(FlowKey key) {
  const std::uint32_t v = key.value;
  return std::to_string((v >> 24) & 0xff) + '.' + std::to_string((v >> 16) & 0xff) +
         '.' + std::to_string((v >> 8) & 0xff) + '.' + std::to_string(v & 0xff);
}

}  // namespace fcm::flow
