// Packet traces and exact (ground-truth) statistics computed from them.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "flow/packet.h"

namespace fcm::flow {

// An in-memory packet trace. Packets are stored in arrival order.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Packet> packets) : packets_(std::move(packets)) {}

  std::span<const Packet> packets() const noexcept { return packets_; }
  std::size_t size() const noexcept { return packets_.size(); }
  bool empty() const noexcept { return packets_.empty(); }

  void append(Packet p) { packets_.push_back(p); }
  void reserve(std::size_t n) { packets_.reserve(n); }

 private:
  std::vector<Packet> packets_;
};

// Exact per-flow statistics of a trace; the reference every metric is
// computed against.
class GroundTruth {
 public:
  explicit GroundTruth(const Trace& trace);

  const std::unordered_map<FlowKey, std::uint64_t>& flow_sizes() const noexcept {
    return sizes_;
  }
  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::size_t flow_count() const noexcept { return sizes_.size(); }

  // Exact size of one flow (0 if absent).
  std::uint64_t size_of(FlowKey key) const noexcept;

  // Flow size distribution: fsd[s] = number of flows with exactly s packets.
  // Index 0 is unused (no zero-size flows).
  std::vector<std::uint64_t> flow_size_distribution() const;

  // Empirical flow-size entropy H = -sum_i (x_i/m) ln(x_i/m), natural log,
  // where m = total packets (the quantity the paper's §4.4 estimates).
  double entropy() const;

  // Flows with size >= threshold.
  std::vector<FlowKey> heavy_hitters(std::uint64_t threshold) const;

  // Largest flow size (0 for an empty trace).
  std::uint64_t max_flow_size() const noexcept { return max_size_; }

 private:
  std::unordered_map<FlowKey, std::uint64_t> sizes_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t max_size_ = 0;
};

// Flows whose size changed by more than `threshold` between two windows
// (paper §4.4, heavy change detection). Returned keys are those with
// |size_a - size_b| > threshold.
std::vector<FlowKey> true_heavy_changes(const GroundTruth& window_a,
                                        const GroundTruth& window_b,
                                        std::uint64_t threshold);

}  // namespace fcm::flow
