#include "flow/synthetic.h"

#include <stdexcept>
#include <unordered_set>

#include "common/hash.h"
#include "common/random.h"

namespace fcm::flow {
namespace {

using common::Xoshiro256;
using common::ZipfSampler;

// Distinct pseudo-random 32-bit keys, deterministic in `seed`.
std::vector<FlowKey> make_keys(std::uint64_t count, std::uint64_t seed) {
  std::vector<FlowKey> keys;
  keys.reserve(count);
  std::unordered_set<std::uint32_t> used;
  used.reserve(count * 2);
  std::uint64_t i = 0;
  while (keys.size() < count) {
    const auto candidate =
        static_cast<std::uint32_t>(common::mix64(seed ^ (0xabcdef
  + i++)));
    if (candidate != 0 && used.insert(candidate).second) {
      keys.push_back(FlowKey{candidate});
    }
  }
  return keys;
}

Trace generate_with_keys(const SyntheticTraceConfig& config,
                         const std::vector<FlowKey>& keys) {
  const ZipfSampler zipf(keys.size(), config.zipf_alpha);
  Xoshiro256 rng(config.seed);
  Trace trace;
  trace.reserve(config.packet_count);
  const std::uint32_t byte_span =
      config.max_packet_bytes - config.min_packet_bytes + 1;
  for (std::uint64_t i = 0; i < config.packet_count; ++i) {
    const std::size_t rank = zipf.sample(rng);
    Packet p;
    p.key = keys[rank - 1];
    p.bytes = config.min_packet_bytes +
              static_cast<std::uint32_t>(rng.next_below(byte_span));
    p.timestamp_ns = i * 750;  // ~20M packets over 15s, as in the paper
    trace.append(p);
  }
  return trace;
}

}  // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticTraceConfig config)
    : config_(config) {
  if (config_.packet_count == 0 || config_.flow_count == 0) {
    throw std::invalid_argument("SyntheticTraceGenerator: empty workload");
  }
  if (config_.min_packet_bytes > config_.max_packet_bytes) {
    throw std::invalid_argument("SyntheticTraceGenerator: bad byte range");
  }
}

Trace SyntheticTraceGenerator::generate() const {
  return generate_with_keys(config_, make_keys(config_.flow_count, config_.seed));
}

Trace SyntheticTraceGenerator::caida_like(double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("caida_like: scale must be in (0, 1]");
  }
  SyntheticTraceConfig config;
  config.packet_count = static_cast<std::uint64_t>(20'000'000 * scale);
  config.flow_count = static_cast<std::uint64_t>(500'000 * scale);
  config.zipf_alpha = 1.1;
  config.seed = seed;
  return SyntheticTraceGenerator(config).generate();
}

Trace SyntheticTraceGenerator::zipf(double alpha, double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("zipf: scale must be in (0, 1]");
  }
  SyntheticTraceConfig config;
  config.packet_count = static_cast<std::uint64_t>(20'000'000 * scale);
  config.flow_count = config.packet_count / 50;  // ~50 packets/flow (§7.4)
  config.zipf_alpha = alpha;
  config.seed = seed;
  return SyntheticTraceGenerator(config).generate();
}

WindowPair make_window_pair(const SyntheticTraceConfig& config,
                            double churn_fraction) {
  if (churn_fraction < 0.0 || churn_fraction > 1.0) {
    throw std::invalid_argument("make_window_pair: churn must be in [0, 1]");
  }
  auto keys_a = make_keys(config.flow_count, config.seed);
  auto fresh = make_keys(config.flow_count, config.seed ^ 0x5eed5eedull);

  // Window B: replace a deterministic churn_fraction of ranks with fresh keys.
  Xoshiro256 rng(config.seed ^ 0xc0ffee);
  auto keys_b = keys_a;
  for (std::size_t i = 0; i < keys_b.size(); ++i) {
    if (rng.next_double() < churn_fraction) keys_b[i] = fresh[i];
  }

  WindowPair pair;
  pair.window_a = generate_with_keys(config, keys_a);
  SyntheticTraceConfig config_b = config;
  config_b.seed = config.seed + 1;  // fresh packet draws in window B
  pair.window_b = generate_with_keys(config_b, keys_b);
  return pair;
}

}  // namespace fcm::flow
