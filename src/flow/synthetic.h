// Synthetic trace generation.
//
// The paper evaluates on CAIDA Equinix-NYC traces (~20M packets, ~0.5M
// source-IP flows per 15s window) and on synthetic Zipf(alpha) traces
// (§7.4). CAIDA data is not redistributable, so this module generates
// CAIDA-like traces: heavy-tailed Zipf flow-size distributions calibrated to
// the same mean flow size, with i.i.d.-interleaved packet arrivals. Accuracy
// results for sketches depend on the flow-size distribution and arrival mix,
// both of which are preserved (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/trace.h"

namespace fcm::flow {

struct SyntheticTraceConfig {
  std::uint64_t packet_count = 1'000'000;
  std::uint64_t flow_count = 50'000;
  double zipf_alpha = 1.1;     // skewness of the flow-popularity distribution
  std::uint64_t seed = 1;
  std::uint16_t min_packet_bytes = 64;
  std::uint16_t max_packet_bytes = 1500;
};

class SyntheticTraceGenerator {
 public:
  explicit SyntheticTraceGenerator(SyntheticTraceConfig config);

  // Generates a trace: each packet's flow is drawn i.i.d. from
  // Zipf(zipf_alpha) over `flow_count` distinct keys. Note the realized
  // number of distinct flows can be slightly below flow_count (tail ranks
  // may receive zero packets).
  Trace generate() const;

  // The paper's §7.2 workload, scaled: Zipf(1.1), ~40 packets/flow mean.
  // `scale` in (0, 1] shrinks both packets and flows proportionally.
  static Trace caida_like(double scale, std::uint64_t seed);

  // The §7.4 workload: 20M packets (scaled), ~50 packets/flow, Zipf(alpha).
  static Trace zipf(double alpha, double scale, std::uint64_t seed);

  const SyntheticTraceConfig& config() const noexcept { return config_; }

 private:
  SyntheticTraceConfig config_;
};

// Two adjacent measurement windows with flow churn, for heavy-change
// experiments: `churn_fraction` of window-A flows disappear in window B and
// are replaced by fresh flows; surviving flows keep their popularity rank.
struct WindowPair {
  Trace window_a;
  Trace window_b;
};
WindowPair make_window_pair(const SyntheticTraceConfig& config, double churn_fraction);

}  // namespace fcm::flow
