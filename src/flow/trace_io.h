// Trace (de)serialization.
//
// Users with real captures (e.g. the CAIDA traces the paper evaluates on)
// convert them once to this compact binary format and feed them to the
// benches via FCM_TRACE; the synthetic generator remains the default.
//
// Format: 16-byte header ("FCMTRACE", u32 version, u32 reserved), u64 packet
// count, then packed little-endian records of (u32 key, u32 bytes, u64
// timestamp_ns).
#pragma once

#include <optional>
#include <string>

#include "flow/trace.h"

namespace fcm::flow {

// Throws std::runtime_error on I/O failure.
void save_trace(const Trace& trace, const std::string& path);

// Throws std::runtime_error on I/O failure or malformed input.
Trace load_trace(const std::string& path);

// Loads the trace named by the FCM_TRACE environment variable, or returns
// std::nullopt when it is unset.
std::optional<Trace> load_trace_from_env();

}  // namespace fcm::flow
