#include "flow/trace.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fcm::flow {

GroundTruth::GroundTruth(const Trace& trace) {
  sizes_.reserve(trace.size() / 16 + 16);
  for (const Packet& p : trace.packets()) {
    const std::uint64_t s = ++sizes_[p.key];
    max_size_ = std::max(max_size_, s);
  }
  total_packets_ = trace.size();
}

std::uint64_t GroundTruth::size_of(FlowKey key) const noexcept {
  const auto it = sizes_.find(key);
  return it == sizes_.end() ? 0 : it->second;
}

std::vector<std::uint64_t> GroundTruth::flow_size_distribution() const {
  std::vector<std::uint64_t> fsd(max_size_ + 1, 0);
  for (const auto& [key, size] : sizes_) fsd[size]++;
  return fsd;
}

double GroundTruth::entropy() const {
  if (total_packets_ == 0) return 0.0;
  const double m = static_cast<double>(total_packets_);
  double h = 0.0;
  for (const auto& [key, size] : sizes_) {
    const double p = static_cast<double>(size) / m;
    h -= p * std::log(p);
  }
  return h;
}

std::vector<FlowKey> GroundTruth::heavy_hitters(std::uint64_t threshold) const {
  std::vector<FlowKey> result;
  for (const auto& [key, size] : sizes_) {
    if (size >= threshold) result.push_back(key);
  }
  return result;
}

std::vector<FlowKey> true_heavy_changes(const GroundTruth& window_a,
                                        const GroundTruth& window_b,
                                        std::uint64_t threshold) {
  std::vector<FlowKey> result;
  std::unordered_set<FlowKey> seen;
  const auto consider = [&](FlowKey key) {
    if (!seen.insert(key).second) return;
    const std::uint64_t a = window_a.size_of(key);
    const std::uint64_t b = window_b.size_of(key);
    const std::uint64_t delta = a > b ? a - b : b - a;
    if (delta > threshold) result.push_back(key);
  };
  for (const auto& [key, size] : window_a.flow_sizes()) consider(key);
  for (const auto& [key, size] : window_b.flow_sizes()) consider(key);
  return result;
}

}  // namespace fcm::flow
