#include "controlplane/heavy_change.h"

#include <unordered_set>

namespace fcm::control {

std::vector<flow::FlowKey> detect_heavy_changes(
    const std::function<std::uint64_t(flow::FlowKey)>& query_a,
    const std::function<std::uint64_t(flow::FlowKey)>& query_b,
    std::span<const flow::FlowKey> candidates, std::uint64_t threshold) {
  std::vector<flow::FlowKey> result;
  std::unordered_set<flow::FlowKey> seen;
  for (const flow::FlowKey key : candidates) {
    if (!seen.insert(key).second) continue;
    const std::uint64_t a = query_a(key);
    const std::uint64_t b = query_b(key);
    const std::uint64_t delta = a > b ? a - b : b - a;
    if (delta > threshold) result.push_back(key);
  }
  return result;
}

}  // namespace fcm::control
