// Heavy-change detection (paper §4.4): flows whose size changed by more than
// a threshold between two adjacent measurement windows. If the change
// exceeds the threshold, at least one window's size does too, so candidates
// are the union of both windows' heavy-hitter reports; their count-queries
// against the two collected sketches are then compared.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "flow/flow_key.h"

namespace fcm::control {

// `query_a` / `query_b` are count-queries against the sketches collected in
// the two windows; `candidates` the union of per-window heavy-hitter keys.
std::vector<flow::FlowKey> detect_heavy_changes(
    const std::function<std::uint64_t(flow::FlowKey)>& query_a,
    const std::function<std::uint64_t(flow::FlowKey)>& query_b,
    std::span<const flow::FlowKey> candidates, std::uint64_t threshold);

}  // namespace fcm::control
