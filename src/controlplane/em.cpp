#include "controlplane/em.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/contracts.h"
#include "obs/metrics_registry.h"

namespace fcm::control {
namespace {

// Prior mass floor so a size absent from the current estimate can still be
// proposed by a combination (plain zero would lock it out forever).
constexpr double kLambdaSmoothing = 1e-9;

// Enumerates partitions of `n` into exactly `p` non-increasing parts, each
// in [min_part, max_part], invoking `f(parts)` per partition.
template <typename F>
void enumerate_partitions(std::uint64_t n, std::size_t p, std::uint64_t max_part,
                          std::uint64_t min_part, std::vector<std::uint64_t>& parts,
                          const F& f) {
  if (p == 1) {
    if (n >= min_part && n <= max_part) {
      parts.push_back(n);
      f(parts);
      parts.pop_back();
    }
    return;
  }
  if (n < p * min_part) return;
  const std::uint64_t hi = std::min<std::uint64_t>(max_part, n - (p - 1) * min_part);
  // first part must be at least ceil(n/p) to keep the sequence non-increasing.
  const std::uint64_t lo = std::max<std::uint64_t>(min_part, (n + p - 1) / p);
  for (std::uint64_t first = hi; first + 1 > lo; --first) {
    parts.push_back(first);
    enumerate_partitions(n - first, p - 1, first, min_part, parts, f);
    parts.pop_back();
  }
}

}  // namespace

EmFsdEstimator::EmFsdEstimator(std::vector<VirtualCounterArray> arrays,
                               EmConfig config)
    : config_(config), arrays_(std::move(arrays)) {
  FCM_REQUIRE(!arrays_.empty(), "EmFsdEstimator: no virtual counter arrays");
  FCM_REQUIRE(config_.max_iterations > 0,
              "EmFsdEstimator: max_iterations must be positive");
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    FCM_REQUIRE(arrays_[a].leaf_count > 0,
                "EmFsdEstimator: array " + std::to_string(a) +
                    " has leaf_count == 0 (lambda would divide by zero)");
  }
  // Histogram each tree by (degree, value); deterministic order via std::map.
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    std::map<std::pair<std::uint32_t, std::uint64_t>, double> histogram;
    for (const VirtualCounter& vc : arrays_[a].counters) {
      if (vc.value == 0) continue;
      FCM_REQUIRE(vc.degree >= 1,
                  "EmFsdEstimator: non-empty virtual counter with degree 0 in "
                  "array " + std::to_string(a));
      histogram[{vc.degree, vc.value}] += 1.0;
      max_value_ = std::max(max_value_, vc.value);
    }
    for (const auto& [key, multiplicity] : histogram) {
      groups_.push_back(Group{key.first, key.second, multiplicity, a});
    }
  }
  initialize();
}

double EmFsdEstimator::lambda(std::size_t size, std::uint32_t degree,
                              std::size_t array) const {
  const double n_j = current_.counts()[size];
  const double w1 = static_cast<double>(arrays_[array].leaf_count);
  return (n_j > 0.0 ? n_j : kLambdaSmoothing) * static_cast<double>(degree) / w1;
}

void EmFsdEstimator::initialize() {
  // §4.3: the initial guess is the observed distribution — each degree-1
  // counter reads as one flow of its value; merged counters read as their
  // minimal-flow split.
  std::vector<double> init(max_value_ + 1, 0.0);
  current_ = FlowSizeDistribution(std::vector<double>(max_value_ + 1, 0.0));
  for (const Group& g : groups_) {
    split_fallback(g, init);
  }
  const double d = static_cast<double>(arrays_.size());
  for (auto& v : init) v /= d;
  current_ = FlowSizeDistribution(std::move(init));
}

void EmFsdEstimator::split_fallback(const Group& group,
                                    std::vector<double>& out) const {
  const std::uint64_t ell = arrays_[group.array].leaf_counting_max + 1;
  if (group.degree <= 1 || group.value <= ell * group.degree) {
    out[group.value] += group.multiplicity;
    return;
  }
  // Minimal-flow reading of a merged counter: degree-1 flows at the path
  // minimum, one flow carrying the remainder.
  const std::uint64_t rest = group.value - (group.degree - 1) * ell;
  out[rest] += group.multiplicity;
  out[ell] += group.multiplicity * static_cast<double>(group.degree - 1);
}

void EmFsdEstimator::accumulate_group(const Group& group,
                                      std::vector<double>& out) const {
  const std::uint64_t v = group.value;
  const std::uint32_t degree = group.degree;
  const std::uint64_t theta = arrays_[group.array].leaf_counting_max;
  const std::uint64_t ell = theta + 1;

  // Decide whether this group is enumerable under the truncation heuristic.
  const bool enumerable =
      degree <= config_.max_enumeration_degree &&
      (degree == 1
           ? v <= config_.value_enumeration_cap
           : v >= static_cast<std::uint64_t>(degree) * ell &&
                 v - degree * ell <= config_.value_enumeration_cap);
  if (!enumerable) {
    split_fallback(group, out);
    return;
  }

  // Collect combinations as (weight, multiset) pairs. A combination's prior
  // weight is prod_s lambda_s^{c_s} / c_s! (the shared exp(-sum lambda)
  // cancels in the per-counter normalization of Eqn. 2).
  struct Combo {
    double weight;
    std::vector<std::uint64_t> parts;  // non-increasing flow sizes
  };
  std::vector<Combo> combos;

  const auto weigh = [&](const std::vector<std::uint64_t>& parts) {
    double weight = 1.0;
    std::size_t run = 1;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      weight *= lambda(static_cast<std::size_t>(parts[i]), degree, group.array);
      if (i + 1 < parts.size() && parts[i + 1] == parts[i]) {
        ++run;
        weight /= static_cast<double>(run);
      } else {
        run = 1;
      }
    }
    combos.push_back(Combo{weight, parts});
  };

  std::vector<std::uint64_t> scratch;
  if (degree == 1) {
    // Up to 1 + max_extra_flows colliding flows, any sizes >= 1.
    for (std::size_t p = 1; p <= 1 + config_.max_extra_flows; ++p) {
      if (v < p) break;
      enumerate_partitions(v, p, v, 1, scratch, weigh);
    }
  } else {
    // Exactly `degree` merged paths, each with mandatory mass >= ell
    // (every merged path overflowed its leaf, §4.3's constraint).
    const std::uint64_t residual = v - degree * ell;
    const auto weigh_shifted = [&](const std::vector<std::uint64_t>& t_parts) {
      std::vector<std::uint64_t> parts(t_parts);
      for (auto& part : parts) part += ell;
      weigh(parts);
    };
    enumerate_partitions(residual, degree, residual, 0, scratch, weigh_shifted);

    // One additional small flow (< ell, so it cannot be its own overflowed
    // path) colliding into one of the merged paths.
    if (config_.max_extra_flows >= 1 && ell >= 2) {
      const std::uint64_t extra_max = std::min<std::uint64_t>(residual, ell - 1);
      for (std::uint64_t extra = 1; extra <= extra_max; ++extra) {
        const auto weigh_with_extra = [&](const std::vector<std::uint64_t>& t_parts) {
          std::vector<std::uint64_t> parts(t_parts);
          for (auto& part : parts) part += ell;
          parts.push_back(extra);  // extra < ell <= all other parts
          weigh(parts);
        };
        enumerate_partitions(residual - extra, degree, residual - extra, 0,
                             scratch, weigh_with_extra);
      }
    }
  }

  double total_weight = 0.0;
  for (const Combo& combo : combos) total_weight += combo.weight;
  if (!(total_weight > 0.0)) {
    split_fallback(group, out);
    return;
  }
  for (const Combo& combo : combos) {
    const double posterior = combo.weight / total_weight;
    for (const std::uint64_t size : combo.parts) {
      out[size] += group.multiplicity * posterior;
    }
  }
}

void EmFsdEstimator::iterate() {
  std::vector<double> next(max_value_ + 1, 0.0);
  const std::size_t threads =
      std::min<std::size_t>(std::max<std::size_t>(config_.thread_count, 1),
                            groups_.size() > 0 ? groups_.size() : 1);
  if (threads <= 1) {
    for (const Group& group : groups_) accumulate_group(group, next);
  } else {
    std::vector<std::vector<double>> partial(
        threads, std::vector<double>(max_value_ + 1, 0.0));
    // jthread: joins on destruction, so an exception while spawning (or in
    // this scope) cannot reach ~thread() on a joinable thread and terminate.
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t g = t; g < groups_.size(); g += threads) {
          accumulate_group(groups_[g], partial[t]);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (const auto& local : partial) {
      for (std::size_t j = 0; j <= max_value_; ++j) next[j] += local[j];
    }
  }
  const double d = static_cast<double>(arrays_.size());
  for (auto& value : next) value /= d;
  current_ = FlowSizeDistribution(std::move(next));
  FCM_CHECKED_ONLY(check_invariants());
}

void EmFsdEstimator::check_invariants() const {
  for (const Group& group : groups_) {
    FCM_ASSERT(group.array < arrays_.size(),
               "EmFsdEstimator: group references an unknown array");
    FCM_ASSERT(group.degree >= 1 && group.value >= 1 && group.multiplicity > 0,
               "EmFsdEstimator: degenerate (degree, value, multiplicity) group");
  }
  double mass = 0.0;
  const auto& counts = current_.counts();
  for (std::size_t j = 0; j < counts.size(); ++j) {
    FCM_ASSERT(std::isfinite(counts[j]) && counts[j] >= 0.0,
               "EmFsdEstimator: estimate has a negative or non-finite entry at "
               "size " + std::to_string(j));
    mass += static_cast<double>(j) * counts[j];
  }
  // Mass conservation: each EM step redistributes the observed counter mass
  // across flow sizes; it never creates or destroys packets (Eqn. 2/5).
  double observed = 0.0;
  for (const Group& group : groups_) {
    observed += group.multiplicity * static_cast<double>(group.value);
  }
  observed /= static_cast<double>(arrays_.size());
  const double tolerance = 1e-6 * std::max(1.0, observed);
  FCM_ASSERT(std::abs(mass - observed) <= tolerance,
             "EmFsdEstimator: EM step changed total packet mass (" +
                 std::to_string(mass) + " vs observed " +
                 std::to_string(observed) + ")");
}

FlowSizeDistribution EmFsdEstimator::run(const IterationCallback& callback) {
  // Control-plane telemetry (DESIGN.md §8): iteration count/latency plus a
  // convergence signal — the L1 distance between successive estimates,
  // normalized by total flows, which EM drives toward zero. EM runs off the
  // ingest path, so registry writes here are free relative to the E-step.
  // config_.metrics == nullptr runs fully uninstrumented (the throughput
  // bench's overhead baseline; threaded down from FcmFramework::analyze()).
  obs::MetricsRegistry* registry = config_.metrics;
  obs::Counter* em_runs =
      registry ? &registry->counter("fcm_em_runs_total", {},
                                    "EM estimator runs completed")
               : nullptr;
  obs::Counter* em_iterations =
      registry ? &registry->counter("fcm_em_iterations_total", {},
                                    "EM iterations across all runs")
               : nullptr;
  obs::Histogram* em_iteration_seconds =
      registry ? &registry->histogram("fcm_em_iteration_seconds",
                                      obs::Histogram::latency_bounds(), {},
                                      "Wall time per EM iteration")
               : nullptr;
  obs::Gauge* em_delta =
      registry
          ? &registry->gauge("fcm_em_convergence_delta", {},
                             "Normalized L1 change of the FSD estimate in the "
                             "last EM iteration")
          : nullptr;

  double last_delta = 0.0;
  for (std::size_t i = 0; i < config_.max_iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<double> previous = current_.counts();
    iterate();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (em_iterations != nullptr) em_iterations->inc();
    if (em_iteration_seconds != nullptr) em_iteration_seconds->observe(seconds);
    const auto& counts = current_.counts();
    double l1 = 0.0;
    const std::size_t overlap = std::min(previous.size(), counts.size());
    for (std::size_t j = 0; j < overlap; ++j) {
      l1 += std::abs(counts[j] - previous[j]);
    }
    for (std::size_t j = overlap; j < previous.size(); ++j) l1 += previous[j];
    for (std::size_t j = overlap; j < counts.size(); ++j) l1 += counts[j];
    const double total = current_.total_flows();
    last_delta = total > 0.0 ? l1 / total : l1;
    if (callback) callback(i, seconds, current_);
  }
  if (em_delta != nullptr) em_delta->set(last_delta);
  if (em_runs != nullptr) em_runs->inc();
  return current_;
}

FlowSizeDistribution estimate_fsd(const core::FcmSketch& sketch, EmConfig config) {
  return EmFsdEstimator(convert_sketch(sketch), config).run();
}

FlowSizeDistribution estimate_fsd(const VirtualCounterArray& array, EmConfig config) {
  return EmFsdEstimator({array}, config).run();
}

}  // namespace fcm::control
