#include "controlplane/fsd.h"

#include <algorithm>
#include <cmath>

namespace fcm::control {

double FlowSizeDistribution::total_flows() const noexcept {
  double total = 0.0;
  for (std::size_t j = 1; j < counts_.size(); ++j) total += counts_[j];
  return total;
}

double FlowSizeDistribution::total_packets() const noexcept {
  double total = 0.0;
  for (std::size_t j = 1; j < counts_.size(); ++j) {
    total += counts_[j] * static_cast<double>(j);
  }
  return total;
}

double FlowSizeDistribution::entropy() const {
  const double m = total_packets();
  if (m <= 0.0) return 0.0;
  double h = 0.0;
  for (std::size_t j = 1; j < counts_.size(); ++j) {
    if (counts_[j] <= 0.0) continue;
    const double p = static_cast<double>(j) / m;
    h -= counts_[j] * p * std::log(p);
  }
  return h;
}

void FlowSizeDistribution::add_flows(std::size_t size, double count) {
  if (size == 0) return;
  if (size >= counts_.size()) counts_.resize(size + 1, 0.0);
  counts_[size] += count;
}

double FlowSizeDistribution::wmre(std::span<const std::uint64_t> true_fsd) const {
  const std::size_t z = std::max(counts_.size(), true_fsd.size());
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 1; i < z; ++i) {
    const double est = i < counts_.size() ? counts_[i] : 0.0;
    const double truth = i < true_fsd.size() ? static_cast<double>(true_fsd[i]) : 0.0;
    numerator += std::abs(truth - est);
    denominator += (truth + est) / 2.0;
  }
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

}  // namespace fcm::control
