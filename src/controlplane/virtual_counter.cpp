#include "controlplane/virtual_counter.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/contracts.h"

namespace fcm::control {

std::uint64_t VirtualCounterArray::total_value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& vc : counters) total += vc.value;
  return total;
}

std::size_t VirtualCounterArray::nonempty_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(counters.begin(), counters.end(),
                    [](const VirtualCounter& vc) { return vc.value > 0; }));
}

std::uint32_t VirtualCounterArray::max_degree() const noexcept {
  std::uint32_t d = 0;
  for (const auto& vc : counters) {
    if (vc.value > 0) d = std::max(d, vc.degree);
  }
  return d;
}

std::vector<std::size_t> VirtualCounterArray::degree_histogram() const {
  std::vector<std::size_t> histogram(max_degree() + 1, 0);
  for (const auto& vc : counters) {
    if (vc.value > 0) ++histogram[vc.degree];
  }
  return histogram;
}

void VirtualCounterArray::check_invariants() const {
  FCM_ASSERT(leaf_count > 0, "VirtualCounterArray: leaf_count == 0");
  std::uint64_t degree_sum = 0;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    FCM_ASSERT(counters[i].degree >= 1,
               "VirtualCounterArray: counter " + std::to_string(i) +
                   " has degree 0 (every virtual counter merges >= 1 leaf)");
    degree_sum += counters[i].degree;
  }
  FCM_ASSERT(degree_sum == leaf_count,
             "VirtualCounterArray: degrees sum to " + std::to_string(degree_sum) +
                 " but the tree has " + std::to_string(leaf_count) +
                 " leaves (paths must partition the leaf stage)");
}

VirtualCounterArray convert_tree(const core::FcmTree& tree) {
  const auto& config = tree.config();
  const std::size_t levels = config.stage_count();

  // Terminal node of the path starting at (stage, index): walk up while the
  // node overflowed and a parent exists. Encoded as stage * 2^32 + index.
  const auto terminal_of = [&](std::size_t stage, std::size_t index) {
    while (stage < levels && tree.node_overflowed(stage, index)) {
      ++stage;
      index /= config.k;
    }
    if (stage > levels) stage = levels;  // root overflowed: terminal is root
    // When the loop exited because stage == levels was reached with the root
    // overflowed, (stage, index) already points past; clamp handled above.
    return (static_cast<std::uint64_t>(stage) << 32) | static_cast<std::uint64_t>(index);
  };

  VirtualCounterArray array;
  array.leaf_count = config.leaf_count;
  array.leaf_counting_max = config.counting_max(1);

  std::unordered_map<std::uint64_t, std::size_t> vc_index;
  vc_index.reserve(config.leaf_count);

  // Step 1: one virtual counter per distinct terminal, degree = merged leaves.
  for (std::size_t leaf = 0; leaf < config.leaf_count; ++leaf) {
    const std::uint64_t terminal = terminal_of(1, leaf);
    const auto [it, inserted] = vc_index.try_emplace(terminal, array.counters.size());
    if (inserted) {
      array.counters.push_back(VirtualCounter{0, 0});
    }
    array.counters[it->second].degree += 1;
  }

  // Step 2: every node's capped count is credited to its terminal's counter
  // exactly once. Nodes whose terminal has no leaf path carry value 0 (a
  // non-leaf node only receives counts via child overflow), so skipping them
  // loses nothing.
  for (std::size_t stage = 1; stage <= levels; ++stage) {
    const std::size_t width = config.width(stage);
    for (std::size_t index = 0; index < width; ++index) {
      const std::uint64_t count = tree.node_count(stage, index);
      if (count == 0) continue;
      const std::uint64_t terminal = terminal_of(stage, index);
      const auto it = vc_index.find(terminal);
      if (it != vc_index.end()) {
        array.counters[it->second].value += count;
      }
    }
  }
  // §4.1 round-trip guarantee: the conversion preserves the tree's total
  // count exactly, and the merged paths partition the leaf stage.
  FCM_ENSURE(array.total_value() == tree.total_count(),
             "convert_tree: virtual counters lost mass (" +
                 std::to_string(array.total_value()) + " vs tree total " +
                 std::to_string(tree.total_count()) + ")");
  FCM_CHECKED_ONLY(array.check_invariants());
  FCM_CHECKED_ONLY(tree.check_invariants());
  return array;
}

std::vector<VirtualCounterArray> convert_sketch(const core::FcmSketch& sketch) {
  std::vector<VirtualCounterArray> arrays;
  arrays.reserve(sketch.tree_count());
  for (std::size_t t = 0; t < sketch.tree_count(); ++t) {
    arrays.push_back(convert_tree(sketch.tree(t)));
  }
  return arrays;
}

namespace {

template <typename T>
VirtualCounterArray from_counters_impl(std::span<const T> counters) {
  VirtualCounterArray array;
  array.leaf_count = counters.size();
  array.leaf_counting_max = 0;  // plain counters have no overflow semantics
  array.counters.reserve(counters.size());
  for (const T v : counters) {
    array.counters.push_back(VirtualCounter{static_cast<std::uint64_t>(v), 1});
  }
  return array;
}

}  // namespace

VirtualCounterArray from_plain_counters(std::span<const std::uint32_t> counters) {
  return from_counters_impl(counters);
}

VirtualCounterArray from_plain_counters_u8(std::span<const std::uint8_t> counters) {
  return from_counters_impl(counters);
}

}  // namespace fcm::control
