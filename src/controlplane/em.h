// Expectation-Maximization recovery of the flow-size distribution from
// virtual counters (paper §4.2–§4.3 and Appendix A).
//
// Virtual counters are grouped by (tree, degree, value); one posterior is
// computed per distinct group and weighted by multiplicity. The combination
// set Ω is truncated with the paper's heuristic: only combinations with few
// flows are enumerated (collisions of many flows are rare), and counters
// whose residual value exceeds a cap fall back to a minimal-flow split.
// Multi-tree sketches average the per-tree expected counts (Eqn. 5).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "controlplane/fsd.h"
#include "controlplane/virtual_counter.h"
#include "obs/metrics_registry.h"

namespace fcm::control {

struct EmConfig {
  std::size_t max_iterations = 10;

  // Telemetry sink for run() (iteration count/latency, convergence delta).
  // Defaults to the process-global registry; nullptr runs the estimator
  // fully uninstrumented. FcmFramework::analyze() overwrites this with its
  // own Options::metrics so one knob controls the whole pipeline.
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global();

  // Combinations are enumerated only when the value left after subtracting
  // each path's mandatory minimum is <= this cap (paper §4.3: "truncate the
  // set of possible combinations based on the counter value and degree").
  std::uint64_t value_enumeration_cap = 300;

  // Degree-1 counters consider up to 1 + max_extra_flows colliding flows.
  std::size_t max_extra_flows = 2;

  // Degrees above this always use the minimal-flow split heuristic.
  std::uint32_t max_enumeration_degree = 3;

  // Worker threads for the per-iteration scan (Fig. 9a's FCM(m) mode).
  std::size_t thread_count = 1;
};

class EmFsdEstimator {
 public:
  // `arrays` is one VirtualCounterArray per tree (§4.1); a single-array
  // input covers MRAC and other plain-counter sketches.
  EmFsdEstimator(std::vector<VirtualCounterArray> arrays, EmConfig config = {});

  // Called after every iteration with (iteration index, seconds spent in
  // that iteration, current estimate).
  using IterationCallback =
      std::function<void(std::size_t, double, const FlowSizeDistribution&)>;

  // Runs max_iterations EM steps (from the §4.3 initialization) and returns
  // the final estimate.
  FlowSizeDistribution run(const IterationCallback& callback = nullptr);

  // Single EM step, for callers that manage their own schedule.
  void iterate();

  const FlowSizeDistribution& current() const noexcept { return current_; }

  // Estimated total number of flows n (paper's second EM output).
  double estimated_flow_count() const noexcept { return current_.total_flows(); }

  // Deep invariants of the EM state:
  //   - every group references a valid array, with degree >= 1, value >= 1,
  //     and positive multiplicity;
  //   - the current estimate is finite and non-negative everywhere;
  //   - mass conservation: sum_j j * n_j equals the per-tree average of the
  //     virtual-counter mass (each EM step redistributes, never creates,
  //     packet mass), up to floating-point tolerance.
  void check_invariants() const;

 private:
  // One distinct (degree, value) cell of one tree's histogram.
  struct Group {
    std::uint32_t degree;
    std::uint64_t value;
    double multiplicity;
    std::size_t array;  // which tree
  };

  void initialize();
  // Expected flow-size contributions of `group`, accumulated into `out`
  // (scaled by the group's multiplicity).
  void accumulate_group(const Group& group, std::vector<double>& out) const;
  void split_fallback(const Group& group, std::vector<double>& out) const;

  double lambda(std::size_t size, std::uint32_t degree, std::size_t array) const;

  EmConfig config_;
  std::vector<VirtualCounterArray> arrays_;
  std::vector<Group> groups_;
  std::uint64_t max_value_ = 0;
  FlowSizeDistribution current_;
};

// Convenience drivers.
FlowSizeDistribution estimate_fsd(const core::FcmSketch& sketch, EmConfig config = {});
FlowSizeDistribution estimate_fsd(const VirtualCounterArray& array, EmConfig config = {});

}  // namespace fcm::control
