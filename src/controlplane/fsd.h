// Flow-size distribution estimates and the metrics defined over them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fcm::control {

// An estimated flow-size distribution: counts[j] = expected number of flows
// of size j (index 0 unused).
class FlowSizeDistribution {
 public:
  FlowSizeDistribution() = default;
  explicit FlowSizeDistribution(std::vector<double> counts)
      : counts_(std::move(counts)) {}

  const std::vector<double>& counts() const noexcept { return counts_; }
  std::vector<double>& counts() noexcept { return counts_; }

  std::size_t max_size() const noexcept {
    return counts_.empty() ? 0 : counts_.size() - 1;
  }

  // Total estimated number of flows (n in the paper).
  double total_flows() const noexcept;

  // Total estimated packet mass (sum_j j * n_j).
  double total_packets() const noexcept;

  // Estimated empirical entropy (§4.4):
  //   H = -sum_j n_j * (j/m) * ln(j/m), natural log, m = total packet mass.
  double entropy() const;

  // Adds `count` flows of size `size` (used to fold Top-K exact flows into
  // an EM-recovered distribution).
  void add_flows(std::size_t size, double count);

  // Weighted Mean Relative Error against the exact distribution
  // (§7.2, metric from MRAC):
  //   WMRE = sum_i |n_i - n̂_i| / sum_i (n_i + n̂_i)/2,
  // summed over 1..max(z_true, z_est).
  double wmre(std::span<const std::uint64_t> true_fsd) const;

 private:
  std::vector<double> counts_;
};

}  // namespace fcm::control
