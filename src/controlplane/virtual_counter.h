// FCM-Sketch → virtual counter conversion (paper §4.1).
//
// Each leaf traces its path upward until the first non-overflowed node (or
// the root). Paths ending at the same terminal node merge into one virtual
// counter whose value is the sum of the capped counts of every node in the
// merged subtree and whose degree is the number of merged leaf paths. The
// conversion preserves the total count exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fcm/fcm_sketch.h"

namespace fcm::control {

struct VirtualCounter {
  std::uint64_t value = 0;
  std::uint32_t degree = 1;
};

struct VirtualCounterArray {
  std::vector<VirtualCounter> counters;  // every counter, including value-0 leaves
  std::size_t leaf_count = 0;            // w1 of the source tree
  std::uint64_t leaf_counting_max = 0;   // theta_1 (2^b1 - 2)

  // Sum of all counter values (== tree total count by construction).
  std::uint64_t total_value() const noexcept;
  // Counters with value > 0 (what the EM operates on).
  std::size_t nonempty_count() const noexcept;
  // Largest degree among non-empty counters (D in the paper).
  std::uint32_t max_degree() const noexcept;
  // Histogram: result[d] = number of non-empty counters of degree d.
  std::vector<std::size_t> degree_histogram() const;

  // Deep invariants of a converted array (§4.1):
  //   - leaf_count > 0;
  //   - every counter's degree >= 1 (each virtual counter merges at least
  //     one leaf path);
  //   - the degrees of all counters sum to exactly leaf_count (every leaf
  //     belongs to exactly one merged path).
  void check_invariants() const;
};

// Converts one FCM tree.
VirtualCounterArray convert_tree(const core::FcmTree& tree);

// Converts every tree of a multi-tree sketch (§4.1 last paragraph).
std::vector<VirtualCounterArray> convert_sketch(const core::FcmSketch& sketch);

// Wraps a plain counter array (MRAC, ElasticSketch light part) as degree-1
// virtual counters so the same EM engine applies. `saturated_value`, if
// non-zero, marks counters that pegged at their maximum (their true value is
// >= that); they are still passed through as-is.
VirtualCounterArray from_plain_counters(std::span<const std::uint32_t> counters);
VirtualCounterArray from_plain_counters_u8(std::span<const std::uint8_t> counters);

}  // namespace fcm::control
