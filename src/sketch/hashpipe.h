// HashPipe [Sivaraman et al., SOSR 2017]: heavy-hitter detection entirely in
// the data plane via a pipeline of key-value tables with rolling minimum
// eviction. The paper's heavy-hitter baseline (§7.2: 6 hash tables).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "sketch/frequency_estimator.h"

namespace fcm::sketch {

class HashPipe : public FrequencyEstimator {
 public:
  HashPipe(std::size_t stage_count, std::size_t entries_per_stage,
           std::uint64_t seed = 0x4a5b);

  // The paper's 6-stage configuration sized for a memory budget
  // (8 bytes per entry: 4B key + 4B count).
  static HashPipe for_memory(std::size_t memory_bytes, std::size_t stages = 6,
                             std::uint64_t seed = 0x4a5b);

  void update(flow::FlowKey key) override;

  // Sum of matching entries across stages (a flow can be split over stages).
  std::uint64_t query(flow::FlowKey key) const override;

  // All tracked flows with aggregated counts (for heavy-hitter reporting).
  std::unordered_map<flow::FlowKey, std::uint64_t> tracked_flows() const;

  std::size_t memory_bytes() const override;
  std::string name() const override { return "HashPipe"; }
  void clear() override;

 private:
  struct Entry {
    flow::FlowKey key{};        // key.value == 0 means empty
    std::uint32_t count = 0;
  };

  std::size_t entries_per_stage_;
  std::vector<common::SeededHash> hashes_;
  std::vector<std::vector<Entry>> stages_;
};

}  // namespace fcm::sketch
