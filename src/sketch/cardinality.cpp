#include "sketch/cardinality.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/bitutil.h"
#include "common/contracts.h"

namespace fcm::sketch {

LinearCounting::LinearCounting(std::size_t bits, std::uint64_t seed)
    : hash_(common::make_hash(seed, 0)), bitmap_(bits, false) {
  if (bits == 0) throw std::invalid_argument("LinearCounting: bits must be positive");
}

LinearCounting::LinearCounting(std::size_t bits, common::SeededHash hash)
    : hash_(hash), bitmap_(bits, false) {
  if (bits == 0) throw std::invalid_argument("LinearCounting: bits must be positive");
}

void LinearCounting::update(flow::FlowKey key) {
  bitmap_[hash_.index(key, bitmap_.size())] = true;
}

void LinearCounting::merge(const LinearCounting& other) {
  FCM_REQUIRE(bitmap_.size() == other.bitmap_.size() &&
                  hash_.seed() == other.hash_.seed(),
              "LinearCounting::merge: mismatched geometry or hash");
  for (std::size_t i = 0; i < bitmap_.size(); ++i) {
    if (other.bitmap_[i]) bitmap_[i] = true;
  }
}

std::size_t LinearCounting::zero_bits() const {
  return static_cast<std::size_t>(
      std::count(bitmap_.begin(), bitmap_.end(), false));
}

double LinearCounting::estimate() const {
  const double m = static_cast<double>(bitmap_.size());
  double zeros = static_cast<double>(zero_bits());
  if (zeros < 0.5) zeros = 0.5;  // saturated bitmap guard
  return -m * std::log(zeros / m);
}

void LinearCounting::clear() {
  std::fill(bitmap_.begin(), bitmap_.end(), false);
}

HyperLogLog::HyperLogLog(std::size_t register_count, std::uint64_t seed)
    : hash_(common::make_hash(seed, 0)) {
  if (register_count < 16 || !common::is_power_of_two(register_count)) {
    throw std::invalid_argument("HyperLogLog: register count must be a power of two >= 16");
  }
  index_bits_ = static_cast<unsigned>(std::countr_zero(register_count));
  registers_.assign(register_count, 0);
}

HyperLogLog::HyperLogLog(std::size_t register_count, common::SeededHash hash)
    : hash_(hash) {
  if (register_count < 16 || !common::is_power_of_two(register_count)) {
    throw std::invalid_argument("HyperLogLog: register count must be a power of two >= 16");
  }
  index_bits_ = static_cast<unsigned>(std::countr_zero(register_count));
  registers_.assign(register_count, 0);
}

HyperLogLog HyperLogLog::for_memory(std::size_t memory_bytes, std::uint64_t seed) {
  return HyperLogLog(common::round_down_pow2(memory_bytes), seed);
}

void HyperLogLog::update(flow::FlowKey key) {
  // Two independent 32-bit hashes give a 64-bit value: plenty of rank bits.
  update_hash((static_cast<std::uint64_t>(hash_(key)) << 32) |
              common::bob_hash_value(key, hash_.seed() ^ kAuxSeedXor));
}

void HyperLogLog::update_hash(std::uint64_t h) noexcept {
  const std::size_t index = h >> (64 - index_bits_);
  const std::uint64_t rest = h << index_bits_;
  const auto rank = static_cast<std::uint8_t>(
      rest == 0 ? 64 - index_bits_ + 1 : std::countl_zero(rest) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

void HyperLogLog::merge(const HyperLogLog& other) {
  FCM_REQUIRE(registers_.size() == other.registers_.size() &&
                  hash_.seed() == other.hash_.seed(),
              "HyperLogLog::merge: mismatched geometry or hash");
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  const double alpha =
      registers_.size() <= 16 ? 0.673
      : registers_.size() <= 32 ? 0.697
      : registers_.size() <= 64 ? 0.709
                                : 0.7213 / (1.0 + 1.079 / m);
  double harmonic = 0.0;
  std::size_t zero_registers = 0;
  for (const std::uint8_t r : registers_) {
    harmonic += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zero_registers;
  }
  double estimate = alpha * m * m / harmonic;

  if (estimate <= 2.5 * m && zero_registers > 0) {
    // Small-range correction: linear counting on empty registers.
    estimate = m * std::log(m / static_cast<double>(zero_registers));
  } else if (estimate > (1.0 / 30.0) * 4294967296.0) {
    // Large-range correction for 32-bit key space.
    estimate = -4294967296.0 * std::log(1.0 - estimate / 4294967296.0);
  }
  return estimate;
}

void HyperLogLog::clear() {
  std::fill(registers_.begin(), registers_.end(), std::uint8_t{0});
}

}  // namespace fcm::sketch
