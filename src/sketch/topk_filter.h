// Single-level Top-K filter: the vote-based eviction hash table from
// ElasticSketch's heavy part [Yang et al., SIGCOMM 2018], restricted to one
// level — exactly what the paper deploys in front of FCM ("FCM+TopK", §6,
// §7.2: "a single level of Top-K algorithm with 4K entries") and what its
// Tofino implementation approximates ElasticSketch with (§8.1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/hash.h"
#include "flow/flow_key.h"

namespace fcm::agg {
class WireCodec;  // wire-format (de)serializer, the single state-access friend
}

namespace fcm::sketch {

class TopKFilter {
 public:
  // Result of offering one packet to the filter.
  struct Offer {
    enum class Outcome {
      kKept,         // packet absorbed by a heavy-part entry
      kPassThrough,  // packet must go to the backing sketch
      kEvicted,      // packet installed a new entry; old entry was evicted
    };
    Outcome outcome = Outcome::kPassThrough;
    flow::FlowKey evicted_key{};         // valid when outcome == kEvicted
    std::uint64_t evicted_count = 0;     // count to flush into the sketch
  };

  struct QueryResult {
    std::uint64_t count = 0;
    bool has_light_part = false;  // some of this flow's traffic passed through
  };

  // `entry_count` buckets; `eviction_lambda` is ElasticSketch's vote
  // threshold (evict when negative votes >= lambda * positive votes).
  explicit TopKFilter(std::size_t entry_count, std::uint32_t eviction_lambda = 8,
                      std::uint64_t seed = 0x70b4);

  Offer offer(flow::FlowKey key) {
    // FlowKey{0} doubles as the empty-bucket sentinel (mirroring the
    // data-plane register encoding, where an all-zero entry means "free").
    // Installing it would make the bucket indistinguishable from empty:
    // query() would miss it and the sketch never saw its packets — an
    // underestimate (caught by test_properties' never-underestimate
    // property). Route flow 0 to the backing sketch instead.
    if (key.value == 0) return Offer{};
    return offer_at(hash_.index(key, table_.size()), key);
  }

  // Batched offer (DESIGN.md §9): hashes `keys` block by block through
  // SeededHash::index_batch, prefetches the vote-table buckets, then applies
  // the offers in key order — bit-exact against per-key offer(), duplicates
  // within a batch included. Writes offers[i] for keys[i];
  // offers.size() >= keys.size().
  void offer_batch(std::span<const flow::FlowKey> keys, std::span<Offer> offers);

  // One flow displaced while merging two filters; its heavy-part count must
  // be flushed into the backing sketch by the caller (FcmTopK::merge does).
  struct MergeEviction {
    flow::FlowKey key{};
    std::uint64_t count = 0;
  };

  // Merges `other` bucket by bucket (requires identical entry count, lambda
  // and hash seed; ContractViolation otherwise). Same-key buckets sum their
  // counts and OR their light-part flags; when two different flows contend
  // for a bucket the larger count wins (ties keep the incumbent), the loser
  // is returned for flushing into the backing sketch, and the winner's
  // light-part flag is set — its pass-through traffic in the other shard
  // lives in that shard's sketch. The heavy part is not linear, so this is
  // an approximation (unlike FcmTree/CmSketch merges); queries on the merged
  // FcmTopK still never underestimate. Vote counters are clamped so
  // check_invariants() ordering properties keep holding.
  std::vector<MergeEviction> merge(const TopKFilter& other);

  // Marks a resident flow as having light-part (sketch-side) traffic; called
  // when some of its packets were deposited into the backing sketch OUTSIDE
  // the offer path (FcmTopK::add_weighted's cache demotions). Returns whether
  // the flow was resident; a miss is fine — non-resident flows are answered
  // from the sketch anyway.
  bool note_light_part(flow::FlowKey key) {
    if (key.value == 0) return false;
    Entry& entry = table_[hash_.index(key, table_.size())];
    if (entry.key != key) return false;
    entry.has_light_part = true;
    return true;
  }

  // Heavy-part lookup; nullopt when the flow holds no entry.
  std::optional<QueryResult> query(flow::FlowKey key) const;

  // All resident flows (key, count, has_light_part).
  struct EntryView {
    flow::FlowKey key;
    std::uint64_t count;
    bool has_light_part;
  };
  std::vector<EntryView> entries() const;

  // 8 bytes per entry (key + count), matching the paper's accounting of
  // "key-value entries"; votes/flags ride along as in the hardware tables.
  std::size_t memory_bytes() const { return table_.size() * 8; }
  std::size_t entry_count() const { return table_.size(); }

  // Deep invariants of the vote table (the heavy-part ordering property):
  //   - empty buckets carry no votes and no light-part flag;
  //   - an occupied bucket's positive votes are >= 1 (installation counts
  //     the installing packet);
  //   - negative votes stay strictly below the eviction threshold
  //     lambda * count (offer() evicts the moment the threshold is reached,
  //     so a resident entry always dominates its challengers).
  void check_invariants() const;

  void clear();

 private:
  friend class ::fcm::agg::WireCodec;

  // The vote/eviction state machine for one non-sentinel key whose bucket
  // index is already known. offer() and offer_batch() both land here, so the
  // two paths cannot drift.
  Offer offer_at(std::size_t bucket, flow::FlowKey key);

  struct Entry {
    flow::FlowKey key{};          // key.value == 0 means empty
    std::uint32_t count = 0;      // positive votes
    std::uint32_t negative = 0;   // negative votes
    bool has_light_part = false;
  };

  common::SeededHash hash_;
  std::uint32_t lambda_;
  std::vector<Entry> table_;
};

}  // namespace fcm::sketch
