// Filtered Space-Saving [Homem & Carvalho, 2010] — the heavy-hitter sketch
// the OVS-datapath reference stack pairs with its flow table (ROADMAP open
// item 2): a Space-Saving monitored list guarded by a hash FILTER of
// per-cell error bounds. A new flow is admitted to the list only when its
// cell's bound says it could plausibly beat the current minimum, so the
// Zipf tail mostly just bumps filter cells instead of churning the list.
//
//   update(x): monitored -> exact-ish count++ (error recorded at admission).
//              else with h = hash(x): admit when alpha[h] + 1 >= min count
//              of the full list (or the list has room), seeding the entry
//              with count = alpha[h] + 1, error = alpha[h]; the displaced
//              minimum writes its count back into ITS cell's bound
//              (alpha = max(alpha, evicted count)). Otherwise alpha[h]++.
//   query(x):  monitored -> count; else alpha[hash(x)].
//
// Both answers are upper bounds (never underestimates): a monitored count
// starts at an upper bound of the flow's pre-admission traffic and then
// counts exactly; an unmonitored flow's every packet either bumped its cell
// or is covered by a displaced count folded into the cell's bound.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "sketch/frequency_estimator.h"

namespace fcm::sketch {

class FssSketch : public FrequencyEstimator {
 public:
  struct Config {
    std::size_t filter_cells = 16384;     // error-bound cells (4 B each)
    std::size_t monitored_entries = 1024; // Space-Saving list capacity
    std::uint64_t seed = 0xf55;
  };

  explicit FssSketch(Config config);

  // Splits `memory_bytes` half/half between filter cells and the monitored
  // list, the paper's accounting (4-byte cells, 16-byte list entries).
  static FssSketch for_memory(std::size_t memory_bytes,
                              std::uint64_t seed = 0xf55);

  void update(flow::FlowKey key) override;
  std::uint64_t query(flow::FlowKey key) const override;
  std::size_t memory_bytes() const override {
    return cells_.size() * 4 + config_.monitored_entries * 16;
  }
  std::string name() const override { return "FSS"; }
  void clear() override;

  // --- FSS-specific surface (tests + accuracy tables) ---------------------
  struct MonitoredView {
    flow::FlowKey key;
    std::uint64_t count = 0;  // upper bound; exact since admission
    std::uint64_t error = 0;  // admission-time over-count bound
  };
  std::vector<MonitoredView> monitored() const;
  bool is_monitored(flow::FlowKey key) const { return index_.contains(key); }
  std::uint64_t cell_bound(flow::FlowKey key) const {
    return cells_[hash_.index(key, cells_.size())];
  }
  // Monitored flows whose guaranteed count (count - error) clears the bar.
  std::vector<flow::FlowKey> heavy_hitters(std::uint64_t threshold) const;

  // Deep invariants: list/index/order-set agree, error <= count per entry,
  // and no cell bound exceeds the total stream length.
  void check_invariants() const;

 private:
  struct Entry {
    flow::FlowKey key{};
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  void bump(std::size_t slot);

  Config config_;
  common::SeededHash hash_;
  std::vector<std::uint32_t> cells_;
  std::vector<Entry> entries_;
  std::unordered_map<flow::FlowKey, std::size_t> index_;  // key -> slot
  // (count, slot) ordered view of entries_ for O(log k) minimum tracking.
  std::set<std::pair<std::uint64_t, std::size_t>> by_count_;
  std::uint64_t total_updates_ = 0;
};

}  // namespace fcm::sketch
