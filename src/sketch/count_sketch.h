// Count-Sketch [Charikar, Chen, Farach-Colton 2002]: signed counters with a
// median estimator. Needed as the per-level sketch inside UnivMon.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "sketch/frequency_estimator.h"

namespace fcm::sketch {

class CountSketch : public FrequencyEstimator {
 public:
  CountSketch(std::size_t depth, std::size_t width, std::uint64_t seed = 0xc5c5);

  void update(flow::FlowKey key) override { add(key, 1); }
  void add(flow::FlowKey key, std::int64_t count);

  // Median-of-rows estimate; clamped below at 0 (flow sizes are
  // non-negative).
  std::uint64_t query(flow::FlowKey key) const override;
  std::int64_t signed_query(flow::FlowKey key) const;

  // Estimate of the L2 norm squared of the frequency vector (median of
  // per-row sums of squares) — used by UnivMon's G-sum computations.
  double l2_squared() const;

  std::size_t memory_bytes() const override;
  std::string name() const override { return "CountSketch"; }
  void clear() override;

 private:
  // Sign in {-1, +1} derived from an independent hash bit.
  int sign(std::size_t row, flow::FlowKey key) const noexcept;

  std::size_t width_;
  std::vector<common::SeededHash> index_hashes_;
  std::vector<common::SeededHash> sign_hashes_;
  std::vector<std::vector<std::int32_t>> rows_;
};

}  // namespace fcm::sketch
