#include "sketch/topk_filter.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/bitutil.h"
#include "common/contracts.h"

namespace fcm::sketch {

TopKFilter::TopKFilter(std::size_t entry_count, std::uint32_t eviction_lambda,
                       std::uint64_t seed)
    : hash_(common::make_hash(seed, 0)), lambda_(eviction_lambda) {
  FCM_REQUIRE(entry_count > 0, "TopKFilter: entry_count must be positive");
  FCM_REQUIRE(eviction_lambda > 0, "TopKFilter: eviction_lambda must be positive");
  table_.resize(entry_count);
}

TopKFilter::Offer TopKFilter::offer_at(std::size_t bucket, flow::FlowKey key) {
  Offer result;
  Entry& entry = table_[bucket];

  if (entry.key.value == 0) {
    entry = Entry{key, 1, 0, false};
    result.outcome = Offer::Outcome::kKept;
    return result;
  }
  if (entry.key == key) {
    ++entry.count;
    result.outcome = Offer::Outcome::kKept;
    return result;
  }
  ++entry.negative;
  if (entry.negative >= lambda_ * entry.count) {
    // Evict the incumbent: its accumulated count is flushed to the backing
    // sketch; the challenger takes the bucket. The challenger's earlier
    // packets were counted in the sketch, so its entry is flagged.
    result.outcome = Offer::Outcome::kEvicted;
    result.evicted_key = entry.key;
    result.evicted_count = entry.count;
    entry = Entry{key, 1, 0, true};
    return result;
  }
  result.outcome = Offer::Outcome::kPassThrough;
  return result;
}

void TopKFilter::offer_batch(std::span<const flow::FlowKey> keys,
                             std::span<Offer> offers) {
  Entry* const table = table_.data();
  const std::size_t width = table_.size();
  std::size_t idx[common::kBatchBlock];
  for (std::size_t base = 0; base < keys.size(); base += common::kBatchBlock) {
    const std::size_t n = std::min(common::kBatchBlock, keys.size() - base);
    const auto block = keys.subspan(base, n);
    hash_.index_batch(block, width, std::span<std::size_t>(idx, n));
    for (std::size_t i = 0; i < n; ++i) {
      FCM_PREFETCH_WRITE(table + idx[i]);
    }
    // Apply in key order: an eviction changes what a later duplicate in the
    // same block observes, so the sequence must match the scalar loop.
    for (std::size_t i = 0; i < n; ++i) {
      offers[base + i] = block[i].value == 0 ? Offer{} : offer_at(idx[i], block[i]);
    }
  }
}

std::vector<TopKFilter::MergeEviction> TopKFilter::merge(const TopKFilter& other) {
  FCM_REQUIRE(table_.size() == other.table_.size(),
              "TopKFilter::merge: mismatched entry counts (" +
                  std::to_string(table_.size()) + " vs " +
                  std::to_string(other.table_.size()) + ")");
  FCM_REQUIRE(lambda_ == other.lambda_,
              "TopKFilter::merge: mismatched eviction lambdas");
  FCM_REQUIRE(hash_.seed() == other.hash_.seed(),
              "TopKFilter::merge: filters use different hash functions");
  std::vector<MergeEviction> evictions;
  constexpr std::uint64_t kCounterMax = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t i = 0; i < table_.size(); ++i) {
    Entry& ours = table_[i];
    const Entry& theirs = other.table_[i];
    if (theirs.key.value == 0) continue;  // nothing arrives from `other`
    if (ours.key.value == 0) {
      // Our bucket never saw a packet (first offer always installs), so the
      // incoming flow has no light-part residue on our side: copy verbatim.
      ours = theirs;
      continue;
    }
    if (ours.key == theirs.key) {
      const std::uint64_t count =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(ours.count) +
                                      theirs.count,
                                  kCounterMax);
      // Clamp challenger votes below the eviction threshold: a resident
      // entry must keep dominating (check_invariants' ordering property).
      const std::uint64_t negative =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(ours.negative) +
                                      theirs.negative,
                                  static_cast<std::uint64_t>(lambda_) * count - 1);
      ours.count = static_cast<std::uint32_t>(count);
      ours.negative = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(negative, kCounterMax));
      ours.has_light_part = ours.has_light_part || theirs.has_light_part;
      continue;
    }
    // Two different incumbents contend for the bucket: keep the heavier one
    // (ties keep ours), flush the loser's exact count into the backing
    // sketch. The winner may have had pass-through packets in the loser's
    // shard, so its light-part flag must be set.
    if (theirs.count > ours.count) {
      evictions.push_back({ours.key, ours.count});
      ours = theirs;
    } else {
      evictions.push_back({theirs.key, theirs.count});
    }
    ours.has_light_part = true;
  }
  FCM_CHECKED_ONLY(check_invariants());
  return evictions;
}

std::optional<TopKFilter::QueryResult> TopKFilter::query(flow::FlowKey key) const {
  const Entry& entry = table_[hash_.index(key, table_.size())];
  if (entry.key.value == 0 || entry.key != key) return std::nullopt;
  return QueryResult{entry.count, entry.has_light_part};
}

std::vector<TopKFilter::EntryView> TopKFilter::entries() const {
  std::vector<EntryView> result;
  for (const Entry& entry : table_) {
    if (entry.key.value != 0) {
      result.push_back({entry.key, entry.count, entry.has_light_part});
    }
  }
  return result;
}

void TopKFilter::check_invariants() const {
  FCM_ASSERT(!table_.empty(), "TopKFilter: empty table");
  FCM_ASSERT(lambda_ > 0, "TopKFilter: lambda must stay positive");
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const Entry& entry = table_[i];
    if (entry.key.value == 0) {
      FCM_ASSERT(entry.count == 0 && entry.negative == 0 && !entry.has_light_part,
                 "TopKFilter: empty bucket " + std::to_string(i) +
                     " carries votes or flags");
      continue;
    }
    FCM_ASSERT(entry.count >= 1,
               "TopKFilter: occupied bucket " + std::to_string(i) +
                   " has zero positive votes");
    // offer() evicts the moment negative >= lambda * count, so a resident
    // entry always satisfies the strict inequality (same 32-bit arithmetic
    // as the eviction test).
    FCM_ASSERT(entry.negative < lambda_ * entry.count,
               "TopKFilter: bucket " + std::to_string(i) +
                   " survived past the eviction threshold");
  }
}

void TopKFilter::clear() {
  std::fill(table_.begin(), table_.end(), Entry{});
}

}  // namespace fcm::sketch
