#include "sketch/topk_filter.h"

#include <stdexcept>
#include <string>

#include "common/contracts.h"

namespace fcm::sketch {

TopKFilter::TopKFilter(std::size_t entry_count, std::uint32_t eviction_lambda,
                       std::uint64_t seed)
    : hash_(common::make_hash(seed, 0)), lambda_(eviction_lambda) {
  FCM_REQUIRE(entry_count > 0, "TopKFilter: entry_count must be positive");
  FCM_REQUIRE(eviction_lambda > 0, "TopKFilter: eviction_lambda must be positive");
  table_.resize(entry_count);
}

TopKFilter::Offer TopKFilter::offer(flow::FlowKey key) {
  Entry& entry = table_[hash_.index(key, table_.size())];
  Offer result;

  if (entry.key.value == 0) {
    entry = Entry{key, 1, 0, false};
    result.outcome = Offer::Outcome::kKept;
    return result;
  }
  if (entry.key == key) {
    ++entry.count;
    result.outcome = Offer::Outcome::kKept;
    return result;
  }
  ++entry.negative;
  if (entry.negative >= lambda_ * entry.count) {
    // Evict the incumbent: its accumulated count is flushed to the backing
    // sketch; the challenger takes the bucket. The challenger's earlier
    // packets were counted in the sketch, so its entry is flagged.
    result.outcome = Offer::Outcome::kEvicted;
    result.evicted_key = entry.key;
    result.evicted_count = entry.count;
    entry = Entry{key, 1, 0, true};
    return result;
  }
  result.outcome = Offer::Outcome::kPassThrough;
  return result;
}

std::optional<TopKFilter::QueryResult> TopKFilter::query(flow::FlowKey key) const {
  const Entry& entry = table_[hash_.index(key, table_.size())];
  if (entry.key.value == 0 || entry.key != key) return std::nullopt;
  return QueryResult{entry.count, entry.has_light_part};
}

std::vector<TopKFilter::EntryView> TopKFilter::entries() const {
  std::vector<EntryView> result;
  for (const Entry& entry : table_) {
    if (entry.key.value != 0) {
      result.push_back({entry.key, entry.count, entry.has_light_part});
    }
  }
  return result;
}

void TopKFilter::check_invariants() const {
  FCM_ASSERT(!table_.empty(), "TopKFilter: empty table");
  FCM_ASSERT(lambda_ > 0, "TopKFilter: lambda must stay positive");
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const Entry& entry = table_[i];
    if (entry.key.value == 0) {
      FCM_ASSERT(entry.count == 0 && entry.negative == 0 && !entry.has_light_part,
                 "TopKFilter: empty bucket " + std::to_string(i) +
                     " carries votes or flags");
      continue;
    }
    FCM_ASSERT(entry.count >= 1,
               "TopKFilter: occupied bucket " + std::to_string(i) +
                   " has zero positive votes");
    // offer() evicts the moment negative >= lambda * count, so a resident
    // entry always satisfies the strict inequality (same 32-bit arithmetic
    // as the eviction test).
    FCM_ASSERT(entry.negative < lambda_ * entry.count,
               "TopKFilter: bucket " + std::to_string(i) +
                   " survived past the eviction threshold");
  }
}

void TopKFilter::clear() {
  std::fill(table_.begin(), table_.end(), Entry{});
}

}  // namespace fcm::sketch
