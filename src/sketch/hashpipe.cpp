#include "sketch/hashpipe.h"

#include <stdexcept>

namespace fcm::sketch {

HashPipe::HashPipe(std::size_t stage_count, std::size_t entries_per_stage,
                   std::uint64_t seed)
    : entries_per_stage_(entries_per_stage) {
  if (stage_count == 0 || entries_per_stage == 0) {
    throw std::invalid_argument("HashPipe: bad geometry");
  }
  for (std::size_t s = 0; s < stage_count; ++s) {
    hashes_.push_back(common::make_hash(seed, static_cast<std::uint32_t>(s)));
    stages_.emplace_back(entries_per_stage);
  }
}

HashPipe HashPipe::for_memory(std::size_t memory_bytes, std::size_t stages,
                              std::uint64_t seed) {
  return HashPipe(stages, memory_bytes / (stages * 8), seed);
}

void HashPipe::update(flow::FlowKey key) {
  // Stage 1: always insert; evicted entry rolls through later stages.
  Entry carried{key, 1};
  {
    Entry& slot = stages_[0][hashes_[0].index(key, entries_per_stage_)];
    if (slot.key == key) {
      ++slot.count;
      return;
    }
    if (slot.key.value == 0) {
      slot = carried;
      return;
    }
    std::swap(slot, carried);
  }
  // Later stages: keep the larger count, carry the smaller onward.
  for (std::size_t s = 1; s < stages_.size(); ++s) {
    Entry& slot = stages_[s][hashes_[s].index(carried.key, entries_per_stage_)];
    if (slot.key == carried.key) {
      slot.count += carried.count;
      return;
    }
    if (slot.key.value == 0) {
      slot = carried;
      return;
    }
    if (slot.count < carried.count) std::swap(slot, carried);
  }
  // Smallest survivor falls off the pipe (HashPipe's by-design loss).
}

std::uint64_t HashPipe::query(flow::FlowKey key) const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Entry& slot = stages_[s][hashes_[s].index(key, entries_per_stage_)];
    if (slot.key == key) total += slot.count;
  }
  return total;
}

std::unordered_map<flow::FlowKey, std::uint64_t> HashPipe::tracked_flows() const {
  std::unordered_map<flow::FlowKey, std::uint64_t> flows;
  for (const auto& stage : stages_) {
    for (const Entry& e : stage) {
      if (e.key.value != 0) flows[e.key] += e.count;
    }
  }
  return flows;
}

std::size_t HashPipe::memory_bytes() const {
  return stages_.size() * entries_per_stage_ * 8;
}

void HashPipe::clear() {
  for (auto& stage : stages_) {
    std::fill(stage.begin(), stage.end(), Entry{});
  }
}

}  // namespace fcm::sketch
