#include "sketch/cm_sketch.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/bitutil.h"
#include "common/contracts.h"

namespace fcm::sketch {

CmSketch::CmSketch(std::size_t depth, std::size_t width, std::uint64_t seed)
    : width_(width) {
  FCM_REQUIRE(depth > 0 && width > 0,
              "CmSketch: depth and width must be positive (depth=" +
                  std::to_string(depth) + ", width=" + std::to_string(width) +
                  ")");
  hashes_.reserve(depth);
  rows_.reserve(depth);
  for (std::size_t d = 0; d < depth; ++d) {
    hashes_.push_back(common::make_hash(seed, static_cast<std::uint32_t>(d)));
    rows_.emplace_back(width, 0u);
  }
}

CmSketch CmSketch::for_memory(std::size_t memory_bytes, std::size_t depth,
                              std::uint64_t seed) {
  return CmSketch(depth, memory_bytes / (depth * sizeof(std::uint32_t)), seed);
}

void CmSketch::add(flow::FlowKey key, std::uint64_t count) {
  for (std::size_t d = 0; d < rows_.size(); ++d) {
    auto& counter = rows_[d][row_index(d, key)];
    const std::uint64_t next = counter + count;
    if (next > std::numeric_limits<std::uint32_t>::max()) {
      ++saturations_;  // observability: the counter clamped (undersized sketch)
    }
    counter = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(next, std::numeric_limits<std::uint32_t>::max()));
  }
}

void CmSketch::update_batch(std::span<const flow::FlowKey> keys) {
  std::size_t idx[common::kBatchBlock];
  for (std::size_t base = 0; base < keys.size(); base += common::kBatchBlock) {
    const std::size_t n = std::min(common::kBatchBlock, keys.size() - base);
    const auto block = keys.subspan(base, n);
    // Row-major: rows hash independently, and saturating +1s on one row
    // commute, so running each row over the whole block leaves the final
    // counters and the saturation count bit-exact vs the scalar loop.
    for (std::size_t d = 0; d < rows_.size(); ++d) {
      std::uint32_t* const row = rows_[d].data();
      hashes_[d].index_batch(block, width_, std::span<std::size_t>(idx, n));
      for (std::size_t i = 0; i < n; ++i) {
        FCM_PREFETCH_WRITE(row + idx[i]);
      }
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t& counter = row[idx[i]];
        // Same saturation point as add(): +1 clamps only at the 32-bit max.
        if (counter == std::numeric_limits<std::uint32_t>::max()) {
          ++saturations_;
        } else {
          ++counter;
        }
      }
    }
  }
}

std::uint64_t CmSketch::query(flow::FlowKey key) const {
  std::uint64_t result = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t d = 0; d < rows_.size(); ++d) {
    result = std::min<std::uint64_t>(result, rows_[d][row_index(d, key)]);
  }
  return result;
}

void CmSketch::merge(const CmSketch& other) {
  FCM_REQUIRE(rows_.size() == other.rows_.size() && width_ == other.width_,
              "CmSketch::merge: mismatched geometry (depth " +
                  std::to_string(rows_.size()) + "x" + std::to_string(width_) +
                  " vs " + std::to_string(other.rows_.size()) + "x" +
                  std::to_string(other.width_) + ")");
  for (std::size_t d = 0; d < hashes_.size(); ++d) {
    FCM_REQUIRE(hashes_[d].seed() == other.hashes_[d].seed(),
                "CmSketch::merge: row " + std::to_string(d) +
                    " uses a different hash function");
  }
  saturations_ += other.saturations_;  // monotone telemetry, see header
  for (std::size_t d = 0; d < rows_.size(); ++d) {
    for (std::size_t c = 0; c < width_; ++c) {
      // Saturating sum, exactly mirroring add()'s per-increment saturation:
      // min(a, M) + min(b, M) clamped at M equals min(a + b, M).
      const std::uint64_t sum =
          static_cast<std::uint64_t>(rows_[d][c]) + other.rows_[d][c];
      if (sum > std::numeric_limits<std::uint32_t>::max()) ++saturations_;
      rows_[d][c] = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          sum, std::numeric_limits<std::uint32_t>::max()));
    }
  }
}

std::size_t CmSketch::memory_bytes() const {
  return rows_.size() * width_ * sizeof(std::uint32_t);
}

void CmSketch::check_invariants() const {
  FCM_ASSERT(!rows_.empty(), "CmSketch: zero depth");
  FCM_ASSERT(width_ > 0, "CmSketch: zero width");
  FCM_ASSERT(hashes_.size() == rows_.size(),
             "CmSketch: hash count diverged from row count");
  for (std::size_t d = 0; d < rows_.size(); ++d) {
    FCM_ASSERT(rows_[d].size() == width_,
               "CmSketch: row " + std::to_string(d) +
                   " width diverged from the sketch geometry");
  }
}

void CmSketch::clear() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), 0u);
  saturations_ = 0;
}

CuSketch CuSketch::for_memory(std::size_t memory_bytes, std::size_t depth,
                              std::uint64_t seed) {
  return CuSketch(depth, memory_bytes / (depth * sizeof(std::uint32_t)), seed);
}

void CuSketch::update(flow::FlowKey key) {
  const std::uint64_t current = query(key);
  for (std::size_t d = 0; d < rows().size(); ++d) {
    auto& counter = rows()[d][row_index(d, key)];
    if (counter == current && counter < std::numeric_limits<std::uint32_t>::max()) {
      ++counter;
    }
  }
}

}  // namespace fcm::sketch
