// MRAC [Kumar, Sung, Xu, Wang, SIGMETRICS 2004]: a single hash-indexed
// counter array whose histogram of counter values is post-processed with an
// EM algorithm to recover the flow size distribution. The paper uses MRAC as
// the flow-size-distribution / entropy baseline (§7.2: "MRAC uses a single
// counter array for the best accuracy").
//
// The EM itself lives in src/controlplane/em.h; each MRAC counter is exactly
// a degree-1 virtual counter, so MRAC reuses the same engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "sketch/frequency_estimator.h"

namespace fcm::sketch {

class Mrac : public FrequencyEstimator {
 public:
  explicit Mrac(std::size_t width, std::uint64_t seed = 0x312ac);

  static Mrac for_memory(std::size_t memory_bytes, std::uint64_t seed = 0x312ac);

  void update(flow::FlowKey key) override;
  std::uint64_t query(flow::FlowKey key) const override;
  std::size_t memory_bytes() const override;
  std::string name() const override { return "MRAC"; }
  void clear() override;

  std::span<const std::uint32_t> counters() const noexcept { return counters_; }
  std::size_t width() const noexcept { return counters_.size(); }

 private:
  common::SeededHash hash_;
  std::vector<std::uint32_t> counters_;
};

}  // namespace fcm::sketch
