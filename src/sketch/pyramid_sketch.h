// Pyramid Sketch [Yang et al., VLDB 2017] combined with Count-Min — "PCM",
// the paper's counter-sharing baseline (§7.1–7.2: 4 hashes, 4-bit counters).
//
// Layer 1 holds pure 4-bit counters. Each higher layer halves in width; its
// 4-bit cells hold 2 counting bits plus 2 flag bits (left/right child
// overflowed). When a counter wraps, a carry is pushed to its parent and the
// child's flag is set in the parent. Queries reconstruct a value positionally
// by climbing while flags are set, and PCM takes the minimum over d leaf
// positions.
//
// Word-acceleration (the paper's "64-bit machine word" configuration): one
// hash selects a 16-counter word at layer 1 and the d counters are drawn
// *within* that word, so a flow costs one memory access — at the price of
// correlated collisions between flows sharing a word, which is where PCM
// loses accuracy relative to FCM.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "sketch/frequency_estimator.h"

namespace fcm::sketch {

class PyramidCmSketch : public FrequencyEstimator {
 public:
  // `leaf_width` 4-bit counters at layer 1, `depth` hash functions.
  PyramidCmSketch(std::size_t depth, std::size_t leaf_width,
                  std::uint64_t seed = 0x9147);

  // The paper's PCM configuration (4 hashes) sized for a memory budget.
  static PyramidCmSketch for_memory(std::size_t memory_bytes,
                                    std::size_t depth = 4,
                                    std::uint64_t seed = 0x9147);

  void update(flow::FlowKey key) override;
  std::uint64_t query(flow::FlowKey key) const override;
  std::size_t memory_bytes() const override;
  std::string name() const override { return "PCM"; }
  void clear() override;

  std::size_t layer_count() const noexcept { return layers_.size(); }

 private:
  static constexpr std::uint8_t kLeafMax = 15;        // 4-bit pure counter
  static constexpr std::uint8_t kCountMask = 0x3;     // 2 counting bits
  static constexpr std::uint8_t kLeftFlag = 0x4;
  static constexpr std::uint8_t kRightFlag = 0x8;
  static constexpr std::size_t kCountersPerWord = 16;  // 64-bit word / 4-bit

  void carry_up(std::size_t child_index);
  std::uint64_t reconstruct(std::size_t leaf_index) const;
  // The d leaf counters of `key`, all within one 16-counter word.
  void leaf_indices(flow::FlowKey key, std::vector<std::size_t>& out) const;

  common::SeededHash word_hash_;
  std::vector<common::SeededHash> hashes_;  // sub-hashes within the word
  // layers_[0] is layer 1 (pure counters); layers_[i>=1] are flag+count cells.
  std::vector<std::vector<std::uint8_t>> layers_;
};

}  // namespace fcm::sketch
