#include "sketch/spread_sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fcm::sketch {

MultiresolutionBitmap::MultiresolutionBitmap(std::size_t levels,
                                             std::size_t bits_per_level)
    : bits_(bits_per_level) {
  if (levels == 0 || bits_per_level == 0) {
    throw std::invalid_argument("MultiresolutionBitmap: bad geometry");
  }
  levels_.assign(levels, std::vector<bool>(bits_per_level, false));
}

std::size_t MultiresolutionBitmap::add(std::uint64_t element_hash) {
  const auto level = std::min<std::size_t>(
      static_cast<std::size_t>(std::countr_zero(element_hash | (1ull << 63))),
      levels_.size() - 1);
  // The top bits are independent of the trailing-zero count used for the
  // level; use them for the bit position.
  const std::size_t bit = (element_hash >> 32) % bits_;
  levels_[level][bit] = true;
  return level;
}

std::size_t MultiresolutionBitmap::set_bits(std::size_t level) const {
  return static_cast<std::size_t>(
      std::count(levels_[level].begin(), levels_[level].end(), true));
}

double MultiresolutionBitmap::estimate() const {
  // Base selection: skip saturated low levels where linear counting has no
  // resolution left, then rescale by the probability of sampling at or
  // above the base. P(level >= z) = 2^-z; the last level absorbs the tail.
  const double b = static_cast<double>(bits_);
  std::size_t base = 0;
  while (base + 1 < levels_.size() &&
         static_cast<double>(set_bits(base)) > 0.93 * b) {
    ++base;
  }
  double sum = 0.0;
  for (std::size_t level = base; level < levels_.size(); ++level) {
    double zeros = b - static_cast<double>(set_bits(level));
    if (zeros < 0.5) zeros = 0.5;
    sum += -b * std::log(zeros / b);
  }
  return sum * std::exp2(static_cast<double>(base));
}

void MultiresolutionBitmap::merge(const MultiresolutionBitmap& other) {
  if (other.levels_.size() != levels_.size() || other.bits_ != bits_) {
    throw std::invalid_argument("MultiresolutionBitmap::merge: geometry mismatch");
  }
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    for (std::size_t i = 0; i < bits_; ++i) {
      if (other.levels_[l][i]) levels_[l][i] = true;
    }
  }
}

void MultiresolutionBitmap::clear() {
  for (auto& level : levels_) std::fill(level.begin(), level.end(), false);
}

SpreadSketch::SpreadSketch(Config config)
    : config_(config), element_hash_(common::make_hash(config.seed, 0xe1)) {
  if (config_.rows == 0 || config_.buckets_per_row == 0) {
    throw std::invalid_argument("SpreadSketch: bad geometry");
  }
  for (std::size_t r = 0; r < config_.rows; ++r) {
    row_hashes_.push_back(common::make_hash(config_.seed, static_cast<std::uint32_t>(r)));
    rows_.emplace_back(
        config_.buckets_per_row,
        Bucket{MultiresolutionBitmap(config_.mrb_levels, config_.mrb_bits), {}, 0});
  }
}

void SpreadSketch::update(flow::FlowKey source, flow::FlowKey destination) {
  // One well-mixed hash of the (source, destination) pair: identical pairs
  // must map to the same bit so re-contacts do not inflate the spread.
  const std::uint64_t pair_hash = common::mix64(
      (static_cast<std::uint64_t>(element_hash_(source)) << 32) ^
      element_hash_(destination));
  for (std::size_t r = 0; r < config_.rows; ++r) {
    Bucket& bucket =
        rows_[r][row_hashes_[r].index(source, config_.buckets_per_row)];
    const std::size_t level = bucket.bitmap.add(pair_hash);
    // Ownership rule: the source observed with the highest sampled level
    // keeps the candidate slot (ties go to the newcomer, as in hardware).
    if (level >= bucket.candidate_level || bucket.candidate.value == 0) {
      bucket.candidate = source;
      bucket.candidate_level = static_cast<std::uint32_t>(level);
    }
  }
}

double SpreadSketch::estimate_spread(flow::FlowKey source) const {
  double estimate = std::numeric_limits<double>::max();
  for (std::size_t r = 0; r < config_.rows; ++r) {
    const Bucket& bucket =
        rows_[r][row_hashes_[r].index(source, config_.buckets_per_row)];
    estimate = std::min(estimate, bucket.bitmap.estimate());
  }
  return estimate;
}

std::vector<SpreadSketch::Candidate> SpreadSketch::superspreaders(
    double threshold) const {
  std::unordered_map<flow::FlowKey, double> candidates;
  for (const auto& row : rows_) {
    for (const Bucket& bucket : row) {
      if (bucket.candidate.value == 0) continue;
      if (!candidates.contains(bucket.candidate)) {
        candidates.emplace(bucket.candidate, estimate_spread(bucket.candidate));
      }
    }
  }
  std::vector<Candidate> result;
  for (const auto& [source, spread] : candidates) {
    if (spread >= threshold) result.push_back(Candidate{source, spread});
  }
  std::sort(result.begin(), result.end(),
            [](const Candidate& a, const Candidate& b) { return a.spread > b.spread; });
  return result;
}

std::size_t SpreadSketch::memory_bytes() const {
  // Per bucket: the bitmap plus a 4-byte candidate key and a 1-byte level.
  const std::size_t per_bucket =
      (config_.mrb_levels * config_.mrb_bits) / 8 + 5;
  return config_.rows * config_.buckets_per_row * per_bucket;
}

void SpreadSketch::clear() {
  for (auto& row : rows_) {
    for (Bucket& bucket : row) {
      bucket.bitmap.clear();
      bucket.candidate = {};
      bucket.candidate_level = 0;
    }
  }
}

}  // namespace fcm::sketch
