// ElasticSketch [Yang et al., SIGCOMM 2018], P4-version configuration (the
// variant the paper compares against, §7.1): a multi-level heavy part of
// vote-eviction key-value tables in front of a light part of 8-bit counters.
//
// Packets try each heavy level in pipeline order; a packet that owns no slot
// casts a negative vote and falls through; evicted incumbents are flushed
// into the light part with 8-bit saturation — the accuracy loss mechanism
// the paper analyses in §6 and Figure 14.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "sketch/frequency_estimator.h"
#include "sketch/topk_filter.h"

namespace fcm::sketch {

class ElasticSketch : public FrequencyEstimator {
 public:
  struct Config {
    std::size_t heavy_levels = 4;           // §7.2: 4 levels
    std::size_t entries_per_level = 8192;   // §7.2: 8K entries each
    std::uint32_t eviction_lambda = 8;
    std::size_t light_counters = 1 << 20;   // 8-bit cells
    std::uint64_t seed = 0xe1a5;
  };

  explicit ElasticSketch(Config config);

  // The paper's configuration: fixed heavy part, remaining memory as 8-bit
  // light counters.
  static ElasticSketch for_memory(std::size_t memory_bytes,
                                  std::uint64_t seed = 0xe1a5);

  void update(flow::FlowKey key) override;
  std::uint64_t query(flow::FlowKey key) const override;
  std::size_t memory_bytes() const override;
  std::string name() const override { return "Elastic"; }
  void clear() override;

  // --- control-plane accessors ---
  // Aggregated heavy-part flows (summed across levels).
  std::unordered_map<flow::FlowKey, std::uint64_t> heavy_flows() const;
  // Whether any heavy entry of `key` is flagged as having light-part residue.
  bool has_light_residue(flow::FlowKey key) const;
  // The light-part counter array (8-bit values, saturating at 255), for
  // MRAC-style flow-size-distribution recovery.
  const std::vector<std::uint8_t>& light_counters() const noexcept { return light_; }
  std::uint64_t light_query(flow::FlowKey key) const;

 private:
  void light_add(flow::FlowKey key, std::uint64_t count);

  Config config_;
  std::vector<TopKFilter> heavy_;
  common::SeededHash light_hash_;
  std::vector<std::uint8_t> light_;
};

}  // namespace fcm::sketch
