#include "sketch/mrac.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fcm::sketch {

Mrac::Mrac(std::size_t width, std::uint64_t seed)
    : hash_(common::make_hash(seed, 0)), counters_(width, 0u) {
  if (width == 0) throw std::invalid_argument("Mrac: width must be positive");
}

Mrac Mrac::for_memory(std::size_t memory_bytes, std::uint64_t seed) {
  return Mrac(memory_bytes / sizeof(std::uint32_t), seed);
}

void Mrac::update(flow::FlowKey key) {
  auto& counter = counters_[hash_.index(key, counters_.size())];
  if (counter < std::numeric_limits<std::uint32_t>::max()) ++counter;
}

std::uint64_t Mrac::query(flow::FlowKey key) const {
  return counters_[hash_.index(key, counters_.size())];
}

std::size_t Mrac::memory_bytes() const {
  return counters_.size() * sizeof(std::uint32_t);
}

void Mrac::clear() { std::fill(counters_.begin(), counters_.end(), 0u); }

}  // namespace fcm::sketch
