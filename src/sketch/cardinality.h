// Cardinality estimators: Linear Counting [Whang et al. 1990] and
// HyperLogLog [Flajolet et al. 2007]. HLL is the paper's cardinality
// baseline (8-bit register array, §7.1); Linear Counting is what FCM uses on
// its own leaf stage (§3.3) and is provided standalone for tests and
// comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "flow/flow_key.h"

namespace fcm::agg {
class WireCodec;  // wire-format (de)serializer, the single state-access friend
}

namespace fcm::sketch {

class LinearCounting {
 public:
  explicit LinearCounting(std::size_t bits, std::uint64_t seed = 0x11c0);

  void update(flow::FlowKey key);
  double estimate() const;

  std::size_t memory_bytes() const { return bitmap_.size() / 8; }
  std::size_t bit_count() const { return bitmap_.size(); }
  std::size_t zero_bits() const;
  void clear();

 private:
  friend class ::fcm::agg::WireCodec;

  common::SeededHash hash_;
  std::vector<bool> bitmap_;
};

class HyperLogLog {
 public:
  // `register_count` must be a power of two >= 16. The paper's setup uses
  // 8-bit registers.
  explicit HyperLogLog(std::size_t register_count, std::uint64_t seed = 0x4211);

  static HyperLogLog for_memory(std::size_t memory_bytes, std::uint64_t seed = 0x4211);

  void update(flow::FlowKey key);

  // Standard HLL estimate with small-range (linear counting) and large-range
  // corrections.
  double estimate() const;

  std::size_t memory_bytes() const { return registers_.size(); }
  void clear();

 private:
  friend class ::fcm::agg::WireCodec;

  common::SeededHash hash_;
  unsigned index_bits_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace fcm::sketch
