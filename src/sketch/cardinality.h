// Cardinality estimators: Linear Counting [Whang et al. 1990] and
// HyperLogLog [Flajolet et al. 2007]. HLL is the paper's cardinality
// baseline (8-bit register array, §7.1); Linear Counting is what FCM uses on
// its own leaf stage (§3.3) and is provided standalone for tests and
// comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "flow/flow_key.h"

namespace fcm::agg {
class WireCodec;  // wire-format (de)serializer, the single state-access friend
}

namespace fcm::sketch {

class LinearCounting {
 public:
  explicit LinearCounting(std::size_t bits, std::uint64_t seed = 0x11c0);

  // Shares an existing hash function instead of deriving one from a seed:
  // the single-pass sweep (DESIGN.md §14) builds its sidecar with the FCM
  // tree-0 hash so update_hash(tree0_raw_hash) ≡ update(key) bit for bit.
  LinearCounting(std::size_t bits, common::SeededHash hash);

  void update(flow::FlowKey key);
  // update() with the bob hash already in hand (h == hash()(key)).
  void update_hash(std::uint32_t h) noexcept {
    bitmap_[common::fast_range32(h, bitmap_.size())] = true;
  }
  double estimate() const;

  // Bitmap union — the sidecar merge. Distinct-set semantics make this
  // exact: OR of the shards' bitmaps equals the serial run's bitmap.
  // Requires identical geometry and hash seed (FCM_REQUIRE).
  void merge(const LinearCounting& other);

  std::size_t memory_bytes() const { return bitmap_.size() / 8; }
  std::size_t bit_count() const { return bitmap_.size(); }
  std::size_t zero_bits() const;
  common::SeededHash hash() const noexcept { return hash_; }
  void clear();

 private:
  friend class ::fcm::agg::WireCodec;

  common::SeededHash hash_;
  std::vector<bool> bitmap_;
};

class HyperLogLog {
 public:
  // The second 32-bit hash that widens update()'s value to 64 bits uses
  // seed hash().seed() ^ kAuxSeedXor. Exposed so the single-pass sweep can
  // compute the same aux hash in bulk and feed update_hash().
  static constexpr std::uint32_t kAuxSeedXor = 0x9e3779b9u;

  // `register_count` must be a power of two >= 16. The paper's setup uses
  // 8-bit registers.
  explicit HyperLogLog(std::size_t register_count, std::uint64_t seed = 0x4211);

  // Shares an existing hash function (see LinearCounting's hash ctor).
  HyperLogLog(std::size_t register_count, common::SeededHash hash);

  static HyperLogLog for_memory(std::size_t memory_bytes, std::uint64_t seed = 0x4211);

  void update(flow::FlowKey key);
  // update() with the 64-bit hash already assembled:
  //   h == (u64(hash()(key)) << 32) | bob(key, hash().seed() ^ kAuxSeedXor)
  void update_hash(std::uint64_t h) noexcept;

  // Standard HLL estimate with small-range (linear counting) and large-range
  // corrections.
  double estimate() const;

  // Per-register max — the sidecar merge. Exact for distinct-set semantics:
  // max over shards equals the serial run's registers. Requires identical
  // geometry and hash seed (FCM_REQUIRE).
  void merge(const HyperLogLog& other);

  std::size_t memory_bytes() const { return registers_.size(); }
  common::SeededHash hash() const noexcept { return hash_; }
  void clear();

 private:
  friend class ::fcm::agg::WireCodec;

  common::SeededHash hash_;
  unsigned index_bits_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace fcm::sketch
