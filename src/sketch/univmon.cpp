#include "sketch/univmon.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fcm::sketch {

UnivMon::UnivMon(Config config) : config_(config) {
  if (config_.levels == 0 || config_.heap_capacity == 0) {
    throw std::invalid_argument("UnivMon: bad configuration");
  }
  for (std::size_t i = 0; i < config_.levels; ++i) {
    sample_hashes_.push_back(common::make_hash(config_.seed, 0x1000 + static_cast<std::uint32_t>(i)));
    sketches_.emplace_back(config_.cs_depth, config_.cs_width,
                           common::mix64(config_.seed + i));
  }
  heaps_.resize(config_.levels);
}

UnivMon UnivMon::for_memory(std::size_t memory_bytes, std::uint64_t seed) {
  Config config;
  config.seed = seed;
  // 12 bytes per heap entry (key + estimate), the rest split across the
  // per-level Count-Sketches.
  const std::size_t heap_bytes = config.levels * config.heap_capacity * 12;
  if (memory_bytes <= heap_bytes) {
    throw std::invalid_argument("UnivMon::for_memory: budget below heap memory");
  }
  const std::size_t per_level = (memory_bytes - heap_bytes) / config.levels;
  config.cs_width = std::max<std::size_t>(
      64, per_level / (config.cs_depth * sizeof(std::int32_t)));
  return UnivMon(config);
}

bool UnivMon::sampled(std::size_t level, flow::FlowKey key) const noexcept {
  return (sample_hashes_[level](key) & 1u) != 0;
}

void UnivMon::heap_compact(Heap& heap) {
  // Drop stale queue entries (estimate no longer current).
  while (!heap.queue.empty()) {
    const auto& [est, key] = heap.queue.top();
    const auto it = heap.flows.find(key);
    if (it != heap.flows.end() && it->second == est) break;
    heap.queue.pop();
  }
}

void UnivMon::heap_update(std::size_t level, flow::FlowKey key,
                          std::uint64_t estimate) {
  Heap& heap = heaps_[level];
  if (const auto it = heap.flows.find(key); it != heap.flows.end()) {
    it->second = estimate;
    heap.queue.emplace(estimate, key);
  } else if (heap.flows.size() < config_.heap_capacity) {
    heap.flows.emplace(key, estimate);
    heap.queue.emplace(estimate, key);
  } else {
    heap_compact(heap);
    if (!heap.queue.empty() && estimate > heap.queue.top().first) {
      heap.flows.erase(heap.queue.top().second);
      heap.queue.pop();
      heap.flows.emplace(key, estimate);
      heap.queue.emplace(estimate, key);
    }
  }
  // Bound the lazy queue's growth.
  if (heap.queue.size() > 4 * config_.heap_capacity) {
    std::vector<Heap::QueueEntry> fresh;
    fresh.reserve(heap.flows.size());
    for (const auto& [k, v] : heap.flows) fresh.emplace_back(v, k);
    heap.queue = decltype(heap.queue)(std::greater<>{}, std::move(fresh));
  }
}

void UnivMon::update(flow::FlowKey key) {
  ++total_packets_;
  for (std::size_t level = 0; level < config_.levels; ++level) {
    if (level > 0 && !sampled(level, key)) break;
    sketches_[level].add(key, 1);
    heap_update(level, key, sketches_[level].query(key));
  }
}

std::uint64_t UnivMon::query(flow::FlowKey key) const {
  return sketches_[0].query(key);
}

double UnivMon::g_sum(const std::function<double(std::uint64_t)>& g) const {
  // Universal streaming recursion:
  //   Y_L = sum_{f in heap_L} g(w_f)
  //   Y_i = 2*Y_{i+1} + sum_{f in heap_i} (1 - 2*h_{i+1}(f)) * g(w_f)
  const std::size_t last = config_.levels - 1;
  double y = 0.0;
  for (const auto& [key, est] : heaps_[last].flows) {
    if (est > 0) y += g(est);
  }
  for (std::size_t i = last; i-- > 0;) {
    double correction = 0.0;
    for (const auto& [key, est] : heaps_[i].flows) {
      if (est == 0) continue;
      const double indicator = sampled(i + 1, key) ? 1.0 : 0.0;
      correction += (1.0 - 2.0 * indicator) * g(est);
    }
    y = 2.0 * y + correction;
  }
  return std::max(y, 0.0);
}

double UnivMon::estimate_entropy() const {
  if (total_packets_ == 0) return 0.0;
  const double m = static_cast<double>(total_packets_);
  const double s = g_sum([](std::uint64_t x) {
    return static_cast<double>(x) * std::log(static_cast<double>(x));
  });
  return std::max(0.0, std::log(m) - s / m);
}

std::vector<flow::FlowKey> UnivMon::heavy_hitters(std::uint64_t threshold) const {
  std::vector<flow::FlowKey> result;
  for (const auto& [key, est] : heaps_[0].flows) {
    if (est >= threshold) result.push_back(key);
  }
  return result;
}

std::size_t UnivMon::memory_bytes() const {
  std::size_t total = config_.levels * config_.heap_capacity * 12;
  for (const auto& sketch : sketches_) total += sketch.memory_bytes();
  return total;
}

void UnivMon::clear() {
  for (auto& sketch : sketches_) sketch.clear();
  for (auto& heap : heaps_) {
    heap.flows.clear();
    heap.queue = {};
  }
  total_packets_ = 0;
}

}  // namespace fcm::sketch
