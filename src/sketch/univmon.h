// UnivMon [Liu et al., SIGCOMM 2016]: universal sketching via recursive
// sub-sampling. Level 0 sees all flows; level i sees flows whose first i
// sampling-hash bits are all 1. Each level keeps a Count-Sketch plus a top-K
// heap; any G-sum statistic (cardinality, entropy, ...) is recovered with
// the universal-streaming recursion over the per-level heavy hitters.
//
// Paper configuration (§7.2): 16 levels, 2K-entry heaps, remaining memory in
// the per-level sketches.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "sketch/count_sketch.h"
#include "sketch/frequency_estimator.h"

namespace fcm::sketch {

class UnivMon : public FrequencyEstimator {
 public:
  struct Config {
    std::size_t levels = 16;
    std::size_t cs_depth = 5;
    std::size_t cs_width = 4096;
    std::size_t heap_capacity = 2048;  // §7.2: 2K heavy hitters per level
    std::uint64_t seed = 0x4e13;
  };

  explicit UnivMon(Config config);

  static UnivMon for_memory(std::size_t memory_bytes, std::uint64_t seed = 0x4e13);

  void update(flow::FlowKey key) override;
  std::uint64_t query(flow::FlowKey key) const override;
  std::size_t memory_bytes() const override;
  std::string name() const override { return "UnivMon"; }
  void clear() override;

  // G-sum over the frequency vector: sum_f g(x_f), via the universal
  // streaming recursion on per-level heaps.
  double g_sum(const std::function<double(std::uint64_t)>& g) const;

  // Distinct flows: G-sum with g = 1.
  double estimate_cardinality() const { return g_sum([](std::uint64_t) { return 1.0; }); }

  // Empirical entropy via H = ln(m) - (1/m) * sum_f x_f ln x_f.
  double estimate_entropy() const;

  // Flows in the level-0 heap with estimate >= threshold.
  std::vector<flow::FlowKey> heavy_hitters(std::uint64_t threshold) const;

 private:
  struct Heap {
    // Tracked flow -> current estimate, with a lazy min-heap for eviction.
    std::unordered_map<flow::FlowKey, std::uint64_t> flows;
    using QueueEntry = std::pair<std::uint64_t, flow::FlowKey>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  };

  bool sampled(std::size_t level, flow::FlowKey key) const noexcept;
  void heap_update(std::size_t level, flow::FlowKey key, std::uint64_t estimate);
  void heap_compact(Heap& heap);

  Config config_;
  std::vector<common::SeededHash> sample_hashes_;
  std::vector<CountSketch> sketches_;
  std::vector<Heap> heaps_;
  std::uint64_t total_packets_ = 0;
};

}  // namespace fcm::sketch
