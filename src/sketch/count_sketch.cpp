#include "sketch/count_sketch.h"

#include <algorithm>
#include <stdexcept>

namespace fcm::sketch {

CountSketch::CountSketch(std::size_t depth, std::size_t width, std::uint64_t seed)
    : width_(width) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("CountSketch: depth and width must be positive");
  }
  for (std::size_t d = 0; d < depth; ++d) {
    index_hashes_.push_back(common::make_hash(seed, static_cast<std::uint32_t>(2 * d)));
    sign_hashes_.push_back(common::make_hash(seed, static_cast<std::uint32_t>(2 * d + 1)));
    rows_.emplace_back(width, 0);
  }
}

int CountSketch::sign(std::size_t row, flow::FlowKey key) const noexcept {
  return (sign_hashes_[row](key) & 1u) ? 1 : -1;
}

void CountSketch::add(flow::FlowKey key, std::int64_t count) {
  for (std::size_t d = 0; d < rows_.size(); ++d) {
    auto& cell = rows_[d][index_hashes_[d].index(key, width_)];
    cell = static_cast<std::int32_t>(cell + sign(d, key) * count);
  }
}

std::int64_t CountSketch::signed_query(flow::FlowKey key) const {
  std::vector<std::int64_t> estimates;
  estimates.reserve(rows_.size());
  for (std::size_t d = 0; d < rows_.size(); ++d) {
    estimates.push_back(
        static_cast<std::int64_t>(sign(d, key)) *
        rows_[d][index_hashes_[d].index(key, width_)]);
  }
  auto mid = estimates.begin() + estimates.size() / 2;
  std::nth_element(estimates.begin(), mid, estimates.end());
  if (estimates.size() % 2 == 1) return *mid;
  const std::int64_t hi = *mid;
  const std::int64_t lo = *std::max_element(estimates.begin(), mid);
  return (hi + lo) / 2;
}

std::uint64_t CountSketch::query(flow::FlowKey key) const {
  const std::int64_t est = signed_query(key);
  return est > 0 ? static_cast<std::uint64_t>(est) : 0;
}

double CountSketch::l2_squared() const {
  std::vector<double> sums;
  sums.reserve(rows_.size());
  for (const auto& row : rows_) {
    double s = 0.0;
    for (const std::int32_t v : row) s += static_cast<double>(v) * v;
    sums.push_back(s);
  }
  auto mid = sums.begin() + sums.size() / 2;
  std::nth_element(sums.begin(), mid, sums.end());
  return *mid;
}

std::size_t CountSketch::memory_bytes() const {
  return rows_.size() * width_ * sizeof(std::int32_t);
}

void CountSketch::clear() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), 0);
}

}  // namespace fcm::sketch
