// SpreadSketch [Tang, Huang, Lee — INFOCOM 2020]: invertible superspreader
// detection in the data plane. Listed in the paper's Table 5 as the
// task-specific comparison point (6 stages, 12.5% sALUs on Tofino).
//
// Structure: d rows of w buckets. Each bucket holds a multiresolution
// bitmap (a data-plane-friendly distinct counter) plus a candidate source
// key tagged with the highest sampled level observed — sources with many
// distinct destinations win bucket ownership with high probability, making
// the sketch invertible (candidates are read directly from the buckets).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "flow/flow_key.h"

namespace fcm::sketch {

// Estan-Varghese-style multiresolution bitmap: an element is sampled into
// level l with probability 2^-(l+1) (the last level absorbs the tail) and
// sets one bit of that level's bitmap. Estimation linear-counts each level
// from the first non-saturated one upward and rescales by the sampling rate.
class MultiresolutionBitmap {
 public:
  // `levels` bitmaps of `bits_per_level` bits each.
  explicit MultiresolutionBitmap(std::size_t levels = 8,
                                 std::size_t bits_per_level = 64);

  // Inserts an element by its (well-mixed) 64-bit hash. Returns the sampled
  // level, which SpreadSketch reuses for candidate ownership.
  std::size_t add(std::uint64_t element_hash);

  double estimate() const;

  // Merges another bitmap of identical geometry (bitwise OR) — distinct
  // counting is union-compatible.
  void merge(const MultiresolutionBitmap& other);

  std::size_t memory_bits() const { return levels_.size() * bits_; }
  void clear();

 private:
  std::size_t set_bits(std::size_t level) const;

  std::size_t bits_;
  std::vector<std::vector<bool>> levels_;
};

class SpreadSketch {
 public:
  struct Config {
    std::size_t rows = 4;
    std::size_t buckets_per_row = 1024;
    std::size_t mrb_levels = 8;
    std::size_t mrb_bits = 64;
    std::uint64_t seed = 0x5bead;
  };

  explicit SpreadSketch(Config config);

  // Records that `source` contacted `destination`.
  void update(flow::FlowKey source, flow::FlowKey destination);

  // Estimated number of distinct destinations of `source` (min over rows).
  double estimate_spread(flow::FlowKey source) const;

  // Invertible query: candidate superspreaders recorded in the buckets,
  // with spread >= threshold, sorted by estimated spread (descending).
  struct Candidate {
    flow::FlowKey source;
    double spread;
  };
  std::vector<Candidate> superspreaders(double threshold) const;

  std::size_t memory_bytes() const;
  void clear();

 private:
  struct Bucket {
    MultiresolutionBitmap bitmap;
    flow::FlowKey candidate{};
    std::uint32_t candidate_level = 0;
  };

  Config config_;
  std::vector<common::SeededHash> row_hashes_;
  common::SeededHash element_hash_;
  std::vector<std::vector<Bucket>> rows_;
};

}  // namespace fcm::sketch
