#include "sketch/fss_sketch.h"

#include <algorithm>

#include "common/contracts.h"

namespace fcm::sketch {

FssSketch::FssSketch(Config config) : config_(config), hash_(config.seed) {
  FCM_REQUIRE(config_.filter_cells >= 1, "FssSketch: need at least one cell");
  FCM_REQUIRE(config_.monitored_entries >= 1,
              "FssSketch: need at least one monitored entry");
  cells_.assign(config_.filter_cells, 0);
  entries_.reserve(config_.monitored_entries);
}

FssSketch FssSketch::for_memory(std::size_t memory_bytes, std::uint64_t seed) {
  FCM_REQUIRE(memory_bytes >= 64, "FssSketch::for_memory: budget too small");
  Config config;
  config.filter_cells = std::max<std::size_t>(1, memory_bytes / 2 / 4);
  config.monitored_entries = std::max<std::size_t>(1, memory_bytes / 2 / 16);
  config.seed = seed;
  return FssSketch(config);
}

void FssSketch::bump(std::size_t slot) {
  Entry& entry = entries_[slot];
  by_count_.erase({entry.count, slot});
  ++entry.count;
  by_count_.insert({entry.count, slot});
}

void FssSketch::update(flow::FlowKey key) {
  ++total_updates_;
  if (const auto it = index_.find(key); it != index_.end()) {
    bump(it->second);
    return;
  }
  const std::size_t cell = hash_.index(key, cells_.size());
  const std::uint64_t bound = cells_[cell];
  if (entries_.size() < config_.monitored_entries) {
    // Room in the list: admit unconditionally (classic Space-Saving warmup).
    const std::size_t slot = entries_.size();
    entries_.push_back(Entry{key, bound + 1, bound});
    index_.emplace(key, slot);
    by_count_.insert({bound + 1, slot});
    return;
  }
  const auto minimum = *by_count_.begin();  // (count, slot) of the list min
  if (bound + 1 >= minimum.first) {
    // The filter cannot rule this flow out: displace the minimum. The
    // evicted flow's count becomes (part of) ITS cell's error bound, so a
    // later query for it still never underestimates.
    const std::size_t slot = minimum.second;
    Entry& entry = entries_[slot];
    const std::size_t evicted_cell = hash_.index(entry.key, cells_.size());
    cells_[evicted_cell] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(0xffffffff,
                                std::max<std::uint64_t>(cells_[evicted_cell],
                                                        entry.count)));
    index_.erase(entry.key);
    by_count_.erase(minimum);
    entry = Entry{key, bound + 1, bound};
    index_.emplace(key, slot);
    by_count_.insert({bound + 1, slot});
    return;
  }
  // Filtered out: just raise the cell's bound.
  if (cells_[cell] != 0xffffffff) ++cells_[cell];
}

std::uint64_t FssSketch::query(flow::FlowKey key) const {
  if (const auto it = index_.find(key); it != index_.end()) {
    return entries_[it->second].count;
  }
  return cells_[hash_.index(key, cells_.size())];
}

std::vector<FssSketch::MonitoredView> FssSketch::monitored() const {
  std::vector<MonitoredView> view;
  view.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    view.push_back({entry.key, entry.count, entry.error});
  }
  return view;
}

std::vector<flow::FlowKey> FssSketch::heavy_hitters(
    std::uint64_t threshold) const {
  std::vector<flow::FlowKey> result;
  for (const Entry& entry : entries_) {
    if (entry.count - entry.error >= threshold) result.push_back(entry.key);
  }
  return result;
}

void FssSketch::clear() {
  cells_.assign(config_.filter_cells, 0);
  entries_.clear();
  index_.clear();
  by_count_.clear();
  total_updates_ = 0;
}

void FssSketch::check_invariants() const {
  FCM_ASSERT(entries_.size() <= config_.monitored_entries,
             "FssSketch: monitored list over capacity");
  FCM_ASSERT(entries_.size() == index_.size() &&
                 entries_.size() == by_count_.size(),
             "FssSketch: list/index/order-set sizes diverged");
  for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
    const Entry& entry = entries_[slot];
    FCM_ASSERT(entry.error <= entry.count,
               "FssSketch: admission error exceeds monitored count");
    FCM_ASSERT(entry.count <= total_updates_ + entry.error,
               "FssSketch: monitored count exceeds stream length + bound");
    const auto it = index_.find(entry.key);
    FCM_ASSERT(it != index_.end() && it->second == slot,
               "FssSketch: index does not point back at its entry");
    FCM_ASSERT(by_count_.contains({entry.count, slot}),
               "FssSketch: order set lost track of an entry");
  }
}

}  // namespace fcm::sketch
