#include "sketch/pyramid_sketch.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fcm::sketch {

PyramidCmSketch::PyramidCmSketch(std::size_t depth, std::size_t leaf_width,
                                 std::uint64_t seed)
    : word_hash_(common::make_hash(seed, 0)) {
  if (depth == 0 || depth > kCountersPerWord || leaf_width < kCountersPerWord) {
    throw std::invalid_argument("PyramidCmSketch: bad geometry");
  }
  for (std::size_t d = 0; d < depth; ++d) {
    hashes_.push_back(common::make_hash(seed, 1 + static_cast<std::uint32_t>(d)));
  }
  std::size_t words = leaf_width / kCountersPerWord;
  while (words >= 1) {
    layers_.emplace_back(words * kCountersPerWord, std::uint8_t{0});
    if (words == 1) break;
    words = (words + 1) / 2;
  }
}

PyramidCmSketch PyramidCmSketch::for_memory(std::size_t memory_bytes,
                                            std::size_t depth,
                                            std::uint64_t seed) {
  // Total bits ~= 4 * leaf_width * (1 + 1/2 + 1/4 + ...) = 8 * leaf_width.
  return PyramidCmSketch(depth, memory_bytes, seed);
}

void PyramidCmSketch::leaf_indices(flow::FlowKey key,
                                   std::vector<std::size_t>& out) const {
  // One memory word per flow (the paper's 64-bit-word configuration): the
  // word is hashed once, the d counters are sub-hashed within it.
  const std::size_t words = layers_[0].size() / kCountersPerWord;
  const std::size_t base = word_hash_.index(key, words) * kCountersPerWord;
  out.clear();
  for (const auto& hash : hashes_) {
    // Distinct counters within the word: linear-probe past sub-collisions.
    std::size_t slot = hash.index(key, kCountersPerWord);
    while (std::find(out.begin(), out.end(), base + slot) != out.end()) {
      slot = (slot + 1) % kCountersPerWord;
    }
    out.push_back(base + slot);
  }
}

void PyramidCmSketch::carry_up(std::size_t child_index) {
  // Carries flow word-to-word: the parent of (word w, slot s) is
  // (word w/2, slot s), so the d counters of one flow never merge paths;
  // collisions come from the sibling word's same slot.
  std::size_t index = child_index;
  for (std::size_t layer = 1; layer < layers_.size(); ++layer) {
    const std::size_t word = index / kCountersPerWord;
    const std::size_t slot = index % kCountersPerWord;
    const bool right_child = (word & 1) != 0;
    index = (word / 2) * kCountersPerWord + slot;
    auto& cell = layers_[layer][index];
    cell |= right_child ? kRightFlag : kLeftFlag;
    const std::uint8_t count = cell & kCountMask;
    if (count < kCountMask) {
      cell = static_cast<std::uint8_t>((cell & ~kCountMask) | (count + 1));
      return;
    }
    // Counting part wraps: zero it and propagate the carry.
    cell = static_cast<std::uint8_t>(cell & ~kCountMask);
  }
  // Carry off the top of the pyramid: saturate silently (documented
  // limitation shared with the original implementation's finite height).
}

void PyramidCmSketch::update(flow::FlowKey key) {
  std::vector<std::size_t> indices;
  leaf_indices(key, indices);
  for (const std::size_t index : indices) {
    auto& leaf = layers_[0][index];
    if (leaf < kLeafMax) {
      ++leaf;
    } else {
      leaf = 0;
      carry_up(index);
    }
  }
}

std::uint64_t PyramidCmSketch::reconstruct(std::size_t leaf_index) const {
  std::uint64_t value = layers_[0][leaf_index];
  std::uint64_t base = kLeafMax + 1;  // 16
  std::size_t index = leaf_index;
  for (std::size_t layer = 1; layer < layers_.size(); ++layer) {
    const std::size_t word = index / kCountersPerWord;
    const std::size_t slot = index % kCountersPerWord;
    const bool right_child = (word & 1) != 0;
    index = (word / 2) * kCountersPerWord + slot;
    const std::uint8_t cell = layers_[layer][index];
    const std::uint8_t flag = right_child ? kRightFlag : kLeftFlag;
    if ((cell & flag) == 0) break;
    value += base * (cell & kCountMask);
    base *= kCountMask + 1;  // 4 per higher layer
    // Climbing continues: a wrapped counting part set a flag further up.
  }
  return value;
}

std::uint64_t PyramidCmSketch::query(flow::FlowKey key) const {
  std::vector<std::size_t> indices;
  leaf_indices(key, indices);
  std::uint64_t result = std::numeric_limits<std::uint64_t>::max();
  for (const std::size_t index : indices) {
    result = std::min(result, reconstruct(index));
  }
  return result;
}

std::size_t PyramidCmSketch::memory_bytes() const {
  std::size_t cells = 0;
  for (const auto& layer : layers_) cells += layer.size();
  return cells / 2;  // 4 bits per cell
}

void PyramidCmSketch::clear() {
  for (auto& layer : layers_) std::fill(layer.begin(), layer.end(), std::uint8_t{0});
}

}  // namespace fcm::sketch
