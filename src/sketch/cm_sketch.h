// Count-Min sketch [Cormode & Muthukrishnan 2005], the paper's primary
// baseline: d arrays of 32-bit counters, increment-all / min-query.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "sketch/frequency_estimator.h"

namespace fcm::agg {
class WireCodec;  // wire-format (de)serializer, the single state-access friend
}

namespace fcm::sketch {

class CmSketch : public FrequencyEstimator {
 public:
  // `depth` arrays of `width` 32-bit counters. The paper's setup (§7.2)
  // uses depth = 3.
  CmSketch(std::size_t depth, std::size_t width, std::uint64_t seed = 0xc0117);

  // Builds the paper's configuration for a memory budget.
  static CmSketch for_memory(std::size_t memory_bytes, std::size_t depth = 3,
                             std::uint64_t seed = 0xc0117);

  void update(flow::FlowKey key) override { add(key, 1); }
  void add(flow::FlowKey key, std::uint64_t count);

  // Batched per-packet update (DESIGN.md §9): per row, hashes the block
  // through SeededHash::index_batch, prefetches the counter lines, then
  // applies saturating increments in key order — bit-exact against the
  // scalar loop (rows are independent; saturation telemetry included).
  void update_batch(std::span<const flow::FlowKey> keys) override;

  std::uint64_t query(flow::FlowKey key) const override;

  // Element-wise counter sum: CM is linear, so the merged state is bit-exact
  // the state one sketch would hold after absorbing both streams (counters
  // saturate at 2^32 - 1 exactly as serial add() does). Requires identical
  // geometry and per-row hash seeds (ContractViolation otherwise). For the
  // conservative-update subclass the merged counters remain a valid
  // overestimate of every flow, but are not bit-exact with a serial CU run
  // (conservative update is not linear).
  void merge(const CmSketch& other);
  std::size_t memory_bytes() const override;
  std::string name() const override { return "CM"; }
  void clear() override;

  std::size_t depth() const noexcept { return rows_.size(); }
  std::size_t width() const noexcept { return width_; }

  // Observability: how many counter increments clamped at the 32-bit
  // ceiling since construction / clear(). A non-zero value means the sketch
  // is undersized for the workload (estimates silently stop growing); the
  // benches surface it through the metrics registry.
  std::uint64_t saturation_count() const noexcept { return saturations_; }

  // Deep invariants: row geometry (depth >= 1, every row exactly `width()`
  // counters, one hash per row).
  void check_invariants() const;

 protected:
  std::size_t row_index(std::size_t row, flow::FlowKey key) const noexcept {
    return hashes_[row].index(key, width_);
  }
  std::vector<std::vector<std::uint32_t>>& rows() noexcept { return rows_; }
  const std::vector<std::vector<std::uint32_t>>& rows() const noexcept { return rows_; }

 private:
  friend class ::fcm::agg::WireCodec;

  std::size_t width_;
  std::vector<common::SeededHash> hashes_;
  std::vector<std::vector<std::uint32_t>> rows_;
  std::uint64_t saturations_ = 0;  // see saturation_count()
};

// Count-Min with conservative update [Estan & Varghese 2003]: only counters
// equal to the current minimum are incremented, so the min-query is
// unchanged for other flows. Strictly more accurate than CM, still
// overestimating.
class CuSketch : public CmSketch {
 public:
  using CmSketch::CmSketch;

  static CuSketch for_memory(std::size_t memory_bytes, std::size_t depth = 3,
                             std::uint64_t seed = 0xc0117);

  void update(flow::FlowKey key) override;

  // Conservative update needs a read-all-rows-then-write pass per packet, so
  // CM's row-major batched kernel does not apply; fall back to the per-key
  // loop (inheriting CmSketch::update_batch would silently change semantics).
  void update_batch(std::span<const flow::FlowKey> keys) override {
    for (const auto& key : keys) update(key);
  }

  std::string name() const override { return "CU"; }
};

}  // namespace fcm::sketch
