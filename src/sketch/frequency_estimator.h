// Common interface for per-flow frequency estimators.
//
// Every sketch in this repository (FCM and all baselines) implements this so
// the evaluation harness (src/metrics) can drive them uniformly.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "flow/flow_key.h"

namespace fcm::sketch {

class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  // Process one packet of flow `key`.
  virtual void update(flow::FlowKey key) = 0;

  // Process a block of packets, one per key, in order. Semantically identical
  // to calling update() per key; estimators with a batched kernel (bulk
  // hashing + prefetch, DESIGN.md §9) override this with a bit-exact fast
  // path, so harnesses can feed blocks without knowing the concrete type.
  virtual void update_batch(std::span<const flow::FlowKey> keys) {
    for (const auto& key : keys) update(key);
  }

  // Estimated number of packets seen for `key`.
  virtual std::uint64_t query(flow::FlowKey key) const = 0;

  // Logical memory footprint in bytes (what the paper's memory axis means).
  virtual std::size_t memory_bytes() const = 0;

  // Short human-readable name for tables ("CM", "FCM", ...).
  virtual std::string name() const = 0;

  // Reset to the empty state.
  virtual void clear() = 0;
};

}  // namespace fcm::sketch
