#include "sketch/sampled_netflow.h"

#include <stdexcept>

namespace fcm::sketch {

SampledNetFlow::SampledNetFlow(std::uint32_t sampling_rate,
                               std::size_t max_entries, std::uint64_t seed)
    : sampling_rate_(sampling_rate), max_entries_(max_entries), rng_(seed) {
  if (sampling_rate == 0 || max_entries == 0) {
    throw std::invalid_argument("SampledNetFlow: bad parameters");
  }
  table_.reserve(max_entries);
}

SampledNetFlow SampledNetFlow::for_memory(std::size_t memory_bytes,
                                          std::uint32_t sampling_rate,
                                          std::uint64_t seed) {
  return SampledNetFlow(sampling_rate, memory_bytes / 16, seed);
}

void SampledNetFlow::update(flow::FlowKey key) {
  if (sampling_rate_ > 1 && rng_.next_below(sampling_rate_) != 0) return;
  const auto it = table_.find(key);
  if (it != table_.end()) {
    ++it->second;
  } else if (table_.size() < max_entries_) {
    table_.emplace(key, 1);
  }
  // Full cache: the sampled packet of an untracked flow is dropped.
}

std::uint64_t SampledNetFlow::query(flow::FlowKey key) const {
  const auto it = table_.find(key);
  if (it == table_.end()) return 0;
  return static_cast<std::uint64_t>(it->second) * sampling_rate_;
}

void SampledNetFlow::clear() { table_.clear(); }

}  // namespace fcm::sketch
