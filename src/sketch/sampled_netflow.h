// NetFlow-style sampled flow accounting — the §2 motivation baseline.
//
// Classic routers sample 1-in-N packets and keep exact records for sampled
// flows; estimates are scaled back up by N. This preserves heavy flows but
// misses small ones entirely and inflates variance — the accuracy gap that
// motivates sketches (paper §1–2). Kept memory-bounded like a line card's
// flow cache: when the table is full, new flows are not admitted (the
// deployed failure mode).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/random.h"
#include "sketch/frequency_estimator.h"

namespace fcm::sketch {

class SampledNetFlow : public FrequencyEstimator {
 public:
  // Samples each packet independently with probability 1/sampling_rate.
  SampledNetFlow(std::uint32_t sampling_rate, std::size_t max_entries,
                 std::uint64_t seed = 0x5a3b1e);

  // 16 bytes per flow record (key + count + flags/timestamps), as in a
  // v5-style cache entry.
  static SampledNetFlow for_memory(std::size_t memory_bytes,
                                   std::uint32_t sampling_rate,
                                   std::uint64_t seed = 0x5a3b1e);

  void update(flow::FlowKey key) override;
  std::uint64_t query(flow::FlowKey key) const override;
  std::size_t memory_bytes() const override { return max_entries_ * 16; }
  std::string name() const override {
    return "NetFlow(1/" + std::to_string(sampling_rate_) + ")";
  }
  void clear() override;

  std::size_t tracked_flows() const noexcept { return table_.size(); }
  std::uint32_t sampling_rate() const noexcept { return sampling_rate_; }

 private:
  std::uint32_t sampling_rate_;
  std::size_t max_entries_;
  common::Xoshiro256 rng_;
  std::unordered_map<flow::FlowKey, std::uint32_t> table_;
};

}  // namespace fcm::sketch
