#include "sketch/elastic_sketch.h"

#include <algorithm>
#include <stdexcept>

namespace fcm::sketch {

ElasticSketch::ElasticSketch(Config config)
    : config_(config),
      light_hash_(common::make_hash(config.seed, 0xff)),
      light_(config.light_counters, 0) {
  if (config_.heavy_levels == 0 || config_.light_counters == 0) {
    throw std::invalid_argument("ElasticSketch: bad geometry");
  }
  for (std::size_t level = 0; level < config_.heavy_levels; ++level) {
    heavy_.emplace_back(config_.entries_per_level, config_.eviction_lambda,
                        common::mix64(config_.seed + level));
  }
}

ElasticSketch ElasticSketch::for_memory(std::size_t memory_bytes,
                                        std::uint64_t seed) {
  Config config;
  config.seed = seed;
  const std::size_t heavy_bytes =
      config.heavy_levels * config.entries_per_level * 8;
  if (memory_bytes <= heavy_bytes) {
    throw std::invalid_argument(
        "ElasticSketch::for_memory: budget below the fixed heavy part");
  }
  config.light_counters = memory_bytes - heavy_bytes;  // 1 byte per counter
  return ElasticSketch(config);
}

void ElasticSketch::light_add(flow::FlowKey key, std::uint64_t count) {
  auto& cell = light_[light_hash_.index(key, light_.size())];
  const std::uint64_t next = cell + count;
  cell = static_cast<std::uint8_t>(std::min<std::uint64_t>(next, 255));
}

void ElasticSketch::update(flow::FlowKey key) {
  flow::FlowKey current = key;
  for (auto& level : heavy_) {
    const TopKFilter::Offer offer = level.offer(current);
    switch (offer.outcome) {
      case TopKFilter::Offer::Outcome::kKept:
        return;
      case TopKFilter::Offer::Outcome::kEvicted:
        // The incumbent's count moves toward the light part; in the P4
        // pipeline it would roll to the next stage — flushing directly to
        // the light part is the published P4-version behaviour.
        light_add(offer.evicted_key, offer.evicted_count);
        return;
      case TopKFilter::Offer::Outcome::kPassThrough:
        break;  // try the next level with the same packet
    }
  }
  light_add(current, 1);
}

std::uint64_t ElasticSketch::query(flow::FlowKey key) const {
  std::uint64_t heavy_total = 0;
  bool found = false;
  bool residue = false;
  for (const auto& level : heavy_) {
    if (const auto hit = level.query(key)) {
      heavy_total += hit->count;
      residue = residue || hit->has_light_part;
      found = true;
    }
  }
  if (!found) return light_query(key);
  return residue ? heavy_total + light_query(key) : heavy_total;
}

std::uint64_t ElasticSketch::light_query(flow::FlowKey key) const {
  return light_[light_hash_.index(key, light_.size())];
}

std::size_t ElasticSketch::memory_bytes() const {
  std::size_t total = light_.size();
  for (const auto& level : heavy_) total += level.memory_bytes();
  return total;
}

std::unordered_map<flow::FlowKey, std::uint64_t> ElasticSketch::heavy_flows() const {
  std::unordered_map<flow::FlowKey, std::uint64_t> flows;
  for (const auto& level : heavy_) {
    for (const auto& entry : level.entries()) {
      flows[entry.key] += entry.count;
    }
  }
  return flows;
}

bool ElasticSketch::has_light_residue(flow::FlowKey key) const {
  for (const auto& level : heavy_) {
    if (const auto hit = level.query(key); hit && hit->has_light_part) return true;
  }
  return false;
}

void ElasticSketch::clear() {
  for (auto& level : heavy_) level.clear();
  std::fill(light_.begin(), light_.end(), std::uint8_t{0});
}

}  // namespace fcm::sketch
