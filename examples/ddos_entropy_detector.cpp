// DDoS detection via entropy collapse — the anomaly-detection application
// of §4.4 ([13, 15, 23] in the paper). Under normal traffic the flow-size
// entropy is stable; during a volumetric attack a handful of sources
// dominate and the entropy drops sharply. The control plane recovers the
// flow size distribution (EM over virtual counters) each epoch and alarms
// on the deviation.
//
// Build & run:  ./build/examples/ddos_entropy_detector
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "framework/fcm_framework.h"
#include "flow/synthetic.h"

namespace {

using namespace fcm;

// Appends an attack epoch: `attack_fraction` of packets concentrated on a
// few attacker sources layered over the usual background mix.
flow::Trace make_epoch(std::uint64_t seed, double attack_fraction) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 800'000;
  config.flow_count = 40'000;
  config.seed = seed;
  flow::Trace background = flow::SyntheticTraceGenerator(config).generate();
  if (attack_fraction <= 0.0) return background;

  common::Xoshiro256 rng(seed ^ 0xa77ac);
  const auto attack_packets =
      static_cast<std::uint64_t>(config.packet_count * attack_fraction);
  flow::Trace epoch;
  epoch.reserve(background.size() + attack_packets);
  for (const flow::Packet& p : background.packets()) epoch.append(p);
  for (std::uint64_t i = 0; i < attack_packets; ++i) {
    // 4 attacking sources (e.g. spoofed reflectors behind one /30).
    flow::Packet p;
    p.key = flow::FlowKey{0xdead0000u + static_cast<std::uint32_t>(rng.next_below(4))};
    p.bytes = 64;
    epoch.append(p);
  }
  return epoch;
}

}  // namespace

int main() {
  framework::FcmFramework::Options options;
  options.fcm = core::FcmConfig::for_memory(450'000, 2, 8, {8, 16, 32});
  options.em.max_iterations = 6;
  framework::FcmFramework fcm(options);

  struct Epoch {
    const char* label;
    double attack_fraction;
  };
  const std::vector<Epoch> epochs{{"baseline", 0.0},     {"baseline", 0.0},
                                  {"ramp-up", 0.5},      {"attack", 2.0},
                                  {"attack peak", 4.0},  {"mitigated", 0.0}};

  std::puts("epoch        entropy(est)  entropy(true)  flows(est)  alarm");
  double baseline_entropy = 0.0;
  int epoch_index = 0;
  for (const Epoch& epoch : epochs) {
    const flow::Trace trace = make_epoch(100 + epoch_index, epoch.attack_fraction);
    const flow::GroundTruth truth(trace);

    fcm.reset();  // fresh measurement window
    fcm.process(trace.packets());
    const auto report = fcm.analyze();

    if (epoch_index < 2) {
      baseline_entropy = (baseline_entropy * epoch_index + report.entropy) /
                         (epoch_index + 1);
    }
    const bool alarm =
        epoch_index >= 2 && report.entropy < 0.8 * baseline_entropy;
    std::printf("%-12s %-13.4f %-14.4f %-11.0f %s\n", epoch.label,
                report.entropy, truth.entropy(), report.estimated_flows,
                alarm ? "*** ENTROPY COLLAPSE ***" : "-");
    ++epoch_index;
  }
  return 0;
}
