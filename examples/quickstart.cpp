// Quickstart: feed a synthetic traffic trace into the FCM framework and run
// every query the paper supports — flow size, heavy hitters, cardinality in
// the data plane; flow size distribution and entropy in the control plane.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "framework/fcm_framework.h"
#include "flow/synthetic.h"

int main() {
  using namespace fcm;

  // A CAIDA-like workload: ~1M packets over ~25K source-IP flows.
  const flow::Trace trace = flow::SyntheticTraceGenerator::caida_like(0.05, /*seed=*/7);
  const flow::GroundTruth truth(trace);
  std::printf("trace: %zu packets, %zu flows\n", trace.size(), truth.flow_count());

  // The paper's default data plane: 2 trees, 8-ary, 8/16/32-bit stages,
  // 1.5 MB, with on-path heavy-hitter detection at 0.05%% of traffic.
  framework::FcmFramework::Options options;
  options.fcm = core::FcmConfig::paper_default();
  options.heavy_hitter_threshold = trace.size() / 2000;
  framework::FcmFramework fcm(options);

  for (const flow::Packet& packet : trace.packets()) fcm.process(packet);

  // --- data-plane queries -------------------------------------------------
  const flow::FlowKey some_flow = trace.packets()[0].key;
  std::printf("flow %s: true=%llu estimated=%llu\n",
              flow::to_string(some_flow).c_str(),
              static_cast<unsigned long long>(truth.size_of(some_flow)),
              static_cast<unsigned long long>(fcm.flow_size(some_flow)));

  std::printf("cardinality: true=%zu estimated=%.0f\n", truth.flow_count(),
              fcm.cardinality());

  const auto heavy = fcm.heavy_hitters();
  const auto true_heavy = truth.heavy_hitters(options.heavy_hitter_threshold);
  std::printf("heavy hitters (>=%llu pkts): reported=%zu true=%zu\n",
              static_cast<unsigned long long>(options.heavy_hitter_threshold),
              heavy.size(), true_heavy.size());

  // --- control-plane analysis ----------------------------------------------
  const auto report = fcm.analyze();
  std::printf("flows (EM estimate): %.0f, entropy: est=%.4f true=%.4f\n",
              report.estimated_flows, report.entropy, truth.entropy());

  const auto true_fsd = truth.flow_size_distribution();
  std::printf("flow-size distribution WMRE: %.4f\n", report.fsd.wmre(true_fsd));
  return 0;
}
