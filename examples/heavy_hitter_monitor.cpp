// Heavy-hitter monitor: the traffic-engineering scenario from the paper's
// introduction. The data plane flags flows crossing a byte/packet threshold
// as they happen (no control-plane round trip), and a periodic collection
// compares adjacent windows for heavy *changes* — the anomaly-detection
// primitive of §4.4.
//
// Build & run:  ./build/examples/heavy_hitter_monitor
#include <cstdio>

#include "framework/fcm_framework.h"
#include "flow/synthetic.h"
#include "metrics/metrics.h"

int main() {
  using namespace fcm;

  // Two adjacent 15s-style measurement windows with 40% flow churn — e.g. a
  // content cache failing over, shifting load between origin servers.
  flow::SyntheticTraceConfig config;
  config.packet_count = 2'000'000;
  config.flow_count = 50'000;
  config.zipf_alpha = 1.2;
  config.seed = 11;
  const flow::WindowPair windows = flow::make_window_pair(config, 0.4);

  const flow::GroundTruth truth_a(windows.window_a);
  const flow::GroundTruth truth_b(windows.window_b);
  const std::uint64_t threshold = truth_a.total_packets() / 2000;  // 0.05%

  framework::FcmFramework::Options options;
  options.fcm = core::FcmConfig::for_memory(600'000, 2, 16, {8, 16, 32});
  options.topk_entries = 4096;  // FCM+TopK: pin heavy flows with exact counts
  options.heavy_hitter_threshold = threshold;

  // One framework instance per window; in a deployment the same switch
  // would be collected and reset between windows (framework.reset()).
  framework::FcmFramework window_a(options);
  framework::FcmFramework window_b(options);
  window_a.process(windows.window_a.packets());
  window_b.process(windows.window_b.packets());

  // --- live heavy hitters (data-plane query) ---
  const auto reported = window_b.heavy_hitters();
  const auto actual = truth_b.heavy_hitters(threshold);
  const auto hh_scores = metrics::classification_scores(reported, actual);
  std::printf("window B heavy hitters (>=%llu pkts): reported=%zu actual=%zu "
              "precision=%.3f recall=%.3f F1=%.3f\n",
              static_cast<unsigned long long>(threshold), hh_scores.reported,
              hh_scores.actual, hh_scores.precision, hh_scores.recall,
              hh_scores.f1);
  std::size_t shown = 0;
  for (const flow::FlowKey key : reported) {
    if (shown++ == 5) break;
    std::printf("  %s  ~%llu packets\n", flow::to_string(key).c_str(),
                static_cast<unsigned long long>(window_b.flow_size(key)));
  }

  // --- heavy changes between the windows (control plane, §4.4) ---
  const auto changes =
      framework::FcmFramework::heavy_changes(window_a, window_b, threshold);
  const auto true_changes = flow::true_heavy_changes(truth_a, truth_b, threshold);
  const auto hc_scores = metrics::classification_scores(changes, true_changes);
  std::printf("\nheavy changes (|delta| > %llu): reported=%zu actual=%zu F1=%.3f\n",
              static_cast<unsigned long long>(threshold), hc_scores.reported,
              hc_scores.actual, hc_scores.f1);
  shown = 0;
  for (const flow::FlowKey key : changes) {
    if (shown++ == 5) break;
    std::printf("  %s  window A ~%llu -> window B ~%llu\n",
                flow::to_string(key).c_str(),
                static_cast<unsigned long long>(window_a.flow_size(key)),
                static_cast<unsigned long long>(window_b.flow_size(key)));
  }
  return 0;
}
