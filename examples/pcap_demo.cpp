// Real-traffic quickstart: pcap file -> heavy-flow cache -> FCM-sketch.
//
//   ./build/examples/pcap_demo [capture.pcap] [heavy-hitter-threshold]
//
// Defaults to the committed test fixture (tests/data/fixture.pcap). The demo
// is the whole datapath in ~80 lines (DESIGN.md §12): decode a capture
// (classic pcap or pcapng, any byte order, hostile input tolerated with a
// per-outcome ledger), push every packet through a CachedFramework — hot
// flows absorbed exactly by the OVS-style cache, cold flows demoted into the
// sketch — then query the combined view: heavy hitters, top source hosts,
// cardinality, and the cache's own hit/eviction ledger.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "datapath/cached_framework.h"
#include "datapath/capture_ingest.h"
#include "flow/flow_key.h"

using namespace fcm;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "tests/data/fixture.pcap";
  const std::uint64_t threshold =
      argc > 2 ? std::stoull(argv[2]) : 50;

  datapath::DecodedCapture capture;
  try {
    capture = datapath::load_capture(path);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "pcap_demo: cannot decode %s: %s\n", path.c_str(),
                 err.what());
    std::fprintf(stderr, "usage: pcap_demo [capture.pcap] [threshold]\n");
    return 1;
  }

  std::printf("capture %s\n", path.c_str());
  std::printf("  records %llu, parsed %llu, parse failures %llu\n",
              static_cast<unsigned long long>(capture.stats.capture.records),
              static_cast<unsigned long long>(capture.stats.parsed),
              static_cast<unsigned long long>(capture.stats.parse_failures()));

  datapath::CachedFramework::Options options;
  options.framework.fcm = core::FcmConfig::for_memory(150'000, 2, 8, {8, 16, 32});
  options.framework.heavy_hitter_threshold = threshold;
  options.framework.em.max_iterations = 5;
  datapath::CachedFramework framework(options);
  for (const flow::Packet& packet : capture.trace.packets()) {
    framework.process(packet.key);
  }

  const datapath::HeavyFlowCache& cache = framework.cache();
  const std::uint64_t offers = cache.hits() + cache.misses();
  std::printf("cache: %zu resident flows, %.1f%% hit rate, %llu evictions\n",
              cache.resident_flows(),
              offers ? 100.0 * static_cast<double>(cache.hits()) /
                           static_cast<double>(offers)
                     : 0.0,
              static_cast<unsigned long long>(cache.evictions()));

  std::vector<std::pair<std::uint64_t, flow::FlowKey>> top;
  for (const flow::FlowKey key : framework.heavy_hitters()) {
    top.emplace_back(framework.flow_size(key), key);
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("heavy hitters (threshold %llu): %zu\n",
              static_cast<unsigned long long>(threshold), top.size());
  const std::size_t shown = std::min<std::size_t>(top.size(), 10);
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("  %-18s %llu packets\n", to_string(top[i].second).c_str(),
                static_cast<unsigned long long>(top[i].first));
  }

  // Epoch snapshot: fold the cache into a plain framework and run the full
  // control plane (EM -> FSD, entropy, cardinality) on the combined state.
  const framework::FcmFramework::Report report = framework.analyze();
  std::printf("cardinality %.0f, entropy %.3f\n", report.cardinality,
              report.entropy);
  return 0;
}
