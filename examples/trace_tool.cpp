// trace_tool: generate, inspect and convert traces in the library's binary
// format (flow/trace_io.h). Generated files plug into every bench via the
// FCM_TRACE environment variable.
//
//   trace_tool gen <path> [--packets N] [--flows N] [--alpha A] [--seed S]
//   trace_tool caida <path> [--scale S] [--seed S]   # paper-like workload
//   trace_tool info <path>                           # print trace statistics
#include <cstdio>
#include <cstring>
#include <string>

#include "flow/synthetic.h"
#include "flow/trace_io.h"

namespace {

using namespace fcm;

std::uint64_t arg_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::stoull(argv[i + 1]);
  }
  return fallback;
}

double arg_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::stod(argv[i + 1]);
  }
  return fallback;
}

int usage() {
  std::fputs(
      "usage:\n"
      "  trace_tool gen <path> [--packets N] [--flows N] [--alpha A] [--seed S]\n"
      "  trace_tool caida <path> [--scale S] [--seed S]\n"
      "  trace_tool info <path>\n",
      stderr);
  return 2;
}

int cmd_info(const std::string& path) {
  const flow::Trace trace = flow::load_trace(path);
  const flow::GroundTruth truth(trace);
  std::printf("trace: %s\n", path.c_str());
  std::printf("  packets:       %zu\n", trace.size());
  std::printf("  flows:         %zu\n", truth.flow_count());
  std::printf("  max flow size: %llu packets\n",
              static_cast<unsigned long long>(truth.max_flow_size()));
  std::printf("  entropy:       %.4f\n", truth.entropy());
  if (!trace.empty()) {
    const double seconds =
        static_cast<double>(trace.packets().back().timestamp_ns) * 1e-9;
    std::printf("  duration:      %.3f s\n", seconds);
  }
  const auto heavy = truth.heavy_hitters(
      std::max<std::uint64_t>(1, truth.total_packets() / 2000));
  std::printf("  heavy hitters (0.05%%): %zu\n", heavy.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  try {
    if (command == "info") return cmd_info(path);
    if (command == "gen") {
      flow::SyntheticTraceConfig config;
      config.packet_count = arg_u64(argc, argv, "--packets", 1'000'000);
      config.flow_count = arg_u64(argc, argv, "--flows", 50'000);
      config.zipf_alpha = arg_double(argc, argv, "--alpha", 1.1);
      config.seed = arg_u64(argc, argv, "--seed", 1);
      flow::save_trace(flow::SyntheticTraceGenerator(config).generate(), path);
      std::printf("wrote %llu packets to %s\n",
                  static_cast<unsigned long long>(config.packet_count),
                  path.c_str());
      return 0;
    }
    if (command == "caida") {
      const double scale = arg_double(argc, argv, "--scale", 0.15);
      const std::uint64_t seed = arg_u64(argc, argv, "--seed", 1);
      flow::save_trace(flow::SyntheticTraceGenerator::caida_like(scale, seed), path);
      std::printf("wrote CAIDA-like trace (scale %.2f) to %s\n", scale, path.c_str());
      return 0;
    }
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_tool: %s\n", error.what());
    return 1;
  }
}
