// Elephant-aware load balancing — the data-plane-query application class the
// paper motivates ([34, 37, 42]: NetCache/DistCache-style hot-object
// balancing). The switch keeps an FCM-Sketch; every packet's post-update
// count estimate is available at line rate, so flows are hashed to servers
// until they prove heavy, after which they are steered to the least-loaded
// server. No controller round trip is involved.
//
// Build & run:  ./build/examples/elephant_load_balancer
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "fcm/fcm_sketch.h"
#include "flow/synthetic.h"

int main() {
  using namespace fcm;

  constexpr std::size_t kServers = 8;
  constexpr std::uint64_t kElephantThreshold = 2000;  // packets

  flow::SyntheticTraceConfig config;
  config.packet_count = 2'000'000;
  config.flow_count = 30'000;
  config.zipf_alpha = 1.3;  // a few very hot objects
  config.seed = 21;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();

  core::FcmSketch sketch(core::FcmConfig::for_memory(400'000, 2, 8, {8, 16, 32}));

  std::vector<std::uint64_t> balanced_load(kServers, 0);
  std::vector<std::uint64_t> hashed_load(kServers, 0);
  std::unordered_map<flow::FlowKey, std::size_t> steering;  // pinned elephants

  for (const flow::Packet& p : trace.packets()) {
    // Baseline: pure hash-based ECMP-style placement.
    const std::size_t hashed_server = std::hash<flow::FlowKey>{}(p.key) % kServers;
    hashed_load[hashed_server] += 1;

    // Elephant-aware: the sketch update returns the running estimate.
    const std::uint64_t estimate = sketch.update(p.key);
    const auto pinned = steering.find(p.key);
    std::size_t server;
    if (pinned != steering.end()) {
      server = pinned->second;
    } else if (estimate >= kElephantThreshold) {
      // Newly-detected elephant: pin to the currently least-loaded server.
      server = static_cast<std::size_t>(
          std::min_element(balanced_load.begin(), balanced_load.end()) -
          balanced_load.begin());
      steering.emplace(p.key, server);
    } else {
      server = hashed_server;
    }
    balanced_load[server] += 1;
  }

  const auto imbalance = [](const std::vector<std::uint64_t>& load) {
    const std::uint64_t max = *std::max_element(load.begin(), load.end());
    const std::uint64_t min = *std::min_element(load.begin(), load.end());
    const double mean =
        static_cast<double>(std::accumulate(load.begin(), load.end(), 0ull)) /
        static_cast<double>(load.size());
    return std::pair<double, double>{static_cast<double>(max) / mean,
                                     static_cast<double>(min) / mean};
  };

  std::puts("server load (packets), hash-only vs elephant-aware:");
  for (std::size_t s = 0; s < kServers; ++s) {
    std::printf("  server %zu: %8llu -> %8llu\n", s,
                static_cast<unsigned long long>(hashed_load[s]),
                static_cast<unsigned long long>(balanced_load[s]));
  }
  const auto [hash_max, hash_min] = imbalance(hashed_load);
  const auto [bal_max, bal_min] = imbalance(balanced_load);
  std::printf("\nmax/mean load: hash-only %.2f, elephant-aware %.2f\n", hash_max,
              bal_max);
  std::printf("pinned elephants: %zu flows (of %zu)\n", steering.size(),
              flow::GroundTruth(trace).flow_count());
  std::printf("sketch memory: %zu bytes\n", sketch.memory_bytes());
  return 0;
}
