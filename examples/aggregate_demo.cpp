// Network-wide aggregation demo (DESIGN.md §11): four vantage points run
// the same FCM configuration, serialize their sketches once per epoch, and
// a central AggregationService merges each complete epoch bit-exactly and
// publishes an immutable NetworkView to the query plane. The demo also
// injects the faults a real collector sees — a truncated frame, a replayed
// snapshot, a vantage that dies mid-run — and shows how each surfaces as a
// typed DeliveryStatus instead of corrupted state.
//
// Build & run:  ./build/examples/aggregate_demo
#include <cstdio>
#include <vector>

#include "agg/agg_service.h"
#include "flow/synthetic.h"

int main() {
  using namespace fcm;

  constexpr std::size_t kVantages = 4;
  constexpr std::uint64_t kEpochs = 3;
  constexpr std::uint64_t kThreshold = 2'000;  // network-wide heavy-hitter T

  agg::AggregationService::Options options;
  options.reference.fcm = core::FcmConfig::for_memory(600'000, 2, 8, {8, 16, 32});
  options.reference.heavy_hitter_threshold = kThreshold;
  options.vantage_count = kVantages;
  options.heavy_change_threshold = kThreshold / 2;
  options.metrics = nullptr;  // keep the demo output to this program's prints

  agg::AggregationService service(options);
  agg::InProcessTransport transport(service);

  // Vantages run vantage_options(): the reference configuration with the
  // heavy-hitter threshold scaled to ceil(T/N), so a flow crossing T only
  // in aggregate still appears in some vantage's candidate set. In a real
  // deployment each VantagePoint lives on its own switch/collector.
  std::vector<agg::VantagePoint> vantages;
  vantages.reserve(kVantages);
  for (std::uint32_t v = 0; v < kVantages; ++v) {
    vantages.emplace_back(v, service.vantage_options(), transport);
  }
  std::printf("config fingerprint %016llx, per-vantage threshold %llu "
              "(network-wide T=%llu over %zu vantages)\n\n",
              static_cast<unsigned long long>(service.expected_fingerprint()),
              static_cast<unsigned long long>(
                  service.vantage_options().heavy_hitter_threshold),
              static_cast<unsigned long long>(kThreshold), kVantages);

  for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    // One measurement window: ECMP-style round-robin of the epoch's packets
    // across the vantage points, so every vantage sees a slice of every
    // flow and only the merged view holds network-wide counts.
    flow::SyntheticTraceConfig config;
    config.packet_count = 400'000;
    config.flow_count = 20'000;
    config.zipf_alpha = 1.2;
    config.seed = 100 + epoch;
    const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
    std::size_t cursor = 0;
    for (const flow::Packet& packet : trace.packets()) {
      vantages[cursor++ % kVantages].framework().process(packet.key);
    }

    if (epoch == 2) {
      // Fault injection: a truncated frame is rejected by the codec's
      // hostile-input checks before it can touch service state.
      agg::SnapshotEnvelope hostile;
      hostile.vantage_id = 1;
      hostile.epoch = epoch;
      hostile.payload = agg::WireCodec::serialize(vantages[1].framework());
      hostile.payload.resize(hostile.payload.size() / 2);
      std::printf("  truncated frame from vantage 1: %s\n",
                  agg::to_string(service.deliver(std::move(hostile))));
    }

    const std::size_t alive = (epoch == kEpochs) ? kVantages - 1 : kVantages;
    for (std::size_t v = 0; v < alive; ++v) {
      const agg::DeliveryStatus status = vantages[v].flush(epoch);
      std::printf("  vantage %zu epoch %llu: %s\n", v,
                  static_cast<unsigned long long>(epoch),
                  agg::to_string(status));
    }
    if (epoch == kEpochs) {
      // Vantage 3 died mid-window. finalize_epoch() publishes the epoch
      // partial rather than wedging the query plane (the watchdog
      // max_pending_epochs would do the same once enough epochs backed up).
      std::printf("  vantage %zu epoch %llu: (dropped — finalizing partial)\n",
                  alive, static_cast<unsigned long long>(epoch));
      service.finalize_epoch(epoch);
    }
    if (epoch == 1) {
      // Fault injection: replaying an already-merged snapshot never double
      // counts — it bounces as a duplicate (epoch still pending) or as
      // stale (epoch already published, as here).
      std::printf("  replayed flush from vantage 0: %s\n",
                  agg::to_string(vantages[0].flush(epoch)));
    }

    // Readers get snapshot isolation: the view is immutable, shared, and
    // never blocks (or is blocked by) deliver().
    const auto view = service.query_plane().current();
    if (view == nullptr) continue;
    std::printf("epoch %llu published: %zu/%zu vantages, cardinality %.0f, "
                "%zu heavy hitters, %zu heavy changes\n",
                static_cast<unsigned long long>(view->epoch),
                view->vantages.size(), kVantages, view->cardinality,
                view->heavy_hitters.size(), view->heavy_changes.size());
    std::size_t shown = 0;
    for (const flow::FlowKey key : view->heavy_hitters) {
      if (shown++ == 3) break;
      std::printf("    %s  ~%llu packets network-wide\n",
                  flow::to_string(key).c_str(),
                  static_cast<unsigned long long>(view->network.flow_size(key)));
    }
    std::printf("\n");
  }
  return 0;
}
