# Empty dependencies file for test_fcm_topk.
# This may be replaced when dependencies are built.
