file(REMOVE_RECURSE
  "CMakeFiles/test_fcm_topk.dir/test_fcm_topk.cpp.o"
  "CMakeFiles/test_fcm_topk.dir/test_fcm_topk.cpp.o.d"
  "test_fcm_topk"
  "test_fcm_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcm_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
