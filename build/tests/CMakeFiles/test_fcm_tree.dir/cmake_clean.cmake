file(REMOVE_RECURSE
  "CMakeFiles/test_fcm_tree.dir/test_fcm_tree.cpp.o"
  "CMakeFiles/test_fcm_tree.dir/test_fcm_tree.cpp.o.d"
  "test_fcm_tree"
  "test_fcm_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcm_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
