# Empty dependencies file for test_fcm_tree.
# This may be replaced when dependencies are built.
