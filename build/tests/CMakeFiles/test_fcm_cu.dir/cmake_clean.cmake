file(REMOVE_RECURSE
  "CMakeFiles/test_fcm_cu.dir/test_fcm_cu.cpp.o"
  "CMakeFiles/test_fcm_cu.dir/test_fcm_cu.cpp.o.d"
  "test_fcm_cu"
  "test_fcm_cu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcm_cu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
