# Empty dependencies file for test_fcm_cu.
# This may be replaced when dependencies are built.
