file(REMOVE_RECURSE
  "CMakeFiles/test_cm_sketch.dir/test_cm_sketch.cpp.o"
  "CMakeFiles/test_cm_sketch.dir/test_cm_sketch.cpp.o.d"
  "test_cm_sketch"
  "test_cm_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cm_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
