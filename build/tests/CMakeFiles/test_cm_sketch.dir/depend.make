# Empty dependencies file for test_cm_sketch.
# This may be replaced when dependencies are built.
