file(REMOVE_RECURSE
  "CMakeFiles/test_sampled_netflow.dir/test_sampled_netflow.cpp.o"
  "CMakeFiles/test_sampled_netflow.dir/test_sampled_netflow.cpp.o.d"
  "test_sampled_netflow"
  "test_sampled_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampled_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
