# Empty dependencies file for test_sampled_netflow.
# This may be replaced when dependencies are built.
