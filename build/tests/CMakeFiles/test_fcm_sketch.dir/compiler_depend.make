# Empty compiler generated dependencies file for test_fcm_sketch.
# This may be replaced when dependencies are built.
