file(REMOVE_RECURSE
  "CMakeFiles/test_fcm_sketch.dir/test_fcm_sketch.cpp.o"
  "CMakeFiles/test_fcm_sketch.dir/test_fcm_sketch.cpp.o.d"
  "test_fcm_sketch"
  "test_fcm_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcm_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
