# Empty dependencies file for test_spread_sketch.
# This may be replaced when dependencies are built.
