file(REMOVE_RECURSE
  "CMakeFiles/test_spread_sketch.dir/test_spread_sketch.cpp.o"
  "CMakeFiles/test_spread_sketch.dir/test_spread_sketch.cpp.o.d"
  "test_spread_sketch"
  "test_spread_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spread_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
