# Empty compiler generated dependencies file for test_topk_elastic.
# This may be replaced when dependencies are built.
