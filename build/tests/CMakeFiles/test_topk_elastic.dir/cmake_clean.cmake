file(REMOVE_RECURSE
  "CMakeFiles/test_topk_elastic.dir/test_topk_elastic.cpp.o"
  "CMakeFiles/test_topk_elastic.dir/test_topk_elastic.cpp.o.d"
  "test_topk_elastic"
  "test_topk_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topk_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
