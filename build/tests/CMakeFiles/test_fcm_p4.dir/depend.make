# Empty dependencies file for test_fcm_p4.
# This may be replaced when dependencies are built.
