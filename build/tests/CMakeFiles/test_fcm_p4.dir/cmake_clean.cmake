file(REMOVE_RECURSE
  "CMakeFiles/test_fcm_p4.dir/test_fcm_p4.cpp.o"
  "CMakeFiles/test_fcm_p4.dir/test_fcm_p4.cpp.o.d"
  "test_fcm_p4"
  "test_fcm_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcm_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
