file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_counter.dir/test_virtual_counter.cpp.o"
  "CMakeFiles/test_virtual_counter.dir/test_virtual_counter.cpp.o.d"
  "test_virtual_counter"
  "test_virtual_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
