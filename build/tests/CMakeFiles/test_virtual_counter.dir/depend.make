# Empty dependencies file for test_virtual_counter.
# This may be replaced when dependencies are built.
