
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/test_trace_io.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/test_trace_io.dir/test_trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/framework/CMakeFiles/fcm_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/controlplane/CMakeFiles/fcm_controlplane.dir/DependInfo.cmake"
  "/root/repo/build/src/pisa/CMakeFiles/fcm_pisa.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fcm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fcm/CMakeFiles/fcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fcm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fcm_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
