# Empty compiler generated dependencies file for test_interface_invariants.
# This may be replaced when dependencies are built.
