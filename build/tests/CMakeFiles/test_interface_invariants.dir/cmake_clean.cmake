file(REMOVE_RECURSE
  "CMakeFiles/test_interface_invariants.dir/test_interface_invariants.cpp.o"
  "CMakeFiles/test_interface_invariants.dir/test_interface_invariants.cpp.o.d"
  "test_interface_invariants"
  "test_interface_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interface_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
