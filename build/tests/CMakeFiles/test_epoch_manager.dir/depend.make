# Empty dependencies file for test_epoch_manager.
# This may be replaced when dependencies are built.
