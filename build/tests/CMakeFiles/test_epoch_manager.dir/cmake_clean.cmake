file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_manager.dir/test_epoch_manager.cpp.o"
  "CMakeFiles/test_epoch_manager.dir/test_epoch_manager.cpp.o.d"
  "test_epoch_manager"
  "test_epoch_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
