file(REMOVE_RECURSE
  "CMakeFiles/test_fcm_config.dir/test_fcm_config.cpp.o"
  "CMakeFiles/test_fcm_config.dir/test_fcm_config.cpp.o.d"
  "test_fcm_config"
  "test_fcm_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fcm_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
