# Empty dependencies file for test_fcm_config.
# This may be replaced when dependencies are built.
