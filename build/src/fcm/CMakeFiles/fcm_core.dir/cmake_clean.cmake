file(REMOVE_RECURSE
  "CMakeFiles/fcm_core.dir/fcm_config.cpp.o"
  "CMakeFiles/fcm_core.dir/fcm_config.cpp.o.d"
  "CMakeFiles/fcm_core.dir/fcm_sketch.cpp.o"
  "CMakeFiles/fcm_core.dir/fcm_sketch.cpp.o.d"
  "CMakeFiles/fcm_core.dir/fcm_topk.cpp.o"
  "CMakeFiles/fcm_core.dir/fcm_topk.cpp.o.d"
  "CMakeFiles/fcm_core.dir/fcm_tree.cpp.o"
  "CMakeFiles/fcm_core.dir/fcm_tree.cpp.o.d"
  "libfcm_core.a"
  "libfcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
