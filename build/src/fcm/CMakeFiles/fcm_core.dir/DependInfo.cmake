
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fcm/fcm_config.cpp" "src/fcm/CMakeFiles/fcm_core.dir/fcm_config.cpp.o" "gcc" "src/fcm/CMakeFiles/fcm_core.dir/fcm_config.cpp.o.d"
  "/root/repo/src/fcm/fcm_sketch.cpp" "src/fcm/CMakeFiles/fcm_core.dir/fcm_sketch.cpp.o" "gcc" "src/fcm/CMakeFiles/fcm_core.dir/fcm_sketch.cpp.o.d"
  "/root/repo/src/fcm/fcm_topk.cpp" "src/fcm/CMakeFiles/fcm_core.dir/fcm_topk.cpp.o" "gcc" "src/fcm/CMakeFiles/fcm_core.dir/fcm_topk.cpp.o.d"
  "/root/repo/src/fcm/fcm_tree.cpp" "src/fcm/CMakeFiles/fcm_core.dir/fcm_tree.cpp.o" "gcc" "src/fcm/CMakeFiles/fcm_core.dir/fcm_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fcm_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fcm_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
