# Empty compiler generated dependencies file for fcm_core.
# This may be replaced when dependencies are built.
