file(REMOVE_RECURSE
  "libfcm_core.a"
)
