file(REMOVE_RECURSE
  "libfcm_common.a"
)
