file(REMOVE_RECURSE
  "CMakeFiles/fcm_common.dir/hash.cpp.o"
  "CMakeFiles/fcm_common.dir/hash.cpp.o.d"
  "CMakeFiles/fcm_common.dir/random.cpp.o"
  "CMakeFiles/fcm_common.dir/random.cpp.o.d"
  "libfcm_common.a"
  "libfcm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
