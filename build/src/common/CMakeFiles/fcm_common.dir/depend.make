# Empty dependencies file for fcm_common.
# This may be replaced when dependencies are built.
