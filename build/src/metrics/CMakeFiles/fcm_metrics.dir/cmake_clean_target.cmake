file(REMOVE_RECURSE
  "libfcm_metrics.a"
)
