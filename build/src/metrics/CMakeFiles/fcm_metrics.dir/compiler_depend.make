# Empty compiler generated dependencies file for fcm_metrics.
# This may be replaced when dependencies are built.
