file(REMOVE_RECURSE
  "CMakeFiles/fcm_metrics.dir/evaluator.cpp.o"
  "CMakeFiles/fcm_metrics.dir/evaluator.cpp.o.d"
  "CMakeFiles/fcm_metrics.dir/metrics.cpp.o"
  "CMakeFiles/fcm_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/fcm_metrics.dir/table.cpp.o"
  "CMakeFiles/fcm_metrics.dir/table.cpp.o.d"
  "libfcm_metrics.a"
  "libfcm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
