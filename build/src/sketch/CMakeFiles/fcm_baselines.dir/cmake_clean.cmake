file(REMOVE_RECURSE
  "CMakeFiles/fcm_baselines.dir/cardinality.cpp.o"
  "CMakeFiles/fcm_baselines.dir/cardinality.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/cm_sketch.cpp.o"
  "CMakeFiles/fcm_baselines.dir/cm_sketch.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/count_sketch.cpp.o"
  "CMakeFiles/fcm_baselines.dir/count_sketch.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/elastic_sketch.cpp.o"
  "CMakeFiles/fcm_baselines.dir/elastic_sketch.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/hashpipe.cpp.o"
  "CMakeFiles/fcm_baselines.dir/hashpipe.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/mrac.cpp.o"
  "CMakeFiles/fcm_baselines.dir/mrac.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/pyramid_sketch.cpp.o"
  "CMakeFiles/fcm_baselines.dir/pyramid_sketch.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/sampled_netflow.cpp.o"
  "CMakeFiles/fcm_baselines.dir/sampled_netflow.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/spread_sketch.cpp.o"
  "CMakeFiles/fcm_baselines.dir/spread_sketch.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/topk_filter.cpp.o"
  "CMakeFiles/fcm_baselines.dir/topk_filter.cpp.o.d"
  "CMakeFiles/fcm_baselines.dir/univmon.cpp.o"
  "CMakeFiles/fcm_baselines.dir/univmon.cpp.o.d"
  "libfcm_baselines.a"
  "libfcm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
