# Empty compiler generated dependencies file for fcm_baselines.
# This may be replaced when dependencies are built.
