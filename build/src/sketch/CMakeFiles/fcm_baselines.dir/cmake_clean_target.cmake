file(REMOVE_RECURSE
  "libfcm_baselines.a"
)
