
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/cardinality.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/cardinality.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/cardinality.cpp.o.d"
  "/root/repo/src/sketch/cm_sketch.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/cm_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/cm_sketch.cpp.o.d"
  "/root/repo/src/sketch/count_sketch.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/count_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/count_sketch.cpp.o.d"
  "/root/repo/src/sketch/elastic_sketch.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/elastic_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/elastic_sketch.cpp.o.d"
  "/root/repo/src/sketch/hashpipe.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/hashpipe.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/hashpipe.cpp.o.d"
  "/root/repo/src/sketch/mrac.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/mrac.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/mrac.cpp.o.d"
  "/root/repo/src/sketch/pyramid_sketch.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/pyramid_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/pyramid_sketch.cpp.o.d"
  "/root/repo/src/sketch/sampled_netflow.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/sampled_netflow.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/sampled_netflow.cpp.o.d"
  "/root/repo/src/sketch/spread_sketch.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/spread_sketch.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/spread_sketch.cpp.o.d"
  "/root/repo/src/sketch/topk_filter.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/topk_filter.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/topk_filter.cpp.o.d"
  "/root/repo/src/sketch/univmon.cpp" "src/sketch/CMakeFiles/fcm_baselines.dir/univmon.cpp.o" "gcc" "src/sketch/CMakeFiles/fcm_baselines.dir/univmon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fcm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fcm_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
