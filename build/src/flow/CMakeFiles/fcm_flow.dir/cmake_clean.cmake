file(REMOVE_RECURSE
  "CMakeFiles/fcm_flow.dir/flow_key.cpp.o"
  "CMakeFiles/fcm_flow.dir/flow_key.cpp.o.d"
  "CMakeFiles/fcm_flow.dir/synthetic.cpp.o"
  "CMakeFiles/fcm_flow.dir/synthetic.cpp.o.d"
  "CMakeFiles/fcm_flow.dir/trace.cpp.o"
  "CMakeFiles/fcm_flow.dir/trace.cpp.o.d"
  "CMakeFiles/fcm_flow.dir/trace_io.cpp.o"
  "CMakeFiles/fcm_flow.dir/trace_io.cpp.o.d"
  "libfcm_flow.a"
  "libfcm_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
