# Empty dependencies file for fcm_flow.
# This may be replaced when dependencies are built.
