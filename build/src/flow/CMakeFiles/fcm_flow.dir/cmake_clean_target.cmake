file(REMOVE_RECURSE
  "libfcm_flow.a"
)
