
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/flow_key.cpp" "src/flow/CMakeFiles/fcm_flow.dir/flow_key.cpp.o" "gcc" "src/flow/CMakeFiles/fcm_flow.dir/flow_key.cpp.o.d"
  "/root/repo/src/flow/synthetic.cpp" "src/flow/CMakeFiles/fcm_flow.dir/synthetic.cpp.o" "gcc" "src/flow/CMakeFiles/fcm_flow.dir/synthetic.cpp.o.d"
  "/root/repo/src/flow/trace.cpp" "src/flow/CMakeFiles/fcm_flow.dir/trace.cpp.o" "gcc" "src/flow/CMakeFiles/fcm_flow.dir/trace.cpp.o.d"
  "/root/repo/src/flow/trace_io.cpp" "src/flow/CMakeFiles/fcm_flow.dir/trace_io.cpp.o" "gcc" "src/flow/CMakeFiles/fcm_flow.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
