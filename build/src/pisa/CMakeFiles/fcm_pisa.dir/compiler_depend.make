# Empty compiler generated dependencies file for fcm_pisa.
# This may be replaced when dependencies are built.
