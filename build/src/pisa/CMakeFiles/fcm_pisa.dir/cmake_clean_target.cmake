file(REMOVE_RECURSE
  "libfcm_pisa.a"
)
