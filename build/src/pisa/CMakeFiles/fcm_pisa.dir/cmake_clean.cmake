file(REMOVE_RECURSE
  "CMakeFiles/fcm_pisa.dir/fcm_p4.cpp.o"
  "CMakeFiles/fcm_pisa.dir/fcm_p4.cpp.o.d"
  "CMakeFiles/fcm_pisa.dir/hardware_topk.cpp.o"
  "CMakeFiles/fcm_pisa.dir/hardware_topk.cpp.o.d"
  "CMakeFiles/fcm_pisa.dir/pipeline.cpp.o"
  "CMakeFiles/fcm_pisa.dir/pipeline.cpp.o.d"
  "CMakeFiles/fcm_pisa.dir/resources.cpp.o"
  "CMakeFiles/fcm_pisa.dir/resources.cpp.o.d"
  "CMakeFiles/fcm_pisa.dir/tcam_cardinality.cpp.o"
  "CMakeFiles/fcm_pisa.dir/tcam_cardinality.cpp.o.d"
  "libfcm_pisa.a"
  "libfcm_pisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_pisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
