
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pisa/fcm_p4.cpp" "src/pisa/CMakeFiles/fcm_pisa.dir/fcm_p4.cpp.o" "gcc" "src/pisa/CMakeFiles/fcm_pisa.dir/fcm_p4.cpp.o.d"
  "/root/repo/src/pisa/hardware_topk.cpp" "src/pisa/CMakeFiles/fcm_pisa.dir/hardware_topk.cpp.o" "gcc" "src/pisa/CMakeFiles/fcm_pisa.dir/hardware_topk.cpp.o.d"
  "/root/repo/src/pisa/pipeline.cpp" "src/pisa/CMakeFiles/fcm_pisa.dir/pipeline.cpp.o" "gcc" "src/pisa/CMakeFiles/fcm_pisa.dir/pipeline.cpp.o.d"
  "/root/repo/src/pisa/resources.cpp" "src/pisa/CMakeFiles/fcm_pisa.dir/resources.cpp.o" "gcc" "src/pisa/CMakeFiles/fcm_pisa.dir/resources.cpp.o.d"
  "/root/repo/src/pisa/tcam_cardinality.cpp" "src/pisa/CMakeFiles/fcm_pisa.dir/tcam_cardinality.cpp.o" "gcc" "src/pisa/CMakeFiles/fcm_pisa.dir/tcam_cardinality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fcm/CMakeFiles/fcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fcm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fcm_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
