# Empty compiler generated dependencies file for fcm_controlplane.
# This may be replaced when dependencies are built.
