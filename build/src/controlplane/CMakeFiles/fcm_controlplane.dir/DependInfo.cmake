
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controlplane/em.cpp" "src/controlplane/CMakeFiles/fcm_controlplane.dir/em.cpp.o" "gcc" "src/controlplane/CMakeFiles/fcm_controlplane.dir/em.cpp.o.d"
  "/root/repo/src/controlplane/fsd.cpp" "src/controlplane/CMakeFiles/fcm_controlplane.dir/fsd.cpp.o" "gcc" "src/controlplane/CMakeFiles/fcm_controlplane.dir/fsd.cpp.o.d"
  "/root/repo/src/controlplane/heavy_change.cpp" "src/controlplane/CMakeFiles/fcm_controlplane.dir/heavy_change.cpp.o" "gcc" "src/controlplane/CMakeFiles/fcm_controlplane.dir/heavy_change.cpp.o.d"
  "/root/repo/src/controlplane/virtual_counter.cpp" "src/controlplane/CMakeFiles/fcm_controlplane.dir/virtual_counter.cpp.o" "gcc" "src/controlplane/CMakeFiles/fcm_controlplane.dir/virtual_counter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fcm/CMakeFiles/fcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fcm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/fcm_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
