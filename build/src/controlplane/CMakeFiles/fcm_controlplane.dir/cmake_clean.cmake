file(REMOVE_RECURSE
  "CMakeFiles/fcm_controlplane.dir/em.cpp.o"
  "CMakeFiles/fcm_controlplane.dir/em.cpp.o.d"
  "CMakeFiles/fcm_controlplane.dir/fsd.cpp.o"
  "CMakeFiles/fcm_controlplane.dir/fsd.cpp.o.d"
  "CMakeFiles/fcm_controlplane.dir/heavy_change.cpp.o"
  "CMakeFiles/fcm_controlplane.dir/heavy_change.cpp.o.d"
  "CMakeFiles/fcm_controlplane.dir/virtual_counter.cpp.o"
  "CMakeFiles/fcm_controlplane.dir/virtual_counter.cpp.o.d"
  "libfcm_controlplane.a"
  "libfcm_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
