file(REMOVE_RECURSE
  "libfcm_controlplane.a"
)
