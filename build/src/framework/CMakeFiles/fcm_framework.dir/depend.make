# Empty dependencies file for fcm_framework.
# This may be replaced when dependencies are built.
