file(REMOVE_RECURSE
  "CMakeFiles/fcm_framework.dir/epoch_manager.cpp.o"
  "CMakeFiles/fcm_framework.dir/epoch_manager.cpp.o.d"
  "CMakeFiles/fcm_framework.dir/fcm_framework.cpp.o"
  "CMakeFiles/fcm_framework.dir/fcm_framework.cpp.o.d"
  "libfcm_framework.a"
  "libfcm_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcm_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
