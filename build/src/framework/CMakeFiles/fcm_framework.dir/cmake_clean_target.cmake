file(REMOVE_RECURSE
  "libfcm_framework.a"
)
