file(REMOVE_RECURSE
  "CMakeFiles/heavy_hitter_monitor.dir/heavy_hitter_monitor.cpp.o"
  "CMakeFiles/heavy_hitter_monitor.dir/heavy_hitter_monitor.cpp.o.d"
  "heavy_hitter_monitor"
  "heavy_hitter_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavy_hitter_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
