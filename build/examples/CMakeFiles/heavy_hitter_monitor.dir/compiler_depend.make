# Empty compiler generated dependencies file for heavy_hitter_monitor.
# This may be replaced when dependencies are built.
