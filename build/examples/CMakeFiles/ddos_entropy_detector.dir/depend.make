# Empty dependencies file for ddos_entropy_detector.
# This may be replaced when dependencies are built.
