file(REMOVE_RECURSE
  "CMakeFiles/ddos_entropy_detector.dir/ddos_entropy_detector.cpp.o"
  "CMakeFiles/ddos_entropy_detector.dir/ddos_entropy_detector.cpp.o.d"
  "ddos_entropy_detector"
  "ddos_entropy_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_entropy_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
