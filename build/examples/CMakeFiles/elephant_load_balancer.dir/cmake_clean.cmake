file(REMOVE_RECURSE
  "CMakeFiles/elephant_load_balancer.dir/elephant_load_balancer.cpp.o"
  "CMakeFiles/elephant_load_balancer.dir/elephant_load_balancer.cpp.o.d"
  "elephant_load_balancer"
  "elephant_load_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elephant_load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
