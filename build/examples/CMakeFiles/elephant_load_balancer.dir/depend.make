# Empty dependencies file for elephant_load_balancer.
# This may be replaced when dependencies are built.
