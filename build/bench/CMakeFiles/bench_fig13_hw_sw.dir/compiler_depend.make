# Empty compiler generated dependencies file for bench_fig13_hw_sw.
# This may be replaced when dependencies are built.
