file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_hw_sw.dir/bench_fig13_hw_sw.cpp.o"
  "CMakeFiles/bench_fig13_hw_sw.dir/bench_fig13_hw_sw.cpp.o.d"
  "bench_fig13_hw_sw"
  "bench_fig13_hw_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_hw_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
