file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_degrees.dir/bench_fig8_degrees.cpp.o"
  "CMakeFiles/bench_fig8_degrees.dir/bench_fig8_degrees.cpp.o.d"
  "bench_fig8_degrees"
  "bench_fig8_degrees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_degrees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
