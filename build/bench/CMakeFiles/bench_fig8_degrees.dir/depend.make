# Empty dependencies file for bench_fig8_degrees.
# This may be replaced when dependencies are built.
