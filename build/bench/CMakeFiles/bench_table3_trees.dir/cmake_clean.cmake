file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_trees.dir/bench_table3_trees.cpp.o"
  "CMakeFiles/bench_table3_trees.dir/bench_table3_trees.cpp.o.d"
  "bench_table3_trees"
  "bench_table3_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
