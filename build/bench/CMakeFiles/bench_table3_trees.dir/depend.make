# Empty dependencies file for bench_table3_trees.
# This may be replaced when dependencies are built.
