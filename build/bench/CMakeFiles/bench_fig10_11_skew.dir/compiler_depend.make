# Empty compiler generated dependencies file for bench_fig10_11_skew.
# This may be replaced when dependencies are built.
