file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_skew.dir/bench_fig10_11_skew.cpp.o"
  "CMakeFiles/bench_fig10_11_skew.dir/bench_fig10_11_skew.cpp.o.d"
  "bench_fig10_11_skew"
  "bench_fig10_11_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
