file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_memory.dir/bench_fig12_memory.cpp.o"
  "CMakeFiles/bench_fig12_memory.dir/bench_fig12_memory.cpp.o.d"
  "bench_fig12_memory"
  "bench_fig12_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
