file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_em.dir/bench_fig9_em.cpp.o"
  "CMakeFiles/bench_fig9_em.dir/bench_fig9_em.cpp.o.d"
  "bench_fig9_em"
  "bench_fig9_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
