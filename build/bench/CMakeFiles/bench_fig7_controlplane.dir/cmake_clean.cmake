file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_controlplane.dir/bench_fig7_controlplane.cpp.o"
  "CMakeFiles/bench_fig7_controlplane.dir/bench_fig7_controlplane.cpp.o.d"
  "bench_fig7_controlplane"
  "bench_fig7_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
