# Empty compiler generated dependencies file for bench_fig7_controlplane.
# This may be replaced when dependencies are built.
