file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_5_resources.dir/bench_table4_5_resources.cpp.o"
  "CMakeFiles/bench_table4_5_resources.dir/bench_table4_5_resources.cpp.o.d"
  "bench_table4_5_resources"
  "bench_table4_5_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_5_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
