# Empty dependencies file for bench_table4_5_resources.
# This may be replaced when dependencies are built.
