# Empty dependencies file for bench_theorem_bound.
# This may be replaced when dependencies are built.
