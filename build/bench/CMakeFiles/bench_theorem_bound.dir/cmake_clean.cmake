file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem_bound.dir/bench_theorem_bound.cpp.o"
  "CMakeFiles/bench_theorem_bound.dir/bench_theorem_bound.cpp.o.d"
  "bench_theorem_bound"
  "bench_theorem_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
