file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dataplane.dir/bench_fig6_dataplane.cpp.o"
  "CMakeFiles/bench_fig6_dataplane.dir/bench_fig6_dataplane.cpp.o.d"
  "bench_fig6_dataplane"
  "bench_fig6_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
