# Empty compiler generated dependencies file for bench_fig6_dataplane.
# This may be replaced when dependencies are built.
