# Empty compiler generated dependencies file for bench_fig14_hw_compare.
# This may be replaced when dependencies are built.
