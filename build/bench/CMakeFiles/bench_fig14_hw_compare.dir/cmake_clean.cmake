file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hw_compare.dir/bench_fig14_hw_compare.cpp.o"
  "CMakeFiles/bench_fig14_hw_compare.dir/bench_fig14_hw_compare.cpp.o.d"
  "bench_fig14_hw_compare"
  "bench_fig14_hw_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hw_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
