// Figure 14: hardware-variant comparison at 1.3 MB — FCM, FCM+TopK and
// CM(2/4/8)+TopK (the implementable ElasticSketch emulation).
//   14a normalized resource consumption (from the PISA resource model)
//   14b flow-size AAE
//   14c CDF of absolute error (selected percentiles)
//   14d FSD WMRE
//   14e entropy RE
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "controlplane/em.h"
#include "hw_cm_topk.h"
#include "pisa/hardware_topk.h"
#include "pisa/resources.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'300'000, scale);
  bench::print_preamble("Figure 14: hardware variants at 1.3 MB", workload, memory);
  const auto& truth = workload.truth;
  const auto true_fsd = truth.flow_size_distribution();
  const double true_entropy = truth.entropy();
  control::EmConfig em;
  em.max_iterations = 6;

  // --- 14a: resources, normalized to FCM (model, paper-scale 1.3 MB) -----
  const pisa::PipelineBudget budget;
  const core::FcmConfig paper_cfg =
      core::FcmConfig::for_memory(1'300'000, 2, 8, {8, 16, 32});
  const auto fcm_res = pisa::fcm_usage(paper_cfg, budget);
  std::vector<pisa::ResourceUsage> usages{
      fcm_res, pisa::fcm_topk_usage(paper_cfg, 16384, budget),
      pisa::cm_topk_usage(2, 585'000, 16384, budget),
      pisa::cm_topk_usage(4, 292'500, 16384, budget),
      pisa::cm_topk_usage(8, 146'250, 16384, budget)};
  metrics::Table res_table("fig14a_normalized_resources",
                           {"algorithm", "SRAM", "sALU", "hash_bits", "stages"});
  for (const auto& usage : usages) {
    res_table.add_row(
        {usage.name,
         metrics::Table::fmt(static_cast<double>(usage.sram_blocks) /
                             fcm_res.sram_blocks, 2),
         metrics::Table::fmt(static_cast<double>(usage.salus) / fcm_res.salus, 2),
         metrics::Table::fmt(static_cast<double>(usage.hash_bits) /
                             fcm_res.hash_bits, 2),
         metrics::Table::fmt(static_cast<double>(usage.stages) / fcm_res.stages, 2)});
  }
  res_table.print(std::cout);

  // --- accuracy of the five variants --------------------------------------
  core::FcmSketch fcm(bench::fcm_config(memory, 8));
  pisa::HardwareFcmTopK fcm_topk(bench::fcm_topk_config(memory, 16).fcm,
                                 bench::auto_topk_entries(memory));
  bench::HwCmTopK cm2 = bench::HwCmTopK::for_memory(memory, 2, bench::scaled_entries(16384, 1'300'000, memory));
  bench::HwCmTopK cm4 = bench::HwCmTopK::for_memory(memory, 4, bench::scaled_entries(16384, 1'300'000, memory));
  bench::HwCmTopK cm8 = bench::HwCmTopK::for_memory(memory, 8, bench::scaled_entries(16384, 1'300'000, memory));
  for (const flow::Packet& p : workload.trace.packets()) {
    fcm.update(p.key);
    fcm_topk.update(p.key);
    cm2.update(p.key);
    cm4.update(p.key);
    cm8.update(p.key);
  }

  struct Variant {
    std::string name;
    std::function<std::uint64_t(flow::FlowKey)> query;
  };
  const std::vector<Variant> variants{
      {"FCM", [&](flow::FlowKey k) { return fcm.query(k); }},
      {"FCM+TopK", [&](flow::FlowKey k) { return fcm_topk.query(k); }},
      {"CM(2)+TopK", [&](flow::FlowKey k) { return cm2.query(k); }},
      {"CM(4)+TopK", [&](flow::FlowKey k) { return cm4.query(k); }},
      {"CM(8)+TopK", [&](flow::FlowKey k) { return cm8.query(k); }}};

  metrics::Table aae_table("fig14b_aae", {"algorithm", "AAE"});
  metrics::Table cdf_table("fig14c_abs_error_percentiles",
                           {"algorithm", "p50", "p90", "p99", "max"});
  for (const auto& variant : variants) {
    const auto err = metrics::size_errors(truth.flow_sizes(), variant.query);
    aae_table.add_row({variant.name, metrics::Table::fmt(err.aae, 2)});

    std::vector<double> abs_errors;
    abs_errors.reserve(truth.flow_count());
    for (const auto& [key, size] : truth.flow_sizes()) {
      abs_errors.push_back(std::abs(static_cast<double>(variant.query(key)) -
                                    static_cast<double>(size)));
    }
    std::sort(abs_errors.begin(), abs_errors.end());
    const auto at = [&](double q) {
      return abs_errors[static_cast<std::size_t>(q * (abs_errors.size() - 1))];
    };
    cdf_table.add_row({variant.name, metrics::Table::fmt(at(0.5), 1),
                       metrics::Table::fmt(at(0.9), 1),
                       metrics::Table::fmt(at(0.99), 1),
                       metrics::Table::fmt(abs_errors.back(), 0)});
  }
  aae_table.print(std::cout);
  cdf_table.print(std::cout);

  // --- 14d/e: FSD + entropy (FCM variants via EM; CM+TopK has no
  // recoverable distribution beyond its saturated 8-bit light part, which is
  // the paper's point — approximate it the Elastic way).
  metrics::Table fsd_table("fig14de_fsd_entropy",
                           {"algorithm", "fsd_WMRE", "entropy_RE"});
  const auto add_fsd_row = [&](const std::string& name,
                               const control::FlowSizeDistribution& fsd) {
    fsd_table.add_row(
        {name, metrics::Table::fmt(fsd.wmre(true_fsd), 4),
         metrics::Table::sci(metrics::relative_error(fsd.entropy(), true_entropy))});
  };
  add_fsd_row("FCM",
              control::EmFsdEstimator(control::convert_sketch(fcm), em).run());
  {
    auto fsd = control::EmFsdEstimator(
                   control::convert_sketch(fcm_topk.sketch()), em)
                   .run();
    for (const auto& entry : fcm_topk.filter().entries()) {
      fsd.add_flows(static_cast<std::size_t>(fcm_topk.query(entry.key)), 1.0);
    }
    add_fsd_row("FCM+TopK", fsd);
  }
  fsd_table.print(std::cout);

  std::puts("expectation: FCM/FCM+TopK at least ~50% lower AAE/WMRE than any\n"
            "CM(d)+TopK at comparable modeled resources; CM+TopK errors come\n"
            "from heavy flows saturating the 8-bit registers.");
  cli.finish();
  return 0;
}
