// §2 motivation: why sketches instead of sampling. At equal memory, a
// NetFlow-style 1-in-N sampler loses per-flow resolution (small flows vanish
// entirely, sampled counts are noisy) while FCM keeps every flow. Not a
// numbered figure in the paper — it quantifies the claim in §1–2 that
// sampling "cannot provide accurate and fine-grained statistics".
#include <iostream>

#include "bench_common.h"
#include "sketch/sampled_netflow.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'500'000, scale);
  bench::print_preamble("Motivation: sampling vs sketching at equal memory",
                        workload, memory);
  const auto& truth = workload.truth;
  const auto true_heavy = truth.heavy_hitters(workload.hh_threshold);

  metrics::Table table("motivation_sampling_vs_sketch",
                       {"method", "ARE", "AAE", "HH_F1", "flows_visible"});

  const auto add_row = [&](sketch::FrequencyEstimator& estimator,
                           std::size_t visible) {
    const auto errors = metrics::evaluate_sizes(estimator, truth);
    const auto reported = metrics::heavy_hitters_by_query(estimator, truth,
                                                          workload.hh_threshold);
    const double f1 = metrics::classification_scores(reported, true_heavy).f1;
    table.add_row({estimator.name(), metrics::Table::fmt(errors.are),
                   metrics::Table::fmt(errors.aae), metrics::Table::fmt(f1, 4),
                   std::to_string(visible)});
  };

  for (const std::uint32_t rate : {100u, 1000u}) {
    sketch::SampledNetFlow netflow =
        sketch::SampledNetFlow::for_memory(memory, rate);
    metrics::feed(netflow, workload.trace);
    add_row(netflow, netflow.tracked_flows());
  }
  {
    core::FcmEstimator fcm(bench::fcm_config(memory, 8));
    metrics::feed(fcm, workload.trace);
    // Every flow is queryable in a sketch.
    add_row(fcm, truth.flow_count());
  }

  table.print(std::cout);
  std::puts("expectation: sampling misses most flows outright (tiny\n"
            "flows_visible) and has orders-of-magnitude worse ARE; heavy\n"
            "hitters survive sampling but with noisy counts.");
  cli.finish();
  return 0;
}
