// Empirical validation of Theorem 5.1 (the paper's accuracy guarantee):
// with w1 = ceil(e/eps) leaves per tree and d = ceil(ln(1/delta)) trees,
//     x̂_i <= x_i + eps*||x||_1  (+ overflow term, zero when ||x||_1 < w1*theta1)
// holds with probability >= 1 - delta. The harness sweeps (eps, d) and
// reports the observed violation fraction, which must stay below delta.
#include <cmath>
#include <iostream>

#include "bench_common.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  bench::print_preamble("Theorem 5.1: empirical error-bound validation",
                        workload, 0);
  const auto& truth = workload.truth;
  const double total_packets = static_cast<double>(truth.total_packets());

  metrics::Table table("theorem51_bound",
                       {"eps", "trees(d)", "delta=e^-d", "w1", "bound_term",
                        "violations", "violation_rate", "holds"});

  for (const double eps : {2e-4, 1e-4, 5e-5}) {
    for (const std::size_t d : {1, 2, 3}) {
      const double delta = std::exp(-static_cast<double>(d));
      constexpr std::size_t k = 8;
      auto w1 = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
      w1 += (k * k) - w1 % (k * k);  // round up to the divisibility constraint

      core::FcmConfig config;
      config.tree_count = d;
      config.k = k;
      config.stage_bits = {8, 16, 32};
      config.leaf_count = w1;
      core::FcmSketch sketch(config);
      for (const flow::Packet& p : workload.trace.packets()) sketch.update(p.key);

      // The theorem's overflow term vanishes when ||x||_1 <= w1 * theta1.
      const double theta1 = static_cast<double>(config.counting_max(1));
      double bound = eps * total_packets;
      if (total_packets > static_cast<double>(w1) * theta1) {
        // Max degree from the converted counters (finite by construction).
        bound += eps * total_packets;  // conservative D-1 >= 1 fallback
      }

      std::size_t violations = 0;
      for (const auto& [key, size] : truth.flow_sizes()) {
        if (static_cast<double>(sketch.query(key)) >
            static_cast<double>(size) + bound) {
          ++violations;
        }
      }
      const double rate =
          static_cast<double>(violations) / static_cast<double>(truth.flow_count());
      table.add_row({metrics::Table::sci(eps, 1), std::to_string(d),
                     metrics::Table::fmt(delta, 3), std::to_string(w1),
                     metrics::Table::fmt(bound, 0), std::to_string(violations),
                     metrics::Table::sci(rate, 2),
                     rate <= delta ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::puts("expectation: every row holds (violation rate <= delta); the\n"
            "bound is loose in practice, so most rows show zero violations.");
  cli.finish();
  return 0;
}
