// Update/query throughput of every sketch (google-benchmark), plus the
// sharded-runtime scaling study.
// Not a paper figure per se; it substantiates §8.3's accuracy-complexity
// trade-off discussion (FCM costs more per update than CM in sequential
// software, which the pipeline hides in hardware). The scaling study
// measures how ShardedFcmFramework (DESIGN.md §7) recovers the hardware's
// parallelism in software: serial FcmFramework baseline vs. sharded ingest
// at N in {1, 2, 4, 8}, with machine-readable results in
// BENCH_throughput.json.
//
// The scaling study doubles as the observability overhead gate: every
// sharded configuration is timed twice, once with Options::metrics == nullptr
// (uninstrumented) and once against the global registry, and the JSON
// records the relative cost (DESIGN.md §8 budgets it at < 2%).
//
// Flags: --scaling-only        run just the scaling study (skip micro-benches)
//        --json=PATH           where to write the JSON (default
//                              BENCH_throughput.json in the CWD)
//        --seed=N              trace seed (default 1; common/random.h PRNG)
//        --metrics-json=PATH   export a fcm.metrics.v1 snapshot on exit
// Remaining arguments are forwarded to google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fcm/fcm_estimator.h"
#include "flow/synthetic.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"
#include "runtime/sharded_framework.h"
#include "sketch/cm_sketch.h"
#include "sketch/elastic_sketch.h"
#include "sketch/hashpipe.h"
#include "sketch/mrac.h"
#include "sketch/pyramid_sketch.h"
#include "sketch/univmon.h"

namespace {

using namespace fcm;

constexpr std::size_t kMemory = 600'000;

// Set from --seed before the first shared_trace() call.
std::uint64_t g_trace_seed = 1;

const flow::Trace& shared_trace() {
  static const flow::Trace trace = [] {
    flow::SyntheticTraceConfig config;
    config.packet_count = 1 << 18;
    config.flow_count = 20000;
    config.seed = g_trace_seed;
    return flow::SyntheticTraceGenerator(config).generate();
  }();
  return trace;
}

template <typename MakeSketch>
void run_update_bench(benchmark::State& state, MakeSketch make) {
  const flow::Trace& trace = shared_trace();
  auto sketch = make();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.update(trace.packets()[i].key);
    i = (i + 1) & (trace.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename MakeSketch>
void run_query_bench(benchmark::State& state, MakeSketch make) {
  const flow::Trace& trace = shared_trace();
  auto sketch = make();
  for (std::size_t i = 0; i < trace.size() / 4; ++i) {
    sketch.update(trace.packets()[i].key);
  }
  std::size_t i = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += sketch.query(trace.packets()[i].key);
    i = (i + 1) & (trace.size() - 1);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

void BM_UpdateFcm(benchmark::State& state) {
  run_update_bench(state, [] {
    return core::FcmEstimator(core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32}));
  });
}
void BM_UpdateFcmTopK(benchmark::State& state) {
  run_update_bench(state, [] {
    return core::FcmTopKEstimator(core::FcmTopK::for_memory(kMemory, 2, 16));
  });
}
void BM_UpdateCm(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::CmSketch::for_memory(kMemory); });
}
void BM_UpdateCu(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::CuSketch::for_memory(kMemory); });
}
void BM_UpdatePcm(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::PyramidCmSketch::for_memory(kMemory); });
}
void BM_UpdateMrac(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::Mrac::for_memory(kMemory); });
}
void BM_UpdateHashPipe(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::HashPipe::for_memory(kMemory); });
}
void BM_UpdateElastic(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::ElasticSketch::for_memory(kMemory); });
}
void BM_UpdateUnivMon(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::UnivMon::for_memory(kMemory); });
}

void BM_QueryFcm(benchmark::State& state) {
  run_query_bench(state, [] {
    return core::FcmEstimator(core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32}));
  });
}
void BM_QueryCm(benchmark::State& state) {
  run_query_bench(state, [] { return sketch::CmSketch::for_memory(kMemory); });
}
void BM_QueryElastic(benchmark::State& state) {
  run_query_bench(state, [] { return sketch::ElasticSketch::for_memory(kMemory); });
}

BENCHMARK(BM_UpdateFcm);
BENCHMARK(BM_UpdateFcmTopK);
BENCHMARK(BM_UpdateCm);
BENCHMARK(BM_UpdateCu);
BENCHMARK(BM_UpdatePcm);
BENCHMARK(BM_UpdateMrac);
BENCHMARK(BM_UpdateHashPipe);
BENCHMARK(BM_UpdateElastic);
BENCHMARK(BM_UpdateUnivMon);
BENCHMARK(BM_QueryFcm);
BENCHMARK(BM_QueryCm);
BENCHMARK(BM_QueryElastic);

// --- sharded-runtime scaling study ------------------------------------------

struct ScalingPoint {
  std::size_t shards = 0;       // 0 = serial baseline
  double packets_per_sec = 0.0; // uninstrumented (Options::metrics = nullptr)
  double speedup = 1.0;         // vs. the serial baseline
  double packets_per_sec_metrics = 0.0;  // same config, global registry wired
  // (pps - pps_metrics) / pps; negative values are timer noise, meaning the
  // instrumented run happened to be faster.
  double metrics_overhead_pct = 0.0;
};

double time_packets_per_sec(const flow::Trace& trace,
                            const std::function<void()>& run) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  run();
  const auto elapsed = std::chrono::duration<double>(clock::now() - start);
  return static_cast<double>(trace.size()) / elapsed.count();
}

std::vector<ScalingPoint> run_scaling_study(const flow::Trace& trace) {
  framework::FcmFramework::Options fw;
  fw.fcm = core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32});

  constexpr int kRepeats = 3;  // best-of to shave scheduler noise
  std::vector<ScalingPoint> points;

  // Serial baseline: one framework, driver thread does everything. The
  // serial ingest path carries no instrumentation (analyze()-only), so one
  // timing covers both columns.
  ScalingPoint serial;
  serial.shards = 0;
  for (int r = 0; r < kRepeats; ++r) {
    framework::FcmFramework framework(fw);
    const double pps = time_packets_per_sec(trace, [&] {
      for (const flow::Packet& packet : trace.packets()) {
        framework.process(packet.key);
      }
    });
    serial.packets_per_sec = std::max(serial.packets_per_sec, pps);
  }
  serial.packets_per_sec_metrics = serial.packets_per_sec;
  points.push_back(serial);

  const auto run_once = [&](std::size_t shards, bool with_metrics) {
    runtime::ShardedFcmFramework::Options options;
    options.framework = fw;
    options.shard_count = shards;
    options.fanout = runtime::ShardedFcmFramework::Fanout::kHashByKey;
    options.metrics = with_metrics ? &obs::MetricsRegistry::global() : nullptr;
    runtime::ShardedFcmFramework sharded(options);
    // Ingest + rotate: the honest end-to-end cost of one epoch, including
    // the final merge (which the runtime overlaps with the NEXT epoch's
    // ingest in steady state; a single epoch pays it at the end).
    return time_packets_per_sec(trace, [&] {
      for (const flow::Packet& packet : trace.packets()) {
        sharded.ingest(packet.key);
      }
      sharded.rotate();
    });
  };

  // The instrumented/uninstrumented pair is interleaved repeat-by-repeat so
  // scheduler and frequency drift hit both columns equally; best-of-N on
  // each side then isolates the instrumentation cost itself (the quantity
  // DESIGN.md §8 budgets at < 2%).
  constexpr int kOverheadRepeats = 3 * kRepeats;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    ScalingPoint point;
    point.shards = shards;
    for (int r = 0; r < kOverheadRepeats; ++r) {
      point.packets_per_sec =
          std::max(point.packets_per_sec, run_once(shards, false));
      point.packets_per_sec_metrics =
          std::max(point.packets_per_sec_metrics, run_once(shards, true));
    }
    point.speedup = point.packets_per_sec / serial.packets_per_sec;
    point.metrics_overhead_pct =
        100.0 *
        (point.packets_per_sec - point.packets_per_sec_metrics) /
        point.packets_per_sec;
    points.push_back(point);
  }
  return points;
}

void write_scaling_json(const std::string& path, const flow::Trace& trace,
                        const std::vector<ScalingPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_throughput: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"sharded_runtime_scaling\",\n";
  out << "  \"packet_count\": " << trace.size() << ",\n";
  out << "  \"fanout\": \"hash_by_key\",\n";
  out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n";
  double serial_pps = 0.0;
  for (const ScalingPoint& p : points) {
    if (p.shards == 0) serial_pps = p.packets_per_sec;
  }
  out << "  \"serial_packets_per_sec\": " << serial_pps << ",\n";
  out << "  \"sharded\": [\n";
  bool first = true;
  for (const ScalingPoint& p : points) {
    if (p.shards == 0) continue;
    if (!first) out << ",\n";
    first = false;
    out << "    {\"shards\": " << p.shards
        << ", \"packets_per_sec\": " << p.packets_per_sec
        << ", \"speedup_vs_serial\": " << p.speedup
        << ", \"packets_per_sec_metrics\": " << p.packets_per_sec_metrics
        << ", \"metrics_overhead_pct\": " << p.metrics_overhead_pct << "}";
  }
  out << "\n  ]\n}\n";
}

void print_scaling(const std::vector<ScalingPoint>& points) {
  std::printf("\nsharded-runtime scaling (hash fanout, %u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("%-10s %16s %10s %16s %10s\n", "config", "pkts/sec", "speedup",
              "w/metrics", "overhead");
  for (const ScalingPoint& p : points) {
    if (p.shards == 0) {
      std::printf("%-10s %16.0f %10s %16s %10s\n", "serial", p.packets_per_sec,
                  "1.00x", "-", "-");
    } else {
      std::printf("%zu %-8s %16.0f %9.2fx %16.0f %9.2f%%\n", p.shards,
                  "shards", p.packets_per_sec, p.speedup,
                  p.packets_per_sec_metrics, p.metrics_overhead_pct);
    }
  }
  std::printf("observability budget: metrics overhead must stay < 2%% "
              "(DESIGN.md §8)\n");
}

}  // namespace

int main(int argc, char** argv) {
  fcm::bench::BenchCli cli = fcm::bench::BenchCli::parse(argc, argv);
  g_trace_seed = cli.seed;

  bool scaling_only = false;
  std::string json_path = "BENCH_throughput.json";
  std::vector<char*> forwarded;
  for (std::size_t i = 0; i < cli.forwarded.size(); ++i) {
    const std::string arg = cli.forwarded[i];
    if (i == 0) {
      forwarded.push_back(cli.forwarded[i]);  // argv[0]
    } else if (arg == "--scaling-only") {
      scaling_only = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      forwarded.push_back(cli.forwarded[i]);
    }
  }

  const fcm::flow::Trace& trace = shared_trace();
  const std::vector<ScalingPoint> points = run_scaling_study(trace);
  print_scaling(points);
  write_scaling_json(json_path, trace, points);
  std::printf("wrote %s\n", json_path.c_str());

  if (scaling_only) {
    cli.finish();
    return 0;
  }

  int forwarded_argc = static_cast<int>(forwarded.size());
  benchmark::Initialize(&forwarded_argc, forwarded.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded_argc, forwarded.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cli.finish();
  return 0;
}
