// Update/query throughput of every sketch (google-benchmark), plus the
// sharded-runtime scaling study.
// Not a paper figure per se; it substantiates §8.3's accuracy-complexity
// trade-off discussion (FCM costs more per update than CM in sequential
// software, which the pipeline hides in hardware). The scaling study
// measures how ShardedFcmFramework (DESIGN.md §7) recovers the hardware's
// parallelism in software: serial FcmFramework baseline vs. sharded ingest
// at N in {1, 2, 4, 8}, with machine-readable results in
// BENCH_throughput.json.
//
// The scaling study doubles as the observability overhead gate: every
// sharded configuration is timed twice, once with Options::metrics == nullptr
// (uninstrumented) and once against the global registry, and the JSON
// records the relative cost (DESIGN.md §8 budgets it at < 2%).
//
// The kernel-tier study (DESIGN.md §14) times the same serial ingest under
// every kernel tier the machine supports — scalar, autovec, and the
// hand-written AVX2 kernel — by forcing the dispatch in-process. The tiers
// are bit-exact (tests/test_batch_equivalence.cpp), so the per-tier ratios
// are pure kernel speedups; `avx2_index_speedup_vs_scalar` is the ratio
// check_perf_baseline.py holds to the >= 2.5x acceptance floor.
//
// Flags: --scaling-only        run just the scaling study (skip micro-benches)
//        --kernels-only        run just the kernel-tier study and write a
//                              small fcm.bench.kernels.v1 JSON (CI perf-smoke
//                              runs this once per FCM_FORCE_KERNEL tier)
//        --sweep               run the flush_batch x queue_capacity operating-
//                              point sweep instead (table for EXPERIMENTS.md)
//        --json=PATH           where to write the JSON (default
//                              BENCH_throughput.json in the CWD)
//        --seed=N              trace seed (default 1; common/random.h PRNG)
//        --metrics-json=PATH   export a fcm.metrics.v1 snapshot on exit
// Remaining arguments are forwarded to google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/hash.h"
#include "common/simd_dispatch.h"
#include "datapath/cached_framework.h"
#include "fcm/fcm_estimator.h"
#include "flow/synthetic.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"
#include "runtime/sharded_framework.h"
#include "sketch/cm_sketch.h"
#include "sketch/elastic_sketch.h"
#include "sketch/hashpipe.h"
#include "sketch/mrac.h"
#include "sketch/pyramid_sketch.h"
#include "sketch/univmon.h"

#ifndef FCM_GIT_REV
#define FCM_GIT_REV "unknown"
#endif

namespace {

using namespace fcm;

constexpr std::size_t kMemory = 600'000;

// Set from --seed before the first shared_trace() call.
std::uint64_t g_trace_seed = 1;

const flow::Trace& shared_trace() {
  static const flow::Trace trace = [] {
    flow::SyntheticTraceConfig config;
    config.packet_count = 1 << 18;
    config.flow_count = 20000;
    config.seed = g_trace_seed;
    return flow::SyntheticTraceGenerator(config).generate();
  }();
  return trace;
}

// Dispersed-flow trace for the scaling study (EXPERIMENTS.md, throughput
// methodology). The micro-bench trace above (20k flows, Zipf 1.1) keeps its
// hot counters L1-resident, which is the right regime for comparing sketch
// *algorithms* but hides exactly the memory stalls the batched ingest kernel
// (DESIGN.md §9) overlaps. The kernel's target regime is FCM's: a flow table
// comparable to the sketch's leaf width (§7: 10^5..10^6 flows over a few
// hundred KB), where successive leaf accesses miss the near caches. Same
// Zipf 1.1 skew, flow population raised to make leaf accesses dispersed.
const flow::Trace& scaling_trace() {
  static const flow::Trace trace = [] {
    flow::SyntheticTraceConfig config;
    config.packet_count = 1 << 18;
    config.flow_count = 1 << 20;
    config.seed = g_trace_seed;
    return flow::SyntheticTraceGenerator(config).generate();
  }();
  return trace;
}

// Skewed trace for the heavy-flow-cache study (DESIGN.md §12). Zipf 1.3 is
// the regime the cache targets: a handful of elephant flows carry most
// packets, so the exact-match cache absorbs them in L1/L2 and the sketch
// only sees the cold tail. Same dispersed flow population as the scaling
// trace so the cache-off column pays the same leaf-access misses.
const flow::Trace& cache_trace() {
  static const flow::Trace trace = [] {
    flow::SyntheticTraceConfig config;
    config.packet_count = 1 << 18;
    config.flow_count = 1 << 20;
    config.zipf_alpha = 1.3;
    config.seed = g_trace_seed;
    return flow::SyntheticTraceGenerator(config).generate();
  }();
  return trace;
}

template <typename MakeSketch>
void run_update_bench(benchmark::State& state, MakeSketch make) {
  const flow::Trace& trace = shared_trace();
  auto sketch = make();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.update(trace.packets()[i].key);
    i = (i + 1) & (trace.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename MakeSketch>
void run_query_bench(benchmark::State& state, MakeSketch make) {
  const flow::Trace& trace = shared_trace();
  auto sketch = make();
  for (std::size_t i = 0; i < trace.size() / 4; ++i) {
    sketch.update(trace.packets()[i].key);
  }
  std::size_t i = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += sketch.query(trace.packets()[i].key);
    i = (i + 1) & (trace.size() - 1);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

void BM_UpdateFcm(benchmark::State& state) {
  run_update_bench(state, [] {
    return core::FcmEstimator(core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32}));
  });
}
void BM_UpdateFcmTopK(benchmark::State& state) {
  run_update_bench(state, [] {
    return core::FcmTopKEstimator(core::FcmTopK::for_memory(kMemory, 2, 16));
  });
}
void BM_UpdateCm(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::CmSketch::for_memory(kMemory); });
}
void BM_UpdateCu(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::CuSketch::for_memory(kMemory); });
}
void BM_UpdatePcm(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::PyramidCmSketch::for_memory(kMemory); });
}
void BM_UpdateMrac(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::Mrac::for_memory(kMemory); });
}
void BM_UpdateHashPipe(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::HashPipe::for_memory(kMemory); });
}
void BM_UpdateElastic(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::ElasticSketch::for_memory(kMemory); });
}
void BM_UpdateUnivMon(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::UnivMon::for_memory(kMemory); });
}

void BM_QueryFcm(benchmark::State& state) {
  run_query_bench(state, [] {
    return core::FcmEstimator(core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32}));
  });
}
void BM_QueryCm(benchmark::State& state) {
  run_query_bench(state, [] { return sketch::CmSketch::for_memory(kMemory); });
}
void BM_QueryElastic(benchmark::State& state) {
  run_query_bench(state, [] { return sketch::ElasticSketch::for_memory(kMemory); });
}

BENCHMARK(BM_UpdateFcm);
BENCHMARK(BM_UpdateFcmTopK);
BENCHMARK(BM_UpdateCm);
BENCHMARK(BM_UpdateCu);
BENCHMARK(BM_UpdatePcm);
BENCHMARK(BM_UpdateMrac);
BENCHMARK(BM_UpdateHashPipe);
BENCHMARK(BM_UpdateElastic);
BENCHMARK(BM_UpdateUnivMon);
BENCHMARK(BM_QueryFcm);
BENCHMARK(BM_QueryCm);
BENCHMARK(BM_QueryElastic);

// --- sharded-runtime scaling study ------------------------------------------

// Each configuration (serial, and N shards for N in {1, 2, 4, 8}) is timed
// in TWO columns: `scalar` drives the per-packet entry points
// (process(key) / ingest(key)); `batch` drives the span entry points that
// engage the batched ingest kernel (DESIGN.md §9: bulk hashing, level-1
// prefetch, branch-light fast path). Both columns produce bit-identical
// sketch state (tests/test_batch_equivalence.cpp), so the ratio is a pure
// kernel speedup. The scalar/batch pair is interleaved repeat-by-repeat and
// best-of-9 per side (EXPERIMENTS.md, throughput methodology), which makes
// the in-run `batch_speedup` ratio robust to frequency drift and mostly
// machine-independent — that ratio, not the absolute pps, is what
// tools/check_perf_baseline.py guards in CI.
struct ScalingPoint {
  std::size_t shards = 0;        // 0 = serial baseline
  double scalar_pps = 0.0;       // per-packet entry points, uninstrumented
  double batch_pps = 0.0;        // span entry points, uninstrumented
  double batch_speedup = 1.0;    // batch_pps / scalar_pps (same config)
  double speedup_vs_serial = 1.0;  // batch_pps vs. the serial batch column
  double batch_pps_metrics = 0.0;  // batch path, global registry wired
  // max(0, (batch_pps - batch_pps_metrics) / batch_pps): both columns are
  // best-of the SAME interleaved repeats, so any residual negative value is
  // timer noise (the instrumented run happened to land on a quieter slice)
  // and the column is clamped to zero rather than reporting a nonsensical
  // "metrics make it faster".
  double metrics_overhead_pct = 0.0;
  // v4 characterization columns (one dedicated run, flush_interval = 1ms):
  // per-shard ring-occupancy high-water as a fraction of ring blocks, and
  // the mean block residency from open to publish.
  std::vector<double> queue_high_water;
  double flush_latency_mean_seconds = 0.0;
};

// Interleaved best-of-9 (EXPERIMENTS.md): each repeat times every column
// once before any column repeats.
constexpr int kInterleavedRepeats = 9;

double time_packets_per_sec(const flow::Trace& trace,
                            const std::function<void()>& run) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  run();
  const auto elapsed = std::chrono::duration<double>(clock::now() - start);
  return static_cast<double>(trace.size()) / elapsed.count();
}

std::vector<ScalingPoint> run_scaling_study(const flow::Trace& trace) {
  framework::FcmFramework::Options fw;
  fw.fcm = core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32});

  // The batch columns ingest pre-stripped keys; strip once, outside the
  // timed region (a real packet path has the keys in hand either way).
  std::vector<flow::FlowKey> keys;
  keys.reserve(trace.size());
  for (const flow::Packet& packet : trace.packets()) keys.push_back(packet.key);
  const std::span<const flow::FlowKey> key_span(keys);

  std::vector<ScalingPoint> points;

  // Serial baseline: one framework, driver thread does everything. The
  // serial ingest path carries no instrumentation (analyze()-only), so the
  // metrics column equals the batch column.
  ScalingPoint serial;
  serial.shards = 0;
  for (int r = 0; r < kInterleavedRepeats; ++r) {
    {
      framework::FcmFramework framework(fw);
      serial.scalar_pps =
          std::max(serial.scalar_pps, time_packets_per_sec(trace, [&] {
            for (const flow::FlowKey key : keys) framework.process(key);
          }));
    }
    {
      framework::FcmFramework framework(fw);
      serial.batch_pps =
          std::max(serial.batch_pps, time_packets_per_sec(trace, [&] {
            framework.process_batch(key_span);
          }));
    }
  }
  serial.batch_speedup = serial.batch_pps / serial.scalar_pps;
  serial.batch_pps_metrics = serial.batch_pps;
  points.push_back(serial);

  const auto run_once = [&](std::size_t shards, bool batch, bool with_metrics) {
    runtime::ShardedFcmFramework::Options options;
    options.framework = fw;
    options.shard_count = shards;
    options.fanout = runtime::ShardedFcmFramework::Fanout::kHashByKey;
    options.metrics = with_metrics ? &obs::MetricsRegistry::global() : nullptr;
    runtime::ShardedFcmFramework sharded(options);
    // Ingest + rotate: the honest end-to-end cost of one epoch, including
    // the final merge (which the runtime overlaps with the NEXT epoch's
    // ingest in steady state; a single epoch pays it at the end).
    return time_packets_per_sec(trace, [&] {
      if (batch) {
        sharded.ingest(key_span);
      } else {
        for (const flow::FlowKey key : keys) sharded.ingest(key);
      }
      sharded.rotate();
    });
  };

  // One dedicated (untimed-column) run per shard count that characterizes
  // the block hand-off: flush_interval > 0 turns on block-residency
  // timestamps, a private registry collects the flush-latency histogram, and
  // queue_high_water() reads the ring occupancy peaks after the rotation.
  const auto characterize = [&](ScalingPoint& point) {
    obs::MetricsRegistry registry;
    runtime::ShardedFcmFramework::Options options;
    options.framework = fw;
    options.shard_count = point.shards;
    options.fanout = runtime::ShardedFcmFramework::Fanout::kHashByKey;
    options.flush_interval = std::chrono::milliseconds(1);
    options.metrics = &registry;
    runtime::ShardedFcmFramework sharded(options);
    sharded.ingest(key_span);
    sharded.rotate();
    point.queue_high_water = sharded.queue_high_water();
    const obs::Histogram& latency = registry.histogram(
        "fcm_runtime_flush_latency_seconds", obs::Histogram::latency_bounds());
    if (latency.count() > 0) {
      point.flush_latency_mean_seconds =
          latency.sum() / static_cast<double>(latency.count());
    }
  };

  // All three timed columns (scalar, batch, batch+metrics) are interleaved
  // repeat-by-repeat so scheduler and frequency drift hit them equally;
  // best-of-9 per column then isolates the kernel speedup and the
  // instrumentation cost (the latter budgeted < 2%, DESIGN.md §8).
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    ScalingPoint point;
    point.shards = shards;
    for (int r = 0; r < kInterleavedRepeats; ++r) {
      point.scalar_pps =
          std::max(point.scalar_pps, run_once(shards, false, false));
      point.batch_pps = std::max(point.batch_pps, run_once(shards, true, false));
      point.batch_pps_metrics =
          std::max(point.batch_pps_metrics, run_once(shards, true, true));
    }
    point.batch_speedup = point.batch_pps / point.scalar_pps;
    point.speedup_vs_serial = point.batch_pps / serial.batch_pps;
    point.metrics_overhead_pct = std::max(
        0.0,
        100.0 * (point.batch_pps - point.batch_pps_metrics) / point.batch_pps);
    characterize(point);
    points.push_back(point);
  }
  return points;
}

// --- block/ring operating-point sweep (--sweep) -------------------------------

// Grid over the two hand-off knobs: flush_batch (block size == the
// process_batch run length workers pop) and queue_capacity (ring depth in
// items; blocks = capacity / flush_batch). Printed as a table for
// EXPERIMENTS.md — the defaults committed in Options are chosen from this
// sweep, not hard-coded on faith. Best-of-3 per cell (a full grid at
// best-of-9 would run for minutes without changing the ranking).
void run_block_sweep(const flow::Trace& trace) {
  framework::FcmFramework::Options fw;
  fw.fcm = core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32});
  std::vector<flow::FlowKey> keys;
  keys.reserve(trace.size());
  for (const flow::Packet& packet : trace.packets()) keys.push_back(packet.key);
  const std::span<const flow::FlowKey> key_span(keys);

  constexpr std::size_t kFlushBatches[] = {16, 32, 64, 128, 256};
  constexpr std::size_t kCapacities[] = {1 << 12, 1 << 14, 1 << 16};
  for (const std::size_t shards : {1u, 4u}) {
    std::printf("\nblock sweep, %u shard%s (batch ingest pps, best of 3)\n",
                static_cast<unsigned>(shards), shards == 1 ? "" : "s");
    std::printf("%-14s", "flush_batch");
    for (const std::size_t capacity : kCapacities) {
      std::printf(" %11s=%-5zu", "capacity", capacity);
    }
    std::printf("\n");
    for (const std::size_t flush_batch : kFlushBatches) {
      std::printf("%-14zu", flush_batch);
      for (const std::size_t capacity : kCapacities) {
        double best = 0.0;
        for (int r = 0; r < 3; ++r) {
          runtime::ShardedFcmFramework::Options options;
          options.framework = fw;
          options.shard_count = shards;
          options.fanout = runtime::ShardedFcmFramework::Fanout::kHashByKey;
          options.flush_batch = flush_batch;
          options.queue_capacity = capacity;
          options.metrics = nullptr;
          runtime::ShardedFcmFramework sharded(options);
          best = std::max(best, time_packets_per_sec(trace, [&] {
                            sharded.ingest(key_span);
                            sharded.rotate();
                          }));
        }
        std::printf(" %17.0f", best);
      }
      std::printf("\n");
    }
  }
}

// --- heavy-flow-cache study --------------------------------------------------

// Cache-on (CachedFramework) vs cache-off (plain FcmFramework) on the skewed
// trace, both through the batch entry points, interleaved best-of-9 like the
// scaling study. `cache_speedup` is an in-run ratio (same process, same
// machine) so it cancels CPU model and frequency — that ratio is what
// tools/check_perf_baseline.py guards (acceptance: >= 1.2x at Zipf 1.3).
struct CacheStudy {
  double zipf_alpha = 1.3;
  std::size_t cache_entries = 0;
  std::size_t cache_ways = 0;
  double plain_pps = 0.0;    // FcmFramework::process_batch, no cache
  double cached_pps = 0.0;   // CachedFramework::process_batch
  double cache_speedup = 1.0;  // cached_pps / plain_pps
  double hit_rate = 0.0;     // cache hits / offers on the final repeat
};

CacheStudy run_cache_study(const flow::Trace& trace) {
  framework::FcmFramework::Options fw;
  fw.fcm = core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32});

  std::vector<flow::FlowKey> keys;
  keys.reserve(trace.size());
  for (const flow::Packet& packet : trace.packets()) keys.push_back(packet.key);
  const std::span<const flow::FlowKey> key_span(keys);

  datapath::CachedFramework::Options cached_options;
  cached_options.framework = fw;
  cached_options.metrics = nullptr;

  CacheStudy study;
  study.cache_entries = cached_options.cache.entries;
  study.cache_ways = cached_options.cache.ways;
  for (int r = 0; r < kInterleavedRepeats; ++r) {
    {
      framework::FcmFramework framework(fw);
      study.plain_pps =
          std::max(study.plain_pps, time_packets_per_sec(trace, [&] {
            framework.process_batch(key_span);
          }));
    }
    {
      datapath::CachedFramework framework(cached_options);
      study.cached_pps =
          std::max(study.cached_pps, time_packets_per_sec(trace, [&] {
            framework.process_batch(key_span);
          }));
      const std::uint64_t offers =
          framework.cache().hits() + framework.cache().misses();
      if (offers > 0) {
        study.hit_rate =
            static_cast<double>(framework.cache().hits()) /
            static_cast<double>(offers);
      }
    }
  }
  study.cache_speedup = study.cached_pps / study.plain_pps;
  return study;
}

// --- per-kernel-tier study (DESIGN.md §14) -----------------------------------

namespace simd = common::simd;

// One row per kernel tier, every column forced to that tier in-process via
// force_kernel_tier(). All rows run in one process on one machine and the
// tiers are bit-exact, so the cross-row ratios are pure kernel speedups —
// machine-portable the same way batch_speedup and cache_speedup are.
struct KernelTierPoint {
  simd::KernelTier tier = simd::KernelTier::kScalar;
  // SeededHash::index_hash_batch alone, kBatchBlock chunks over the
  // dispersed trace: the hash+fast-range kernel the AVX2 TU vectorizes.
  double index_keys_per_sec = 0.0;
  // Serial FcmFramework::process_batch — hash kernel + level-1 fast path.
  double ingest_pps = 0.0;
  // Same with the single-pass sweep enabled: measures what folding the
  // cardinality sidecars into the ingest sweep costs on top of ingest_pps.
  double sweep_pps = 0.0;
};

struct KernelStudy {
  bool cpu_supports_avx2 = false;
  std::string forced_env;   // FCM_FORCE_KERNEL at startup ("" when unset)
  std::string active_tier;  // what the dispatch resolved before any forcing
  std::vector<KernelTierPoint> points;
  // avx2 row / scalar row; 0 when either row is absent (non-AVX2 machine or
  // a forced single-tier run).
  double avx2_index_speedup = 0.0;
  double avx2_ingest_speedup = 0.0;
};

KernelStudy run_kernel_study(const flow::Trace& trace) {
  KernelStudy study;
  study.cpu_supports_avx2 = simd::cpu_supports_avx2();
  study.active_tier = std::string(simd::kernel_tier_name(simd::active_kernel_tier()));
  const char* forced = std::getenv("FCM_FORCE_KERNEL");
  if (forced != nullptr) study.forced_env = forced;

  // A forced run (CI perf-smoke) measures only the forced tier — the smoke
  // wants one fast per-tier datapoint per job, not the full matrix. An
  // unforced run measures every tier the machine can execute.
  std::vector<simd::KernelTier> tiers;
  const std::optional<simd::KernelTier> forced_tier =
      forced != nullptr ? simd::parse_kernel_tier(forced) : std::nullopt;
  if (forced_tier.has_value()) {
    tiers.push_back(simd::resolve_kernel_tier());  // honors avx2 fallback
  } else {
    tiers.push_back(simd::KernelTier::kScalar);
    tiers.push_back(simd::KernelTier::kAutovec);
    if (study.cpu_supports_avx2) tiers.push_back(simd::KernelTier::kAvx2);
  }
  study.points.resize(tiers.size());
  for (std::size_t t = 0; t < tiers.size(); ++t) study.points[t].tier = tiers[t];

  framework::FcmFramework::Options fw;
  fw.fcm = core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32});
  framework::FcmFramework::Options fw_sweep = fw;
  fw_sweep.single_pass_sweep = true;

  std::vector<flow::FlowKey> keys;
  keys.reserve(trace.size());
  for (const flow::Packet& packet : trace.packets()) keys.push_back(packet.key);
  const std::span<const flow::FlowKey> key_span(keys);

  // The index column hashes into a dispersed non-power-of-two table so the
  // Lemire reduction is exercised the way FCM's leaf stage uses it.
  const common::SeededHash hash(static_cast<std::uint32_t>(g_trace_seed));
  constexpr std::size_t kIndexWidth = 600'011;

  // Tiers interleaved repeat-by-repeat, best-of-9 per column, like every
  // other ratio this bench guards.
  for (int r = 0; r < kInterleavedRepeats; ++r) {
    for (KernelTierPoint& point : study.points) {
      simd::force_kernel_tier(point.tier);
      {
        std::uint32_t idx[common::kBatchBlock];
        std::uint32_t sink = 0;
        point.index_keys_per_sec =
            std::max(point.index_keys_per_sec, time_packets_per_sec(trace, [&] {
              for (std::size_t base = 0; base < keys.size();
                   base += common::kBatchBlock) {
                const std::size_t n =
                    std::min(common::kBatchBlock, keys.size() - base);
                hash.index_batch(key_span.subspan(base, n), kIndexWidth,
                                 std::span<std::uint32_t>(idx, n));
                sink += idx[0];
              }
            }));
        benchmark::DoNotOptimize(sink);
      }
      {
        framework::FcmFramework framework(fw);
        point.ingest_pps =
            std::max(point.ingest_pps, time_packets_per_sec(trace, [&] {
              framework.process_batch(key_span);
            }));
      }
      {
        framework::FcmFramework framework(fw_sweep);
        point.sweep_pps =
            std::max(point.sweep_pps, time_packets_per_sec(trace, [&] {
              framework.process_batch(key_span);
            }));
      }
    }
  }
  simd::force_kernel_tier(std::nullopt);

  const KernelTierPoint* scalar = nullptr;
  const KernelTierPoint* avx2 = nullptr;
  for (const KernelTierPoint& point : study.points) {
    if (point.tier == simd::KernelTier::kScalar) scalar = &point;
    if (point.tier == simd::KernelTier::kAvx2) avx2 = &point;
  }
  if (scalar != nullptr && avx2 != nullptr) {
    study.avx2_index_speedup = avx2->index_keys_per_sec / scalar->index_keys_per_sec;
    study.avx2_ingest_speedup = avx2->ingest_pps / scalar->ingest_pps;
  }
  return study;
}

void write_kernels_object(std::ostream& out, const KernelStudy& study,
                          const char* indent) {
  out << indent << "\"kernels\": {\n";
  out << indent << "  \"cpu_supports_avx2\": "
      << (study.cpu_supports_avx2 ? "true" : "false") << ",\n";
  if (study.forced_env.empty()) {
    out << indent << "  \"forced_env\": null,\n";
  } else {
    out << indent << "  \"forced_env\": \"" << study.forced_env << "\",\n";
  }
  out << indent << "  \"active_tier\": \"" << study.active_tier << "\",\n";
  out << indent << "  \"tiers\": [\n";
  for (std::size_t i = 0; i < study.points.size(); ++i) {
    const KernelTierPoint& point = study.points[i];
    out << indent << "    {\"tier\": \"" << simd::kernel_tier_name(point.tier)
        << "\", \"index_keys_per_sec\": " << point.index_keys_per_sec
        << ", \"ingest_packets_per_sec\": " << point.ingest_pps
        << ", \"sweep_packets_per_sec\": " << point.sweep_pps << "}"
        << (i + 1 < study.points.size() ? "," : "") << "\n";
  }
  out << indent << "  ],\n";
  out << indent << "  \"avx2_index_speedup_vs_scalar\": "
      << study.avx2_index_speedup << ",\n";
  out << indent << "  \"avx2_ingest_speedup_vs_scalar\": "
      << study.avx2_ingest_speedup << "\n";
  out << indent << "}";
}

void write_kernels_json(const std::string& path, const flow::Trace& trace,
                        const KernelStudy& study) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_throughput: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"kernel_dispatch\",\n";
  out << "  \"schema\": \"fcm.bench.kernels.v1\",\n";
  out << "  \"packet_count\": " << trace.size() << ",\n";
  out << "  \"seed\": " << g_trace_seed << ",\n";
  out << "  \"repeats\": " << kInterleavedRepeats << ",\n";
  out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"git_rev\": \"" << FCM_GIT_REV << "\",\n";
  write_kernels_object(out, study, "  ");
  out << "\n}\n";
}

void print_kernel_study(const KernelStudy& study) {
  std::printf("\nkernel-tier study (cpu avx2: %s, active tier: %s%s%s, "
              "best of %d interleaved)\n",
              study.cpu_supports_avx2 ? "yes" : "no",
              study.active_tier.c_str(),
              study.forced_env.empty() ? "" : ", FCM_FORCE_KERNEL=",
              study.forced_env.c_str(), kInterleavedRepeats);
  std::printf("%-10s %16s %14s %14s\n", "tier", "index keys/s", "ingest pps",
              "sweep pps");
  for (const KernelTierPoint& point : study.points) {
    std::printf("%-10s %16.0f %14.0f %14.0f\n",
                std::string(simd::kernel_tier_name(point.tier)).c_str(),
                point.index_keys_per_sec, point.ingest_pps, point.sweep_pps);
  }
  if (study.avx2_index_speedup > 0.0) {
    std::printf("avx2 vs scalar: index %.2fx, ingest %.2fx\n",
                study.avx2_index_speedup, study.avx2_ingest_speedup);
    std::printf("acceptance: avx2 index kernel >= 2.5x scalar "
                "(check_perf_baseline.py, AVX2 machines)\n");
  }
}

void write_scaling_json(const std::string& path, const flow::Trace& trace,
                        const std::vector<ScalingPoint>& points,
                        const CacheStudy& cache, const KernelStudy& kernels) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_throughput: cannot write %s\n", path.c_str());
    return;
  }
  const ScalingPoint* serial = nullptr;
  for (const ScalingPoint& p : points) {
    if (p.shards == 0) serial = &p;
  }
  out << "{\n";
  out << "  \"bench\": \"sharded_runtime_scaling\",\n";
  out << "  \"schema\": \"fcm.bench.throughput.v5\",\n";
  out << "  \"packet_count\": " << trace.size() << ",\n";
  out << "  \"seed\": " << g_trace_seed << ",\n";
  out << "  \"repeats\": " << kInterleavedRepeats << ",\n";
  out << "  \"fanout\": \"hash_by_key\",\n";
  out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"git_rev\": \"" << FCM_GIT_REV << "\",\n";
  out << "  \"serial\": {\"scalar_packets_per_sec\": " << serial->scalar_pps
      << ", \"batch_packets_per_sec\": " << serial->batch_pps
      << ", \"batch_speedup\": " << serial->batch_speedup << "},\n";
  out << "  \"cache\": {\"zipf_alpha\": " << cache.zipf_alpha
      << ", \"cache_entries\": " << cache.cache_entries
      << ", \"cache_ways\": " << cache.cache_ways
      << ", \"plain_packets_per_sec\": " << cache.plain_pps
      << ", \"cached_packets_per_sec\": " << cache.cached_pps
      << ", \"cache_speedup\": " << cache.cache_speedup
      << ", \"hit_rate\": " << cache.hit_rate << "},\n";
  write_kernels_object(out, kernels, "  ");
  out << ",\n";
  out << "  \"sharded\": [\n";
  bool first = true;
  for (const ScalingPoint& p : points) {
    if (p.shards == 0) continue;
    if (!first) out << ",\n";
    first = false;
    out << "    {\"shards\": " << p.shards
        << ", \"scalar_packets_per_sec\": " << p.scalar_pps
        << ", \"batch_packets_per_sec\": " << p.batch_pps
        << ", \"batch_speedup\": " << p.batch_speedup
        << ", \"speedup_vs_serial\": " << p.speedup_vs_serial
        << ", \"batch_packets_per_sec_metrics\": " << p.batch_pps_metrics
        << ", \"metrics_overhead_pct\": " << p.metrics_overhead_pct
        << ", \"queue_high_water\": [";
    for (std::size_t i = 0; i < p.queue_high_water.size(); ++i) {
      if (i > 0) out << ", ";
      out << p.queue_high_water[i];
    }
    out << "], \"flush_latency_mean_seconds\": "
        << p.flush_latency_mean_seconds << "}";
  }
  out << "\n  ]\n}\n";
}

void print_scaling(const std::vector<ScalingPoint>& points) {
  std::printf("\nsharded-runtime scaling (hash fanout, %u hardware threads, "
              "best of %d interleaved)\n",
              std::thread::hardware_concurrency(), kInterleavedRepeats);
  std::printf("%-10s %14s %14s %8s %8s %14s %9s %9s %10s\n", "config",
              "scalar pps", "batch pps", "batch x", "vs ser", "w/metrics",
              "overhead", "occ max", "flush us");
  for (const ScalingPoint& p : points) {
    const double occupancy_max =
        p.queue_high_water.empty()
            ? 0.0
            : *std::max_element(p.queue_high_water.begin(),
                                p.queue_high_water.end());
    std::printf("%-10s %14.0f %14.0f %7.2fx %7.2fx %14.0f %8.2f%% %8.1f%% %10.2f\n",
                p.shards == 0 ? "serial"
                              : (std::to_string(p.shards) + " shards").c_str(),
                p.scalar_pps, p.batch_pps, p.batch_speedup, p.speedup_vs_serial,
                p.batch_pps_metrics, p.metrics_overhead_pct,
                100.0 * occupancy_max, 1e6 * p.flush_latency_mean_seconds);
  }
  std::printf("acceptance: serial batch_speedup >= 1.5x; metrics overhead "
              "< 2%% (DESIGN.md §8/§9)\n");
}

void print_cache_study(const CacheStudy& cache) {
  std::printf("\nheavy-flow cache (Zipf %.1f skewed trace, %zu entries x %zu "
              "ways, best of %d interleaved)\n",
              cache.zipf_alpha, cache.cache_entries, cache.cache_ways,
              kInterleavedRepeats);
  std::printf("%-10s %14s %14s %8s %9s\n", "config", "plain pps", "cached pps",
              "cache x", "hit rate");
  std::printf("%-10s %14.0f %14.0f %7.2fx %8.1f%%\n", "serial",
              cache.plain_pps, cache.cached_pps, cache.cache_speedup,
              100.0 * cache.hit_rate);
  std::printf("acceptance: cache_speedup >= 1.2x on the skewed trace "
              "(DESIGN.md §12)\n");
}

}  // namespace

int main(int argc, char** argv) {
  fcm::bench::BenchCli cli = fcm::bench::BenchCli::parse(argc, argv);
  g_trace_seed = cli.seed;

  bool scaling_only = false;
  bool kernels_only = false;
  bool sweep = false;
  std::string json_path = "BENCH_throughput.json";
  std::vector<char*> forwarded;
  for (std::size_t i = 0; i < cli.forwarded.size(); ++i) {
    const std::string arg = cli.forwarded[i];
    if (i == 0) {
      forwarded.push_back(cli.forwarded[i]);  // argv[0]
    } else if (arg == "--scaling-only") {
      scaling_only = true;
    } else if (arg == "--kernels-only") {
      kernels_only = true;
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      forwarded.push_back(cli.forwarded[i]);
    }
  }

  const fcm::flow::Trace& trace = scaling_trace();
  if (sweep) {
    // Operating-point sweep only: the table EXPERIMENTS.md records the
    // flush_batch / queue_capacity choice from.
    run_block_sweep(trace);
    cli.finish();
    return 0;
  }
  if (kernels_only) {
    // CI perf-smoke entry: one fast kernel-tier datapoint (all tiers when
    // unforced, just the forced one under FCM_FORCE_KERNEL), small JSON.
    const KernelStudy kernels = run_kernel_study(trace);
    print_kernel_study(kernels);
    write_kernels_json(json_path, trace, kernels);
    std::printf("wrote %s\n", json_path.c_str());
    cli.finish();
    return 0;
  }
  const std::vector<ScalingPoint> points = run_scaling_study(trace);
  print_scaling(points);
  const CacheStudy cache = run_cache_study(cache_trace());
  print_cache_study(cache);
  const KernelStudy kernels = run_kernel_study(trace);
  print_kernel_study(kernels);
  write_scaling_json(json_path, trace, points, cache, kernels);
  std::printf("wrote %s\n", json_path.c_str());

  if (scaling_only) {
    cli.finish();
    return 0;
  }

  int forwarded_argc = static_cast<int>(forwarded.size());
  benchmark::Initialize(&forwarded_argc, forwarded.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded_argc, forwarded.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cli.finish();
  return 0;
}
