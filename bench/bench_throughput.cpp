// Update/query throughput of every sketch (google-benchmark).
// Not a paper figure per se; it substantiates §8.3's accuracy-complexity
// trade-off discussion (FCM costs more per update than CM in sequential
// software, which the pipeline hides in hardware).
#include <benchmark/benchmark.h>

#include "fcm/fcm_estimator.h"
#include "flow/synthetic.h"
#include "sketch/cm_sketch.h"
#include "sketch/elastic_sketch.h"
#include "sketch/hashpipe.h"
#include "sketch/mrac.h"
#include "sketch/pyramid_sketch.h"
#include "sketch/univmon.h"

namespace {

using namespace fcm;

constexpr std::size_t kMemory = 600'000;

const flow::Trace& shared_trace() {
  static const flow::Trace trace = [] {
    flow::SyntheticTraceConfig config;
    config.packet_count = 1 << 18;
    config.flow_count = 20000;
    return flow::SyntheticTraceGenerator(config).generate();
  }();
  return trace;
}

template <typename MakeSketch>
void run_update_bench(benchmark::State& state, MakeSketch make) {
  const flow::Trace& trace = shared_trace();
  auto sketch = make();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.update(trace.packets()[i].key);
    i = (i + 1) & (trace.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename MakeSketch>
void run_query_bench(benchmark::State& state, MakeSketch make) {
  const flow::Trace& trace = shared_trace();
  auto sketch = make();
  for (std::size_t i = 0; i < trace.size() / 4; ++i) {
    sketch.update(trace.packets()[i].key);
  }
  std::size_t i = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += sketch.query(trace.packets()[i].key);
    i = (i + 1) & (trace.size() - 1);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

void BM_UpdateFcm(benchmark::State& state) {
  run_update_bench(state, [] {
    return core::FcmEstimator(core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32}));
  });
}
void BM_UpdateFcmTopK(benchmark::State& state) {
  run_update_bench(state, [] {
    return core::FcmTopKEstimator(core::FcmTopK::for_memory(kMemory, 2, 16));
  });
}
void BM_UpdateCm(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::CmSketch::for_memory(kMemory); });
}
void BM_UpdateCu(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::CuSketch::for_memory(kMemory); });
}
void BM_UpdatePcm(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::PyramidCmSketch::for_memory(kMemory); });
}
void BM_UpdateMrac(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::Mrac::for_memory(kMemory); });
}
void BM_UpdateHashPipe(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::HashPipe::for_memory(kMemory); });
}
void BM_UpdateElastic(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::ElasticSketch::for_memory(kMemory); });
}
void BM_UpdateUnivMon(benchmark::State& state) {
  run_update_bench(state, [] { return sketch::UnivMon::for_memory(kMemory); });
}

void BM_QueryFcm(benchmark::State& state) {
  run_query_bench(state, [] {
    return core::FcmEstimator(core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32}));
  });
}
void BM_QueryCm(benchmark::State& state) {
  run_query_bench(state, [] { return sketch::CmSketch::for_memory(kMemory); });
}
void BM_QueryElastic(benchmark::State& state) {
  run_query_bench(state, [] { return sketch::ElasticSketch::for_memory(kMemory); });
}

BENCHMARK(BM_UpdateFcm);
BENCHMARK(BM_UpdateFcmTopK);
BENCHMARK(BM_UpdateCm);
BENCHMARK(BM_UpdateCu);
BENCHMARK(BM_UpdatePcm);
BENCHMARK(BM_UpdateMrac);
BENCHMARK(BM_UpdateHashPipe);
BENCHMARK(BM_UpdateElastic);
BENCHMARK(BM_UpdateUnivMon);
BENCHMARK(BM_QueryFcm);
BENCHMARK(BM_QueryCm);
BENCHMARK(BM_QueryElastic);

}  // namespace

BENCHMARK_MAIN();
