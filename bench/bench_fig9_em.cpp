// Figure 9: cost and convergence of the EM algorithm.
//   9a per-iteration runtime: MRAC vs single-threaded FCM vs multi-threaded FCM
//      (8-ary trees, as in the paper).
//   9b WMRE vs iteration count: FCM vs MRAC.
#include <iostream>

#include "bench_common.h"
#include "controlplane/em.h"
#include "sketch/mrac.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'500'000, scale);
  bench::print_preamble("Figure 9: EM runtime and convergence", workload, memory);
  const auto true_fsd = workload.truth.flow_size_distribution();

  core::FcmSketch fcm(bench::fcm_config(memory, 8));
  sketch::Mrac mrac = sketch::Mrac::for_memory(memory);
  for (const flow::Packet& p : workload.trace.packets()) {
    fcm.update(p.key);
    mrac.update(p.key);
  }

  constexpr std::size_t kIterations = 15;
  struct Run {
    std::string name;
    std::vector<double> seconds;
    std::vector<double> wmre;
  };
  std::vector<Run> runs;

  const auto run_em = [&](std::string name,
                          std::vector<control::VirtualCounterArray> arrays,
                          std::size_t threads) {
    control::EmConfig config;
    config.max_iterations = kIterations;
    config.thread_count = threads;
    Run run;
    run.name = std::move(name);
    control::EmFsdEstimator estimator(std::move(arrays), config);
    estimator.run([&](std::size_t, double seconds, const auto& fsd) {
      run.seconds.push_back(seconds);
      run.wmre.push_back(fsd.wmre(true_fsd));
    });
    runs.push_back(std::move(run));
  };

  run_em("MRAC", {control::from_plain_counters(mrac.counters())}, 1);
  run_em("FCM(s)", control::convert_sketch(fcm), 1);
  run_em("FCM(m)", control::convert_sketch(fcm), 4);

  metrics::Table runtime_table("fig9a_em_runtime_per_iteration",
                               {"algorithm", "avg_seconds_per_iteration"});
  for (const Run& run : runs) {
    double total = 0.0;
    for (const double s : run.seconds) total += s;
    runtime_table.add_row(
        {run.name, metrics::Table::fmt(total / run.seconds.size(), 4)});
  }
  runtime_table.print(std::cout);

  metrics::Table convergence_table("fig9b_wmre_vs_iteration",
                                   {"iteration", "FCM", "MRAC"});
  for (std::size_t i = 0; i < kIterations; ++i) {
    convergence_table.add_row({std::to_string(i + 1),
                               metrics::Table::fmt(runs[1].wmre[i], 4),
                               metrics::Table::fmt(runs[0].wmre[i], 4)});
  }
  convergence_table.print(std::cout);
  std::puts("expectation: FCM stabilizes within ~5 iterations at lower WMRE\n"
            "than MRAC; on a single core FCM(m) ~= FCM(s) (thread overhead).");
  cli.finish();
  return 0;
}
