// Figure 13: software implementation vs the Tofino (pipeline-model)
// implementation at 1.3 MB.
//   - FCM-Sketch: the P4 program on the pipeline model must match the
//     software sketch exactly (no accuracy difference, as the paper reports).
//   - FCM+TopK: the hardware variant replaces the software filter's vote
//     *ratio* eviction with an absolute-vote eviction (§8.1's stateful-ALU
//     approximation), giving the small error increase of Figure 13.
#include <iostream>

#include "bench_common.h"
#include "controlplane/em.h"
#include "pisa/fcm_p4.h"
#include "pisa/hardware_topk.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'300'000, scale);
  bench::print_preamble("Figure 13: software vs hardware implementation",
                        workload, memory);
  const auto& truth = workload.truth;
  const auto true_fsd = truth.flow_size_distribution();
  control::EmConfig em;
  em.max_iterations = 6;

  // --- FCM: software sketch vs P4 pipeline program -----------------------
  const core::FcmConfig fcm_cfg = bench::fcm_config(memory, 8);
  core::FcmSketch sw_fcm(fcm_cfg);
  pisa::FcmP4Program hw_fcm(fcm_cfg);
  std::size_t divergences = 0;
  for (const flow::Packet& p : workload.trace.packets()) {
    if (sw_fcm.update(p.key) != hw_fcm.update(p.key)) ++divergences;
  }
  const auto sw_err = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey key) { return sw_fcm.query(key); });
  const auto hw_err = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey key) { return hw_fcm.query(key); });
  const double sw_wmre =
      control::EmFsdEstimator(control::convert_sketch(sw_fcm), em).run().wmre(true_fsd);

  // --- FCM+TopK: software filter vs hardware (absolute-vote) filter -------
  core::FcmTopK sw_topk(bench::fcm_topk_config(memory, 16));
  pisa::HardwareFcmTopK hw_topk(bench::fcm_topk_config(memory, 16).fcm,
                                bench::auto_topk_entries(memory));
  for (const flow::Packet& p : workload.trace.packets()) {
    sw_topk.update(p.key);
    hw_topk.update(p.key);
  }
  const auto sw_topk_err = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey key) { return sw_topk.query(key); });
  const auto hw_topk_err = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey key) { return hw_topk.query(key); });

  auto sw_topk_fsd =
      control::EmFsdEstimator(control::convert_sketch(sw_topk.sketch()), em).run();
  for (const auto& [key, count] : sw_topk.topk_flows()) {
    sw_topk_fsd.add_flows(static_cast<std::size_t>(sw_topk.query(key)), 1.0);
  }
  auto hw_topk_fsd =
      control::EmFsdEstimator(control::convert_sketch(hw_topk.sketch()), em).run();
  for (const auto& entry : hw_topk.filter().entries()) {
    hw_topk_fsd.add_flows(static_cast<std::size_t>(hw_topk.query(entry.key)), 1.0);
  }

  metrics::Table table("fig13_software_vs_tofino",
                       {"metric", "FCM_sw", "FCM_hw", "FCM+TopK_sw", "FCM+TopK_hw"});
  table.add_row({"flow_size_ARE", metrics::Table::fmt(sw_err.are),
                 metrics::Table::fmt(hw_err.are),
                 metrics::Table::fmt(sw_topk_err.are),
                 metrics::Table::fmt(hw_topk_err.are)});
  table.add_row({"flow_size_AAE", metrics::Table::fmt(sw_err.aae),
                 metrics::Table::fmt(hw_err.aae),
                 metrics::Table::fmt(sw_topk_err.aae),
                 metrics::Table::fmt(hw_topk_err.aae)});
  table.add_row({"fsd_WMRE", metrics::Table::fmt(sw_wmre, 4),
                 metrics::Table::fmt(sw_wmre, 4),
                 metrics::Table::fmt(sw_topk_fsd.wmre(true_fsd), 4),
                 metrics::Table::fmt(hw_topk_fsd.wmre(true_fsd), 4)});
  table.print(std::cout);

  std::printf("FCM software/hardware per-update divergences: %zu (must be 0)\n",
              divergences);
  std::puts("expectation: FCM identical in both columns; FCM+TopK hardware\n"
            "slightly worse than software (approximated TopK eviction).");
  cli.finish();
  return 0;
}
