// Figures 10 and 11: sensitivity of the k parameter to traffic skewness.
// Synthetic Zipf(alpha) traces, alpha in {1.1, 1.3, 1.5, 1.7}; k in
// {4, 8, 16, 32}. Flow-size ARE/AAE are normalized to CM-Sketch (Fig. 10)
// and flow-size-distribution WMRE to MRAC (Fig. 11).
#include <iostream>

#include "bench_common.h"
#include "controlplane/em.h"
#include "sketch/cm_sketch.h"
#include "sketch/fss_sketch.h"
#include "sketch/mrac.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  const std::size_t memory = bench::scaled_memory(1'500'000, scale);
  std::printf("Figures 10/11: k vs traffic skewness (memory %zu bytes)\n\n", memory);

  const std::vector<std::size_t> ks{4, 8, 16, 32};
  std::vector<std::string> columns{"alpha", "CM/MRAC"};
  for (const std::size_t k : ks) columns.push_back("FCM" + std::to_string(k));
  for (const std::size_t k : ks) columns.push_back("FCM" + std::to_string(k) + "+TopK");
  columns.push_back("FSS");  // Filtered Space-Saving baseline (ARE/AAE only)

  metrics::Table are_table("fig10a_normalized_are", columns);
  metrics::Table aae_table("fig10b_normalized_aae", columns);
  metrics::Table wmre_table("fig11_normalized_wmre", columns);

  control::EmConfig em;
  em.max_iterations = 6;

  for (const double alpha : {1.1, 1.3, 1.5, 1.7}) {
    bench::Workload workload = bench::zipf_workload(alpha, scale, cli.seed);
    const auto& truth = workload.truth;
    const auto true_fsd = truth.flow_size_distribution();

    sketch::CmSketch cm = sketch::CmSketch::for_memory(memory, 3);
    sketch::Mrac mrac = sketch::Mrac::for_memory(memory);
    sketch::FssSketch fss = sketch::FssSketch::for_memory(memory);
    for (const flow::Packet& p : workload.trace.packets()) {
      cm.update(p.key);
      mrac.update(p.key);
      fss.update(p.key);
    }
    const auto cm_err = metrics::evaluate_sizes(cm, truth);
    const double mrac_wmre =
        control::EmFsdEstimator({control::from_plain_counters(mrac.counters())}, em)
            .run()
            .wmre(true_fsd);

    std::vector<std::string> are_row{metrics::Table::fmt(alpha, 1), "1.000"};
    std::vector<std::string> aae_row = are_row;
    std::vector<std::string> wmre_row = are_row;

    const auto add_variant = [&](bool with_topk) {
      for (const std::size_t k : ks) {
        metrics::SizeErrors err;
        double wmre = 0.0;
        if (with_topk) {
          core::FcmTopK topk(bench::fcm_topk_config(memory, k));
          for (const flow::Packet& p : workload.trace.packets()) topk.update(p.key);
          err = metrics::size_errors(
              truth.flow_sizes(), [&](flow::FlowKey key) { return topk.query(key); });
          auto fsd =
              control::EmFsdEstimator(control::convert_sketch(topk.sketch()), em).run();
          for (const auto& [key, count] : topk.topk_flows()) {
            fsd.add_flows(static_cast<std::size_t>(topk.query(key)), 1.0);
          }
          wmre = fsd.wmre(true_fsd);
        } else {
          core::FcmSketch fcm(bench::fcm_config(memory, k));
          for (const flow::Packet& p : workload.trace.packets()) fcm.update(p.key);
          err = metrics::size_errors(
              truth.flow_sizes(), [&](flow::FlowKey key) { return fcm.query(key); });
          wmre = control::EmFsdEstimator(control::convert_sketch(fcm), em)
                     .run()
                     .wmre(true_fsd);
        }
        are_row.push_back(metrics::Table::fmt(err.are / cm_err.are, 3));
        aae_row.push_back(metrics::Table::fmt(err.aae / cm_err.aae, 3));
        wmre_row.push_back(metrics::Table::fmt(wmre / mrac_wmre, 3));
      }
    };
    add_variant(false);
    add_variant(true);

    // FSS tracks a bounded monitored list, not an FSD-decodable counter
    // array: ARE/AAE are well-defined (query() never underestimates via the
    // filter bound), WMRE is not — the column stays "-" in fig 11.
    const auto fss_err = metrics::evaluate_sizes(fss, truth);
    are_row.push_back(metrics::Table::fmt(fss_err.are / cm_err.are, 3));
    aae_row.push_back(metrics::Table::fmt(fss_err.aae / cm_err.aae, 3));
    wmre_row.push_back("-");

    are_table.add_row(std::move(are_row));
    aae_table.add_row(std::move(aae_row));
    wmre_table.add_row(std::move(wmre_row));
  }

  are_table.print(std::cout);
  aae_table.print(std::cout);
  wmre_table.print(std::cout);
  std::puts("expectation: FCM entries < 1 (FCM variants beat CM / MRAC);\n"
            "for plain FCM, k=32 degrades at mid skews; FCM+TopK stays flat.\n"
            "FSS is the list-based contrast: strong at high skew (elephants\n"
            "monitored exactly), weak on the mouse-heavy tail at low skew.");
  cli.finish();
  return 0;
}
