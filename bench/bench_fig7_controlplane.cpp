// Figure 7: control-plane query accuracy vs the k-ary tree parameter.
//   7a flow size distribution WMRE: FCM, FCM+TopK vs MRAC.
//   7b entropy RE: FCM, FCM+TopK vs MRAC.
// All three recover the distribution with the same EM engine.
#include <iostream>

#include "bench_common.h"
#include "controlplane/em.h"
#include "sketch/mrac.h"

using namespace fcm;

namespace {

// FCM+TopK control-plane estimate: EM over the sketch plus the filter's
// exact flows (§6).
control::FlowSizeDistribution topk_fsd(const core::FcmTopK& topk,
                                       const control::EmConfig& em) {
  auto fsd = control::EmFsdEstimator(control::convert_sketch(topk.sketch()), em).run();
  for (const auto& [key, count] : topk.topk_flows()) {
    fsd.add_flows(static_cast<std::size_t>(topk.query(key)), 1.0);
  }
  return fsd;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'500'000, scale);
  bench::print_preamble("Figure 7: control-plane accuracy vs k", workload, memory);

  const auto true_fsd = workload.truth.flow_size_distribution();
  const double true_entropy = workload.truth.entropy();

  control::EmConfig em;
  em.max_iterations = 8;

  // MRAC baseline (k-independent): one counter array plus the same EM.
  sketch::Mrac mrac = sketch::Mrac::for_memory(memory);
  for (const flow::Packet& p : workload.trace.packets()) mrac.update(p.key);
  const auto mrac_fsd =
      control::EmFsdEstimator({control::from_plain_counters(mrac.counters())}, em)
          .run();
  const double mrac_wmre = mrac_fsd.wmre(true_fsd);
  const double mrac_entropy_re =
      metrics::relative_error(mrac_fsd.entropy(), true_entropy);

  metrics::Table fsd_table("fig7a_fsd_wmre",
                           {"k", "FCM", "FCM+TopK", "MRAC"});
  metrics::Table entropy_table("fig7b_entropy_re",
                               {"k", "FCM", "FCM+TopK", "MRAC"});

  for (const std::size_t k : {2, 4, 8, 16, 32}) {
    core::FcmSketch fcm(bench::fcm_config(memory, k));
    core::FcmTopK topk(bench::fcm_topk_config(memory, k));
    for (const flow::Packet& p : workload.trace.packets()) {
      fcm.update(p.key);
      topk.update(p.key);
    }
    const auto fcm_fsd =
        control::EmFsdEstimator(control::convert_sketch(fcm), em).run();
    const auto topk_dist = topk_fsd(topk, em);

    fsd_table.add_row({std::to_string(k),
                       metrics::Table::fmt(fcm_fsd.wmre(true_fsd), 4),
                       metrics::Table::fmt(topk_dist.wmre(true_fsd), 4),
                       metrics::Table::fmt(mrac_wmre, 4)});
    entropy_table.add_row(
        {std::to_string(k),
         metrics::Table::sci(metrics::relative_error(fcm_fsd.entropy(), true_entropy)),
         metrics::Table::sci(metrics::relative_error(topk_dist.entropy(), true_entropy)),
         metrics::Table::sci(mrac_entropy_re)});
  }

  fsd_table.print(std::cout);
  entropy_table.print(std::cout);
  cli.finish();
  return 0;
}
