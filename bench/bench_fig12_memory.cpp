// Figure 12: accuracy of five measurement tasks vs memory (0.5–2.5 MB),
// comparing FCM and FCM+TopK against ElasticSketch and UnivMon.
//   12a ARE / 12b AAE of flow size (FCM, FCM+TopK, Elastic)
//   12c heavy-hitter F1 (all four)
//   12d cardinality RE (all four)
//   12e FSD WMRE (FCM, FCM+TopK, Elastic)
//   12f entropy RE (all four)
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "controlplane/em.h"
#include "sketch/elastic_sketch.h"
#include "sketch/univmon.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  bench::print_preamble("Figure 12: five tasks vs memory", workload, 0);
  const auto& truth = workload.truth;
  const auto true_fsd = truth.flow_size_distribution();
  const double true_entropy = truth.entropy();
  const double true_card = static_cast<double>(truth.flow_count());
  const auto true_heavy = truth.heavy_hitters(workload.hh_threshold);

  control::EmConfig em;
  em.max_iterations = 6;

  metrics::Table are_table("fig12a_are", {"MB", "FCM", "FCM+TopK", "Elastic"});
  metrics::Table aae_table("fig12b_aae", {"MB", "FCM", "FCM+TopK", "Elastic"});
  metrics::Table hh_table("fig12c_hh_f1",
                          {"MB", "FCM", "FCM+TopK", "Elastic", "UnivMon"});
  metrics::Table card_table("fig12d_cardinality_re",
                            {"MB", "FCM", "FCM+TopK", "Elastic", "UnivMon"});
  metrics::Table wmre_table("fig12e_fsd_wmre", {"MB", "FCM", "FCM+TopK", "Elastic"});
  metrics::Table entropy_table("fig12f_entropy_re",
                               {"MB", "FCM", "FCM+TopK", "Elastic", "UnivMon"});

  for (const double mb : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    const auto memory =
        bench::scaled_memory(static_cast<std::size_t>(mb * 1'000'000), scale);
    const std::string label = metrics::Table::fmt(mb, 1);

    // --- FCM (8-ary) and FCM+TopK (16-ary), the §7.5 configurations ------
    core::FcmSketch fcm(bench::fcm_config(memory, 8));
    core::FcmTopK topk(bench::fcm_topk_config(memory, 16));
    fcm.set_heavy_hitter_threshold(workload.hh_threshold);
    topk.set_heavy_hitter_threshold(workload.hh_threshold);

    // ElasticSketch (§7.2: 4 levels x 8K entries per 1.5 MB) and UnivMon
    // (16 levels, 2K heaps per 1.5 MB), with the fixed tables scaled to the
    // experiment's load factor.
    sketch::ElasticSketch::Config elastic_config;
    elastic_config.entries_per_level =
        bench::scaled_entries(8192, 1'500'000, memory);
    const std::size_t elastic_heavy_bytes =
        elastic_config.heavy_levels * elastic_config.entries_per_level * 8;
    elastic_config.light_counters =
        memory > elastic_heavy_bytes ? memory - elastic_heavy_bytes : 4096;
    sketch::ElasticSketch elastic(elastic_config);

    sketch::UnivMon::Config univmon_config;
    univmon_config.heap_capacity = bench::scaled_entries(2048, 1'500'000, memory);
    const std::size_t heap_bytes =
        univmon_config.levels * univmon_config.heap_capacity * 12;
    univmon_config.cs_width = std::max<std::size_t>(
        64, (memory > heap_bytes ? memory - heap_bytes : memory / 2) /
                (univmon_config.levels * univmon_config.cs_depth * 4));
    sketch::UnivMon univmon(univmon_config);
    for (const flow::Packet& p : workload.trace.packets()) {
      fcm.update(p.key);
      topk.update(p.key);
      elastic.update(p.key);
      univmon.update(p.key);
    }

    const auto fcm_err = metrics::size_errors(
        truth.flow_sizes(), [&](flow::FlowKey key) { return fcm.query(key); });
    const auto topk_err = metrics::size_errors(
        truth.flow_sizes(), [&](flow::FlowKey key) { return topk.query(key); });
    const auto elastic_err = metrics::evaluate_sizes(elastic, truth);
    are_table.add_row({label, metrics::Table::fmt(fcm_err.are),
                       metrics::Table::fmt(topk_err.are),
                       metrics::Table::fmt(elastic_err.are)});
    aae_table.add_row({label, metrics::Table::fmt(fcm_err.aae),
                       metrics::Table::fmt(topk_err.aae),
                       metrics::Table::fmt(elastic_err.aae)});

    // Heavy hitters.
    const auto fcm_heavy = fcm.heavy_hitters();
    const auto f1 = [&](const std::vector<flow::FlowKey>& reported) {
      return metrics::classification_scores(reported, true_heavy).f1;
    };
    hh_table.add_row(
        {label,
         metrics::Table::fmt(
             f1({fcm_heavy.begin(), fcm_heavy.end()}), 4),
         metrics::Table::fmt(f1(topk.heavy_hitters(workload.hh_threshold)), 4),
         metrics::Table::fmt(
             f1(metrics::heavy_hitters_by_query(elastic, truth, workload.hh_threshold)), 4),
         metrics::Table::fmt(f1(univmon.heavy_hitters(workload.hh_threshold)), 4)});

    // Cardinality. ElasticSketch estimates it from its parts: heavy-part
    // flow count plus linear counting over the light part's empty cells.
    std::size_t light_nonzero = 0;
    for (const auto cell : elastic.light_counters()) {
      if (cell != 0) ++light_nonzero;
    }
    const double w = static_cast<double>(elastic.light_counters().size());
    const double zeros = std::max(0.5, w - static_cast<double>(light_nonzero));
    const double elastic_card =
        -w * std::log(zeros / w) + static_cast<double>(elastic.heavy_flows().size());
    card_table.add_row(
        {label,
         metrics::Table::sci(
             metrics::relative_error(fcm.estimate_cardinality(), true_card)),
         metrics::Table::sci(
             metrics::relative_error(topk.estimate_cardinality(), true_card)),
         metrics::Table::sci(metrics::relative_error(elastic_card, true_card)),
         metrics::Table::sci(
             metrics::relative_error(univmon.estimate_cardinality(), true_card))});

    // FSD + entropy.
    const auto fcm_fsd =
        control::EmFsdEstimator(control::convert_sketch(fcm), em).run();
    auto topk_fsd =
        control::EmFsdEstimator(control::convert_sketch(topk.sketch()), em).run();
    for (const auto& [key, count] : topk.topk_flows()) {
      topk_fsd.add_flows(static_cast<std::size_t>(topk.query(key)), 1.0);
    }
    auto elastic_fsd =
        control::EmFsdEstimator(
            {control::from_plain_counters_u8(elastic.light_counters())}, em)
            .run();
    for (const auto& [key, count] : elastic.heavy_flows()) {
      elastic_fsd.add_flows(static_cast<std::size_t>(elastic.query(key)), 1.0);
    }
    wmre_table.add_row({label, metrics::Table::fmt(fcm_fsd.wmre(true_fsd), 4),
                        metrics::Table::fmt(topk_fsd.wmre(true_fsd), 4),
                        metrics::Table::fmt(elastic_fsd.wmre(true_fsd), 4)});
    entropy_table.add_row(
        {label,
         metrics::Table::sci(metrics::relative_error(fcm_fsd.entropy(), true_entropy)),
         metrics::Table::sci(metrics::relative_error(topk_fsd.entropy(), true_entropy)),
         metrics::Table::sci(
             metrics::relative_error(elastic_fsd.entropy(), true_entropy)),
         metrics::Table::sci(
             metrics::relative_error(univmon.estimate_entropy(), true_entropy))});
  }

  are_table.print(std::cout);
  aae_table.print(std::cout);
  hh_table.print(std::cout);
  card_table.print(std::cout);
  wmre_table.print(std::cout);
  entropy_table.print(std::cout);
  std::puts("expectation: FCM+TopK best overall; FCM beats Elastic on flow\n"
            "size and cardinality; UnivMon trails on every task.");
  cli.finish();
  return 0;
}
