// CM(d)+TopK: the paper's hardware emulation of ElasticSketch (§8.2.2) —
// a single-level hardware TopK filter in front of d arrays of 8-bit
// saturating registers. Lives in bench/ because it exists purely as the
// Figure 14 comparison point.
#pragma once

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "pisa/hardware_topk.h"

namespace fcm::bench {

class HwCmTopK {
 public:
  HwCmTopK(std::size_t depth, std::size_t counters_per_array,
           std::size_t topk_entries, std::uint64_t seed = 0xcafe)
      : filter_(topk_entries, 32, common::mix64(seed)) {
    for (std::size_t d = 0; d < depth; ++d) {
      hashes_.push_back(common::make_hash(seed, static_cast<std::uint32_t>(d)));
      rows_.emplace_back(counters_per_array, std::uint8_t{0});
    }
  }

  // Splits `memory` as in §8.2.2: 16K filter entries, the rest split over d
  // 8-bit register arrays.
  static HwCmTopK for_memory(std::size_t memory, std::size_t depth,
                             std::size_t topk_entries = 16384,
                             std::uint64_t seed = 0xcafe) {
    const std::size_t register_bytes = memory - topk_entries * 8;
    return HwCmTopK(depth, register_bytes / depth, topk_entries, seed);
  }

  void update(flow::FlowKey key) {
    const auto offer = filter_.offer(key);
    switch (offer.outcome) {
      case sketch::TopKFilter::Offer::Outcome::kKept:
        return;
      case sketch::TopKFilter::Offer::Outcome::kPassThrough:
        add(key, 1);
        return;
      case sketch::TopKFilter::Offer::Outcome::kEvicted:
        add(offer.evicted_key, offer.evicted_count);
        return;
    }
  }

  std::uint64_t query(flow::FlowKey key) const {
    if (const auto hit = filter_.query(key)) {
      return hit->has_light_part ? hit->count + cm_query(key) : hit->count;
    }
    return cm_query(key);
  }

 private:
  void add(flow::FlowKey key, std::uint64_t count) {
    for (std::size_t d = 0; d < rows_.size(); ++d) {
      auto& cell = rows_[d][hashes_[d].index(key, rows_[d].size())];
      // 8-bit saturating registers: the overflow loss the paper highlights.
      cell = static_cast<std::uint8_t>(
          std::min<std::uint64_t>(cell + count, 255));
    }
  }

  std::uint64_t cm_query(flow::FlowKey key) const {
    std::uint64_t result = 255;
    for (std::size_t d = 0; d < rows_.size(); ++d) {
      result = std::min<std::uint64_t>(
          result, rows_[d][hashes_[d].index(key, rows_[d].size())]);
    }
    return result;
  }

  pisa::HardwareTopKFilter filter_;
  std::vector<common::SeededHash> hashes_;
  std::vector<std::vector<std::uint8_t>> rows_;
};

}  // namespace fcm::bench
