// Latency study for the network-wide aggregation service (DESIGN.md §11).
//
// Measures, over many epochs of N simulated vantage points:
//   - deliver latency: one snapshot's full service-side cost (header
//     validation, deserialize, merge into the pending epoch, and — for the
//     completing snapshot — view derivation + publish), sampled per call;
//   - query latency: a reader pinning the current view and answering a
//     burst of flow-size lookups, sampled concurrently with ingest, which
//     is exactly the contention the snapshot-isolated plane promises to
//     avoid.
//
// p50/p99 of both go to BENCH_agg.json (schema fcm.bench.agg.v1) together
// with the serialized snapshot size. Absolute latencies are machine-bound;
// the snapshot byte count is deterministic for a given seed and
// configuration, so tools/check_perf_baseline.py pins it exactly (a drift
// means the wire format or the bench configuration changed — re-record the
// baseline deliberately) and treats the latency columns as a soft guard.
//
// Flags: --seed=N     trace seed (default 1)
//        --json=PATH  output path (default BENCH_agg.json in the CWD)
//        --metrics-json=PATH  export a fcm.metrics.v1 snapshot on exit
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "agg/agg_service.h"
#include "agg/wire.h"
#include "bench_common.h"
#include "flow/synthetic.h"
#include "framework/fcm_framework.h"

#ifndef FCM_GIT_REV
#define FCM_GIT_REV "unknown"
#endif

namespace {

using namespace fcm;

constexpr std::size_t kMemory = 600'000;  // paper-scale sketch (§8 setup)
constexpr std::size_t kVantages = 4;
constexpr std::uint64_t kEpochs = 32;
constexpr std::size_t kPacketsPerVantageEpoch = 1 << 15;
constexpr std::size_t kQueryBurst = 16;  // lookups per query sample

using clock_type = std::chrono::steady_clock;

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

framework::FcmFramework::Options reference_options(std::uint64_t seed) {
  framework::FcmFramework::Options options;
  options.fcm = core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32}, seed);
  options.heavy_hitter_threshold = 1'000;
  options.metrics = nullptr;  // timing runs uninstrumented
  return options;
}

struct LatencyStats {
  double p50 = 0.0;
  double p99 = 0.0;
  std::size_t samples = 0;

  static LatencyStats of(const std::vector<double>& seconds) {
    LatencyStats stats;
    stats.p50 = percentile(seconds, 0.50);
    stats.p99 = percentile(seconds, 0.99);
    stats.samples = seconds.size();
    return stats;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchCli cli = bench::BenchCli::parse(argc, argv);
  std::string json_path = "BENCH_agg.json";
  for (std::size_t i = 1; i < cli.forwarded.size(); ++i) {
    const std::string arg = cli.forwarded[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: bench_agg [--seed=N] [--json=PATH] "
                   "[--metrics-json=PATH]\n",
                   arg.c_str());
      return 2;
    }
  }

  agg::AggregationService::Options service_options;
  service_options.reference = reference_options(cli.seed);
  service_options.vantage_count = kVantages;
  service_options.retained_epochs = 4;
  service_options.metrics = nullptr;
  agg::AggregationService service(std::move(service_options));
  const framework::FcmFramework::Options vantage_options =
      service.vantage_options();

  // Per-vantage per-epoch traffic, generated and serialized OUTSIDE the
  // timed region: the service-side cost is what this bench isolates.
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = kPacketsPerVantageEpoch * kVantages * 2;
  trace_config.flow_count = 1 << 17;
  trace_config.seed = cli.seed;
  const flow::Trace trace =
      flow::SyntheticTraceGenerator(trace_config).generate();

  std::vector<flow::FlowKey> query_keys;
  for (std::size_t i = 0; i < kQueryBurst; ++i) {
    query_keys.push_back(trace.packets()[i * 97].key);
  }

  std::atomic<bool> stop{false};
  std::vector<double> query_seconds;
  std::thread reader([&service, &query_keys, &stop, &query_seconds] {
    std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto start = clock_type::now();
      const auto view = service.query_plane().current();
      if (view != nullptr) {
        for (const flow::FlowKey key : query_keys) {
          sink += view->network.flow_size(key);
        }
        query_seconds.push_back(
            std::chrono::duration<double>(clock_type::now() - start).count());
      }
    }
    // Keep the lookups observable.
    if (sink == 0xdeadbeef) std::printf("unlikely\n");
  });

  std::vector<double> deliver_seconds;
  std::size_t snapshot_bytes = 0;
  std::size_t packet_cursor = 0;
  for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    // Build this epoch's N snapshots (untimed)...
    std::vector<agg::SnapshotEnvelope> envelopes;
    for (std::uint32_t v = 0; v < kVantages; ++v) {
      framework::FcmFramework fw(vantage_options);
      for (std::size_t i = 0; i < kPacketsPerVantageEpoch; ++i) {
        fw.process(trace.packets()[packet_cursor].key);
        packet_cursor = (packet_cursor + 1) % trace.size();
      }
      agg::SnapshotEnvelope envelope;
      envelope.vantage_id = v;
      envelope.epoch = epoch;
      envelope.payload = agg::WireCodec::serialize(fw);
      if (snapshot_bytes == 0) snapshot_bytes = envelope.payload.size();
      envelopes.push_back(std::move(envelope));
    }
    // ...then time each delivery (the last one also derives + publishes the
    // network view, so the tail of this distribution IS the publish cost).
    for (auto& envelope : envelopes) {
      const auto start = clock_type::now();
      const agg::DeliveryStatus status = service.deliver(std::move(envelope));
      deliver_seconds.push_back(
          std::chrono::duration<double>(clock_type::now() - start).count());
      if (status != agg::DeliveryStatus::kAccepted) {
        std::fprintf(stderr, "bench_agg: unexpected delivery status %s\n",
                     agg::to_string(status));
        return 1;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const LatencyStats deliver = LatencyStats::of(deliver_seconds);
  const LatencyStats query = LatencyStats::of(query_seconds);

  std::printf("aggregation service latency (%zu vantages, %llu epochs, "
              "%zu-byte snapshots)\n",
              kVantages, static_cast<unsigned long long>(kEpochs),
              snapshot_bytes);
  std::printf("%-28s %12s %12s %10s\n", "path", "p50 us", "p99 us", "samples");
  std::printf("%-28s %12.1f %12.1f %10zu\n", "deliver (deser+merge+pub)",
              deliver.p50 * 1e6, deliver.p99 * 1e6, deliver.samples);
  std::printf("%-28s %12.1f %12.1f %10zu\n", "query (pin + 16 lookups)",
              query.p50 * 1e6, query.p99 * 1e6, query.samples);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_agg: cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"aggregation_service_latency\",\n";
  out << "  \"schema\": \"fcm.bench.agg.v1\",\n";
  out << "  \"seed\": " << cli.seed << ",\n";
  out << "  \"vantage_count\": " << kVantages << ",\n";
  out << "  \"epochs\": " << kEpochs << ",\n";
  out << "  \"packets_per_vantage_epoch\": " << kPacketsPerVantageEpoch
      << ",\n";
  out << "  \"snapshot_bytes\": " << snapshot_bytes << ",\n";
  out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"git_rev\": \"" << FCM_GIT_REV << "\",\n";
  out << "  \"deliver\": {\"p50_seconds\": " << deliver.p50
      << ", \"p99_seconds\": " << deliver.p99
      << ", \"samples\": " << deliver.samples << "},\n";
  out << "  \"query\": {\"p50_seconds\": " << query.p50
      << ", \"p99_seconds\": " << query.p99
      << ", \"samples\": " << query.samples << "}\n";
  out << "}\n";
  std::printf("wrote %s\n", json_path.c_str());

  cli.finish();
  return 0;
}
