// Tables 4 and 5: hardware resource utilization on the modeled Tofino pipe.
//   Table 4: FCM-Sketch and FCM+TopK at 1.3 MB vs the published switch.p4
//            numbers, plus the extra resources for data-plane cardinality
//            (TCAM lookup table, §8.3 / Appendix C).
//   Table 5: stages and stateful ALUs vs published figures for SketchLearn,
//            QPipe and SpreadSketch.
#include <iostream>

#include "bench_common.h"
#include "metrics/table.h"
#include "pisa/resources.h"
#include "pisa/tcam_cardinality.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const pisa::PipelineBudget budget;
  const core::FcmConfig config =
      core::FcmConfig::for_memory(1'300'000, 2, 8, {8, 16, 32});
  const auto fcm = pisa::fcm_usage(config, budget);
  const auto fcm_topk = pisa::fcm_topk_usage(config, 16384, budget);
  const auto switch_p4 = pisa::switch_p4_published();

  std::puts("Tables 4/5: modeled resource consumption (paper values in EXPERIMENTS.md)\n");

  metrics::Table table4("table4_resource_utilization",
                        {"resource", "switch.p4(published)", "FCM-Sketch", "FCM+TopK"});
  const auto pct = [](double v) { return metrics::Table::fmt(v, 2) + "%"; };
  table4.add_row({"SRAM", pct(switch_p4.sram_percent), pct(fcm.sram_percent(budget)),
                  pct(fcm_topk.sram_percent(budget))});
  table4.add_row({"Match Crossbar", pct(switch_p4.crossbar_percent),
                  pct(fcm.crossbar_percent(budget)),
                  pct(fcm_topk.crossbar_percent(budget))});
  table4.add_row({"TCAM", pct(switch_p4.tcam_percent), "0.00%", "0.00%"});
  table4.add_row({"Stateful ALUs", pct(switch_p4.salu_percent),
                  pct(fcm.salu_percent(budget)), pct(fcm_topk.salu_percent(budget))});
  table4.add_row({"Hash Bits", pct(switch_p4.hash_percent),
                  pct(fcm.hash_percent(budget)), pct(fcm_topk.hash_percent(budget))});
  table4.add_row({"VLIW Actions", pct(switch_p4.vliw_percent),
                  pct(fcm.vliw_percent(budget)), pct(fcm_topk.vliw_percent(budget))});
  table4.add_row({"Physical Stages", std::to_string(switch_p4.stages),
                  std::to_string(fcm.stages), std::to_string(fcm_topk.stages)});
  table4.print(std::cout);

  metrics::Table table5("table5_related_systems",
                        {"solution", "measurement", "stages", "stateful_ALUs"});
  table5.add_row({"FCM-Sketch", "Generic", std::to_string(fcm.stages),
                  pct(fcm.salu_percent(budget))});
  table5.add_row({"FCM+TopK", "Generic", std::to_string(fcm_topk.stages),
                  pct(fcm_topk.salu_percent(budget))});
  for (const auto& system : pisa::related_systems_published()) {
    const char* task = system.name == "QPipe" ? "Quantile"
                       : system.name == "SpreadSketch" ? "Superspreader"
                                                       : "Generic";
    table5.add_row({system.name + " (published)", task,
                    std::to_string(system.stages), pct(system.salu_percent)});
  }
  table5.print(std::cout);

  // §8.3: extra resources for the data-plane cardinality query.
  const pisa::TcamCardinalityTable tcam(config.leaf_count, 0.002);
  metrics::Table extra("table4_extra_cardinality_resources",
                       {"item", "value"});
  extra.add_row({"TCAM entries (sensitivity-spaced)", std::to_string(tcam.entry_count())});
  extra.add_row({"naive TCAM entries (one per w0)", std::to_string(tcam.full_table_size())});
  extra.add_row({"compression", metrics::Table::fmt(
      static_cast<double>(tcam.full_table_size()) / tcam.entry_count(), 1) + "x"});
  extra.add_row({"additional error bound", "0.2%"});
  extra.print(std::cout);
  cli.finish();
  return 0;
}
