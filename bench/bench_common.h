// Shared plumbing for the per-figure/table bench harnesses.
//
// Every harness reproduces one table or figure from the paper (see
// DESIGN.md §3). Traces and sketch memory are both scaled by FCM_SCALE
// (default 0.15) so the sketches operate at the paper's load factor; run
// with FCM_SCALE=full for the paper's exact 20M-packet / 1.5MB setup.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fcm/fcm_estimator.h"
#include "flow/synthetic.h"
#include "flow/trace_io.h"
#include "metrics/evaluator.h"
#include "metrics/table.h"
#include "obs/metrics_registry.h"

namespace fcm::bench {

// Shared CLI for every bench harness. All bench randomness flows through
// common/random.h (Xoshiro256 inside SyntheticTraceGenerator), keyed by one
// --seed so any figure can be reproduced bit-for-bit:
//   --seed=N             workload RNG seed (default 1)
//   --metrics-json=PATH  on exit, write a fcm.metrics.v1 snapshot of the
//                        global obs::MetricsRegistry to PATH
struct BenchCli {
  std::uint64_t seed = 1;
  std::string metrics_json;
  std::vector<char*> forwarded;  // argv[0] plus unrecognized arguments

  // Parses known flags, collecting unknown ones into `forwarded` for
  // harnesses (bench_throughput) that layer their own flags on top.
  static BenchCli parse(int argc, char** argv) {
    BenchCli cli;
    if (argc > 0) cli.forwarded.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--seed=", 0) == 0) {
        cli.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      } else if (arg.rfind("--metrics-json=", 0) == 0) {
        cli.metrics_json = arg.substr(15);
      } else {
        cli.forwarded.push_back(argv[i]);
      }
    }
    return cli;
  }

  // Strict variant for single-purpose harnesses: unknown flags are an error.
  static BenchCli parse_or_exit(int argc, char** argv) {
    BenchCli cli = parse(argc, argv);
    if (cli.forwarded.size() > 1) {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: %s [--seed=N] [--metrics-json=PATH]\n",
                   cli.forwarded[1], argc > 0 ? argv[0] : "bench");
      std::exit(2);
    }
    return cli;
  }

  // Call once at the end of main(): exports the process-wide metrics
  // snapshot if --metrics-json was requested.
  void finish() const {
    if (metrics_json.empty()) return;
    std::ofstream out(metrics_json);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", metrics_json.c_str());
      return;
    }
    out << obs::MetricsRegistry::global().snapshot().to_json();
    std::printf("wrote metrics snapshot to %s\n", metrics_json.c_str());
  }
};

struct Workload {
  flow::Trace trace;
  flow::GroundTruth truth;
  std::uint64_t hh_threshold;

  explicit Workload(flow::Trace t)
      : trace(std::move(t)), truth(trace),
        hh_threshold(metrics::heavy_hitter_threshold(truth)) {}
};

// A real capture (converted with flow::save_trace) can replace the
// synthetic CAIDA-like trace via the FCM_TRACE environment variable.
inline Workload caida_workload(double scale, std::uint64_t seed = 1) {
  if (auto trace = flow::load_trace_from_env()) {
    return Workload(std::move(*trace));
  }
  return Workload(flow::SyntheticTraceGenerator::caida_like(scale, seed));
}

inline Workload zipf_workload(double alpha, double scale, std::uint64_t seed = 1) {
  return Workload(flow::SyntheticTraceGenerator::zipf(alpha, scale, seed));
}

// Memory scaled with the trace so sketches run at the paper's load factor.
inline std::size_t scaled_memory(std::size_t paper_bytes, double scale) {
  return static_cast<std::size_t>(static_cast<double>(paper_bytes) * scale);
}

inline core::FcmConfig fcm_config(std::size_t memory, std::size_t k,
                                  std::size_t trees = 2,
                                  std::uint64_t seed = 0x5555aaaa) {
  return core::FcmConfig::for_memory(memory, trees, k, {8, 16, 32}, seed);
}

// Fixed-size tables (TopK filters, Elastic heavy parts, UnivMon heaps) keep
// the paper's entries-per-byte ratio when the whole experiment is scaled
// down, so every structure runs at the published load factor.
inline std::size_t scaled_entries(std::size_t paper_entries,
                                  std::size_t paper_memory, std::size_t memory) {
  const auto entries = static_cast<std::size_t>(
      static_cast<double>(paper_entries) * static_cast<double>(memory) /
      static_cast<double>(paper_memory));
  return std::max<std::size_t>(64, entries);
}

// The paper's FCM+TopK: 4K filter entries per 1.5 MB.
inline std::size_t auto_topk_entries(std::size_t memory) {
  return scaled_entries(4096, 1'500'000, memory);
}

inline core::FcmTopK::Config fcm_topk_config(std::size_t memory, std::size_t k,
                                             std::size_t topk_entries = 0,
                                             std::size_t trees = 2,
                                             std::uint64_t seed = 0x5555aaaa) {
  core::FcmTopK::Config config;
  config.topk_entries =
      topk_entries > 0 ? topk_entries : auto_topk_entries(memory);
  config.fcm = core::FcmConfig::for_memory(memory - config.topk_entries * 8,
                                           trees, k, {8, 16, 32}, seed);
  return config;
}

inline void print_preamble(const char* name, const Workload& workload,
                           std::size_t memory) {
  std::printf("%s\n", name);
  std::printf("workload: %zu packets, %zu flows, HH threshold %llu, memory %zu bytes\n\n",
              workload.trace.size(), workload.truth.flow_count(),
              static_cast<unsigned long long>(workload.hh_threshold), memory);
}

}  // namespace fcm::bench
