// Table 3: impact of the number of trees (2, 3, 4) on FCM (8-ary) and
// FCM+TopK (16-ary): flow size ARE/AAE, FSD WMRE, entropy RE, cardinality RE.
#include <iostream>

#include "bench_common.h"
#include "controlplane/em.h"

using namespace fcm;

namespace {

struct Row {
  double are, aae, wmre, entropy_re, card_re;
};

Row evaluate(const bench::Workload& workload, std::size_t memory,
             std::size_t trees, std::size_t k, bool with_topk) {
  const auto& truth = workload.truth;
  const auto true_fsd = truth.flow_size_distribution();
  control::EmConfig em;
  em.max_iterations = 8;

  Row row{};
  const double true_card = static_cast<double>(truth.flow_count());
  if (with_topk) {
    core::FcmTopK topk(bench::fcm_topk_config(memory, k, 4096, trees));
    for (const flow::Packet& p : workload.trace.packets()) topk.update(p.key);
    const auto err = metrics::size_errors(
        truth.flow_sizes(), [&](flow::FlowKey key) { return topk.query(key); });
    auto fsd =
        control::EmFsdEstimator(control::convert_sketch(topk.sketch()), em).run();
    for (const auto& [key, count] : topk.topk_flows()) {
      fsd.add_flows(static_cast<std::size_t>(topk.query(key)), 1.0);
    }
    row = {err.are, err.aae, fsd.wmre(true_fsd),
           metrics::relative_error(fsd.entropy(), truth.entropy()),
           metrics::relative_error(topk.estimate_cardinality(), true_card)};
  } else {
    core::FcmSketch fcm(bench::fcm_config(memory, k, trees));
    for (const flow::Packet& p : workload.trace.packets()) fcm.update(p.key);
    const auto err = metrics::size_errors(
        truth.flow_sizes(), [&](flow::FlowKey key) { return fcm.query(key); });
    const auto fsd =
        control::EmFsdEstimator(control::convert_sketch(fcm), em).run();
    row = {err.are, err.aae, fsd.wmre(true_fsd),
           metrics::relative_error(fsd.entropy(), truth.entropy()),
           metrics::relative_error(fcm.estimate_cardinality(), true_card)};
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'500'000, scale);
  bench::print_preamble("Table 3: number of trees", workload, memory);

  metrics::Table table("table3_tree_count",
                       {"metric", "FCM_2", "FCM_3", "FCM_4", "FCM+TopK_2",
                        "FCM+TopK_3", "FCM+TopK_4"});
  std::vector<Row> rows;
  for (const std::size_t trees : {2, 3, 4}) {
    rows.push_back(evaluate(workload, memory, trees, 8, false));
  }
  for (const std::size_t trees : {2, 3, 4}) {
    rows.push_back(evaluate(workload, memory, trees, 16, true));
  }

  const auto add_metric = [&](const std::string& name, auto getter, int precision) {
    std::vector<std::string> cells{name};
    for (const Row& row : rows) {
      cells.push_back(metrics::Table::fmt(getter(row), precision));
    }
    table.add_row(std::move(cells));
  };
  add_metric("flow_size_ARE", [](const Row& r) { return r.are; }, 3);
  add_metric("flow_size_AAE", [](const Row& r) { return r.aae; }, 3);
  add_metric("fsd_WMRE", [](const Row& r) { return r.wmre; }, 3);
  add_metric("entropy_RE", [](const Row& r) { return r.entropy_re; }, 4);
  add_metric("cardinality_RE", [](const Row& r) { return r.card_re; }, 4);
  table.print(std::cout);
  std::puts("expectation: more trees help flow-size accuracy but hurt\n"
            "FSD/entropy (fewer counters per tree), as in Table 3.");
  cli.finish();
  return 0;
}
