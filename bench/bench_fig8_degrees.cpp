// Figure 8: histogram of non-empty virtual counters per degree, for FCM and
// FCM+TopK across k-ary configurations, averaged over hash seeds. The
// exponential decay with degree is what makes the EM truncation heuristic
// cheap (§7.3.2).
#include <iostream>

#include "bench_common.h"
#include "controlplane/virtual_counter.h"

using namespace fcm;

namespace {

constexpr std::size_t kMaxDegree = 8;
constexpr int kSeeds = 5;  // the paper averages over 100 seeds

std::vector<double> average_histogram(const bench::Workload& workload,
                                      std::size_t memory, std::size_t k,
                                      bool with_topk) {
  std::vector<double> totals(kMaxDegree + 1, 0.0);
  int arrays_seen = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const std::uint64_t sketch_seed = 0x5555aaaa + seed * 977;
    std::vector<control::VirtualCounterArray> arrays;
    if (with_topk) {
      core::FcmTopK topk(
          bench::fcm_topk_config(memory, k, 0, 2, sketch_seed));
      for (const flow::Packet& p : workload.trace.packets()) topk.update(p.key);
      arrays = control::convert_sketch(topk.sketch());
    } else {
      core::FcmSketch fcm(bench::fcm_config(memory, k, 2, sketch_seed));
      for (const flow::Packet& p : workload.trace.packets()) fcm.update(p.key);
      arrays = control::convert_sketch(fcm);
    }
    for (const auto& array : arrays) {
      const auto histogram = array.degree_histogram();
      for (std::size_t d = 1; d < histogram.size() && d <= kMaxDegree; ++d) {
        totals[d] += static_cast<double>(histogram[d]);
      }
      ++arrays_seen;
    }
  }
  for (auto& v : totals) v /= static_cast<double>(arrays_seen);
  return totals;
}

void print_variant(const char* title, const bench::Workload& workload,
                   std::size_t memory, bool with_topk) {
  std::vector<std::string> columns{"degree"};
  for (const std::size_t k : {2, 4, 8, 16, 32}) {
    columns.push_back(std::to_string(k) + "-ary");
  }
  metrics::Table table(title, columns);
  std::vector<std::vector<double>> histograms;
  for (const std::size_t k : {2, 4, 8, 16, 32}) {
    histograms.push_back(average_histogram(workload, memory, k, with_topk));
  }
  for (std::size_t degree = 1; degree <= kMaxDegree; ++degree) {
    std::vector<std::string> row{std::to_string(degree)};
    for (const auto& histogram : histograms) {
      row.push_back(metrics::Table::fmt(histogram[degree], 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale(0.05);  // 5 seeds x 5 k's: keep it light
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'500'000, scale);
  bench::print_preamble("Figure 8: non-empty virtual counters per degree",
                        workload, memory);
  print_variant("fig8_fcm_degree_histogram", workload, memory, false);
  print_variant("fig8_fcm_topk_degree_histogram", workload, memory, true);
  std::puts("expectation: counts decay roughly exponentially with degree;\n"
            "FCM+TopK has fewer high-degree counters than FCM.");
  cli.finish();
  return 0;
}
