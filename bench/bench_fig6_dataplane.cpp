// Figure 6: accuracy of data-plane queries vs the k-ary tree parameter.
//   6a ARE / 6b AAE of flow size: FCM, FCM+TopK vs CM, CU, PCM.
//   6c heavy-hitter F1: FCM, FCM+TopK vs HashPipe.
//   6d cardinality RE: FCM, FCM+TopK vs HLL.
// CAIDA-like trace, fixed 1.5 MB (scaled by FCM_SCALE).
#include <iostream>

#include "bench_common.h"
#include "sketch/cardinality.h"
#include "sketch/cm_sketch.h"
#include "sketch/hashpipe.h"
#include "sketch/pyramid_sketch.h"

using namespace fcm;

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'500'000, scale);
  bench::print_preamble("Figure 6: data-plane query accuracy vs k", workload, memory);
  const auto& truth = workload.truth;

  // Baselines (k-independent).
  sketch::CmSketch cm = sketch::CmSketch::for_memory(memory, 3);
  sketch::CuSketch cu = sketch::CuSketch::for_memory(memory, 3);
  sketch::PyramidCmSketch pcm = sketch::PyramidCmSketch::for_memory(memory, 4);
  sketch::HashPipe hashpipe = sketch::HashPipe::for_memory(memory, 6);
  sketch::HyperLogLog hll = sketch::HyperLogLog::for_memory(
      std::min<std::size_t>(memory, 1 << 16));
  for (const flow::Packet& p : workload.trace.packets()) {
    cm.update(p.key);
    cu.update(p.key);
    pcm.update(p.key);
    hashpipe.update(p.key);
    hll.update(p.key);
  }
  const auto cm_err = metrics::evaluate_sizes(cm, truth);
  const auto cu_err = metrics::evaluate_sizes(cu, truth);
  const auto pcm_err = metrics::evaluate_sizes(pcm, truth);

  const auto true_heavy = truth.heavy_hitters(workload.hh_threshold);
  const auto hp_reported =
      metrics::heavy_hitters_by_query(hashpipe, truth, workload.hh_threshold);
  const double hp_f1 =
      metrics::classification_scores(hp_reported, true_heavy).f1;
  const double true_card = static_cast<double>(truth.flow_count());
  const double hll_re = metrics::relative_error(hll.estimate(), true_card);

  // The paper plots 10–90% error bars; average FCM variants over hash seeds.
  constexpr int kSeeds = 3;
  metrics::Table size_table(
      "fig6ab_flow_size",
      {"k", "FCM_ARE(p10..p90)", "FCM+TopK_ARE", "CM_ARE", "CU_ARE", "PCM_ARE",
       "FCM_AAE", "FCM+TopK_AAE", "CM_AAE", "CU_AAE", "PCM_AAE"});
  metrics::Table hh_table("fig6c_heavy_hitter",
                          {"k", "FCM_F1", "FCM+TopK_F1", "HashPipe_F1"});
  metrics::Table card_table("fig6d_cardinality",
                            {"k", "FCM_RE", "FCM+TopK_RE", "HLL_RE"});

  for (const std::size_t k : {2, 4, 8, 16, 32}) {
    std::vector<double> fcm_ares, fcm_aaes, topk_ares, topk_aaes;
    std::vector<double> fcm_f1s, topk_f1s, fcm_cards, topk_cards;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const std::uint64_t sketch_seed = 0x5555aaaa + 7919u * seed;
      core::FcmSketch fcm(bench::fcm_config(memory, k, 2, sketch_seed));
      core::FcmTopK topk(bench::fcm_topk_config(memory, k, 0, 2, sketch_seed));
      fcm.set_heavy_hitter_threshold(workload.hh_threshold);
      topk.set_heavy_hitter_threshold(workload.hh_threshold);
      for (const flow::Packet& p : workload.trace.packets()) {
        fcm.update(p.key);
        topk.update(p.key);
      }
      const auto fcm_err = metrics::size_errors(
          truth.flow_sizes(), [&](flow::FlowKey key) { return fcm.query(key); });
      const auto topk_err = metrics::size_errors(
          truth.flow_sizes(), [&](flow::FlowKey key) { return topk.query(key); });
      fcm_ares.push_back(fcm_err.are);
      fcm_aaes.push_back(fcm_err.aae);
      topk_ares.push_back(topk_err.are);
      topk_aaes.push_back(topk_err.aae);
      const auto fcm_heavy = fcm.heavy_hitters();
      fcm_f1s.push_back(metrics::classification_scores(
                            std::vector<flow::FlowKey>(fcm_heavy.begin(),
                                                       fcm_heavy.end()),
                            true_heavy)
                            .f1);
      topk_f1s.push_back(
          metrics::classification_scores(
              topk.heavy_hitters(workload.hh_threshold), true_heavy)
              .f1);
      fcm_cards.push_back(
          metrics::relative_error(fcm.estimate_cardinality(), true_card));
      topk_cards.push_back(
          metrics::relative_error(topk.estimate_cardinality(), true_card));
    }

    const auto fcm_are = metrics::summarize(fcm_ares);
    size_table.add_row(
        {std::to_string(k),
         metrics::Table::fmt(fcm_are.mean) + " (" +
             metrics::Table::fmt(fcm_are.p10) + ".." +
             metrics::Table::fmt(fcm_are.p90) + ")",
         metrics::Table::fmt(metrics::summarize(topk_ares).mean),
         metrics::Table::fmt(cm_err.are), metrics::Table::fmt(cu_err.are),
         metrics::Table::fmt(pcm_err.are),
         metrics::Table::fmt(metrics::summarize(fcm_aaes).mean),
         metrics::Table::fmt(metrics::summarize(topk_aaes).mean),
         metrics::Table::fmt(cm_err.aae), metrics::Table::fmt(cu_err.aae),
         metrics::Table::fmt(pcm_err.aae)});

    hh_table.add_row({std::to_string(k),
                      metrics::Table::fmt(metrics::summarize(fcm_f1s).mean, 4),
                      metrics::Table::fmt(metrics::summarize(topk_f1s).mean, 4),
                      metrics::Table::fmt(hp_f1, 4)});
    card_table.add_row(
        {std::to_string(k),
         metrics::Table::sci(metrics::summarize(fcm_cards).mean),
         metrics::Table::sci(metrics::summarize(topk_cards).mean),
         metrics::Table::sci(hll_re)});
  }

  size_table.print(std::cout);
  hh_table.print(std::cout);
  card_table.print(std::cout);
  cli.finish();
  return 0;
}
