// Ablations of FCM-Sketch design choices called out in DESIGN.md §5.
//   A. Overflow-marker encoding (counting range 2^b-2) vs a dedicated flag
//      bit (counting range 2^(b-1)-1): same physical storage, the flag-bit
//      variant halves each stage's counting range — quantifies §3.1's
//      "efficient usage of bit-space" claim.
//   B. Byte-aligned (8/16/32) vs narrower (4/16/32) leaf counters at equal
//      memory: narrower leaves mean more counters but earlier overflow.
//   C. Depth: two stages (8/32) vs three (8/16/32) at equal memory.
#include <iostream>

#include "bench_common.h"
#include "controlplane/em.h"

using namespace fcm;

namespace {

struct Variant {
  std::string name;
  core::FcmConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchCli cli = bench::BenchCli::parse_or_exit(argc, argv);
  const double scale = metrics::bench_scale();
  bench::Workload workload = bench::caida_workload(scale, cli.seed);
  const std::size_t memory = bench::scaled_memory(1'500'000, scale);
  bench::print_preamble("Ablation: FCM design choices", workload, memory);
  const auto& truth = workload.truth;
  const auto true_fsd = truth.flow_size_distribution();
  control::EmConfig em;
  em.max_iterations = 6;

  // A flag-bit node with b physical bits counts with b-1 bits: emulate by a
  // config with bits-1 semantics but memory accounted at the physical width
  // (same leaf_count as the marker-encoded config).
  const core::FcmConfig marker = bench::fcm_config(memory, 8);
  core::FcmConfig flag_bit = marker;
  flag_bit.stage_bits = {7, 15, 31};

  std::vector<Variant> variants;
  variants.push_back({"marker_8/16/32 (paper)", marker});
  variants.push_back({"flag-bit_7/15/31", flag_bit});
  variants.push_back(
      {"narrow-leaf_4/16/32",
       core::FcmConfig::for_memory(memory, 2, 8, {4, 16, 32})});
  variants.push_back(
      {"two-stage_8/32", core::FcmConfig::for_memory(memory, 2, 8, {8, 32})});
  variants.push_back(
      {"four-stage_4/8/16/32",
       core::FcmConfig::for_memory(memory, 2, 8, {4, 8, 16, 32})});

  metrics::Table table("ablation_design_choices",
                       {"variant", "ARE", "AAE", "fsd_WMRE", "leaves/tree"});
  for (const Variant& variant : variants) {
    core::FcmSketch sketch(variant.config);
    for (const flow::Packet& p : workload.trace.packets()) sketch.update(p.key);
    const auto err = metrics::size_errors(
        truth.flow_sizes(), [&](flow::FlowKey key) { return sketch.query(key); });
    const auto fsd =
        control::EmFsdEstimator(control::convert_sketch(sketch), em).run();
    table.add_row({variant.name, metrics::Table::fmt(err.are),
                   metrics::Table::fmt(err.aae),
                   metrics::Table::fmt(fsd.wmre(true_fsd), 4),
                   std::to_string(variant.config.leaf_count)});
  }
  table.print(std::cout);
  std::puts("expectation: the paper's marker encoding beats the flag-bit\n"
            "variant at identical storage; 3 stages of 8/16/32 is the sweet\n"
            "spot for this trace profile.");
  cli.finish();
  return 0;
}
