// Fault-injecting soak for the aggregation service (DESIGN.md §11; CI runs
// this under TSan in the soak job with a hard ctest TIMEOUT). Injected
// faults, all concurrent with a pool of query-plane readers:
//   - a slow vantage that lags the others by a few milliseconds per epoch;
//   - a vantage dropped entirely partway through the run (the watchdog
//     must keep the query plane advancing with partial epochs);
//   - out-of-order epoch delivery (one vantage shuffles its send order
//     within a sliding window);
//   - duplicate and truncated deliveries sprinkled in (must be rejected,
//     never merged, never crash a reader).
// Readers continuously pin the current view and check internal consistency
// (epoch monotonicity, sorted vantage sets, heavy hitters that really
// clear the threshold on the frozen counters).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "agg/agg_service.h"
#include "agg/wire.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"
#include "property_harness.h"

namespace fcm {
namespace {

using agg::AggregationService;
using agg::DeliveryStatus;
using agg::SnapshotEnvelope;
using agg::WireCodec;
using proptest::random_keys;

constexpr std::uint64_t kSeed = 0x50a7;
constexpr std::size_t kVantages = 4;
constexpr std::uint64_t kEpochs = 24;
constexpr std::uint64_t kDropAfterEpoch = 8;  // vantage 3 dies after this
constexpr std::uint64_t kHeavyChangeThreshold = 50;

framework::FcmFramework::Options reference_options() {
  framework::FcmFramework::Options options;
  options.fcm = proptest::small_fcm_config(kSeed);
  options.heavy_hitter_threshold = 64;
  options.metrics = nullptr;
  return options;
}

// Deterministic per-(vantage, epoch) traffic slice.
std::vector<flow::FlowKey> slice(std::uint32_t vantage, std::uint64_t epoch) {
  return random_keys(kSeed + vantage * 1'000 + epoch, 2'000, 500);
}

SnapshotEnvelope snapshot_for(const framework::FcmFramework::Options& options,
                              std::uint32_t vantage, std::uint64_t epoch) {
  framework::FcmFramework fw(options);
  for (const flow::FlowKey key : slice(vantage, epoch)) fw.process(key);
  SnapshotEnvelope envelope;
  envelope.vantage_id = vantage;
  envelope.epoch = epoch;
  envelope.payload = WireCodec::serialize(fw);
  return envelope;
}

TEST(AggSoak, SurvivesSlowDroppedAndOutOfOrderVantages) {
  obs::MetricsRegistry registry;
  AggregationService::Options options;
  options.reference = reference_options();
  options.vantage_count = kVantages;
  options.retained_epochs = 4;
  options.max_pending_epochs = 3;  // watchdog trips while vantage 3 is gone
  options.heavy_change_threshold = kHeavyChangeThreshold;
  options.metrics = &registry;
  AggregationService service(options);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rejected_faults{0};

  // --- readers -------------------------------------------------------------
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&service, &stop] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto view = service.query_plane().current();
        if (view == nullptr) continue;
        // Epochs only move forward.
        ASSERT_GE(view->epoch, last_epoch);
        last_epoch = view->epoch;
        // The merged vantage set is sorted, unique, and within range.
        ASSERT_FALSE(view->vantages.empty());
        ASSERT_LE(view->vantages.size(), kVantages);
        ASSERT_TRUE(std::is_sorted(view->vantages.begin(),
                                   view->vantages.end()));
        ASSERT_LT(view->vantages.back(), kVantages);
        // Derived fields were frozen at publish: every reported heavy
        // hitter clears the threshold on the view's own counters.
        for (const flow::FlowKey hh : view->heavy_hitters) {
          ASSERT_GE(view->network.flow_size(hh), 64u);
        }
        ASSERT_GE(view->cardinality, 0.0);
      }
    });
  }

  // --- writers (one per vantage, each with its own fault) ------------------
  std::vector<std::thread> writers;
  for (std::uint32_t v = 0; v < kVantages; ++v) {
    writers.emplace_back([&service, &rejected_faults, v] {
      // ceil(T/N) candidate threshold — anything else is a fingerprint
      // mismatch and every delivery would bounce.
      const framework::FcmFramework::Options vantage_opts =
          service.vantage_options();
      // Vantage 0 delivers out of order: epochs shuffled within windows of
      // three, plus a duplicate and a truncated frame each window.
      const bool chaotic = v == 0;
      const bool slow = v == 2;
      const bool dropped = v == 3;

      std::vector<std::uint64_t> schedule;
      const std::uint64_t horizon = dropped ? kDropAfterEpoch : kEpochs;
      for (std::uint64_t e = 1; e <= horizon; ++e) schedule.push_back(e);
      if (chaotic) {
        for (std::size_t base = 0; base + 3 <= schedule.size(); base += 3) {
          std::swap(schedule[base], schedule[base + 2]);
        }
      }

      for (const std::uint64_t epoch : schedule) {
        if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(2));
        SnapshotEnvelope envelope = snapshot_for(vantage_opts, v, epoch);
        if (chaotic) {
          // Truncated duplicate first: must bounce as malformed.
          SnapshotEnvelope bad = envelope;
          bad.payload.resize(bad.payload.size() - 1);
          ASSERT_EQ(service.deliver(std::move(bad)),
                    DeliveryStatus::kRejectedMalformed);
          rejected_faults.fetch_add(1, std::memory_order_relaxed);
        }
        const SnapshotEnvelope replay = envelope;  // for the duplicate below
        const DeliveryStatus status = service.deliver(std::move(envelope));
        // Accepted normally; stale if the watchdog already advanced past
        // this epoch (expected for slow/out-of-order vantages).
        ASSERT_TRUE(status == DeliveryStatus::kAccepted ||
                    status == DeliveryStatus::kRejectedStale)
            << "vantage " << v << " epoch " << epoch << ": "
            << agg::to_string(status);
        if (chaotic && status == DeliveryStatus::kAccepted) {
          const DeliveryStatus dup = service.deliver(replay);
          ASSERT_TRUE(dup == DeliveryStatus::kRejectedDuplicate ||
                      dup == DeliveryStatus::kRejectedStale)
              << agg::to_string(dup);
          rejected_faults.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  service.finalize_all();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // The plane reached the end of the run despite the dropped vantage...
  const auto view = service.query_plane().current();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, kEpochs);
  EXPECT_TRUE(service.pending_epochs().empty());
  // ...the watchdog had to force partial epochs once vantage 3 vanished...
  EXPECT_GT(registry.counter("fcm_agg_forced_publishes_total").value(), 0u);
  // ...and the injected faults were all rejected, not merged.
  EXPECT_GT(rejected_faults.load(), 0u);
  const auto rejections =
      registry
          .counter("fcm_agg_snapshots_total",
                   {{"status", "rejected_malformed"}})
          .value() +
      registry
          .counter("fcm_agg_snapshots_total",
                   {{"status", "rejected_duplicate"}})
          .value() +
      registry
          .counter("fcm_agg_snapshots_total", {{"status", "rejected_stale"}})
          .value();
  EXPECT_GE(rejections, rejected_faults.load());

  // Deep invariants of the final published generation.
  view->network.check_invariants();
}

}  // namespace
}  // namespace fcm
