// Capture-ingest suite (DESIGN.md §12): happy paths for every supported
// container variant (classic pcap micro/nano in both byte orders, pcapng in
// both byte orders with IDB/EPB/SPB and if_tsresol), the L2-L4 parser's
// decode matrix, and the hostile-input battery mirroring test_wire.cpp —
// every-prefix truncation sweeps, corrupted magics/lengths, crafted headers
// with overlapping or zero lengths, and a seeded malformed-capture fuzzer.
// Nothing in here may crash or trip ASan/UBSan: damage surfaces only as
// PcapError, typed RecordOutcome/ParseOutcome values, and honest counters.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "datapath/capture_ingest.h"
#include "datapath/packet_parser.h"
#include "datapath/pcap_reader.h"
#include "flow/flow_key.h"
#include "obs/metrics_registry.h"

namespace fcm {
namespace {

using datapath::CaptureStats;
using datapath::DecodedCapture;
using datapath::ParsedPacket;
using datapath::ParseOutcome;
using datapath::PcapError;
using datapath::PcapReader;
using datapath::RawRecord;
using datapath::RecordOutcome;

// --- capture builders -------------------------------------------------------
// Byte-level writers: every test constructs its capture from raw bytes so a
// test can damage any individual field without fighting an encoder API.

using Bytes = std::vector<std::byte>;

void put8(Bytes& out, std::uint8_t v) { out.push_back(std::byte{v}); }

void put16(Bytes& out, std::uint16_t v, bool be) {
  if (be) {
    put8(out, static_cast<std::uint8_t>(v >> 8));
    put8(out, static_cast<std::uint8_t>(v));
  } else {
    put8(out, static_cast<std::uint8_t>(v));
    put8(out, static_cast<std::uint8_t>(v >> 8));
  }
}

void put32(Bytes& out, std::uint32_t v, bool be) {
  if (be) {
    put16(out, static_cast<std::uint16_t>(v >> 16), true);
    put16(out, static_cast<std::uint16_t>(v), true);
  } else {
    put16(out, static_cast<std::uint16_t>(v), false);
    put16(out, static_cast<std::uint16_t>(v >> 16), false);
  }
}

void append(Bytes& out, std::span<const std::byte> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void pad_to_4(Bytes& out) {
  while (out.size() % 4 != 0) put8(out, 0);
}

// Classic global header. The magic is written in the FILE's byte order, so a
// little-endian read of a big-endian file sees the swapped constant — exactly
// the sniffing rule the reader implements.
Bytes classic_header(bool be, bool nano, std::uint32_t snaplen = 0xffff,
                     std::uint32_t link_type = datapath::kLinkTypeEthernet) {
  Bytes out;
  put32(out, nano ? 0xa1b23c4d : 0xa1b2c3d4, be);
  put16(out, 2, be);   // version_major
  put16(out, 4, be);   // version_minor
  put32(out, 0, be);   // thiszone
  put32(out, 0, be);   // sigfigs
  put32(out, snaplen, be);
  put32(out, link_type, be);
  return out;
}

void classic_record(Bytes& out, bool be, std::uint32_t seconds,
                    std::uint32_t subsecond, std::span<const std::byte> data,
                    std::uint32_t capture_length, std::uint32_t original_length) {
  put32(out, seconds, be);
  put32(out, subsecond, be);
  put32(out, capture_length, be);
  put32(out, original_length, be);
  append(out, data);
}

void classic_record(Bytes& out, bool be, std::uint32_t seconds,
                    std::uint32_t subsecond, std::span<const std::byte> data) {
  const auto length = static_cast<std::uint32_t>(data.size());
  classic_record(out, be, seconds, subsecond, data, length, length);
}

// pcapng Section Header Block, no options (total length 28).
Bytes shb(bool be) {
  Bytes out;
  put32(out, 0x0A0D0D0A, be);  // byte palindrome either way
  put32(out, 28, be);
  put32(out, 0x1A2B3C4D, be);  // byte-order magic, file order
  put16(out, 1, be);           // major
  put16(out, 0, be);           // minor
  put32(out, 0xffffffff, be);  // section length -1 (unknown)
  put32(out, 0xffffffff, be);
  put32(out, 28, be);
  return out;
}

// Interface Description Block; tsresol < 0 means "no if_tsresol option".
Bytes idb(bool be, std::uint16_t link_type = datapath::kLinkTypeEthernet,
          std::uint32_t snaplen = 0, int tsresol = -1) {
  Bytes body;
  put16(body, link_type, be);
  put16(body, 0, be);  // reserved
  put32(body, snaplen, be);
  if (tsresol >= 0) {
    put16(body, 9, be);  // if_tsresol
    put16(body, 1, be);
    put8(body, static_cast<std::uint8_t>(tsresol));
    pad_to_4(body);
    put16(body, 0, be);  // opt_endofopt
    put16(body, 0, be);
  }
  Bytes out;
  const auto total = static_cast<std::uint32_t>(12 + body.size());
  put32(out, 1, be);
  put32(out, total, be);
  append(out, body);
  put32(out, total, be);
  return out;
}

Bytes epb(bool be, std::uint32_t interface_id, std::uint64_t ticks,
          std::span<const std::byte> data, std::uint32_t capture_length,
          std::uint32_t original_length) {
  Bytes body;
  put32(body, interface_id, be);
  put32(body, static_cast<std::uint32_t>(ticks >> 32), be);
  put32(body, static_cast<std::uint32_t>(ticks), be);
  put32(body, capture_length, be);
  put32(body, original_length, be);
  append(body, data);
  pad_to_4(body);
  Bytes out;
  const auto total = static_cast<std::uint32_t>(12 + body.size());
  put32(out, 6, be);
  put32(out, total, be);
  append(out, body);
  put32(out, total, be);
  return out;
}

Bytes epb(bool be, std::uint32_t interface_id, std::uint64_t ticks,
          std::span<const std::byte> data) {
  const auto length = static_cast<std::uint32_t>(data.size());
  return epb(be, interface_id, ticks, data, length, length);
}

Bytes spb(bool be, std::uint32_t original_length,
          std::span<const std::byte> data) {
  Bytes body;
  put32(body, original_length, be);
  append(body, data);
  pad_to_4(body);
  Bytes out;
  const auto total = static_cast<std::uint32_t>(12 + body.size());
  put32(out, 3, be);
  put32(out, total, be);
  append(out, body);
  put32(out, total, be);
  return out;
}

// --- packet builders --------------------------------------------------------
// Network headers are always big-endian regardless of the container's order.

Bytes tcp_header(std::uint16_t src_port, std::uint16_t dst_port,
                 std::uint8_t data_offset_words = 5) {
  Bytes out;
  put16(out, src_port, true);
  put16(out, dst_port, true);
  put32(out, 0, true);  // seq
  put32(out, 0, true);  // ack
  put8(out, static_cast<std::uint8_t>(data_offset_words << 4));
  put8(out, 0x10);      // flags: ACK
  put16(out, 0xffff, true);  // window
  put32(out, 0, true);  // checksum + urgent
  return out;
}

Bytes udp_header(std::uint16_t src_port, std::uint16_t dst_port,
                 std::uint16_t udp_length = 8) {
  Bytes out;
  put16(out, src_port, true);
  put16(out, dst_port, true);
  put16(out, udp_length, true);
  put16(out, 0, true);  // checksum
  return out;
}

struct Ipv4Options {
  std::uint8_t ihl_words = 5;
  int total_length = -1;  // -1 = header + payload
  std::uint16_t fragment = 0;  // flags/offset field, raw
  std::uint8_t version = 4;
};

Bytes ipv4_packet(std::uint32_t src_ip, std::uint32_t dst_ip,
                  std::uint8_t protocol, std::span<const std::byte> payload,
                  Ipv4Options options = {}) {
  Bytes out;
  put8(out, static_cast<std::uint8_t>((options.version << 4) |
                                      (options.ihl_words & 0x0f)));
  put8(out, 0);  // DSCP/ECN
  const std::size_t header_bytes = options.ihl_words * std::size_t{4};
  const std::uint16_t total =
      options.total_length >= 0
          ? static_cast<std::uint16_t>(options.total_length)
          : static_cast<std::uint16_t>(header_bytes + payload.size());
  put16(out, total, true);
  put16(out, 0x1234, true);  // identification
  put16(out, options.fragment, true);
  put8(out, 64);  // TTL
  put8(out, protocol);
  put16(out, 0, true);  // checksum (parser ignores)
  put32(out, src_ip, true);
  put32(out, dst_ip, true);
  for (std::size_t i = 20; i < header_bytes; ++i) put8(out, 0);  // options
  append(out, payload);
  return out;
}

Bytes ipv6_packet(std::uint8_t next_header, std::span<const std::byte> payload,
                  std::uint8_t src_low = 1, std::uint8_t dst_low = 2) {
  Bytes out;
  put32(out, 0x60000000, true);  // version 6
  put16(out, static_cast<std::uint16_t>(payload.size()), true);
  put8(out, next_header);
  put8(out, 64);  // hop limit
  for (int i = 0; i < 15; ++i) put8(out, 0x20);
  put8(out, src_low);
  for (int i = 0; i < 15; ++i) put8(out, 0x20);
  put8(out, dst_low);
  append(out, payload);
  return out;
}

Bytes ethernet_frame(std::uint16_t ether_type, std::span<const std::byte> payload,
                     int vlan_tags = 0) {
  Bytes out;
  for (int i = 0; i < 12; ++i) put8(out, static_cast<std::uint8_t>(i));  // MACs
  for (int i = 0; i < vlan_tags; ++i) {
    put16(out, 0x8100, true);
    put16(out, static_cast<std::uint16_t>(100 + i), true);
  }
  put16(out, ether_type, true);
  append(out, payload);
  return out;
}

Bytes tcp4_frame(std::uint32_t src_ip, std::uint32_t dst_ip,
                 std::uint16_t src_port, std::uint16_t dst_port) {
  const Bytes tcp = tcp_header(src_port, dst_port);
  return ethernet_frame(0x0800, ipv4_packet(src_ip, dst_ip, 6, tcp));
}

std::span<const std::byte> as_span(const Bytes& bytes) { return bytes; }

// Reads the whole capture, returning per-call outcomes until a terminal one.
struct ReadResult {
  std::vector<RawRecord> records;
  RecordOutcome end = RecordOutcome::kEndOfCapture;
};

ReadResult read_all(PcapReader& reader) {
  ReadResult result;
  RawRecord record;
  for (;;) {
    const RecordOutcome outcome = reader.next(record);
    if (outcome != RecordOutcome::kRecord) {
      result.end = outcome;
      return result;
    }
    result.records.push_back(record);
  }
}

// --- classic happy paths ----------------------------------------------------

class ClassicEndianness : public ::testing::TestWithParam<bool> {};

TEST_P(ClassicEndianness, MicrosecondCaptureRoundTrips) {
  const bool be = GetParam();
  Bytes capture = classic_header(be, /*nano=*/false);
  const Bytes frame_a = tcp4_frame(0x0a000001, 0x0a000002, 1234, 80);
  const Bytes frame_b = tcp4_frame(0x0a000003, 0x0a000004, 4321, 443);
  classic_record(capture, be, 100, 250'000, frame_a);
  classic_record(capture, be, 101, 1, frame_b);

  PcapReader reader(capture);
  EXPECT_FALSE(reader.is_pcapng());
  EXPECT_EQ(reader.big_endian(), be);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.end, RecordOutcome::kEndOfCapture);
  EXPECT_EQ(result.records[0].timestamp_ns, 100ull * 1'000'000'000 + 250'000'000);
  EXPECT_EQ(result.records[1].timestamp_ns, 101ull * 1'000'000'000 + 1'000);
  EXPECT_EQ(result.records[0].link_type, datapath::kLinkTypeEthernet);
  EXPECT_EQ(result.records[0].bytes.size(), frame_a.size());
  EXPECT_EQ(reader.stats().records, 2u);

  ParsedPacket parsed;
  ASSERT_EQ(parse_packet(result.records[0], parsed), ParseOutcome::kOk);
  EXPECT_EQ(parsed.tuple.src_ip, 0x0a000001u);
  EXPECT_EQ(parsed.tuple.dst_ip, 0x0a000002u);
  EXPECT_EQ(parsed.tuple.src_port, 1234);
  EXPECT_EQ(parsed.tuple.dst_port, 80);
  EXPECT_EQ(parsed.tuple.protocol, 6);
  EXPECT_EQ(parsed.ip_version, 4);
  EXPECT_EQ(parsed.tuple.source_key(), flow::FlowKey{0x0a000001});
}

TEST_P(ClassicEndianness, NanosecondMagicKeepsFullResolution) {
  const bool be = GetParam();
  Bytes capture = classic_header(be, /*nano=*/true);
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  classic_record(capture, be, 7, 999'999'999, frame);

  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].timestamp_ns, 7ull * 1'000'000'000 + 999'999'999);
}

INSTANTIATE_TEST_SUITE_P(BothOrders, ClassicEndianness,
                         ::testing::Values(false, true));

TEST(ClassicReader, SlicedCaptureReportsOriginalLength) {
  const bool be = false;
  Bytes capture = classic_header(be, false);
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  // Slice the frame to 32 captured bytes of a 1500-byte original.
  classic_record(capture, be, 1, 0, as_span(frame).subspan(0, 32), 32, 1500);
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].bytes.size(), 32u);
  EXPECT_EQ(result.records[0].original_length, 1500u);
}

// --- pcapng happy paths -----------------------------------------------------

class PcapngEndianness : public ::testing::TestWithParam<bool> {};

TEST_P(PcapngEndianness, EnhancedPacketsRoundTrip) {
  const bool be = GetParam();
  Bytes capture = shb(be);
  append(capture, idb(be));
  const Bytes frame_a = tcp4_frame(0xc0a80001, 0xc0a80002, 55555, 53);
  const Bytes frame_b = tcp4_frame(0xc0a80003, 0xc0a80004, 1, 2);
  // Default resolution is microseconds: ticks are usec.
  append(capture, epb(be, 0, 5'000'123, frame_a));
  append(capture, epb(be, 0, 5'000'124, frame_b));

  PcapReader reader(capture);
  EXPECT_TRUE(reader.is_pcapng());
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.end, RecordOutcome::kEndOfCapture);
  EXPECT_EQ(reader.big_endian(), be);
  EXPECT_EQ(result.records[0].timestamp_ns, 5'000'123ull * 1'000);
  EXPECT_EQ(result.records[0].link_type, datapath::kLinkTypeEthernet);

  ParsedPacket parsed;
  ASSERT_EQ(parse_packet(result.records[0], parsed), ParseOutcome::kOk);
  EXPECT_EQ(parsed.tuple.src_ip, 0xc0a80001u);
  EXPECT_EQ(parsed.tuple.dst_port, 53);
}

INSTANTIATE_TEST_SUITE_P(BothOrders, PcapngEndianness,
                         ::testing::Values(false, true));

TEST(PcapngReader, TsresolOptionsControlTimestampScale) {
  const bool be = false;
  // Power-of-ten nanoseconds (value 9) and power-of-two (2^-10 seconds).
  Bytes capture = shb(be);
  append(capture, idb(be, datapath::kLinkTypeEthernet, 0, /*tsresol=*/9));
  append(capture, idb(be, datapath::kLinkTypeEthernet, 0, /*tsresol=*/0x80 | 10));
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  append(capture, epb(be, 0, 1'234'567'890, frame));  // already nanoseconds
  append(capture, epb(be, 1, 1024, frame));           // 1024 ticks = 1 second

  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].timestamp_ns, 1'234'567'890u);
  EXPECT_EQ(result.records[1].timestamp_ns, 1'000'000'000u);
}

TEST(PcapngReader, SimplePacketBlockUsesInterfaceZero) {
  const bool be = false;
  Bytes capture = shb(be);
  append(capture, idb(be, datapath::kLinkTypeEthernet, /*snaplen=*/0));
  const Bytes frame = tcp4_frame(9, 8, 7, 6);
  append(capture, spb(be, static_cast<std::uint32_t>(frame.size()), frame));

  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].bytes.size(), frame.size());
  EXPECT_EQ(result.records[0].original_length, frame.size());
  EXPECT_EQ(result.records[0].timestamp_ns, 0u);  // SPBs carry no timestamp

  ParsedPacket parsed;
  ASSERT_EQ(parse_packet(result.records[0], parsed), ParseOutcome::kOk);
  EXPECT_EQ(parsed.tuple.src_ip, 9u);
}

TEST(PcapngReader, SimplePacketBlockClampsToInterfaceSnaplen) {
  const bool be = false;
  Bytes capture = shb(be);
  append(capture, idb(be, datapath::kLinkTypeEthernet, /*snaplen=*/16));
  const Bytes frame = tcp4_frame(9, 8, 7, 6);
  append(capture, spb(be, static_cast<std::uint32_t>(frame.size()), frame));
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].bytes.size(), 16u);
  EXPECT_EQ(result.records[0].original_length, frame.size());
}

TEST(PcapngReader, MultipleInterfacesCarryTheirOwnLinkTypes) {
  const bool be = true;
  Bytes capture = shb(be);
  append(capture, idb(be, datapath::kLinkTypeEthernet));
  append(capture, idb(be, datapath::kLinkTypeRawIp));
  const Bytes eth = tcp4_frame(1, 2, 3, 4);
  const Bytes raw = ipv4_packet(5, 6, 6, tcp_header(7, 8));
  append(capture, epb(be, 1, 0, raw));
  append(capture, epb(be, 0, 0, eth));

  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].link_type, datapath::kLinkTypeRawIp);
  EXPECT_EQ(result.records[1].link_type, datapath::kLinkTypeEthernet);
  ParsedPacket parsed;
  ASSERT_EQ(parse_packet(result.records[0], parsed), ParseOutcome::kOk);
  EXPECT_EQ(parsed.tuple.src_ip, 5u);
}

TEST(PcapngReader, UnknownBlocksAreSkippedAndCounted) {
  const bool be = false;
  Bytes capture = shb(be);
  append(capture, idb(be));
  // A Name Resolution Block (type 4) the reader has no use for.
  Bytes nrb;
  put32(nrb, 4, be);
  put32(nrb, 16, be);
  put32(nrb, 0, be);
  put32(nrb, 16, be);
  append(capture, nrb);
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  append(capture, epb(be, 0, 0, frame));

  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(reader.stats().blocks_skipped, 1u);
}

TEST(PcapngReader, NewSectionResetsInterfaceScope) {
  const bool be = false;
  Bytes capture = shb(be);
  append(capture, idb(be));
  append(capture, idb(be));
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  append(capture, epb(be, 1, 0, frame));  // valid: two interfaces in section 1
  append(capture, shb(be));               // new section: IDs reset
  append(capture, idb(be));
  append(capture, epb(be, 1, 0, frame));  // dangling ID in section 2
  append(capture, epb(be, 0, 0, frame));  // valid again

  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_EQ(reader.stats().malformed_skipped, 1u);
}

// --- parser decode matrix ---------------------------------------------------

RawRecord record_of(const Bytes& frame,
                    std::uint32_t link_type = datapath::kLinkTypeEthernet) {
  RawRecord record;
  record.bytes = frame;
  record.original_length = static_cast<std::uint32_t>(frame.size());
  record.link_type = link_type;
  return record;
}

TEST(PacketParser, VlanTagsUpToFourDeepAreUnwrapped) {
  for (int tags = 0; tags <= 4; ++tags) {
    const Bytes tcp = tcp_header(10, 20);
    const Bytes frame =
        ethernet_frame(0x0800, ipv4_packet(111, 222, 6, tcp), tags);
    ParsedPacket parsed;
    ASSERT_EQ(parse_packet(record_of(frame), parsed), ParseOutcome::kOk)
        << tags << " tags";
    EXPECT_EQ(parsed.tuple.src_ip, 111u);
    EXPECT_EQ(parsed.tuple.dst_port, 20);
  }
}

TEST(PacketParser, FiveVlanTagsIsATagBomb) {
  const Bytes tcp = tcp_header(10, 20);
  const Bytes frame = ethernet_frame(0x0800, ipv4_packet(1, 2, 6, tcp), 5);
  ParsedPacket parsed;
  EXPECT_EQ(parse_packet(record_of(frame), parsed), ParseOutcome::kBadIpHeader);
}

TEST(PacketParser, Ipv6UdpParsesThroughExtensionHeaders) {
  // hop-by-hop (8 bytes) -> destination options (8 bytes) -> UDP.
  Bytes extensions;
  put8(extensions, 60);  // next: destination options
  put8(extensions, 0);   // length 0 -> 8 bytes
  for (int i = 0; i < 6; ++i) put8(extensions, 0);
  put8(extensions, 17);  // next: UDP
  put8(extensions, 0);
  for (int i = 0; i < 6; ++i) put8(extensions, 0);
  append(extensions, udp_header(6000, 7000, 12));
  const Bytes frame = ethernet_frame(0x86DD, ipv6_packet(0, extensions, 0xaa, 0xbb));
  ParsedPacket parsed;
  ASSERT_EQ(parse_packet(record_of(frame), parsed), ParseOutcome::kOk);
  EXPECT_EQ(parsed.ip_version, 6);
  EXPECT_EQ(parsed.tuple.protocol, 17);
  EXPECT_EQ(parsed.tuple.src_port, 6000);
  EXPECT_EQ(parsed.tuple.dst_port, 7000);
  EXPECT_NE(parsed.tuple.src_ip, 0u);  // folded v6 addresses
  EXPECT_NE(parsed.tuple.src_ip, parsed.tuple.dst_ip);
}

TEST(PacketParser, Ipv6AddressFoldIsDeterministic) {
  const Bytes frame =
      ethernet_frame(0x86DD, ipv6_packet(17, udp_header(1, 2), 0x11, 0x22));
  ParsedPacket first;
  ParsedPacket second;
  ASSERT_EQ(parse_packet(record_of(frame), first), ParseOutcome::kOk);
  ASSERT_EQ(parse_packet(record_of(frame), second), ParseOutcome::kOk);
  EXPECT_EQ(first.tuple, second.tuple);
}

TEST(PacketParser, IcmpKeysOnAddressesAlone) {
  Bytes icmp;
  put8(icmp, 8);  // echo request
  put8(icmp, 0);
  put16(icmp, 0, true);
  const Bytes frame = ethernet_frame(0x0800, ipv4_packet(10, 20, 1, icmp));
  ParsedPacket parsed;
  ASSERT_EQ(parse_packet(record_of(frame), parsed), ParseOutcome::kOk);
  EXPECT_EQ(parsed.tuple.protocol, 1);
  EXPECT_EQ(parsed.tuple.src_port, 0);
  EXPECT_EQ(parsed.tuple.dst_port, 0);
}

TEST(PacketParser, ArpIsUnsupportedEtherTypeNotAnError) {
  Bytes arp(28, std::byte{0});
  const Bytes frame = ethernet_frame(0x0806, arp);
  ParsedPacket parsed;
  EXPECT_EQ(parse_packet(record_of(frame), parsed),
            ParseOutcome::kUnsupportedEtherType);
}

TEST(PacketParser, RawIpLinkTypeSniffsTheVersionNibble) {
  const Bytes v4 = ipv4_packet(1, 2, 6, tcp_header(3, 4));
  const Bytes v6 = ipv6_packet(17, udp_header(5, 6));
  ParsedPacket parsed;
  ASSERT_EQ(parse_packet(record_of(v4, datapath::kLinkTypeRawIp), parsed),
            ParseOutcome::kOk);
  EXPECT_EQ(parsed.ip_version, 4);
  ASSERT_EQ(parse_packet(record_of(v6, datapath::kLinkTypeRawIp), parsed),
            ParseOutcome::kOk);
  EXPECT_EQ(parsed.ip_version, 6);
  Bytes junk;
  put8(junk, 0x90);  // version nibble 9
  EXPECT_EQ(parse_packet(record_of(junk, datapath::kLinkTypeRawIp), parsed),
            ParseOutcome::kBadIpHeader);
}

TEST(PacketParser, NullLinkTypeAcceptsEitherFamilyByteOrder) {
  for (const bool swapped : {false, true}) {
    Bytes frame;
    put32(frame, 2, swapped);  // AF_INET in the capturing host's order
    append(frame, ipv4_packet(77, 88, 6, tcp_header(1, 2)));
    ParsedPacket parsed;
    ASSERT_EQ(parse_packet(record_of(frame, datapath::kLinkTypeNull), parsed),
              ParseOutcome::kOk)
        << (swapped ? "swapped" : "native");
    EXPECT_EQ(parsed.tuple.src_ip, 77u);
  }
}

TEST(PacketParser, UnknownLinkTypeIsTyped) {
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  ParsedPacket parsed;
  EXPECT_EQ(parse_packet(record_of(frame, 147), parsed),
            ParseOutcome::kUnsupportedLinkType);
}

TEST(PacketParser, NonFirstFragmentKeysOnAddresses) {
  Ipv4Options options;
  options.fragment = 0x0010;  // offset 16 (x8 bytes), no flags
  Bytes payload(16, std::byte{0});
  const Bytes frame = ethernet_frame(0x0800, ipv4_packet(5, 6, 6, payload, options));
  ParsedPacket parsed;
  ASSERT_EQ(parse_packet(record_of(frame), parsed), ParseOutcome::kOk);
  EXPECT_EQ(parsed.tuple.src_port, 0);
  EXPECT_EQ(parsed.tuple.dst_port, 0);
  EXPECT_EQ(parsed.tuple.protocol, 6);
}

// --- crafted-header battery -------------------------------------------------

TEST(PacketParser, ZeroAndShortIhlAreRejected) {
  for (const std::uint8_t ihl : {0, 1, 4}) {
    Ipv4Options options;
    options.ihl_words = ihl;
    const Bytes frame =
        ethernet_frame(0x0800, ipv4_packet(1, 2, 6, tcp_header(3, 4), options));
    ParsedPacket parsed;
    EXPECT_EQ(parse_packet(record_of(frame), parsed), ParseOutcome::kBadIpHeader)
        << "ihl " << int{ihl};
  }
}

TEST(PacketParser, OverlappingTotalLengthIsRejected) {
  // total_length (12) < header length (20): payload would overlap the header.
  Ipv4Options options;
  options.total_length = 12;
  const Bytes frame =
      ethernet_frame(0x0800, ipv4_packet(1, 2, 6, tcp_header(3, 4), options));
  ParsedPacket parsed;
  EXPECT_EQ(parse_packet(record_of(frame), parsed), ParseOutcome::kBadIpHeader);
}

TEST(PacketParser, VersionMismatchIsRejected) {
  Ipv4Options options;
  options.version = 5;
  const Bytes frame =
      ethernet_frame(0x0800, ipv4_packet(1, 2, 6, tcp_header(3, 4), options));
  ParsedPacket parsed;
  EXPECT_EQ(parse_packet(record_of(frame), parsed), ParseOutcome::kBadIpHeader);
}

TEST(PacketParser, BadTransportHeadersAreTyped) {
  // TCP data offset below the 20-byte minimum.
  const Bytes bad_tcp = tcp_header(1, 2, /*data_offset_words=*/4);
  const Bytes tcp_frame = ethernet_frame(0x0800, ipv4_packet(1, 2, 6, bad_tcp));
  ParsedPacket parsed;
  EXPECT_EQ(parse_packet(record_of(tcp_frame), parsed),
            ParseOutcome::kBadTransportHeader);
  // UDP length field below the 8-byte header minimum.
  const Bytes bad_udp = udp_header(1, 2, /*udp_length=*/4);
  const Bytes udp_frame = ethernet_frame(0x0800, ipv4_packet(1, 2, 17, bad_udp));
  EXPECT_EQ(parse_packet(record_of(udp_frame), parsed),
            ParseOutcome::kBadTransportHeader);
}

TEST(PacketParser, EveryPrefixOfAGoodFrameIsHandled) {
  // The truncation sweep: every prefix yields a typed outcome, never UB. Runs
  // for the representative L2/L3/L4 combinations under ASan/UBSan in CI.
  const std::vector<Bytes> frames = {
      tcp4_frame(1, 2, 3, 4),
      ethernet_frame(0x0800, ipv4_packet(1, 2, 17, udp_header(5, 6)), 2),
      ethernet_frame(0x86DD, ipv6_packet(6, tcp_header(7, 8))),
  };
  for (const Bytes& frame : frames) {
    for (std::size_t length = 0; length <= frame.size(); ++length) {
      RawRecord record;
      record.bytes = std::span<const std::byte>(frame).subspan(0, length);
      record.original_length = static_cast<std::uint32_t>(frame.size());
      record.link_type = datapath::kLinkTypeEthernet;
      ParsedPacket parsed;
      const ParseOutcome outcome = parse_packet(record, parsed);
      ASSERT_LT(static_cast<std::size_t>(outcome), datapath::kParseOutcomeCount);
      if (length == frame.size()) {
        EXPECT_EQ(outcome, ParseOutcome::kOk);
      }
    }
  }
}

// --- hostile capture battery ------------------------------------------------

TEST(HostileCapture, UnrecognizedMagicThrows) {
  Bytes capture;
  put32(capture, 0xdeadbeef, false);
  for (int i = 0; i < 20; ++i) put8(capture, 0);
  EXPECT_THROW(PcapReader{as_span(capture)}, PcapError);
}

TEST(HostileCapture, UnsupportedVersionThrows) {
  Bytes capture = classic_header(false, false);
  capture[4] = std::byte{3};  // version_major 3
  EXPECT_THROW(PcapReader{as_span(capture)}, PcapError);
}

TEST(HostileCapture, AbsurdSnaplenThrows) {
  Bytes capture = classic_header(false, false, /*snaplen=*/0x7fffffff);
  EXPECT_THROW(PcapReader{as_span(capture)}, PcapError);
}

TEST(HostileCapture, AbsurdCaplenIsTerminal) {
  const bool be = false;
  Bytes capture = classic_header(be, false, /*snaplen=*/0);
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  classic_record(capture, be, 1, 0, frame);
  // Record header claiming a 1 GiB body: the stream cannot be resynced.
  put32(capture, 2, be);
  put32(capture, 0, be);
  put32(capture, 1u << 30, be);
  put32(capture, 1u << 30, be);
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.end, RecordOutcome::kMalformedTerminal);
  EXPECT_EQ(reader.stats().malformed_terminal, 1u);
}

TEST(HostileCapture, CaplenBeyondSnaplenSkipsAndResyncs) {
  const bool be = false;
  Bytes capture = classic_header(be, false, /*snaplen=*/64);
  Bytes oversized(100, std::byte{0xee});
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  classic_record(capture, be, 1, 0, oversized);  // caplen 100 > snaplen 64
  classic_record(capture, be, 2, 0, frame);
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].timestamp_ns, 2ull * 1'000'000'000);
  EXPECT_EQ(reader.stats().malformed_skipped, 1u);
}

TEST(HostileCapture, ImpossibleSubsecondSkipsRecord) {
  const bool be = false;
  Bytes capture = classic_header(be, false);
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  classic_record(capture, be, 1, 1'000'000, frame);  // usec field >= 10^6
  classic_record(capture, be, 2, 0, frame);
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(reader.stats().malformed_skipped, 1u);
}

TEST(HostileCapture, OriginalShorterThanCapturedSkipsRecord) {
  const bool be = false;
  Bytes capture = classic_header(be, false);
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  classic_record(capture, be, 1, 0, frame,
                 static_cast<std::uint32_t>(frame.size()),
                 static_cast<std::uint32_t>(frame.size() - 1));
  classic_record(capture, be, 2, 0, frame);
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(reader.stats().malformed_skipped, 1u);
}

TEST(HostileCapture, PcapngBadByteOrderMagicIsTerminal) {
  Bytes capture = shb(false);
  capture[8] = std::byte{0xff};  // corrupt the BOM
  PcapReader reader(capture);
  RawRecord record;
  EXPECT_EQ(reader.next(record), RecordOutcome::kMalformedTerminal);
}

TEST(HostileCapture, PcapngBadBlockLengthsAreTerminal) {
  // Unaligned, below-minimum, and absurd total_length values.
  for (const std::uint32_t bad_length : {30u, 8u, (1u << 27)}) {
    Bytes capture = shb(false);
    append(capture, idb(false));
    // A full 12-byte block head (the reader peeks 12 before validating), with
    // a total_length that is unaligned / below minimum / absurd.
    Bytes block;
    put32(block, 6, false);
    put32(block, bad_length, false);
    put32(block, 0, false);
    append(capture, block);
    PcapReader reader(capture);
    const ReadResult result = read_all(reader);
    EXPECT_EQ(result.end, RecordOutcome::kMalformedTerminal) << bad_length;
  }
}

TEST(HostileCapture, PcapngTrailingLengthMismatchIsTerminal) {
  Bytes capture = shb(false);
  append(capture, idb(false));
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  Bytes block = epb(false, 0, 0, frame);
  // Corrupt the trailing copy of total_length.
  block[block.size() - 1] = std::byte{0x77};
  append(capture, block);
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  EXPECT_EQ(result.records.size(), 0u);
  EXPECT_EQ(result.end, RecordOutcome::kMalformedTerminal);
}

TEST(HostileCapture, PcapngEpbClaimsMoreThanItsBlockHolds) {
  const bool be = false;
  Bytes capture = shb(be);
  append(capture, idb(be));
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  // caplen says 4096 but the block body only carries the frame: skipped, and
  // the well-formed EPB after it is still delivered (length-delimited resync).
  append(capture, epb(be, 0, 0, frame, 4096, 4096));
  append(capture, epb(be, 0, 0, frame));
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(reader.stats().malformed_skipped, 1u);
}

TEST(HostileCapture, PcapngEpbBeforeAnyInterfaceIsSkipped) {
  const bool be = false;
  Bytes capture = shb(be);
  const Bytes frame = tcp4_frame(1, 2, 3, 4);
  append(capture, epb(be, 0, 0, frame));  // no IDB yet
  append(capture, idb(be));
  append(capture, epb(be, 0, 0, frame));
  PcapReader reader(capture);
  const ReadResult result = read_all(reader);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(reader.stats().malformed_skipped, 1u);
}

// Builds a well-formed multi-packet capture of each container flavor for the
// sweep/fuzz batteries below.
Bytes good_classic_capture(bool be) {
  Bytes capture = classic_header(be, false);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const Bytes frame = tcp4_frame(100 + i, 200 + i, 1000, 2000);
    classic_record(capture, be, i, i * 100, frame);
  }
  return capture;
}

Bytes good_pcapng_capture(bool be) {
  Bytes capture = shb(be);
  append(capture, idb(be, datapath::kLinkTypeEthernet, 0, /*tsresol=*/9));
  for (std::uint32_t i = 0; i < 4; ++i) {
    const Bytes frame = tcp4_frame(300 + i, 400 + i, 5000, 6000);
    append(capture, epb(be, 0, i * 1'000'000'000ull, frame));
  }
  return capture;
}

// Runs the whole ingest pipeline over arbitrary bytes; the only acceptable
// escapes are PcapError (structural) and typed outcomes. Returns how many
// packets decoded, so sweeps can assert monotone-ish behavior.
std::size_t ingest_survives(std::span<const std::byte> data) {
  if (data.empty()) return 0;  // PcapReader contract requires nonempty input
  try {
    const DecodedCapture decoded = datapath::decode_capture(data);
    const CaptureStats& stats = decoded.stats.capture;
    // Ledger sanity: everything next() saw is accounted somewhere.
    EXPECT_EQ(stats.records,
              decoded.stats.parsed + decoded.stats.parse_failures());
    EXPECT_LE(stats.malformed_terminal, 1u);
    return decoded.trace.size();
  } catch (const PcapError&) {
    return 0;  // structural rejection is a valid outcome for damaged input
  }
}

TEST(HostileCapture, EveryPrefixTruncationSweep) {
  for (const bool be : {false, true}) {
    for (const Bytes& capture :
         {good_classic_capture(be), good_pcapng_capture(be)}) {
      std::size_t max_decoded = 0;
      for (std::size_t length = 1; length <= capture.size(); ++length) {
        const std::size_t decoded = ingest_survives(
            std::span<const std::byte>(capture).subspan(0, length));
        EXPECT_LE(decoded, 4u);
        max_decoded = std::max(max_decoded, decoded);
      }
      // The full capture decodes everything; no prefix decodes more.
      EXPECT_EQ(max_decoded, 4u);
    }
  }
}

TEST(HostileCapture, SeededMutationFuzzNeverCrashes) {
  // Fuzz-lite: deterministic seeded corruption of well-formed captures —
  // byte flips, random truncation, and random splices — plus fully random
  // buffers. Every input must come out as typed outcomes with a consistent
  // ledger (checked inside ingest_survives), which ASan/UBSan then audits.
  common::Xoshiro256 rng(0xfcaf002d);
  const std::vector<Bytes> seeds = {
      good_classic_capture(false), good_classic_capture(true),
      good_pcapng_capture(false), good_pcapng_capture(true)};
  for (int round = 0; round < 400; ++round) {
    Bytes mutated = seeds[round % seeds.size()];
    const int flips = 1 + static_cast<int>(rng.next() % 8);
    for (int f = 0; f < flips; ++f) {
      const std::size_t position = rng.next() % mutated.size();
      mutated[position] = std::byte{static_cast<std::uint8_t>(rng.next())};
    }
    if (rng.next() % 4 == 0) {
      mutated.resize(1 + rng.next() % mutated.size());
    }
    if (rng.next() % 4 == 0) {
      const std::size_t splice = rng.next() % 64;
      for (std::size_t i = 0; i < splice; ++i) {
        put8(mutated, static_cast<std::uint8_t>(rng.next()));
      }
    }
    ingest_survives(mutated);
  }
  for (int round = 0; round < 100; ++round) {
    Bytes noise(1 + rng.next() % 512, std::byte{0});
    for (std::byte& b : noise) {
      b = std::byte{static_cast<std::uint8_t>(rng.next())};
    }
    ingest_survives(noise);
  }
}

// --- ingest glue ------------------------------------------------------------

TEST(CaptureIngest, DecodesToTraceWithWireLengths) {
  const bool be = false;
  Bytes capture = classic_header(be, false);
  const Bytes frame = tcp4_frame(0x0a000001, 0x0a000002, 1, 2);
  classic_record(capture, be, 1, 0, frame);
  // Sliced record (full headers captured, payload cut): trace packet bytes
  // must be the ORIGINAL wire length, not the captured length.
  classic_record(capture, be, 2, 0, frame,
                 static_cast<std::uint32_t>(frame.size()), 1500);
  // An ARP packet: counted as a parse failure, not a trace packet.
  Bytes arp(28, std::byte{0});
  const Bytes arp_frame = ethernet_frame(0x0806, arp);
  classic_record(capture, be, 3, 0, arp_frame);

  const DecodedCapture decoded = datapath::decode_capture(capture);
  ASSERT_EQ(decoded.trace.size(), 2u);
  EXPECT_EQ(decoded.tuples.size(), 2u);
  EXPECT_EQ(decoded.stats.parsed, 2u);
  EXPECT_EQ(decoded.stats.capture.records, 3u);
  EXPECT_EQ(decoded.stats.parse_failures(), 1u);
  EXPECT_EQ(decoded.stats.parse_outcomes[static_cast<std::size_t>(
                ParseOutcome::kUnsupportedEtherType)],
            1u);
  EXPECT_EQ(decoded.trace.packets()[0].key, flow::FlowKey{0x0a000001});
  EXPECT_EQ(decoded.trace.packets()[0].bytes, frame.size());
  EXPECT_EQ(decoded.trace.packets()[1].bytes, 1500u);
  EXPECT_EQ(decoded.stats.capture_end, RecordOutcome::kEndOfCapture);
}

TEST(CaptureIngest, ExportMetricsPublishesTheLedger) {
  obs::MetricsRegistry registry;
  datapath::DecodeStats stats;
  stats.parsed = 10;
  stats.capture.truncated = 1;
  stats.capture.malformed_skipped = 2;
  stats.capture.malformed_terminal = 1;
  stats.parse_outcomes[static_cast<std::size_t>(
      ParseOutcome::kUnsupportedEtherType)] = 3;
  datapath::export_metrics(stats, &registry, "test");
  EXPECT_EQ(registry.counter("fcm_datapath_packets_total",
                             {{"instance", "test"}})
                .value(),
            10u);
  EXPECT_EQ(registry.counter("fcm_datapath_capture_truncated_total",
                             {{"instance", "test"}})
                .value(),
            1u);
  EXPECT_EQ(registry.counter("fcm_datapath_capture_malformed_total",
                             {{"instance", "test"}})
                .value(),
            3u);
  EXPECT_EQ(registry
                .counter("fcm_datapath_parse_failures_total",
                         {{"instance", "test"},
                          {"outcome", "unsupported-ether-type"}})
                .value(),
            3u);
}

TEST(CaptureIngest, CommittedFixtureDecodesWithCleanLedger) {
  // The deterministic fixture from tools/make_pcap_fixture.py; the golden
  // accuracy bands over this same file live in test_golden_metrics.cpp.
  const DecodedCapture decoded =
      datapath::load_capture(std::string(FCM_TEST_DATA_DIR) + "/fixture.pcap");
  EXPECT_EQ(decoded.stats.capture_end, RecordOutcome::kEndOfCapture);
  EXPECT_GE(decoded.trace.size(), 1000u);
  EXPECT_EQ(decoded.stats.capture.records,
            decoded.stats.parsed + decoded.stats.parse_failures());
  // The generator plants a handful of deliberate non-IP frames.
  EXPECT_GT(decoded.stats.parse_failures(), 0u);
  EXPECT_LT(decoded.stats.parse_failures(), decoded.stats.parsed / 10);
}

TEST(CaptureIngest, LoadCaptureThrowsOnMissingFile) {
  EXPECT_THROW(datapath::load_capture("/nonexistent/no-such.pcap"),
               std::runtime_error);
}

}  // namespace
}  // namespace fcm
