#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "controlplane/fsd.h"
#include "controlplane/heavy_change.h"
#include "metrics/evaluator.h"
#include "metrics/table.h"

namespace fcm::metrics {
namespace {

TEST(SizeErrors, ComputesAreAndAae) {
  std::unordered_map<flow::FlowKey, std::uint64_t> truth{
      {flow::FlowKey{1}, 10}, {flow::FlowKey{2}, 100}};
  const auto errors = size_errors(truth, [](flow::FlowKey key) {
    return key == flow::FlowKey{1} ? 12u : 100u;  // +2 on the first flow
  });
  EXPECT_NEAR(errors.aae, 1.0, 1e-12);       // (2 + 0) / 2
  EXPECT_NEAR(errors.are, 0.1, 1e-12);       // (0.2 + 0) / 2
}

TEST(SizeErrors, EmptyTruthIsZero) {
  const auto errors = size_errors({}, [](flow::FlowKey) { return 1u; });
  EXPECT_EQ(errors.are, 0.0);
  EXPECT_EQ(errors.aae, 0.0);
}

TEST(Classification, PerfectReport) {
  const std::vector<flow::FlowKey> keys{flow::FlowKey{1}, flow::FlowKey{2}};
  const auto scores = classification_scores(keys, keys);
  EXPECT_EQ(scores.f1, 1.0);
  EXPECT_EQ(scores.precision, 1.0);
  EXPECT_EQ(scores.recall, 1.0);
}

TEST(Classification, PartialOverlap) {
  const std::vector<flow::FlowKey> reported{flow::FlowKey{1}, flow::FlowKey{3}};
  const std::vector<flow::FlowKey> actual{flow::FlowKey{1}, flow::FlowKey{2}};
  const auto scores = classification_scores(reported, actual);
  EXPECT_NEAR(scores.precision, 0.5, 1e-12);
  EXPECT_NEAR(scores.recall, 0.5, 1e-12);
  EXPECT_NEAR(scores.f1, 0.5, 1e-12);
}

TEST(Classification, EmptySetsHandled) {
  const auto scores = classification_scores({}, {});
  EXPECT_EQ(scores.f1, 0.0);
  EXPECT_EQ(scores.true_positives, 0u);
}

TEST(Classification, DuplicatesDeduplicated) {
  const std::vector<flow::FlowKey> reported{flow::FlowKey{1}, flow::FlowKey{1}};
  const std::vector<flow::FlowKey> actual{flow::FlowKey{1}};
  const auto scores = classification_scores(reported, actual);
  EXPECT_EQ(scores.reported, 1u);
  EXPECT_EQ(scores.f1, 1.0);
}

TEST(RelativeError, BasicAndThrow) {
  EXPECT_NEAR(relative_error(11.0, 10.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(9.0, 10.0), 0.1, 1e-12);
  EXPECT_THROW(relative_error(1.0, 0.0), std::invalid_argument);
}

TEST(Summarize, MeanAndPercentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const auto summary = summarize(samples);
  EXPECT_NEAR(summary.mean, 50.5, 1e-9);
  EXPECT_NEAR(summary.p10, 10.9, 0.2);
  EXPECT_NEAR(summary.p90, 90.1, 0.2);
}

TEST(Summarize, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).mean, 0.0);
  const auto one = summarize({7.0});
  EXPECT_EQ(one.mean, 7.0);
  EXPECT_EQ(one.p10, 7.0);
  EXPECT_EQ(one.p90, 7.0);
}

TEST(Table, PrintsAlignedAndCsv) {
  Table table("demo", {"col_a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("col_a"), std::string::npos);
  EXPECT_NE(text.find("# 333,4"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::sci(12345.0, 1).substr(0, 4), "1.2e");
}

TEST(BenchScale, DefaultsWithoutEnv) {
  // FCM_SCALE is not set in the test environment.
  EXPECT_GT(bench_scale(0.15), 0.0);
  EXPECT_LE(bench_scale(0.15), 1.0);
}

// --- FSD metrics ------------------------------------------------------------

TEST(FlowSizeDistribution, TotalsAndEntropy) {
  control::FlowSizeDistribution fsd(std::vector<double>{0.0, 4.0, 0.0, 2.0});
  EXPECT_NEAR(fsd.total_flows(), 6.0, 1e-12);
  EXPECT_NEAR(fsd.total_packets(), 10.0, 1e-12);
  // H = -(4 * 0.1 ln 0.1 + 2 * 0.3 ln 0.3)
  const double expected = -(4 * 0.1 * std::log(0.1) + 2 * 0.3 * std::log(0.3));
  EXPECT_NEAR(fsd.entropy(), expected, 1e-12);
}

TEST(FlowSizeDistribution, WmreAgainstTruth) {
  control::FlowSizeDistribution fsd(std::vector<double>{0.0, 3.0, 1.0});
  const std::vector<std::uint64_t> truth{0, 4, 1};
  // |3-4| + |1-1| over (3+4)/2 + (1+1)/2 = 1 / 4.5
  EXPECT_NEAR(fsd.wmre(truth), 1.0 / 4.5, 1e-12);
}

TEST(FlowSizeDistribution, WmreHandlesSizeMismatch) {
  control::FlowSizeDistribution fsd(std::vector<double>{0.0, 1.0});
  const std::vector<std::uint64_t> truth{0, 1, 0, 0, 5};
  EXPECT_GT(fsd.wmre(truth), 0.0);
}

TEST(FlowSizeDistribution, AddFlowsExtends) {
  control::FlowSizeDistribution fsd;
  fsd.add_flows(10, 2.0);
  EXPECT_NEAR(fsd.counts()[10], 2.0, 1e-12);
  fsd.add_flows(0, 5.0);  // size-0 flows are ignored
  EXPECT_NEAR(fsd.total_flows(), 2.0, 1e-12);
}

// --- heavy change helper -------------------------------------------------------

TEST(HeavyChange, DetectsAndDeduplicates) {
  const std::vector<flow::FlowKey> candidates{flow::FlowKey{1}, flow::FlowKey{1},
                                              flow::FlowKey{2}};
  const auto changes = control::detect_heavy_changes(
      [](flow::FlowKey key) { return key == flow::FlowKey{1} ? 100u : 10u; },
      [](flow::FlowKey) { return 10u; }, candidates, 50);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0], flow::FlowKey{1});
}

}  // namespace
}  // namespace fcm::metrics
