#include "flow/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace fcm::flow {
namespace {

TEST(SyntheticTrace, RejectsBadConfig) {
  SyntheticTraceConfig config;
  config.packet_count = 0;
  EXPECT_THROW(SyntheticTraceGenerator{config}, std::invalid_argument);
  config = {};
  config.flow_count = 0;
  EXPECT_THROW(SyntheticTraceGenerator{config}, std::invalid_argument);
  config = {};
  config.min_packet_bytes = 2000;
  config.max_packet_bytes = 100;
  EXPECT_THROW(SyntheticTraceGenerator{config}, std::invalid_argument);
}

TEST(SyntheticTrace, DeterministicForSeed) {
  SyntheticTraceConfig config;
  config.packet_count = 10000;
  config.flow_count = 500;
  const Trace a = SyntheticTraceGenerator(config).generate();
  const Trace b = SyntheticTraceGenerator(config).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.packets()[i].key, b.packets()[i].key);
  }
}

TEST(SyntheticTrace, SeedChangesTrace) {
  SyntheticTraceConfig config;
  config.packet_count = 5000;
  config.flow_count = 200;
  const Trace a = SyntheticTraceGenerator(config).generate();
  config.seed = 99;
  const Trace b = SyntheticTraceGenerator(config).generate();
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.packets()[i].key != b.packets()[i].key) ++differing;
  }
  EXPECT_GT(differing, a.size() / 2);
}

TEST(SyntheticTrace, PacketAndFlowBudgets) {
  SyntheticTraceConfig config;
  config.packet_count = 50000;
  config.flow_count = 1000;
  const Trace trace = SyntheticTraceGenerator(config).generate();
  EXPECT_EQ(trace.size(), 50000u);
  const GroundTruth truth(trace);
  EXPECT_LE(truth.flow_count(), 1000u);
  EXPECT_GT(truth.flow_count(), 800u);  // nearly all ranks hit at 50 pkts/flow
}

TEST(SyntheticTrace, PacketBytesWithinRange) {
  SyntheticTraceConfig config;
  config.packet_count = 2000;
  config.flow_count = 50;
  config.min_packet_bytes = 100;
  config.max_packet_bytes = 200;
  const Trace trace = SyntheticTraceGenerator(config).generate();
  for (const Packet& p : trace.packets()) {
    ASSERT_GE(p.bytes, 100u);
    ASSERT_LE(p.bytes, 200u);
  }
}

TEST(SyntheticTrace, TimestampsMonotone) {
  SyntheticTraceConfig config;
  config.packet_count = 1000;
  config.flow_count = 10;
  const Trace trace = SyntheticTraceGenerator(config).generate();
  for (std::size_t i = 1; i < trace.size(); ++i) {
    ASSERT_GT(trace.packets()[i].timestamp_ns, trace.packets()[i - 1].timestamp_ns);
  }
}

TEST(SyntheticTrace, HigherAlphaIsMoreSkewed) {
  const Trace mild = SyntheticTraceGenerator::zipf(1.1, 0.005, 3);
  const Trace steep = SyntheticTraceGenerator::zipf(1.7, 0.005, 3);
  const GroundTruth truth_mild(mild);
  const GroundTruth truth_steep(steep);
  EXPECT_GT(truth_steep.max_flow_size(), truth_mild.max_flow_size());
  EXPECT_LT(truth_steep.flow_count(), truth_mild.flow_count());
}

TEST(SyntheticTrace, CaidaLikeShape) {
  const Trace trace = SyntheticTraceGenerator::caida_like(0.01, 1);
  EXPECT_EQ(trace.size(), 200000u);
  const GroundTruth truth(trace);
  // ~40 packets per flow on average, heavy-tailed.
  EXPECT_GT(truth.flow_count(), 2000u);
  EXPECT_GT(truth.max_flow_size(), 1000u);
}

TEST(SyntheticTrace, ScaleValidation) {
  EXPECT_THROW(SyntheticTraceGenerator::caida_like(0.0, 1), std::invalid_argument);
  EXPECT_THROW(SyntheticTraceGenerator::caida_like(1.5, 1), std::invalid_argument);
  EXPECT_THROW(SyntheticTraceGenerator::zipf(1.1, -1.0, 1), std::invalid_argument);
}

TEST(WindowPair, ChurnReplacesFlows) {
  SyntheticTraceConfig config;
  config.packet_count = 30000;
  config.flow_count = 500;
  const WindowPair pair = make_window_pair(config, 0.5);
  const GroundTruth a(pair.window_a);
  const GroundTruth b(pair.window_b);
  std::size_t shared = 0;
  for (const auto& [key, size] : b.flow_sizes()) {
    if (a.size_of(key) > 0) ++shared;
  }
  // Roughly half the flows survive.
  EXPECT_GT(shared, b.flow_count() / 5);
  EXPECT_LT(shared, b.flow_count() * 4 / 5);
}

TEST(WindowPair, ZeroChurnKeepsKeys) {
  SyntheticTraceConfig config;
  config.packet_count = 20000;
  config.flow_count = 300;
  const WindowPair pair = make_window_pair(config, 0.0);
  const GroundTruth a(pair.window_a);
  const GroundTruth b(pair.window_b);
  // Key sets match; a tail rank can still receive packets in only one
  // window, so allow a couple of sampling artifacts.
  std::size_t unexpected = 0;
  for (const auto& [key, size] : b.flow_sizes()) {
    if (a.size_of(key) == 0) ++unexpected;
  }
  EXPECT_LE(unexpected, 3u);
}

TEST(WindowPair, ChurnValidation) {
  SyntheticTraceConfig config;
  EXPECT_THROW(make_window_pair(config, -0.1), std::invalid_argument);
  EXPECT_THROW(make_window_pair(config, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace fcm::flow
