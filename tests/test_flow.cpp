#include "flow/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "flow/flow_key.h"
#include "flow/packet.h"

namespace fcm::flow {
namespace {

Trace make_trace(std::initializer_list<std::uint32_t> keys) {
  Trace trace;
  for (const std::uint32_t k : keys) trace.append(Packet{FlowKey{k}, 100, 0});
  return trace;
}

TEST(FlowKey, OrderingAndEquality) {
  EXPECT_EQ(FlowKey{1}, FlowKey{1});
  EXPECT_NE(FlowKey{1}, FlowKey{2});
  EXPECT_LT(FlowKey{1}, FlowKey{2});
}

TEST(FlowKey, HashDistinguishesKeys) {
  EXPECT_NE(std::hash<FlowKey>{}(FlowKey{1}), std::hash<FlowKey>{}(FlowKey{2}));
}

TEST(FlowKey, ToStringDottedQuad) {
  EXPECT_EQ(to_string(FlowKey{0x0a000001}), "10.0.0.1");
  EXPECT_EQ(to_string(FlowKey{0xffffffff}), "255.255.255.255");
}

TEST(FiveTuple, SourceKeyExtractsSourceIp) {
  FiveTuple t;
  t.src_ip = 0xc0a80101;
  t.dst_ip = 0x08080808;
  EXPECT_EQ(t.source_key(), FlowKey{0xc0a80101});
}

TEST(FiveTuple, HashAndCompare) {
  FiveTuple a;
  a.src_ip = 1;
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 80;
  EXPECT_NE(a, b);
  EXPECT_NE(std::hash<FiveTuple>{}(a), std::hash<FiveTuple>{}(b));
}

TEST(GroundTruth, CountsFlowSizes) {
  const Trace trace = make_trace({1, 1, 2, 1, 3, 3});
  const GroundTruth truth(trace);
  EXPECT_EQ(truth.total_packets(), 6u);
  EXPECT_EQ(truth.flow_count(), 3u);
  EXPECT_EQ(truth.size_of(FlowKey{1}), 3u);
  EXPECT_EQ(truth.size_of(FlowKey{2}), 1u);
  EXPECT_EQ(truth.size_of(FlowKey{3}), 2u);
  EXPECT_EQ(truth.size_of(FlowKey{9}), 0u);
  EXPECT_EQ(truth.max_flow_size(), 3u);
}

TEST(GroundTruth, FlowSizeDistribution) {
  const Trace trace = make_trace({1, 1, 2, 1, 3, 3});
  const auto fsd = GroundTruth(trace).flow_size_distribution();
  ASSERT_EQ(fsd.size(), 4u);
  EXPECT_EQ(fsd[1], 1u);  // flow 2
  EXPECT_EQ(fsd[2], 1u);  // flow 3
  EXPECT_EQ(fsd[3], 1u);  // flow 1
}

TEST(GroundTruth, EntropyUniformFlows) {
  // 4 flows of 1 packet each: H = -sum(1/4 ln 1/4) = ln 4.
  const Trace trace = make_trace({1, 2, 3, 4});
  EXPECT_NEAR(GroundTruth(trace).entropy(), std::log(4.0), 1e-12);
}

TEST(GroundTruth, EntropySingleFlowIsZero) {
  const Trace trace = make_trace({5, 5, 5, 5});
  EXPECT_NEAR(GroundTruth(trace).entropy(), 0.0, 1e-12);
}

TEST(GroundTruth, EmptyTrace) {
  const GroundTruth truth{Trace{}};
  EXPECT_EQ(truth.total_packets(), 0u);
  EXPECT_EQ(truth.flow_count(), 0u);
  EXPECT_EQ(truth.entropy(), 0.0);
  EXPECT_TRUE(truth.flow_size_distribution().size() == 1);
}

TEST(GroundTruth, HeavyHitters) {
  const Trace trace = make_trace({1, 1, 1, 2, 2, 3});
  const auto heavy = GroundTruth(trace).heavy_hitters(2);
  EXPECT_EQ(heavy.size(), 2u);
  EXPECT_TRUE(std::find(heavy.begin(), heavy.end(), FlowKey{1}) != heavy.end());
  EXPECT_TRUE(std::find(heavy.begin(), heavy.end(), FlowKey{2}) != heavy.end());
}

TEST(TrueHeavyChanges, DetectsGrowthShrinkAndChurn) {
  const GroundTruth a(make_trace({1, 1, 1, 1, 2, 3}));
  const GroundTruth b(make_trace({1, 2, 2, 2, 2, 4, 4, 4}));
  // deltas: flow1: 4->1 (3), flow2: 1->4 (3), flow3: 1->0 (1), flow4: 0->3 (3)
  const auto changes = true_heavy_changes(a, b, 2);
  EXPECT_EQ(changes.size(), 3u);
  const auto has = [&](std::uint32_t k) {
    return std::find(changes.begin(), changes.end(), FlowKey{k}) != changes.end();
  };
  EXPECT_TRUE(has(1));
  EXPECT_TRUE(has(2));
  EXPECT_TRUE(has(4));
  EXPECT_FALSE(has(3));
}

TEST(TrueHeavyChanges, NoDuplicateReports) {
  const GroundTruth a(make_trace({1, 1, 1, 1}));
  const GroundTruth b(make_trace({1}));
  const auto changes = true_heavy_changes(a, b, 1);
  EXPECT_EQ(changes.size(), 1u);
}

}  // namespace
}  // namespace fcm::flow
