#include "fcm/fcm_config.h"

#include <gtest/gtest.h>

namespace fcm::core {
namespace {

TEST(FcmConfig, WidthsDecreaseByK) {
  FcmConfig config;
  config.k = 8;
  config.leaf_count = 8 * 8 * 16;
  EXPECT_EQ(config.width(1), 1024u);
  EXPECT_EQ(config.width(2), 128u);
  EXPECT_EQ(config.width(3), 16u);
}

TEST(FcmConfig, CountingMaxPerStage) {
  FcmConfig config;
  config.stage_bits = {8, 16, 32};
  EXPECT_EQ(config.counting_max(1), 254u);
  EXPECT_EQ(config.counting_max(2), 65534u);
  EXPECT_EQ(config.counting_max(3), 4294967294u);
}

TEST(FcmConfig, MemoryBytesSumsStages) {
  FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 64;
  // Per tree: 64*1 + 8*2 + 1*4 = 84 bytes.
  EXPECT_EQ(config.memory_bytes(), 168u);
}

TEST(FcmConfig, ValidateRejectsBadGeometry) {
  FcmConfig config;
  config.tree_count = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = FcmConfig{};
  config.k = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = FcmConfig{};
  config.stage_bits = {};
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = FcmConfig{};
  config.stage_bits = {8, 8};  // not strictly increasing
  config.leaf_count = 64;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = FcmConfig{};
  config.stage_bits = {16, 8};  // decreasing
  config.leaf_count = 64;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = FcmConfig{};
  config.stage_bits = {1, 8};  // below 2 bits
  config.leaf_count = 64;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = FcmConfig{};
  config.leaf_count = 100;  // not a multiple of k^2 = 64
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = FcmConfig{};
  config.leaf_count = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FcmConfig, ValidateAcceptsPaperDefault) {
  EXPECT_NO_THROW(FcmConfig::paper_default().validate());
}

class ForMemoryTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ForMemoryTest, StaysWithinBudgetAndClose) {
  const auto [memory, k] = GetParam();
  const FcmConfig config = FcmConfig::for_memory(memory, 2, k, {8, 16, 32});
  EXPECT_LE(config.memory_bytes(), memory);
  // Divisibility rounding loses at most one k^(L-1) leaf group per tree.
  EXPECT_GT(config.memory_bytes(), memory * 9 / 10);
  EXPECT_NO_THROW(config.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ForMemoryTest,
    ::testing::Combine(::testing::Values(500'000, 1'000'000, 1'500'000, 2'500'000),
                       ::testing::Values(2, 4, 8, 16, 32)));

TEST(FcmConfig, ForMemoryRejectsTinyBudget) {
  EXPECT_THROW(FcmConfig::for_memory(10, 2, 8, {8, 16, 32}), std::invalid_argument);
}

TEST(FcmConfig, PaperDefaultShape) {
  const FcmConfig config = FcmConfig::paper_default();
  EXPECT_EQ(config.tree_count, 2u);
  EXPECT_EQ(config.k, 8u);
  EXPECT_EQ(config.stage_count(), 3u);
  EXPECT_LE(config.memory_bytes(), 1'500'000u);
}

}  // namespace
}  // namespace fcm::core
