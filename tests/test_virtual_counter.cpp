#include "controlplane/virtual_counter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "flow/synthetic.h"

namespace fcm::control {
namespace {

core::FcmConfig paper_example_config() {
  core::FcmConfig config;
  config.tree_count = 1;
  config.k = 2;
  config.stage_bits = {2, 4, 8};
  config.leaf_count = 4;
  config.seed = 0x31337;
  return config;
}

flow::FlowKey key_for_leaf(const core::FcmTree& tree, std::size_t leaf) {
  for (std::uint32_t candidate = 1; candidate < 1u << 20; ++candidate) {
    if (tree.leaf_index(flow::FlowKey{candidate}) == leaf) {
      return flow::FlowKey{candidate};
    }
  }
  ADD_FAILURE() << "no key found for leaf " << leaf;
  return flow::FlowKey{0};
}

TEST(VirtualCounter, PaperFigure5Conversion) {
  // Rebuild the exact Figure 5 state (see test_fcm_tree.cpp) and check the
  // conversion produces V1={25,deg1}, V2={0,deg1}, V3={9,deg2}.
  const core::FcmConfig config = paper_example_config();
  core::FcmTree tree(config, common::make_hash(config.seed, 0));
  tree.add(key_for_leaf(tree, 0), 25);
  tree.add(key_for_leaf(tree, 2), 3);
  tree.add(key_for_leaf(tree, 3), 6);

  const VirtualCounterArray array = convert_tree(tree);
  ASSERT_EQ(array.counters.size(), 3u);
  EXPECT_EQ(array.leaf_count, 4u);
  EXPECT_EQ(array.leaf_counting_max, 2u);

  std::vector<std::pair<std::uint64_t, std::uint32_t>> counters;
  for (const auto& vc : array.counters) counters.emplace_back(vc.value, vc.degree);
  std::sort(counters.begin(), counters.end());
  EXPECT_EQ(counters[0], (std::pair<std::uint64_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(counters[1], (std::pair<std::uint64_t, std::uint32_t>{9, 2}));
  EXPECT_EQ(counters[2], (std::pair<std::uint64_t, std::uint32_t>{25, 1}));

  EXPECT_EQ(array.total_value(), tree.total_count());
  EXPECT_EQ(array.nonempty_count(), 2u);
  EXPECT_EQ(array.max_degree(), 2u);
}

TEST(VirtualCounter, EmptyTreeConverts) {
  const core::FcmConfig config = paper_example_config();
  const core::FcmTree tree(config, common::make_hash(1, 0));
  const VirtualCounterArray array = convert_tree(tree);
  EXPECT_EQ(array.counters.size(), 4u);  // every leaf its own empty counter
  EXPECT_EQ(array.total_value(), 0u);
  EXPECT_EQ(array.nonempty_count(), 0u);
  EXPECT_EQ(array.max_degree(), 0u);
}

TEST(VirtualCounter, DegreeHistogram) {
  const core::FcmConfig config = paper_example_config();
  core::FcmTree tree(config, common::make_hash(config.seed, 0));
  tree.add(key_for_leaf(tree, 2), 3);
  tree.add(key_for_leaf(tree, 3), 6);
  const auto histogram = convert_tree(tree).degree_histogram();
  ASSERT_EQ(histogram.size(), 3u);
  EXPECT_EQ(histogram[1], 0u);
  EXPECT_EQ(histogram[2], 1u);
}

class ConversionPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(ConversionPropertyTest, TotalCountPreservedUnderLoad) {
  const auto [k, seed] = GetParam();
  core::FcmConfig config;
  config.tree_count = 2;
  config.k = k;
  config.stage_bits = {4, 8, 32};  // narrow stages force many overflows
  config.leaf_count = k * k * 16;
  config.seed = seed;
  core::FcmSketch sketch(config);

  common::Xoshiro256 rng(seed);
  for (int i = 0; i < 30000; ++i) {
    sketch.update(flow::FlowKey{static_cast<std::uint32_t>(rng.next_below(300) + 1)});
  }
  const auto arrays = convert_sketch(sketch);
  ASSERT_EQ(arrays.size(), 2u);
  for (std::size_t t = 0; t < arrays.size(); ++t) {
    EXPECT_EQ(arrays[t].total_value(), sketch.tree(t).total_count())
        << "tree " << t << ": conversion must preserve the total count";
    // Degrees sum to the number of leaves.
    std::uint64_t degree_sum = 0;
    for (const auto& vc : arrays[t].counters) degree_sum += vc.degree;
    EXPECT_EQ(degree_sum, config.leaf_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConversionPropertyTest,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(1, 2, 3)));

TEST(VirtualCounter, FromPlainCounters) {
  const std::vector<std::uint32_t> counters = {0, 5, 0, 7, 1};
  const VirtualCounterArray array = from_plain_counters(counters);
  EXPECT_EQ(array.leaf_count, 5u);
  EXPECT_EQ(array.total_value(), 13u);
  EXPECT_EQ(array.nonempty_count(), 3u);
  EXPECT_EQ(array.max_degree(), 1u);
  EXPECT_EQ(array.leaf_counting_max, 0u);
}

TEST(VirtualCounter, FromPlainCountersU8) {
  const std::vector<std::uint8_t> counters = {255, 0, 3};
  const VirtualCounterArray array = from_plain_counters_u8(counters);
  EXPECT_EQ(array.total_value(), 258u);
  EXPECT_EQ(array.nonempty_count(), 2u);
}

}  // namespace
}  // namespace fcm::control
