// AggregationService + QueryPlane suite (DESIGN.md §11): multi-vantage
// merge equivalence against a serial framework, typed rejection of
// duplicate/stale/out-of-order/foreign/corrupt snapshots, in-order
// publishing, forced finalization, query-plane retention and snapshot
// isolation under concurrent readers, and the service's metrics series.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "agg/agg_service.h"
#include "agg/query_plane.h"
#include "agg/wire.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"
#include "property_harness.h"

namespace fcm {
namespace {

using agg::AggregationService;
using agg::DeliveryStatus;
using agg::InProcessTransport;
using agg::NetworkView;
using agg::SnapshotEnvelope;
using agg::VantagePoint;
using agg::WireCodec;
using proptest::random_keys;
using proptest::small_fcm_config;

constexpr std::uint64_t kSeed = 0xa66;
constexpr std::uint32_t kUniverse = 1'200;

framework::FcmFramework::Options reference_options() {
  framework::FcmFramework::Options options;
  options.fcm = small_fcm_config(kSeed);
  options.heavy_hitter_threshold = 64;
  options.metrics = nullptr;
  return options;
}

AggregationService::Options service_options(std::size_t vantages) {
  AggregationService::Options options;
  options.reference = reference_options();
  options.vantage_count = vantages;
  options.retained_epochs = 4;
  options.metrics = nullptr;
  return options;
}

SnapshotEnvelope envelope_for(const framework::FcmFramework& fw,
                              std::uint32_t vantage, std::uint64_t epoch) {
  SnapshotEnvelope envelope;
  envelope.vantage_id = vantage;
  envelope.epoch = epoch;
  envelope.payload = WireCodec::serialize(fw);
  return envelope;
}

TEST(AggregationServiceTest, MergedViewMatchesSerialFramework) {
  constexpr std::size_t kVantages = 4;
  AggregationService service(service_options(kVantages));
  InProcessTransport transport(service);

  std::vector<std::unique_ptr<VantagePoint>> vantages;
  for (std::uint32_t v = 0; v < kVantages; ++v) {
    vantages.push_back(std::make_unique<VantagePoint>(
        v, service.vantage_options(), transport));
  }
  framework::FcmFramework serial(reference_options());

  const auto keys = random_keys(kSeed, 30'000, kUniverse);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    vantages[i % kVantages]->framework().process(keys[i]);
    serial.process(keys[i]);
  }
  for (auto& vantage : vantages) {
    ASSERT_EQ(vantage->flush(1), DeliveryStatus::kAccepted);
  }

  const auto view = service.query_plane().current();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, 1u);
  EXPECT_EQ(view->vantages, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  // Plain-FCM merge is bit-exact, so the network-wide view answers exactly
  // like one framework that saw the whole trace.
  for (std::uint32_t id = 0; id < kUniverse; ++id) {
    const flow::FlowKey key{id};
    ASSERT_EQ(view->network.flow_size(key), serial.flow_size(key))
        << "key " << id;
  }
  EXPECT_EQ(view->cardinality, serial.cardinality());
  auto expected_hh = serial.heavy_hitters();
  auto got_hh = view->heavy_hitters;
  std::sort(expected_hh.begin(), expected_hh.end());
  std::sort(got_hh.begin(), got_hh.end());
  EXPECT_EQ(got_hh, expected_hh);
  // Accepting a flush resets the vantage for the next epoch.
  EXPECT_EQ(vantages[0]->framework().flow_size(keys.front()), 0u);
}

TEST(AggregationServiceTest, RejectsForeignStaleDuplicateAndMalformed) {
  AggregationService service(service_options(2));
  framework::FcmFramework fw(service.vantage_options());
  fw.process(flow::FlowKey{7});

  // Unknown vantage id.
  EXPECT_EQ(service.deliver(envelope_for(fw, 9, 1)),
            DeliveryStatus::kRejectedUnknownVantage);

  // Fingerprint mismatch: a vantage built with different geometry.
  auto foreign_options = reference_options();
  foreign_options.fcm.leaf_count *= 2;
  const framework::FcmFramework foreign(foreign_options);
  EXPECT_EQ(service.deliver(envelope_for(foreign, 0, 1)),
            DeliveryStatus::kRejectedFingerprint);

  // Malformed: truncated payload (past the header) and garbage bytes.
  SnapshotEnvelope truncated = envelope_for(fw, 0, 1);
  truncated.payload.resize(truncated.payload.size() - 3);
  EXPECT_EQ(service.deliver(std::move(truncated)),
            DeliveryStatus::kRejectedMalformed);
  SnapshotEnvelope garbage;
  garbage.payload.assign(40, std::byte{0x5a});
  EXPECT_EQ(service.deliver(std::move(garbage)),
            DeliveryStatus::kRejectedMalformed);

  // Duplicate: same vantage, same epoch, twice.
  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 1)),
            DeliveryStatus::kAccepted);
  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 1)),
            DeliveryStatus::kRejectedDuplicate);

  // Stale: complete epoch 1, then redeliver into it.
  EXPECT_EQ(service.deliver(envelope_for(fw, 1, 1)),
            DeliveryStatus::kAccepted);
  ASSERT_NE(service.query_plane().current(), nullptr);
  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 1)),
            DeliveryStatus::kRejectedStale);

  // None of the rejections leaked into the published view.
  EXPECT_EQ(service.query_plane().current()->network.flow_size(flow::FlowKey{7}),
            2u);
}

TEST(AggregationServiceTest, OutOfOrderEpochsPublishInOrder) {
  AggregationService service(service_options(2));
  framework::FcmFramework fw(service.vantage_options());
  fw.process(flow::FlowKey{3});

  // Epoch 2 completes first; it must wait for epoch 1.
  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 2)), DeliveryStatus::kAccepted);
  EXPECT_EQ(service.deliver(envelope_for(fw, 1, 2)), DeliveryStatus::kAccepted);
  EXPECT_EQ(service.query_plane().current(), nullptr);
  EXPECT_EQ(service.pending_epochs(), (std::vector<std::uint64_t>{2}))
      << "epoch 2 buffers until the missing epoch 1 publishes";

  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 1)), DeliveryStatus::kAccepted);
  EXPECT_EQ(service.deliver(envelope_for(fw, 1, 1)), DeliveryStatus::kAccepted);
  // Completing epoch 1 releases both, in order.
  EXPECT_EQ(service.query_plane().published_epochs(),
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(service.pending_epochs().empty());
}

TEST(AggregationServiceTest, WatchdogForcesPartialPublishes) {
  auto options = service_options(2);
  options.max_pending_epochs = 2;
  AggregationService service(std::move(options));
  framework::FcmFramework fw(service.vantage_options());
  fw.process(flow::FlowKey{11});

  // Vantage 1 went silent: vantage 0 keeps delivering epochs 1..3. At the
  // third pending epoch the watchdog force-publishes the oldest, partial.
  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 1)), DeliveryStatus::kAccepted);
  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 2)), DeliveryStatus::kAccepted);
  EXPECT_EQ(service.query_plane().current(), nullptr);
  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 3)), DeliveryStatus::kAccepted);
  const auto view = service.query_plane().current();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, 1u);
  EXPECT_EQ(view->vantages, (std::vector<std::uint32_t>{0}));

  // The straggler's late snapshot for the published epoch is now stale.
  EXPECT_EQ(service.deliver(envelope_for(fw, 1, 1)),
            DeliveryStatus::kRejectedStale);
}

TEST(AggregationServiceTest, FinalizeEpochDrainsDroppedVantage) {
  AggregationService service(service_options(3));
  framework::FcmFramework fw(service.vantage_options());
  fw.process(flow::FlowKey{5});

  EXPECT_EQ(service.deliver(envelope_for(fw, 0, 1)), DeliveryStatus::kAccepted);
  EXPECT_EQ(service.deliver(envelope_for(fw, 2, 1)), DeliveryStatus::kAccepted);
  EXPECT_FALSE(service.finalize_epoch(4)) << "unknown epochs report false";
  EXPECT_TRUE(service.finalize_epoch(1));
  const auto view = service.query_plane().current();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, 1u);
  EXPECT_EQ(view->vantages, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(view->network.flow_size(flow::FlowKey{5}), 2u);
}

TEST(AggregationServiceTest, HeavyChangeBetweenPublishedEpochs) {
  auto options = service_options(1);
  options.heavy_change_threshold = 500;
  AggregationService service(std::move(options));
  InProcessTransport transport(service);
  VantagePoint vantage(0, service.vantage_options(), transport);

  // Epoch 1: flow 1 heavy. Epoch 2: flow 2 takes over — a heavy change.
  for (int i = 0; i < 800; ++i) vantage.framework().process(flow::FlowKey{1});
  ASSERT_EQ(vantage.flush(1), DeliveryStatus::kAccepted);
  for (int i = 0; i < 800; ++i) vantage.framework().process(flow::FlowKey{2});
  ASSERT_EQ(vantage.flush(2), DeliveryStatus::kAccepted);

  const auto view = service.query_plane().current();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, 2u);
  auto changes = view->heavy_changes;
  std::sort(changes.begin(), changes.end());
  EXPECT_EQ(changes,
            (std::vector<flow::FlowKey>{flow::FlowKey{1}, flow::FlowKey{2}}));
}

TEST(QueryPlaneTest, RetentionAndSnapshotIsolation) {
  AggregationService service(service_options(1));
  InProcessTransport transport(service);
  VantagePoint vantage(0, service.vantage_options(), transport);

  std::shared_ptr<const NetworkView> pinned;
  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
    vantage.framework().process(flow::FlowKey{static_cast<std::uint32_t>(epoch)});
    ASSERT_EQ(vantage.flush(epoch), DeliveryStatus::kAccepted);
    if (epoch == 1) pinned = service.query_plane().current();
  }
  // Retention keeps the newest 4; epoch 1 aged out of at()...
  EXPECT_EQ(service.query_plane().published_epochs(),
            (std::vector<std::uint64_t>{3, 4, 5, 6}));
  EXPECT_EQ(service.query_plane().at(1), nullptr);
  ASSERT_NE(service.query_plane().at(4), nullptr);
  EXPECT_EQ(service.query_plane().at(4)->epoch, 4u);
  // ...but the reader that pinned it still holds an intact, immutable view.
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(pinned->network.flow_size(flow::FlowKey{1}), 1u);
}

TEST(AggregationServiceTest, ConcurrentReadersDuringIngest) {
  constexpr std::size_t kVantages = 2;
  constexpr std::uint64_t kEpochs = 20;
  auto options = service_options(kVantages);
  // Views must aggregate every vantage so readers can assert exact lower
  // bounds: no watchdog, epochs publish only when complete.
  options.max_pending_epochs = 0;
  AggregationService service(std::move(options));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<std::uint64_t> last_seen(4, 0);
  for (std::size_t r = 0; r < last_seen.size(); ++r) {
    readers.emplace_back([&service, &stop, &last_seen, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto view = service.query_plane().current();
        if (view == nullptr) continue;
        // Published epochs only move forward, and a view is internally
        // consistent no matter when it was pinned.
        EXPECT_GE(view->epoch, last_seen[r]);
        last_seen[r] = view->epoch;
        EXPECT_GE(view->network.flow_size(flow::FlowKey{1}),
                  view->epoch * kVantages);
      }
    });
  }

  std::vector<std::thread> writers;
  for (std::uint32_t v = 0; v < kVantages; ++v) {
    writers.emplace_back([&service, v] {
      framework::FcmFramework accumulated(service.vantage_options());
      for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
        // Cumulative state (no reset) so readers can assert a lower bound
        // that grows with the epoch number.
        accumulated.process(flow::FlowKey{1});
        SnapshotEnvelope envelope;
        envelope.vantage_id = v;
        envelope.epoch = epoch;
        envelope.payload = WireCodec::serialize(accumulated);
        EXPECT_EQ(service.deliver(std::move(envelope)),
                  DeliveryStatus::kAccepted);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  const auto view = service.query_plane().current();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, kEpochs);
  EXPECT_EQ(view->network.flow_size(flow::FlowKey{1}), kEpochs * kVantages);
}

TEST(AggregationServiceTest, MetricsRecordOutcomesAndWatermark) {
  obs::MetricsRegistry registry;
  auto options = service_options(2);
  options.metrics = &registry;
  options.metrics_instance = "t";
  AggregationService service(std::move(options));
  framework::FcmFramework fw(service.vantage_options());
  fw.process(flow::FlowKey{1});

  ASSERT_EQ(service.deliver(envelope_for(fw, 0, 1)), DeliveryStatus::kAccepted);
  ASSERT_EQ(service.deliver(envelope_for(fw, 0, 1)),
            DeliveryStatus::kRejectedDuplicate);
  ASSERT_EQ(service.deliver(envelope_for(fw, 1, 1)), DeliveryStatus::kAccepted);

  const auto labeled = [&](const char* status) {
    return registry
        .counter("fcm_agg_snapshots_total",
                 {{"instance", "t"}, {"status", status}})
        .value();
  };
  EXPECT_EQ(labeled("accepted"), 2u);
  EXPECT_EQ(labeled("rejected_duplicate"), 1u);
  EXPECT_EQ(registry.gauge("fcm_agg_published_epoch", {{"instance", "t"}})
                .value(),
            1.0);
  EXPECT_GT(registry
                .counter("fcm_agg_vantage_bytes_total",
                         {{"instance", "t"}, {"vantage", "0"}})
                .value(),
            0u);
  // One merge per non-first snapshot of the epoch.
  EXPECT_EQ(registry
                .histogram("fcm_agg_merge_seconds",
                           obs::Histogram::latency_bounds(),
                           {{"instance", "t"}})
                .count(),
            1u);
}

}  // namespace
}  // namespace fcm
