// Shared property-testing harness (DESIGN.md §8, testing): deterministic
// skewed key generation, a Property = predicate-with-counterexample shape,
// and a ddmin-style chunk-removal shrinker. Factored out of
// test_properties.cpp so the wire/aggregation suites (test_wire.cpp) reuse
// the same reproducible-seed + minimal-reproducer reporting.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "fcm/fcm_config.h"
#include "fcm/fcm_topk.h"
#include "flow/flow_key.h"

namespace fcm::proptest {

// Small geometry so tens of thousands of packets over a few thousand flows
// actually exercise overflow promotion through all three stages.
inline core::FcmConfig small_fcm_config(std::uint64_t seed) {
  core::FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 8 * 8 * 64;  // 4096 leaves
  config.seed = seed;
  return config;
}

inline core::FcmTopK::Config small_topk_config(std::uint64_t seed) {
  core::FcmTopK::Config config;
  config.fcm = small_fcm_config(seed);
  config.topk_entries = 64;
  return config;
}

// Skewed random key sequence: cubing the uniform draw concentrates mass on
// low key ids, giving a few heavy flows (stage-overflow pressure) and a
// long tail (leaf-collision pressure).
inline std::vector<flow::FlowKey> random_keys(std::uint64_t seed,
                                              std::size_t length,
                                              std::uint32_t universe) {
  common::Xoshiro256 rng(seed);
  std::vector<flow::FlowKey> keys;
  keys.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double u = rng.next_double();
    const auto id = static_cast<std::uint32_t>(u * u * u * universe);
    keys.push_back(flow::FlowKey{id});
  }
  return keys;
}

struct Counterexample {
  flow::FlowKey key{};
  std::uint64_t estimate = 0;
  std::uint64_t expected = 0;
};

// A property maps a key sequence to nullopt (holds) or a counterexample.
using Property = std::function<std::optional<Counterexample>(
    const std::vector<flow::FlowKey>&)>;

// ddmin-style shrinker: repeatedly delete chunks (halving the chunk size)
// while the property still fails. Deterministic and O(n log n) checks.
inline std::vector<flow::FlowKey> shrink(std::vector<flow::FlowKey> keys,
                                         const Property& property) {
  for (std::size_t chunk = keys.size() / 2; chunk > 0; chunk /= 2) {
    std::size_t start = 0;
    while (start + chunk <= keys.size()) {
      std::vector<flow::FlowKey> candidate;
      candidate.reserve(keys.size() - chunk);
      candidate.insert(candidate.end(), keys.begin(),
                       keys.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(
          candidate.end(),
          keys.begin() + static_cast<std::ptrdiff_t>(start + chunk),
          keys.end());
      if (!candidate.empty() && property(candidate).has_value()) {
        keys = std::move(candidate);  // keep the removal, retry same offset
      } else {
        start += chunk;
      }
    }
  }
  return keys;
}

inline std::string render_keys(const std::vector<flow::FlowKey>& keys) {
  std::ostringstream out;
  const std::size_t shown = std::min<std::size_t>(keys.size(), 24);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    out << keys[i].value;
  }
  if (shown < keys.size()) out << ", ... (" << keys.size() << " total)";
  return out.str();
}

// Runs `property` on a generated sequence; on failure, shrinks and reports
// the minimal reproducer together with the generator seed.
inline void expect_property(const Property& property, std::uint64_t seed,
                            std::size_t length, std::uint32_t universe,
                            const char* name) {
  const std::vector<flow::FlowKey> keys = random_keys(seed, length, universe);
  const std::optional<Counterexample> failure = property(keys);
  if (!failure) return;
  const std::vector<flow::FlowKey> minimal = shrink(keys, property);
  const std::optional<Counterexample> min_failure = property(minimal);
  const Counterexample& report = min_failure ? *min_failure : *failure;
  FAIL() << name << " violated (seed " << seed << "): key " << report.key.value
         << " estimated " << report.estimate << " < expected "
         << report.expected << "\nminimal reproducer (" << minimal.size()
         << " updates): " << render_keys(minimal);
}

}  // namespace fcm::proptest
