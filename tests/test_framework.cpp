// End-to-end tests of the FcmFramework facade (Figure 1) and cross-module
// integration sanity checks against the paper's headline claims.
#include "framework/fcm_framework.h"

#include <gtest/gtest.h>

#include "flow/synthetic.h"
#include "metrics/evaluator.h"
#include "sketch/cm_sketch.h"

namespace fcm::framework {
namespace {

FcmFramework::Options small_options(std::size_t topk_entries = 0) {
  FcmFramework::Options options;
  options.fcm = core::FcmConfig::for_memory(150'000, 2, 8, {8, 16, 32});
  options.topk_entries = topk_entries;
  options.heavy_hitter_threshold = 100;
  options.em.max_iterations = 5;
  return options;
}

flow::Trace small_trace(std::uint64_t seed = 1) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 200000;
  config.flow_count = 20000;
  config.seed = seed;
  return flow::SyntheticTraceGenerator(config).generate();
}

class FrameworkModeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameworkModeTest, EndToEndQueries) {
  const flow::Trace trace = small_trace();
  const flow::GroundTruth truth(trace);
  FcmFramework framework(small_options(GetParam()));
  framework.process(trace.packets());

  // Flow size: never underestimates.
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(framework.flow_size(key), size);
  }

  // Cardinality within 5%.
  EXPECT_NEAR(framework.cardinality(), static_cast<double>(truth.flow_count()),
              truth.flow_count() * 0.05);

  // Heavy hitters at the configured threshold.
  const auto reported = framework.heavy_hitters();
  const auto scores =
      metrics::classification_scores(reported, truth.heavy_hitters(100));
  EXPECT_GT(scores.f1, 0.95);

  // Control-plane report.
  const auto report = framework.analyze();
  EXPECT_LT(report.fsd.wmre(truth.flow_size_distribution()), 0.35);
  EXPECT_NEAR(report.entropy, truth.entropy(), truth.entropy() * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Modes, FrameworkModeTest,
                         ::testing::Values(0, 1024));  // plain FCM, FCM+TopK

TEST(FcmFramework, ResetClearsState) {
  FcmFramework framework(small_options());
  for (int i = 0; i < 1000; ++i) framework.process(flow::FlowKey{1});
  framework.reset();
  EXPECT_EQ(framework.flow_size(flow::FlowKey{1}), 0u);
  EXPECT_TRUE(framework.heavy_hitters().empty());
}

TEST(FcmFramework, HeavyChangesAcrossWindows) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 150000;
  config.flow_count = 10000;
  config.zipf_alpha = 1.3;
  const flow::WindowPair pair = flow::make_window_pair(config, 0.4);
  const flow::GroundTruth truth_a(pair.window_a);
  const flow::GroundTruth truth_b(pair.window_b);

  FcmFramework::Options options = small_options();
  const std::uint64_t threshold = metrics::heavy_hitter_threshold(truth_a);
  options.heavy_hitter_threshold = threshold;

  FcmFramework window_a(options);
  FcmFramework window_b(options);
  window_a.process(pair.window_a.packets());
  window_b.process(pair.window_b.packets());

  const auto reported = FcmFramework::heavy_changes(window_a, window_b, threshold);
  const auto actual = flow::true_heavy_changes(truth_a, truth_b, threshold);
  ASSERT_FALSE(actual.empty());
  const auto scores = metrics::classification_scores(reported, actual);
  EXPECT_GT(scores.f1, 0.9);
}

TEST(FcmFramework, MemoryBytesReflectsParts) {
  const FcmFramework plain(small_options(0));
  const FcmFramework with_topk(small_options(1024));
  EXPECT_GT(with_topk.memory_bytes(), 0u);
  EXPECT_EQ(with_topk.memory_bytes(),
            with_topk.options().fcm.memory_bytes() + 1024 * 8);
  EXPECT_EQ(plain.memory_bytes(), plain.options().fcm.memory_bytes());
}

TEST(FcmFramework, ByteCountingMode) {
  FcmFramework::Options options = small_options();
  options.topk_entries = 0;
  options.heavy_hitter_threshold = 0;
  options.count_mode = FcmFramework::CountMode::kBytes;
  FcmFramework framework(options);
  framework.process(flow::Packet{flow::FlowKey{1}, 1500, 0});
  framework.process(flow::Packet{flow::FlowKey{1}, 500, 0});
  framework.process(flow::Packet{flow::FlowKey{2}, 64, 0});
  EXPECT_EQ(framework.flow_size(flow::FlowKey{1}), 2000u);
  EXPECT_EQ(framework.flow_size(flow::FlowKey{2}), 64u);
}

TEST(FcmFramework, ByteModeRejectsTopK) {
  FcmFramework::Options options = small_options(1024);
  options.count_mode = FcmFramework::CountMode::kBytes;
  EXPECT_THROW(FcmFramework{options}, std::invalid_argument);
}

TEST(FcmFramework, CopyActsAsSnapshot) {
  FcmFramework framework(small_options());
  for (int i = 0; i < 500; ++i) framework.process(flow::FlowKey{9});
  const FcmFramework snapshot = framework;
  for (int i = 0; i < 500; ++i) framework.process(flow::FlowKey{9});
  EXPECT_EQ(snapshot.flow_size(flow::FlowKey{9}), 500u);
  EXPECT_EQ(framework.flow_size(flow::FlowKey{9}), 1000u);
}

// --- integration sanity: the paper's headline orderings --------------------

TEST(Integration, FcmBeatsCmOnEqualMemory) {
  const flow::Trace trace = small_trace(42);
  const flow::GroundTruth truth(trace);
  constexpr std::size_t kMemory = 150'000;

  core::FcmSketch fcm(core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32}));
  sketch::CmSketch cm = sketch::CmSketch::for_memory(kMemory, 3);
  for (const flow::Packet& p : trace.packets()) {
    fcm.update(p.key);
    cm.update(p.key);
  }
  const auto fcm_errors = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey k) { return fcm.query(k); });
  const auto cm_errors = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey k) { return cm.query(k); });
  EXPECT_LT(fcm_errors.are, cm_errors.are * 0.5)
      << "FCM should cut CM's flow-size error by well over half (§7.3)";
}

TEST(Integration, TopKImprovesOrMatchesFcm) {
  const flow::Trace trace = small_trace(43);
  const flow::GroundTruth truth(trace);
  constexpr std::size_t kMemory = 150'000;

  FcmFramework::Options plain_options;
  plain_options.fcm = core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32});
  FcmFramework plain(plain_options);

  FcmFramework::Options topk_options;
  topk_options.fcm =
      core::FcmConfig::for_memory(kMemory - 1024 * 8, 2, 16, {8, 16, 32});
  topk_options.topk_entries = 1024;
  FcmFramework with_topk(topk_options);

  plain.process(trace.packets());
  with_topk.process(trace.packets());

  const auto plain_errors = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey k) { return plain.flow_size(k); });
  const auto topk_errors = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey k) { return with_topk.flow_size(k); });
  EXPECT_LE(topk_errors.are, plain_errors.are * 1.1);
}

}  // namespace
}  // namespace fcm::framework
