#include "pisa/resources.h"

#include <gtest/gtest.h>

#include "pisa/tcam_cardinality.h"

namespace fcm::pisa {
namespace {

core::FcmConfig tofino_config() {
  // The paper's hardware configuration: 1.3 MB, 2 trees, 8-ary, 8/16/32-bit.
  return core::FcmConfig::for_memory(1'300'000, 2, 8, {8, 16, 32});
}

TEST(Resources, FcmMatchesPaperTable4) {
  const PipelineBudget budget;
  const ResourceUsage usage = fcm_usage(tofino_config(), budget);
  // Paper Table 4: 4 stages, 12.50% sALUs, 9.38% SRAM, 2.02% hash bits.
  EXPECT_EQ(usage.stages, 4u);
  EXPECT_NEAR(usage.salu_percent(budget), 12.50, 0.01);
  EXPECT_NEAR(usage.sram_percent(budget), 9.38, 1.0);
  EXPECT_NEAR(usage.hash_percent(budget), 2.02, 0.5);
  EXPECT_NEAR(usage.crossbar_percent(budget), 2.28, 0.75);
  EXPECT_NEAR(usage.vliw_percent(budget), 1.30, 0.5);
}

TEST(Resources, FcmTopKMatchesPaperTable4) {
  const PipelineBudget budget;
  const ResourceUsage usage = fcm_topk_usage(tofino_config(), 16384, budget);
  // Paper Table 4: 8 stages, 20.83% sALUs, 9.48% SRAM. The SRAM figure is
  // modeled structurally (filter arrays on top of the same FCM geometry), so
  // a wider tolerance applies than for the exact stage/sALU counts.
  EXPECT_EQ(usage.stages, 8u);
  EXPECT_NEAR(usage.salu_percent(budget), 20.83, 0.01);
  EXPECT_NEAR(usage.sram_percent(budget), 9.48, 1.5);
}

TEST(Resources, CmTopKVariantsOrderedBySalus) {
  const PipelineBudget budget;
  const auto cm2 = cm_topk_usage(2, 650'000, 16384, budget);
  const auto cm4 = cm_topk_usage(4, 325'000, 16384, budget);
  const auto cm8 = cm_topk_usage(8, 162'500, 16384, budget);
  EXPECT_LT(cm2.salus, cm4.salus);
  EXPECT_LT(cm4.salus, cm8.salus);
  EXPECT_LT(cm2.stages, cm8.stages);
}

TEST(Resources, SramGrowsWithMemory) {
  const PipelineBudget budget;
  const auto small = fcm_usage(core::FcmConfig::for_memory(500'000, 2, 8, {8, 16, 32}), budget);
  const auto large = fcm_usage(core::FcmConfig::for_memory(2'500'000, 2, 8, {8, 16, 32}), budget);
  EXPECT_LT(small.sram_blocks, large.sram_blocks);
}

TEST(Resources, PublishedConstants) {
  const auto sw = switch_p4_published();
  EXPECT_EQ(sw.stages, 12u);
  EXPECT_NEAR(sw.sram_percent, 30.52, 1e-9);
  const auto related = related_systems_published();
  ASSERT_EQ(related.size(), 3u);
  EXPECT_EQ(related[0].name, "SketchLearn");
  EXPECT_EQ(related[0].stages, 9u);
}

TEST(Resources, FcmFitsAlongsideSwitchP4) {
  // Paper §8.3: FCM leaves room for a full switch.p4 deployment.
  const PipelineBudget budget;
  const ResourceUsage usage = fcm_usage(tofino_config(), budget);
  const auto sw = switch_p4_published();
  EXPECT_LT(usage.sram_percent(budget) + sw.sram_percent, 100.0);
  EXPECT_LT(usage.salu_percent(budget) + sw.salu_percent, 100.0);
}

// --- TCAM cardinality table ----------------------------------------------------

TEST(TcamCardinality, ExactEstimatorAtEntries) {
  const TcamCardinalityTable table(4096, 0.002);
  EXPECT_NEAR(table.lookup(4096), 0.0, 1e-9);
  EXPECT_NEAR(table.lookup(1), TcamCardinalityTable::exact(4096, 1), 40.0);
}

class TcamErrorBoundTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcamErrorBoundTest, WithinBoundEverywhere) {
  const std::size_t w1 = 65536;
  const double bound = 0.002;
  const TcamCardinalityTable table(w1, bound);
  const std::size_t w0 = GetParam();
  const double exact = TcamCardinalityTable::exact(w1, w0);
  const double looked_up = table.lookup(w0);
  // One-sided nearest match: the error is the budget plus the one-flow
  // absolute slack used near zero.
  EXPECT_LE(std::abs(looked_up - exact), exact * bound + 2.0)
      << "w0 = " << w0;
  EXPECT_GE(looked_up + 1e-9, exact) << "one-sided match overestimates";
}

INSTANTIATE_TEST_SUITE_P(EmptyCounts, TcamErrorBoundTest,
                         ::testing::Values(1, 2, 10, 100, 1000, 10000, 30000,
                                           60000, 65000, 65535, 65536));

TEST(TcamCardinality, TwoOrdersSmallerThanFullTable) {
  const TcamCardinalityTable table(500'000, 0.002);
  EXPECT_LT(table.entry_count(), table.full_table_size() / 50);
  EXPECT_GT(table.entry_count(), 100u);
}

TEST(TcamCardinality, RejectsBadParameters) {
  EXPECT_THROW(TcamCardinalityTable(0, 0.002), std::invalid_argument);
  EXPECT_THROW(TcamCardinalityTable(100, 0.0), std::invalid_argument);
}

TEST(TcamCardinality, LookupClampsOutOfRange) {
  const TcamCardinalityTable table(1024, 0.01);
  EXPECT_NEAR(table.lookup(0), table.lookup(1), 1e-9);
  EXPECT_NEAR(table.lookup(5000), 0.0, 1e-9);
}

}  // namespace
}  // namespace fcm::pisa
