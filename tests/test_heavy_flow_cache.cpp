// HeavyFlowCache unit suite: hit/insert/evict state machine, smallest-count
// eviction, the FlowKey{0} bypass sentinel, and the conservation ledger
// (offered == resident + evicted at all times) that the differential battery
// later leans on end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/contracts.h"
#include "common/random.h"
#include "datapath/heavy_flow_cache.h"
#include "flow/flow_key.h"

namespace fcm {
namespace {

using datapath::HeavyFlowCache;
using Outcome = HeavyFlowCache::Result::Outcome;

HeavyFlowCache::Options tiny_options(std::size_t entries = 8,
                                     std::size_t ways = 2) {
  HeavyFlowCache::Options options;
  options.entries = entries;
  options.ways = ways;
  return options;
}

TEST(HeavyFlowCache, InsertThenHitAccumulatesExactly) {
  HeavyFlowCache cache(tiny_options());
  const flow::FlowKey key{42};
  EXPECT_EQ(cache.offer(key, 3).outcome, Outcome::kInserted);
  EXPECT_EQ(cache.offer(key, 4).outcome, Outcome::kHit);
  EXPECT_EQ(cache.count_of(key), 7u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.resident_flows(), 1u);
  EXPECT_EQ(cache.resident_units(), 7u);
  cache.check_invariants();
}

TEST(HeavyFlowCache, KeyZeroAlwaysBypasses) {
  HeavyFlowCache cache(tiny_options());
  const auto result = cache.offer(flow::FlowKey{0}, 5);
  EXPECT_EQ(result.outcome, Outcome::kBypass);
  EXPECT_EQ(cache.resident_flows(), 0u);
  EXPECT_EQ(cache.offered_units(), 0u);  // bypassed units are the caller's
  cache.check_invariants();
}

TEST(HeavyFlowCache, EvictsTheSmallestCountInTheSet) {
  // One set of 4 ways: fill it with known counts and overflow it.
  HeavyFlowCache cache(tiny_options(/*entries=*/4, /*ways=*/4));
  std::unordered_map<std::uint32_t, std::uint64_t> counts = {
      {1, 10}, {2, 2}, {3, 30}, {4, 40}};
  for (const auto& [id, count] : counts) {
    EXPECT_EQ(cache.offer(flow::FlowKey{id}, count).outcome, Outcome::kInserted);
  }
  const auto result = cache.offer(flow::FlowKey{99}, 1);
  ASSERT_EQ(result.outcome, Outcome::kEvicted);
  // The victim is the lightest resident flow (id 2, count 2).
  EXPECT_EQ(result.evicted_key, flow::FlowKey{2});
  EXPECT_EQ(result.evicted_count, 2u);
  EXPECT_EQ(cache.count_of(flow::FlowKey{2}), 0u);
  EXPECT_EQ(cache.count_of(flow::FlowKey{99}), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.evicted_units(), 2u);
  cache.check_invariants();
}

TEST(HeavyFlowCache, HotFlowsBecomePracticallyUnevictable) {
  HeavyFlowCache cache(tiny_options(/*entries=*/4, /*ways=*/4));
  const flow::FlowKey hot{7};
  cache.offer(hot, 1'000'000);
  // Churn a long tail of one-packet flows through the same table.
  for (std::uint32_t id = 100; id < 600; ++id) {
    cache.offer(flow::FlowKey{id}, 1);
  }
  EXPECT_EQ(cache.count_of(hot), 1'000'000u);
  cache.check_invariants();
}

TEST(HeavyFlowCache, DrainVisitsEveryResidentFlowAndEmpties) {
  HeavyFlowCache cache(tiny_options(/*entries=*/16, /*ways=*/4));
  std::uint64_t offered = 0;
  for (std::uint32_t id = 1; id <= 10; ++id) {
    cache.offer(flow::FlowKey{id}, id);
    offered += id;
  }
  const std::size_t resident_before = cache.resident_flows();
  const std::uint64_t evicted_before = cache.evicted_units();
  std::uint64_t drained = 0;
  std::size_t visited = 0;
  cache.drain([&](flow::FlowKey key, std::uint64_t count) {
    EXPECT_NE(key.value, 0u);
    EXPECT_GT(count, 0u);
    drained += count;
    ++visited;
  });
  EXPECT_EQ(visited, resident_before);
  // Drained units plus pre-drain evictions account for everything offered.
  EXPECT_EQ(drained + evicted_before, offered);
  EXPECT_EQ(cache.resident_flows(), 0u);
  EXPECT_EQ(cache.resident_units(), 0u);
  EXPECT_EQ(cache.offered_units(), cache.evicted_units());
  cache.check_invariants();
}

TEST(HeavyFlowCache, ConservationLedgerHoldsUnderChurn) {
  HeavyFlowCache cache(tiny_options(/*entries=*/32, /*ways=*/4));
  common::Xoshiro256 rng(0xcac4e);
  std::uint64_t expected_offered = 0;
  for (int i = 0; i < 50'000; ++i) {
    const auto id = static_cast<std::uint32_t>(1 + rng.next() % 500);
    const std::uint64_t count = 1 + rng.next() % 7;
    cache.offer(flow::FlowKey{id}, count);
    expected_offered += count;
    if (i % 9973 == 0) cache.check_invariants();
  }
  EXPECT_EQ(cache.offered_units(), expected_offered);
  EXPECT_EQ(cache.offered_units(),
            cache.resident_units() + cache.evicted_units());
  cache.check_invariants();
}

TEST(HeavyFlowCache, ForEachMatchesCountOf) {
  HeavyFlowCache cache(tiny_options(/*entries=*/16, /*ways=*/4));
  for (std::uint32_t id = 1; id <= 12; ++id) cache.offer(flow::FlowKey{id}, id);
  std::size_t visited = 0;
  cache.for_each([&](flow::FlowKey key, std::uint64_t count) {
    EXPECT_EQ(cache.count_of(key), count);
    ++visited;
  });
  EXPECT_EQ(visited, cache.resident_flows());
}

TEST(HeavyFlowCache, ClearDiscardsLedgerAndContents) {
  HeavyFlowCache cache(tiny_options());
  cache.offer(flow::FlowKey{1}, 5);
  cache.clear();
  EXPECT_EQ(cache.resident_flows(), 0u);
  EXPECT_EQ(cache.offered_units(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.check_invariants();
}

TEST(HeavyFlowCache, RejectsBadGeometry) {
  HeavyFlowCache::Options bad;
  bad.entries = 12;  // not a power of two
  bad.ways = 4;
  EXPECT_THROW(HeavyFlowCache{bad}, common::ContractViolation);
  bad.entries = 16;
  bad.ways = 3;  // does not divide entries
  EXPECT_THROW(HeavyFlowCache{bad}, common::ContractViolation);
  bad.entries = 0;
  bad.ways = 1;
  EXPECT_THROW(HeavyFlowCache{bad}, common::ContractViolation);
}

}  // namespace
}  // namespace fcm
