#include "sketch/cm_sketch.h"

#include <gtest/gtest.h>

#include "flow/synthetic.h"
#include "metrics/evaluator.h"

namespace fcm::sketch {
namespace {

TEST(CmSketch, RejectsBadGeometry) {
  EXPECT_THROW(CmSketch(0, 10), std::invalid_argument);
  EXPECT_THROW(CmSketch(3, 0), std::invalid_argument);
}

TEST(CmSketch, SingleFlowExact) {
  CmSketch cm(3, 1024);
  for (int i = 0; i < 500; ++i) cm.update(flow::FlowKey{7});
  EXPECT_EQ(cm.query(flow::FlowKey{7}), 500u);
}

TEST(CmSketch, BulkAddEqualsUpdates) {
  CmSketch a(3, 256, 9);
  CmSketch b(3, 256, 9);
  a.add(flow::FlowKey{3}, 123);
  for (int i = 0; i < 123; ++i) b.update(flow::FlowKey{3});
  EXPECT_EQ(a.query(flow::FlowKey{3}), b.query(flow::FlowKey{3}));
}

TEST(CmSketch, ForMemorySizesWidth) {
  const CmSketch cm = CmSketch::for_memory(1'200'000, 3);
  EXPECT_EQ(cm.width(), 100'000u);
  EXPECT_EQ(cm.memory_bytes(), 1'200'000u);
}

TEST(CmSketch, SaturatesInsteadOfWrapping) {
  CmSketch cm(1, 4, 5);
  cm.add(flow::FlowKey{1}, (1ull << 33));
  EXPECT_EQ(cm.query(flow::FlowKey{1}), 0xffffffffull);
}

TEST(CmSketch, ClearResets) {
  CmSketch cm(3, 64);
  cm.add(flow::FlowKey{5}, 9);
  cm.clear();
  EXPECT_EQ(cm.query(flow::FlowKey{5}), 0u);
}

class CmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CmPropertyTest, NeverUnderestimates) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 100000;
  config.flow_count = 20000;
  config.seed = GetParam();
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  CmSketch cm(3, 4096, GetParam());
  for (const flow::Packet& p : trace.packets()) cm.update(p.key);
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(cm.query(key), size);
  }
}

TEST_P(CmPropertyTest, ConservativeUpdateNeverUnderestimates) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 100000;
  config.flow_count = 20000;
  config.seed = GetParam();
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  CuSketch cu(3, 4096, GetParam());
  for (const flow::Packet& p : trace.packets()) cu.update(p.key);
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(cu.query(key), size);
  }
}

TEST_P(CmPropertyTest, CuDominatesCm) {
  // Conservative update is pointwise no worse than plain CM on the same
  // layout and traffic.
  flow::SyntheticTraceConfig config;
  config.packet_count = 80000;
  config.flow_count = 15000;
  config.seed = GetParam() + 100;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  CmSketch cm(3, 2048, 77);
  CuSketch cu(3, 2048, 77);
  for (const flow::Packet& p : trace.packets()) {
    cm.update(p.key);
    cu.update(p.key);
  }
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_LE(cu.query(key), cm.query(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmPropertyTest, ::testing::Values(1, 2, 3));

TEST(CmSketch, CuHasLowerAreOnSkewedTraffic) {
  const flow::Trace trace = flow::SyntheticTraceGenerator::zipf(1.1, 0.005, 5);
  const flow::GroundTruth truth(trace);
  CmSketch cm = CmSketch::for_memory(100'000);
  CuSketch cu = CuSketch::for_memory(100'000);
  metrics::feed(cm, trace);
  metrics::feed(cu, trace);
  const auto cm_err = metrics::evaluate_sizes(cm, truth);
  const auto cu_err = metrics::evaluate_sizes(cu, truth);
  EXPECT_LT(cu_err.are, cm_err.are);
}

}  // namespace
}  // namespace fcm::sketch
