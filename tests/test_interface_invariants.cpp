// Cross-cutting invariants: every estimator behind the common interface,
// conservation laws, and estimator-level sanity that individual module
// tests don't cover.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "fcm/fcm_estimator.h"
#include "flow/synthetic.h"
#include "metrics/evaluator.h"
#include "pisa/tcam_cardinality.h"
#include "sketch/cm_sketch.h"
#include "sketch/elastic_sketch.h"
#include "sketch/fss_sketch.h"
#include "sketch/hashpipe.h"
#include "sketch/mrac.h"
#include "sketch/pyramid_sketch.h"
#include "sketch/univmon.h"

namespace fcm {
namespace {

std::vector<std::unique_ptr<sketch::FrequencyEstimator>> all_estimators() {
  constexpr std::size_t kMemory = 200'000;
  std::vector<std::unique_ptr<sketch::FrequencyEstimator>> estimators;
  estimators.push_back(std::make_unique<core::FcmEstimator>(
      core::FcmConfig::for_memory(kMemory, 2, 8, {8, 16, 32})));
  estimators.push_back(std::make_unique<core::FcmTopKEstimator>(
      core::FcmTopK::for_memory(kMemory, 2, 16, 1024)));
  estimators.push_back(
      std::make_unique<sketch::CmSketch>(sketch::CmSketch::for_memory(kMemory)));
  estimators.push_back(
      std::make_unique<sketch::CuSketch>(sketch::CuSketch::for_memory(kMemory)));
  estimators.push_back(
      std::make_unique<sketch::Mrac>(sketch::Mrac::for_memory(kMemory)));
  estimators.push_back(std::make_unique<sketch::PyramidCmSketch>(
      sketch::PyramidCmSketch::for_memory(kMemory)));
  estimators.push_back(
      std::make_unique<sketch::HashPipe>(sketch::HashPipe::for_memory(kMemory)));
  estimators.push_back(std::make_unique<sketch::ElasticSketch>(
      sketch::ElasticSketch::for_memory(kMemory + 300'000)));
  estimators.push_back(
      std::make_unique<sketch::UnivMon>(sketch::UnivMon::for_memory(kMemory + 300'000)));
  estimators.push_back(std::make_unique<sketch::FssSketch>(
      sketch::FssSketch::for_memory(kMemory)));
  return estimators;
}

flow::Trace interface_trace() {
  flow::SyntheticTraceConfig config;
  config.packet_count = 100'000;
  config.flow_count = 10'000;
  config.seed = 99;
  return flow::SyntheticTraceGenerator(config).generate();
}

TEST(EstimatorInterface, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const auto& estimator : all_estimators()) {
    EXPECT_FALSE(estimator->name().empty());
    EXPECT_TRUE(names.insert(estimator->name()).second)
        << "duplicate name " << estimator->name();
  }
}

TEST(EstimatorInterface, MemoryIsPositiveAndHonest) {
  for (const auto& estimator : all_estimators()) {
    EXPECT_GT(estimator->memory_bytes(), 10'000u) << estimator->name();
    EXPECT_LT(estimator->memory_bytes(), 2'000'000u) << estimator->name();
  }
}

TEST(EstimatorInterface, ClearRestoresEmptyState) {
  const flow::Trace trace = interface_trace();
  for (const auto& estimator : all_estimators()) {
    metrics::feed(*estimator, trace);
    estimator->clear();
    // A fresh key must read (close to) zero after clear. Count-Sketch-based
    // UnivMon can report small noise; everything else must be exactly 0.
    const std::uint64_t residual = estimator->query(flow::FlowKey{0x12345678});
    EXPECT_LE(residual, 2u) << estimator->name();
  }
}

TEST(EstimatorInterface, ReasonableAccuracyThroughBaseClass) {
  const flow::Trace trace = interface_trace();
  const flow::GroundTruth truth(trace);
  for (const auto& estimator : all_estimators()) {
    metrics::feed(*estimator, trace);
    const auto errors = metrics::evaluate_sizes(*estimator, truth);
    // Loose envelope: at this load every implementation should estimate the
    // average flow within a factor-ish of its size.
    EXPECT_LT(errors.are, 25.0) << estimator->name();
  }
}

// --- conservation laws -------------------------------------------------------

TEST(Conservation, MracCountersEqualPackets) {
  const flow::Trace trace = interface_trace();
  sketch::Mrac mrac(4096);
  metrics::feed(mrac, trace);
  std::uint64_t total = 0;
  for (const auto v : mrac.counters()) total += v;
  EXPECT_EQ(total, trace.size());
}

TEST(Conservation, FcmTreesEachAbsorbEveryPacket) {
  const flow::Trace trace = interface_trace();
  core::FcmSketch sketch(core::FcmConfig::for_memory(200'000, 3, 8, {8, 16, 32}));
  for (const flow::Packet& p : trace.packets()) sketch.update(p.key);
  for (std::size_t t = 0; t < sketch.tree_count(); ++t) {
    EXPECT_EQ(sketch.tree(t).total_count(), trace.size());
  }
}

TEST(Conservation, UnivMonGsumOfIdentityApproximatesPackets) {
  const flow::Trace trace = interface_trace();
  sketch::UnivMon univmon = sketch::UnivMon::for_memory(700'000);
  metrics::feed(univmon, trace);
  const double estimated_mass =
      univmon.g_sum([](std::uint64_t x) { return static_cast<double>(x); });
  EXPECT_NEAR(estimated_mass, static_cast<double>(trace.size()),
              0.25 * static_cast<double>(trace.size()));
}

TEST(Conservation, ElasticHeavyPlusLightCoversEveryPacket) {
  const flow::Trace trace = interface_trace();
  sketch::ElasticSketch elastic = sketch::ElasticSketch::for_memory(700'000);
  metrics::feed(elastic, trace);
  std::uint64_t heavy_mass = 0;
  for (const auto& [key, count] : elastic.heavy_flows()) heavy_mass += count;
  std::uint64_t light_mass = 0;
  for (const auto cell : elastic.light_counters()) light_mass += cell;
  // Light cells saturate at 255, so the sum is a lower bound.
  EXPECT_LE(heavy_mass + light_mass, trace.size());
  EXPECT_GE(heavy_mass + light_mass, trace.size() * 9 / 10);
}

// --- misc invariants ----------------------------------------------------------

TEST(TcamLookup, MonotoneInEmptyLeaves) {
  const pisa::TcamCardinalityTable table(10'000, 0.002);
  double previous = table.lookup(10'000);
  for (long w0 = 9'999; w0 >= 1; w0 -= 97) {
    const double estimate = table.lookup(static_cast<std::size_t>(w0));
    EXPECT_GE(estimate, previous - 1e-9);
    previous = estimate;
  }
}

TEST(BenchScale, ParsesEnvironment) {
  ::setenv("FCM_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(metrics::bench_scale(0.1), 0.5);
  ::setenv("FCM_SCALE", "full", 1);
  EXPECT_DOUBLE_EQ(metrics::bench_scale(0.1), 1.0);
  ::setenv("FCM_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(metrics::bench_scale(0.1), 0.1);
  ::setenv("FCM_SCALE", "7.0", 1);  // out of range
  EXPECT_DOUBLE_EQ(metrics::bench_scale(0.1), 0.1);
  ::unsetenv("FCM_SCALE");
  EXPECT_DOUBLE_EQ(metrics::bench_scale(0.1), 0.1);
}

TEST(HeavyHittersByQuery, MatchesThresholdSemantics) {
  const flow::Trace trace = interface_trace();
  const flow::GroundTruth truth(trace);
  sketch::CmSketch cm = sketch::CmSketch::for_memory(400'000);
  metrics::feed(cm, trace);
  const auto reported = metrics::heavy_hitters_by_query(cm, truth, 100);
  for (const flow::FlowKey key : reported) {
    EXPECT_GE(cm.query(key), 100u);
  }
  // CM overestimates, so recall against the true set is perfect.
  const auto scores =
      metrics::classification_scores(reported, truth.heavy_hitters(100));
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
}

}  // namespace
}  // namespace fcm
